#!/usr/bin/env bash
# Tier-1 verification gate for the Sailfish workspace.
#
# The workspace is hermetic: it must build and test fully offline, from
# an empty cargo registry, with no external crates (sailfish-util is the
# in-tree replacement for what used to come from crates.io). This script
# is the single check every PR must pass:
#
#   ci/check.sh            # build + test + fmt + clippy + dependency policy
#
# fmt and clippy skip gracefully when the component is not installed
# (e.g. a minimal CI container); build and test never skip.

set -u -o pipefail

cd "$(dirname "$0")/.."

failures=0

run_step() {
    local name="$1"
    shift
    echo
    echo "==> ${name}: $*"
    if "$@"; then
        echo "==> ${name}: OK"
    else
        echo "==> ${name}: FAILED"
        failures=$((failures + 1))
    fi
}

# 1. Offline release build — proves dependency resolution needs no network.
run_step "build" cargo build --release --offline

# 2. Offline test suite.
run_step "test" cargo test -q --offline

# 3. Formatting (skip if rustfmt is not installed).
if cargo fmt --version >/dev/null 2>&1; then
    run_step "fmt" cargo fmt --check
else
    echo "==> fmt: SKIPPED (rustfmt not installed)"
fi

# 4. Lints (skip if clippy is not installed).
if cargo clippy --version >/dev/null 2>&1; then
    run_step "clippy" cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> clippy: SKIPPED (clippy not installed)"
fi

# 5. Static-analyzer smoke: every shipped layout must verify clean and
#    the known-bad corpus must fire its pinned codes; run twice and cmp
#    the rendered report (determinism gate).
run_step "verify-smoke" cargo run --release --offline -q -p sailfish-bench \
    --bin sailfish-verify
if [ -f experiments/verify_report.txt ]; then
    cp experiments/verify_report.txt /tmp/sailfish_verify_run1.txt
    run_step "verify-determinism" cargo run --release --offline -q -p sailfish-bench \
        --bin sailfish-verify
    echo
    echo "==> verify-determinism: comparing the two reports"
    if cmp -s /tmp/sailfish_verify_run1.txt experiments/verify_report.txt; then
        echo "==> verify-determinism: OK (byte-identical)"
    else
        echo "==> verify-determinism: FAILED (reports differ)"
        failures=$((failures + 1))
    fi
    rm -f /tmp/sailfish_verify_run1.txt
fi

# 6. Fault-injection smoke: the chaos sweep must run clean (zero
#    invariant violations, every fault recovered) at tiny scale, twice,
#    with byte-identical JSON output (determinism gate).
run_step "chaos-smoke" cargo run --release --offline -q -p sailfish-bench \
    --bin fault_injection_sweep -- --tiny
if [ -f experiments/fault_injection.json ]; then
    cp experiments/fault_injection.json /tmp/sailfish_fault_injection_run1.json
    run_step "chaos-determinism" cargo run --release --offline -q -p sailfish-bench \
        --bin fault_injection_sweep -- --tiny
    echo
    echo "==> chaos-determinism: comparing the two runs"
    if cmp -s /tmp/sailfish_fault_injection_run1.json experiments/fault_injection.json; then
        echo "==> chaos-determinism: OK (byte-identical)"
    else
        echo "==> chaos-determinism: FAILED (runs differ)"
        failures=$((failures + 1))
    fi
    rm -f /tmp/sailfish_fault_injection_run1.json
fi

# 7. Live-executor chaos smoke: fault schedules replayed against the
#    packet-level dataplane must hold all three invariants (no black
#    hole, bounded fallback, oracle agreement after every epoch swap) at
#    tiny scale, twice, with byte-identical JSON (determinism gate).
run_step "chaos-dataplane-smoke" cargo run --release --offline -q -p sailfish-bench \
    --bin chaos_dataplane_sweep -- --tiny
if [ -f experiments/chaos_dataplane.json ]; then
    cp experiments/chaos_dataplane.json /tmp/sailfish_chaos_dataplane_run1.json
    run_step "chaos-dataplane-determinism" cargo run --release --offline -q -p sailfish-bench \
        --bin chaos_dataplane_sweep -- --tiny
    echo
    echo "==> chaos-dataplane-determinism: comparing the two runs"
    if cmp -s /tmp/sailfish_chaos_dataplane_run1.json experiments/chaos_dataplane.json; then
        echo "==> chaos-dataplane-determinism: OK (byte-identical)"
    else
        echo "==> chaos-dataplane-determinism: FAILED (runs differ)"
        failures=$((failures + 1))
    fi
    rm -f /tmp/sailfish_chaos_dataplane_run1.json
fi

# 8. Dataplane smoke: the behavioral executor must hold the differential
#    oracle at tiny scale, twice, with byte-identical JSON counters
#    (determinism gate).
run_step "dataplane-smoke" cargo run --release --offline -q -p sailfish-bench \
    --bin dataplane_bench -- --tiny
if [ -f BENCH_dataplane.json ]; then
    cp BENCH_dataplane.json /tmp/sailfish_dataplane_run1.json
    run_step "dataplane-determinism" cargo run --release --offline -q -p sailfish-bench \
        --bin dataplane_bench -- --tiny
    echo
    echo "==> dataplane-determinism: comparing the two runs"
    if cmp -s /tmp/sailfish_dataplane_run1.json BENCH_dataplane.json; then
        echo "==> dataplane-determinism: OK (byte-identical)"
    else
        echo "==> dataplane-determinism: FAILED (runs differ)"
        failures=$((failures + 1))
    fi
    rm -f /tmp/sailfish_dataplane_run1.json
fi

# 9. Dependency policy: no external crates anywhere in the workspace.
echo
echo "==> policy: no external crate references in manifests"
if grep -rn "rand\|proptest\|criterion\|serde\|crossbeam\|parking_lot\|bytes" \
    Cargo.toml crates/*/Cargo.toml; then
    echo "==> policy: FAILED (external crate reference found above)"
    failures=$((failures + 1))
else
    echo "==> policy: OK"
fi

echo
if [ "${failures}" -ne 0 ]; then
    echo "ci/check.sh: ${failures} step(s) failed"
    exit 1
fi
echo "ci/check.sh: all checks passed"
