#!/usr/bin/env bash
# Tier-1 verification gate for the Sailfish workspace.
#
# The workspace is hermetic: it must build and test fully offline, from
# an empty cargo registry, with no external crates (sailfish-util is the
# in-tree replacement for what used to come from crates.io). This script
# is the single check every PR must pass:
#
#   ci/check.sh            # build + test + fmt + clippy + dependency policy
#
# fmt and clippy skip gracefully when the component is not installed
# (e.g. a minimal CI container); build and test never skip.

set -u -o pipefail

cd "$(dirname "$0")/.."

failures=0

run_step() {
    local name="$1"
    shift
    echo
    echo "==> ${name}: $*"
    if "$@"; then
        echo "==> ${name}: OK"
    else
        echo "==> ${name}: FAILED"
        failures=$((failures + 1))
    fi
}

# Runs a seeded smoke command twice and requires its artifact to come out
# byte-identical — the workspace-wide determinism contract. Usage:
#
#   determinism_gate <name> <artifact> <cmd...>
#
# The command runs once (as a normal gated step), the artifact is
# stashed, the command runs again, and the two artifacts are cmp'd.
determinism_gate() {
    local name="$1"
    local artifact="$2"
    shift 2
    run_step "${name}" "$@"
    if [ ! -f "${artifact}" ]; then
        echo "==> ${name}-determinism: FAILED (${artifact} missing)"
        failures=$((failures + 1))
        return
    fi
    local stash
    stash="/tmp/sailfish_$(echo "${name}" | tr -c 'a-zA-Z0-9' '_')run1"
    cp "${artifact}" "${stash}"
    run_step "${name}-rerun" "$@"
    echo
    echo "==> ${name}-determinism: comparing the two runs of ${artifact}"
    if cmp -s "${stash}" "${artifact}"; then
        echo "==> ${name}-determinism: OK (byte-identical)"
    else
        echo "==> ${name}-determinism: FAILED (runs differ)"
        failures=$((failures + 1))
    fi
    rm -f "${stash}"
}

# 1. Offline release build — proves dependency resolution needs no network.
run_step "build" cargo build --release --offline

# 2. Offline test suite.
run_step "test" cargo test -q --offline

# 3. Formatting (skip if rustfmt is not installed).
if cargo fmt --version >/dev/null 2>&1; then
    run_step "fmt" cargo fmt --check
else
    echo "==> fmt: SKIPPED (rustfmt not installed)"
fi

# 4. Lints (skip if clippy is not installed).
if cargo clippy --version >/dev/null 2>&1; then
    run_step "clippy" cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> clippy: SKIPPED (clippy not installed)"
fi

# 5. Static-analyzer smoke: every shipped layout must verify clean and
#    the known-bad corpus must fire its pinned codes.
determinism_gate "verify-smoke" experiments/verify_report.txt \
    cargo run --release --offline -q -p sailfish-bench --bin sailfish-verify

# 5b. Plan-time world-verifier smoke: staged installs and re-shard plans
#     must prove clean, the known-bad world corpus must fire its pinned
#     codes, delta re-verification must stay O(delta), and the chaos
#     soundness differential must report zero unflagged escapes.
determinism_gate "verify-world-smoke" experiments/verify_world_report.txt \
    cargo run --release --offline -q -p sailfish-bench \
    --bin verify_world_sweep -- --tiny

# 6. Fault-injection smoke: the chaos sweep must run clean (zero
#    invariant violations, every fault recovered) at tiny scale.
determinism_gate "chaos-smoke" experiments/fault_injection.json \
    cargo run --release --offline -q -p sailfish-bench \
    --bin fault_injection_sweep -- --tiny

# 7. Live-executor chaos smoke: fault schedules replayed against the
#    packet-level dataplane must hold all three invariants (no black
#    hole, bounded fallback, oracle agreement after every epoch swap).
determinism_gate "chaos-dataplane-smoke" experiments/chaos_dataplane.json \
    cargo run --release --offline -q -p sailfish-bench \
    --bin chaos_dataplane_sweep -- --tiny

# 7b. Elastic re-shard smoke: scripted make-before-break migrations
#     under live traffic and per-phase faults must commit or roll back
#     cleanly (zero violations, rollback from every pre-commit phase).
determinism_gate "reshard-smoke" experiments/reshard.json \
    cargo run --release --offline -q -p sailfish-bench \
    --bin reshard_sweep -- --tiny

# 7c. Stateful SNAT smoke: the hybrid connection-tracking tier must
#     agree with its naive reference, the port-pool alert must precede
#     the first dropped connection, and the published offload epoch must
#     leave the decision digest byte-identical.
determinism_gate "snat-smoke" experiments/snat.json \
    cargo run --release --offline -q -p sailfish-bench \
    --bin snat_sweep -- --tiny

# 7d. Three-tier ladder smoke: the DPU middle tier must keep decision
#     digests byte-identical, absorb the punt stream, fail over with
#     bounded churn, and fire per-tier alerts before breakers open.
determinism_gate "tier-smoke" experiments/tier.json \
    cargo run --release --offline -q -p sailfish-bench \
    --bin tier_sweep -- --tiny

# 8. Dataplane smoke: the behavioral executor must hold the differential
#    oracle at tiny scale.
determinism_gate "dataplane-smoke" BENCH_dataplane.json \
    cargo run --release --offline -q -p sailfish-bench \
    --bin dataplane_bench -- --tiny

# 9. Wall-clock smoke: the batch pipeline must reproduce the scalar
#    decision digests in every mode (the bench exits non-zero otherwise).
#    Only the seeded digest artifact is determinism-gated — timings live
#    in BENCH_wallclock.json and are checked against floors below.
determinism_gate "wallclock-smoke" experiments/wallclock_digest.json \
    cargo run --release --offline -q -p sailfish-bench \
    --bin dataplane_wallclock_bench -- --tiny

# 10. Perf floor: the batch hot path must clear a deliberately
#     conservative wall-clock bar (shared CI boxes are noisy; the floor
#     catches order-of-magnitude regressions, not percent drift) and
#     must never allocate per packet in steady state.
echo
echo "==> perf-floor: wall-clock batch floors from BENCH_wallclock.json"
if [ -f BENCH_wallclock.json ]; then
    steady=$(sed -n 's/.*"steady_mpps": \([0-9.]*\).*/\1/p' BENCH_wallclock.json)
    speedup=$(sed -n 's/.*"speedup_vs_scalar": \([0-9.]*\).*/\1/p' BENCH_wallclock.json)
    allocs=$(sed -n 's/.*"steady_allocs_per_packet": \([0-9]*\).*/\1/p' BENCH_wallclock.json)
    echo "    steady ${steady:-?} Mpps (floor 1.5) | speedup ${speedup:-?}x (floor 1.0) | allocs/pkt ${allocs:-?} (must be 0)"
    if awk -v s="${steady:-0}" -v x="${speedup:-0}" -v a="${allocs:-1}" \
        'BEGIN { exit !(s >= 1.5 && x >= 1.0 && a == 0) }'; then
        echo "==> perf-floor: OK"
    else
        echo "==> perf-floor: FAILED (below conservative floor)"
        failures=$((failures + 1))
    fi
else
    echo "==> perf-floor: FAILED (BENCH_wallclock.json missing)"
    failures=$((failures + 1))
fi

# 10b. Documentation: every public item documents cleanly — broken
#      intra-doc links or missing docs on lint-enforced crates fail.
run_step "doc" env RUSTDOCFLAGS="-D warnings" \
    cargo doc --no-deps --offline --workspace

# 11. Dependency policy: no external crates anywhere in the workspace.
echo
echo "==> policy: no external crate references in manifests"
if grep -rn "rand\|proptest\|criterion\|serde\|crossbeam\|parking_lot\|bytes" \
    Cargo.toml crates/*/Cargo.toml; then
    echo "==> policy: FAILED (external crate reference found above)"
    failures=$((failures + 1))
else
    echo "==> policy: OK"
fi

echo
if [ "${failures}" -ne 0 ]; then
    echo "ci/check.sh: ${failures} step(s) failed"
    exit 1
fi
echo "ci/check.sh: all checks passed"
