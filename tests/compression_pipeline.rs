//! Integration test: the compression engine against the live compressed
//! structures — the derived (cost-model) occupancy and the measured
//! (structure-built) occupancy must tell the same story.

use sailfish::compression::{
    estimate_alpm_stats, occupancy_at, step_series, CompressionStep, MemoryScenario,
};
use sailfish::prelude::*;
use sailfish_xgw_h::tables::HwRoutingTable;

fn small_scenario_alpm() -> (sailfish_tables::alpm::AlpmStats, usize) {
    // A mid-size topology keeps the test fast while still exercising the
    // grouped first level.
    let topology = Topology::generate(TopologyConfig {
        vpcs: 800,
        total_vms: 20_000,
        ..TopologyConfig::default()
    });
    let mut table = HwRoutingTable::new(AlpmConfig::default());
    for (key, target) in &topology.routes {
        table.insert(*key, *target).unwrap();
    }
    table.audit().unwrap();
    (table.grouped_alpm_stats(), topology.routes.len())
}

#[test]
fn measured_alpm_compresses_the_first_level() {
    let (stats, routes) = small_scenario_alpm();
    assert_eq!(stats.bucket_entries, routes, "no entry lost");
    // The whole point: far fewer TCAM entries than routes.
    assert!(
        stats.tcam_entries * 5 < routes,
        "tcam {} vs routes {routes}",
        stats.tcam_entries
    );
    assert!(stats.avg_fill > 0.3, "fill {:.2}", stats.avg_fill);
}

#[test]
fn fig17_shape_holds_with_measured_stats() {
    let (stats, routes) = small_scenario_alpm();
    // Scale the scenario to the measured route count so percentages are
    // comparable.
    let scenario = MemoryScenario {
        route_entries: routes,
        vm_entries: routes * 2,
        v4_fraction: 0.75,
    };
    let cfg = TofinoConfig::tofino_64t();
    let series = step_series(&scenario, &cfg, &stats);
    // Monotone improvements (with the known pooling TCAM bump).
    assert!(series[1].occupancy.sram_pct < series[0].occupancy.sram_pct);
    assert!(series[2].occupancy.sram_pct < series[1].occupancy.sram_pct);
    assert!(series[4].occupancy.tcam_pct < series[3].occupancy.tcam_pct / 5.0);
    // Final configuration always fits at this scale.
    assert!(series[4].occupancy.fits());
}

#[test]
fn estimate_brackets_measured_stats() {
    let (measured, routes) = small_scenario_alpm();
    let est = estimate_alpm_stats(routes, 24, 0.6);
    // The closed-form estimate lands within 2x of the measured layout on
    // both axes — close enough for planning, which is its only use.
    let ratio = est.tcam_entries as f64 / measured.tcam_entries as f64;
    assert!((0.5..2.0).contains(&ratio), "tcam ratio {ratio:.2}");
    let ratio = est.allocated_slots as f64 / measured.allocated_slots as f64;
    assert!((0.5..2.0).contains(&ratio), "slots ratio {ratio:.2}");
}

#[test]
fn compression_makes_the_unfittable_fit() {
    let cfg = TofinoConfig::tofino_64t();
    let scenario = MemoryScenario::paper_mix();
    let alpm = estimate_alpm_stats(scenario.route_entries, 24, 0.6);
    let initial = occupancy_at(CompressionStep::Initial, &scenario, &cfg, &alpm);
    let fin = occupancy_at(CompressionStep::All, &scenario, &cfg, &alpm);
    assert!(
        !initial.fits(),
        "the paper's premise: naive placement fails"
    );
    assert!(fin.fits(), "the paper's result: compressed placement fits");
}

/// Ablation: each optimization contributes (removing any step from the
/// end state breaks fit or regresses memory).
#[test]
fn ablation_each_step_matters() {
    let cfg = TofinoConfig::tofino_64t();
    let scenario = MemoryScenario::paper_mix();
    let alpm = estimate_alpm_stats(scenario.route_entries, 24, 0.6);
    let series = step_series(&scenario, &cfg, &alpm);

    // Without folding+splitting (steps a/b), even the pooled+ALPM tables
    // would not fit: scale the final step back to a single-pipe copy by
    // recomputing at 4x the effective load.
    let final_occ = series[4].occupancy;
    let unfolded_equivalent_sram = final_occ.sram_pct * 4.0;
    assert!(
        unfolded_equivalent_sram > 100.0,
        "without folding/splitting the final tables would overflow SRAM: {unfolded_equivalent_sram:.0}%"
    );

    // Without ALPM (stop at a+b+c+d), TCAM overflows.
    assert!(series[3].occupancy.tcam_pct > 100.0);

    // Without pooling/compression (stop at a+b), TCAM still overflows at
    // a 75/25 mix... just barely under 100? — it reads 97%: it "fits" but
    // leaves no headroom and cannot absorb IPv6 growth; the all-v6
    // scenario makes it overflow decisively.
    let v6 = MemoryScenario::all_v6();
    let ab_v6 = occupancy_at(CompressionStep::FoldingSplit, &v6, &cfg, &alpm);
    assert!(ab_v6.tcam_pct > 100.0, "a+b alone fails for IPv6: {ab_v6}");
}
