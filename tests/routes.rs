//! Integration test: every Table 1 traffic route, end-to-end through a
//! built region — hardware decision, software fallback, and the wire
//! representation at each hop.

use sailfish::prelude::*;
use sailfish_cluster::controller::ClusterCapacity;
use sailfish_xgw_h::PuntReason;
use sailfish_xgw_x86::Decision;

fn region() -> (Topology, Region) {
    let topology = Topology::generate(TopologyConfig::default());
    let region = Region::build(
        &topology,
        RegionConfig {
            capacity: ClusterCapacity {
                max_routes: 600,
                max_vms: 3_000,
            },
            ..RegionConfig::default()
        },
    )
    .unwrap();
    (topology, region)
}

fn process(
    region: &mut Region,
    vni: Vni,
    src: std::net::IpAddr,
    dst: std::net::IpAddr,
) -> HwDecision {
    let cluster = region.directory.cluster_for(vni).expect("vni assigned");
    let packet = GatewayPacketBuilder::new(vni, src, dst)
        .transport(IpProtocol::Tcp, 40000, 443)
        .build();
    let (_, decision) = region.hw[cluster]
        .process(&packet, 0)
        .expect("devices online");
    decision
}

#[test]
fn vm_to_vm_same_vpc() {
    let (topology, mut region) = region();
    let vpc = topology
        .vpcs
        .iter()
        .find(|v| {
            let vms = topology.vms_of(v);
            vms.iter().filter(|m| m.ip.is_ipv4()).count() >= 2
        })
        .unwrap();
    let v4: Vec<_> = topology
        .vms_of(vpc)
        .iter()
        .filter(|m| m.ip.is_ipv4())
        .collect();
    match process(&mut region, vpc.vni, v4[0].ip, v4[1].ip) {
        HwDecision::ToNc { packet, nc } => {
            assert_eq!(nc, v4[1].nc);
            assert_eq!(packet.vni, vpc.vni);
            assert_eq!(packet.outer.dst_ip, nc.ip);
            // The rewritten packet is emittable and parses back.
            let bytes = packet.emit().unwrap();
            assert_eq!(GatewayPacket::parse(&bytes).unwrap(), packet);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn vm_to_vm_across_vpcs() {
    let (topology, mut region) = region();
    let mut checked = 0;
    for vpc in &topology.vpcs {
        let Some(peer_vni) = vpc.peer else { continue };
        let peer = topology.vpcs.iter().find(|v| v.vni == peer_vni).unwrap();
        let srcs = topology.vms_of(vpc);
        let dsts = topology.vms_of(peer);
        let reachable = dsts.len().min(sailfish_sim::topology::PEERED_SUBNETS * 250);
        let Some(src) = srcs.iter().find(|m| m.ip.is_ipv4()) else {
            continue;
        };
        let Some(dst) = dsts[..reachable].iter().find(|m| m.ip.is_ipv4()) else {
            continue;
        };
        match process(&mut region, vpc.vni, src.ip, dst.ip) {
            HwDecision::ToNc { packet, nc } => {
                assert_eq!(nc, dst.nc);
                assert_eq!(packet.vni, peer_vni, "VNI must be rewritten to the peer");
            }
            other => panic!("{} -> {}: unexpected {other:?}", vpc.vni, dst.ip),
        }
        checked += 1;
        if checked >= 10 {
            break;
        }
    }
    assert!(checked >= 5, "need real peerings to test ({checked})");
}

#[test]
fn vm_to_internet_via_snat_and_back() {
    let (topology, mut region) = region();
    let vpc = topology.vpcs.iter().find(|v| v.internet).unwrap();
    let src = topology
        .vms_of(vpc)
        .iter()
        .find(|m| m.ip.is_ipv4())
        .unwrap();
    let dst: std::net::IpAddr = "93.184.216.34".parse().unwrap();
    let punted = match process(&mut region, vpc.vni, src.ip, dst) {
        HwDecision::PuntToX86 { packet, reason } => {
            assert_eq!(reason, PuntReason::SnatRequired);
            packet
        }
        other => panic!("unexpected {other:?}"),
    };
    // The software node allocated by ECMP performs the translation.
    let node = region.sw.ecmp.pick(&punted.five_tuple()).unwrap();
    let binding = match region.sw.nodes[node].forwarder.process(&punted, 0) {
        Decision::ToInternet { binding } => binding,
        other => panic!("unexpected {other:?}"),
    };
    // And the response finds its way back.
    let back = region.sw.nodes[node]
        .forwarder
        .tables
        .snat
        .translate_inbound(
            (binding.public_ip, binding.public_port),
            (dst, 443),
            IpProtocol::Tcp,
            1,
        )
        .unwrap();
    assert_eq!(back, punted.five_tuple());
}

#[test]
fn vm_to_idc_and_cross_region() {
    let (topology, mut region) = region();
    // Pick VPCs that both have the attachment AND an IPv4 VM to send
    // from — which VPC is first is a function of the topology seed.
    let (idc_vpc, src) = topology
        .vpcs
        .iter()
        .filter(|v| v.idc.is_some())
        .find_map(|v| {
            let src = topology
                .vms_of(v)
                .iter()
                .find(|m| m.ip.is_ipv4())
                .copied()?;
            Some((v, src))
        })
        .unwrap();
    match process(
        &mut region,
        idc_vpc.vni,
        src.ip,
        "172.16.1.1".parse().unwrap(),
    ) {
        HwDecision::ToIdc { idc, .. } => assert_eq!(Some(idc), idc_vpc.idc),
        other => panic!("unexpected {other:?}"),
    }
    let (xr_vpc, src) = topology
        .vpcs
        .iter()
        .filter(|v| v.cross_region.is_some())
        .find_map(|v| {
            let src = topology
                .vms_of(v)
                .iter()
                .find(|m| m.ip.is_ipv4())
                .copied()?;
            Some((v, src))
        })
        .unwrap();
    match process(
        &mut region,
        xr_vpc.vni,
        src.ip,
        "100.64.3.3".parse().unwrap(),
    ) {
        HwDecision::ToRegion { region: r, .. } => assert_eq!(Some(r), xr_vpc.cross_region),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn unknown_destination_punts_not_blackholes() {
    let (topology, mut region) = region();
    let vpc = topology.vpcs.iter().find(|v| !v.internet).unwrap();
    let src = topology.vms_of(vpc).first().unwrap();
    // A destination outside every installed route.
    match process(
        &mut region,
        vpc.vni,
        src.ip,
        "203.0.113.200".parse().unwrap(),
    ) {
        HwDecision::PuntToX86 { reason, .. } => {
            assert_eq!(reason, PuntReason::NoHwRoute, "long tail goes to software");
        }
        other => panic!("unexpected {other:?}"),
    }
}
