//! Integration test: the full §6.1 disaster-recovery ladder under load —
//! node failure, cluster failover to hot standby, controller consistency
//! checking, and the N+1 hierarchy evaluation.

use sailfish::prelude::*;
use sailfish_cluster::controller::ClusterCapacity;
use sailfish_cluster::failover::{self, RecoveryOutcome};
use sailfish_cluster::hierarchy::{evaluate, HierarchyConfig};

fn build() -> (Vec<sailfish_sim::workload::Flow>, Region) {
    let topology = Topology::generate(TopologyConfig::default());
    let region = Region::build(
        &topology,
        RegionConfig {
            hw_clusters: 4,
            devices_per_cluster: 3,
            with_backup: true,
            capacity: ClusterCapacity {
                max_routes: 600,
                max_vms: 3_000,
            },
            ..RegionConfig::default()
        },
    )
    .unwrap();
    let flows = generate_flows(
        &topology,
        &WorkloadConfig {
            flows: 5_000,
            total_gbps: 2_000.0,
            ..WorkloadConfig::default()
        },
    );
    (flows, region)
}

#[test]
fn full_recovery_ladder() {
    let (flows, mut region) = build();

    // Healthy.
    let healthy = region.offer(&flows, 1.0);
    assert_eq!(healthy.unrouted_pps, 0.0);
    let healthy_loss = healthy.loss_ratio();

    // Node failure: loss unchanged at this load (survivors absorb it).
    failover::fail_device(&mut region, 0, 0).unwrap();
    let node_down = region.offer(&flows, 1.0);
    assert_eq!(node_down.unrouted_pps, 0.0);
    assert!(node_down.loss_ratio() < healthy_loss * 10.0 + 1e-9);

    // Second and third node failures kill the cluster: cluster failover.
    failover::fail_device(&mut region, 0, 1).unwrap();
    failover::fail_device(&mut region, 0, 2).unwrap();
    match failover::fail_cluster(&mut region, 0).unwrap() {
        RecoveryOutcome::RolledToBackup { vnis_moved, .. } => assert!(vnis_moved > 0),
        other => panic!("unexpected {other:?}"),
    }
    let rolled = region.offer(&flows, 1.0);
    assert_eq!(rolled.unrouted_pps, 0.0, "backup must carry everything");

    // Restore the ladder bottom-up.
    for d in 0..3 {
        failover::restore_device(&mut region, 0, d).unwrap();
    }
    match failover::restore_cluster(&mut region, 0).unwrap() {
        RecoveryOutcome::Restored {
            primary,
            vnis_moved,
        } => {
            assert_eq!(primary, 0);
            assert!(vnis_moved > 0);
        }
        other => panic!("unexpected {other:?}"),
    }
    let restored = region.offer(&flows, 1.0);
    assert_eq!(restored.unrouted_pps, 0.0);
    assert!(restored.device_util[0].iter().sum::<f64>() > 0.0);
}

#[test]
fn consistency_checker_localizes_faults_after_failover() {
    let (_flows, mut region) = build();
    // Clean at rest.
    assert!(region
        .controller
        .check_consistency(&region.plan, &region.hw)
        .is_empty());
    // Corrupt one backup device; the checker only inspects primaries, so
    // it stays clean — then corrupt a primary and it reports precisely.
    let primary_count = region.plan.clusters_needed();
    region.hw[primary_count].devices[0] = XgwH::with_defaults();
    // Note: backups are outside the plan's primary indices; simulate a
    // primary fault too.
    region.hw[0].devices[2] = XgwH::with_defaults();
    let findings = region
        .controller
        .check_consistency(&region.plan, &region.hw);
    assert!(!findings.is_empty());
    assert!(findings.iter().all(|f| f.cluster == 0 && f.device == 2));
}

#[test]
fn hierarchy_extends_recovered_region() {
    // The §8 extension applies on top of the same region scale.
    let report = evaluate(&HierarchyConfig::default());
    assert!(report.performance_multiplier / report.cost_multiplier > 1.5);
    // Degenerate guardrails.
    let flat = evaluate(&HierarchyConfig {
        cache_clusters: 1,
        active_fraction: 1.0,
        ..HierarchyConfig::default()
    });
    assert!((flat.cost_multiplier - 2.0).abs() < 1e-9);
    assert!((flat.performance_multiplier - 1.0).abs() < 1e-9);
}
