//! Integration test: hardware and software forwarders agree on every
//! decision for traffic both can serve, wire bytes round-trip at every
//! hop, and the builder-assembled system behaves under load.

use sailfish::prelude::*;
use sailfish_xgw_x86::Decision;

/// Differential test: same tables, same packets — the hardware program
/// (ALPM + digest path) and the software forwarder (trie + hashmap path)
/// must make identical forwarding decisions.
#[test]
fn hardware_and_software_forwarders_agree() {
    let topology = Topology::generate(TopologyConfig {
        vpcs: 50,
        total_vms: 1_500,
        ..TopologyConfig::default()
    });

    let mut hw = XgwH::with_defaults();
    let mut sw = SoftwareForwarder::default();
    for (key, target) in &topology.routes {
        hw.tables.routes.insert(*key, *target).unwrap();
        sw.tables.routes.insert(*key, *target);
    }
    for vm in &topology.vms {
        hw.tables.add_vm(vm.vni, vm.ip, vm.nc).unwrap();
        sw.tables.vm_nc.insert(vm.vni, vm.ip, vm.nc).unwrap();
    }
    hw.tables.routes.audit().unwrap();

    let flows = generate_flows(
        &topology,
        &WorkloadConfig {
            flows: 3_000,
            ..WorkloadConfig::default()
        },
    );
    let mut compared = 0;
    for flow in &flows {
        let packet = GatewayPacketBuilder::new(flow.vni, flow.tuple.src_ip, flow.tuple.dst_ip)
            .transport(
                flow.tuple.protocol,
                flow.tuple.src_port,
                flow.tuple.dst_port,
            )
            .build();
        let hw_decision = hw.classify(&packet);
        let sw_decision = sw.process(&packet, 0);
        match (&hw_decision, &sw_decision) {
            (HwDecision::ToNc { packet: hp, nc: hn }, Decision::ToNc { packet: sp, nc: sn }) => {
                assert_eq!(hn, sn, "{}", packet.five_tuple());
                assert_eq!(hp, sp);
            }
            (HwDecision::ToRegion { region: hr, .. }, Decision::ToRegion { region: sr, .. }) => {
                assert_eq!(hr, sr)
            }
            (HwDecision::ToIdc { idc: hi, .. }, Decision::ToIdc { idc: si, .. }) => {
                assert_eq!(hi, si)
            }
            // SNAT punts in hardware, translates in software.
            (HwDecision::PuntToX86 { .. }, Decision::ToInternet { .. }) => {}
            (h, s) => panic!(
                "divergence for {}: hw {h:?} vs sw {s:?}",
                packet.five_tuple()
            ),
        }
        compared += 1;
    }
    assert_eq!(compared, flows.len());
}

/// The builder assembles a coherent system that absorbs a week of load.
#[test]
fn builder_system_survives_a_festival_week() {
    let (_topology, mut region, flows) = SailfishBuilder::small().build().unwrap();
    let mut worst = 0.0f64;
    for step in 0..16 {
        let day = step as f64 / 2.0;
        let report = region.offer(&flows, festival_profile(day));
        assert_eq!(report.unrouted_pps, 0.0);
        assert_eq!(report.overload_dropped_pps, 0.0, "day {day}");
        worst = worst.max(report.loss_ratio());
    }
    assert!(worst < 1e-8, "residual-only loss, got {worst:.2e}");
}

/// Every emitted packet on the hot path round-trips through real bytes.
#[test]
fn wire_round_trip_for_generated_workloads() {
    let topology = Topology::generate(TopologyConfig::default());
    let flows = generate_flows(
        &topology,
        &WorkloadConfig {
            flows: 500,
            ..WorkloadConfig::default()
        },
    );
    for flow in &flows {
        let packet = GatewayPacketBuilder::new(flow.vni, flow.tuple.src_ip, flow.tuple.dst_ip)
            .transport(
                flow.tuple.protocol,
                flow.tuple.src_port,
                flow.tuple.dst_port,
            )
            .payload_len(flow.wire_bytes.min(1400))
            .build();
        let bytes = packet.emit().expect("well-formed workload tuples");
        let parsed = GatewayPacket::parse(&bytes).expect("parseable");
        assert_eq!(parsed, packet);
        assert_eq!(parsed.five_tuple(), flow.tuple);
    }
}

/// ECMP next-hop caps propagate: an oversized cluster is rejected.
#[test]
fn ecmp_cap_limits_cluster_size() {
    let err =
        sailfish_cluster::cluster::HwCluster::new(0, 17, 16, AlpmConfig::default(), 10_000_000_000);
    assert!(err.is_err(), "17 devices behind a 16-way ECMP must fail");
    assert!(sailfish_cluster::cluster::HwCluster::new(
        0,
        16,
        16,
        AlpmConfig::default(),
        10_000_000_000
    )
    .is_ok());
}
