//! Walks the §4.4 compression pipeline step by step, printing the memory
//! occupancy after each optimization — a command-line rendition of
//! Fig 17, with every number derived from the chip cost model.
//!
//! Run with: `cargo run --example table_compression`

use sailfish::compression::{
    estimate_alpm_stats, step_series, CompressionStep, MemoryScenario, CALIBRATED_ROUTES,
};
use sailfish::prelude::*;

fn main() {
    let config = TofinoConfig::tofino_64t();
    println!(
        "chip: {} pipes x {} stages, {:.1} MB SRAM total, {} TCAM rows/pipe",
        config.pipelines,
        config.stages_per_pipe,
        config.total_sram_bytes() as f64 / (1024.0 * 1024.0),
        config.tcam_rows_per_pipe()
    );

    let alpm = estimate_alpm_stats(CALIBRATED_ROUTES, 24, 0.6);
    for (name, scenario) in [
        ("100% IPv4", MemoryScenario::all_v4()),
        ("75% IPv4 / 25% IPv6", MemoryScenario::paper_mix()),
        ("100% IPv6", MemoryScenario::all_v6()),
    ] {
        println!(
            "\nscenario: {name} ({} routes, {} VMs)",
            scenario.route_entries, scenario.vm_entries
        );
        let series = step_series(&scenario, &config, &alpm);
        for report in &series {
            let occ = report.occupancy;
            let verdict = if occ.fits() { "fits" } else { "DOES NOT FIT" };
            println!(
                "  {:<10} SRAM {:>5.1}%  TCAM {:>5.1}%   [{verdict}]",
                report.step.label(),
                occ.sram_pct,
                occ.tcam_pct
            );
        }
        let initial = series
            .iter()
            .find(|r| r.step == CompressionStep::Initial)
            .unwrap()
            .occupancy;
        let fin = series
            .iter()
            .find(|r| r.step == CompressionStep::All)
            .unwrap()
            .occupancy;
        println!(
            "  => SRAM reduced {:.0}%, TCAM reduced {:.0}%",
            100.0 * (1.0 - fin.sram_pct / initial.sram_pct),
            100.0 * (1.0 - fin.tcam_pct / initial.tcam_pct)
        );
    }

    println!("\nsteps: a=pipeline folding, b=split between pipelines,");
    println!("       c=IPv4/IPv6 pooling, d=key-digest compression, e=ALPM");
}
