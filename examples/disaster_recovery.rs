//! Disaster recovery drill (§6.1): node failure absorbed inside the
//! cluster, then a full cluster failure rolled to the 1:1 hot-standby
//! backup, then restoration — with traffic offered throughout.
//!
//! Run with: `cargo run --release --example disaster_recovery`

use sailfish::prelude::*;
use sailfish_cluster::controller::ClusterCapacity;
use sailfish_cluster::failover;

fn main() {
    let topology = Topology::generate(TopologyConfig::default());
    let mut region = Region::build(
        &topology,
        RegionConfig {
            hw_clusters: 4,
            devices_per_cluster: 3,
            with_backup: true,
            capacity: ClusterCapacity {
                max_routes: 600,
                max_vms: 3_000,
            },
            ..RegionConfig::default()
        },
    )
    .unwrap();
    let flows = generate_flows(
        &topology,
        &WorkloadConfig {
            flows: 10_000,
            total_gbps: 2_000.0,
            ..WorkloadConfig::default()
        },
    );

    let offer = |region: &mut Region, label: &str| {
        let report = region.offer(&flows, 1.0);
        println!(
            "{label:<34} loss {:>9.2e}  unrouted {:>6.0} pps  peak device {:>4.0}%",
            report.loss_ratio(),
            report.unrouted_pps,
            report.peak_device_util() * 100.0
        );
        report
    };

    println!("== baseline ==");
    let healthy = offer(&mut region, "healthy region");
    assert_eq!(healthy.unrouted_pps, 0.0);

    println!("\n== node-level failure ==");
    let out = failover::fail_device(&mut region, 0, 1).unwrap();
    println!("device 1 of cluster 0 offline: {out:?}");
    let degraded = offer(&mut region, "2 of 3 devices in cluster 0");
    assert_eq!(degraded.unrouted_pps, 0.0, "survivors absorb the load");
    // Re-admission is gated on a clean probe sweep (§6.1).
    let probes = sailfish_cluster::probe::generate(&topology, 3);
    let out = failover::readmit_device(&mut region, &probes, 0, 1).unwrap();
    println!("device 1 probe-gated back in: {out:?}");
    offer(&mut region, "device restored");

    println!("\n== cluster-level failure ==");
    let consistency = region
        .controller
        .check_consistency(&region.plan, &region.hw);
    println!("pre-failover consistency findings: {}", consistency.len());
    let out = failover::fail_cluster(&mut region, 0).unwrap();
    println!("cluster 0 failed, rolled to backup: {out:?}");
    let failed_over = offer(&mut region, "traffic on hot-standby backup");
    assert_eq!(
        failed_over.unrouted_pps, 0.0,
        "backup carries identical tables"
    );
    // The failed primary serves nothing.
    assert_eq!(failed_over.device_util[0].iter().sum::<f64>(), 0.0);

    println!("\n== restoration ==");
    let out = failover::restore_cluster(&mut region, 0).unwrap();
    println!("primary restored: {out:?}");
    let restored = offer(&mut region, "primary restored");
    assert!(restored.device_util[0].iter().sum::<f64>() > 0.0);

    println!("\ndisaster_recovery OK");
}
