//! Quickstart: the paper's Fig 2 scenario on a single hardware gateway.
//!
//! Builds the two-VPC routing/mapping state, sends real VXLAN packets
//! through the folded gateway program, and shows both the same-VPC and
//! cross-VPC (peer) forwarding paths — including the wire round trip.
//!
//! Run with: `cargo run --example quickstart`

use sailfish::prelude::*;

fn main() {
    // Two tenants: VPC A (VNI 100) and VPC B (VNI 200), as in Fig 2.
    let vpc_a = Vni::from_const(100);
    let vpc_b = Vni::from_const(200);

    let mut gw = XgwH::with_defaults();

    // VXLAN routing table (Fig 2, left).
    gw.tables
        .routes
        .insert(
            VxlanRouteKey::new(vpc_a, "192.168.10.0/24".parse().unwrap()),
            RouteTarget::Local,
        )
        .unwrap();
    gw.tables
        .routes
        .insert(
            VxlanRouteKey::new(vpc_a, "192.168.30.0/24".parse().unwrap()),
            RouteTarget::Peer(vpc_b),
        )
        .unwrap();
    gw.tables
        .routes
        .insert(
            VxlanRouteKey::new(vpc_b, "192.168.30.0/24".parse().unwrap()),
            RouteTarget::Local,
        )
        .unwrap();
    gw.tables
        .routes
        .insert(
            VxlanRouteKey::new(vpc_b, "192.168.10.0/24".parse().unwrap()),
            RouteTarget::Peer(vpc_a),
        )
        .unwrap();

    // VM-NC mapping table (Fig 2, right).
    for (vni, vm, nc) in [
        (vpc_a, "192.168.10.2", "10.1.1.11"),
        (vpc_a, "192.168.10.3", "10.1.1.12"),
        (vpc_b, "192.168.30.5", "10.1.1.15"),
    ] {
        gw.tables
            .add_vm(vni, vm.parse().unwrap(), NcAddr::new(nc.parse().unwrap()))
            .unwrap();
    }

    // --- Case 1: VM-VM, same VPC, different vSwitches ---
    let packet = GatewayPacketBuilder::new(
        vpc_a,
        "192.168.10.2".parse().unwrap(),
        "192.168.10.3".parse().unwrap(),
    )
    .build();
    println!(
        "case 1: {} -> {} in {vpc_a}",
        packet.inner.src_ip, packet.inner.dst_ip
    );
    match gw.process(&packet, 0) {
        HwDecision::ToNc { packet, nc } => {
            println!(
                "  forwarded to {nc}; outer dst rewritten to {}",
                packet.outer.dst_ip
            );
            assert_eq!(
                packet.outer.dst_ip,
                "10.1.1.12".parse::<std::net::IpAddr>().unwrap()
            );
        }
        other => panic!("unexpected decision: {other:?}"),
    }

    // --- Case 2: VM-VM across peered VPCs ---
    let packet = GatewayPacketBuilder::new(
        vpc_a,
        "192.168.10.2".parse().unwrap(),
        "192.168.30.5".parse().unwrap(),
    )
    .build();
    println!(
        "case 2: {} -> {} (peer chain)",
        packet.inner.src_ip, packet.inner.dst_ip
    );
    match gw.process(&packet, 0) {
        HwDecision::ToNc { packet, nc } => {
            println!(
                "  forwarded to {nc}; VNI rewritten {} -> {}",
                vpc_a, packet.vni
            );
            assert_eq!(packet.vni, vpc_b);
        }
        other => panic!("unexpected decision: {other:?}"),
    }

    // --- The wire round trip: the fast-path packet is real bytes ---
    let bytes = packet.emit().expect("serializable");
    let parsed = GatewayPacket::parse(&bytes).expect("parseable");
    assert_eq!(parsed, packet);
    println!(
        "wire round trip: {} bytes (VXLAN-in-UDP-in-IPv4), VNI {}",
        bytes.len(),
        parsed.vni
    );

    // --- Gateway stats ---
    let stats = gw.stats();
    println!(
        "gateway stats: {} forwarded, {} punted, pipe bytes {:?}",
        stats.forwarded_packets, stats.punted_packets, stats.pipe_bytes
    );
    println!("quickstart OK");
}
