//! A shopping-festival week in one region, run twice: first on the
//! XGW-x86-only baseline (heavy hitters overload single cores, packets
//! drop — Figs 4/5), then on Sailfish (the hardware absorbs everything —
//! Fig 19).
//!
//! Run with: `cargo run --release --example shopping_festival`

use sailfish::prelude::*;
use sailfish_cluster::controller::ClusterCapacity;

fn main() {
    let topology = Topology::generate(TopologyConfig::default());
    let flows = generate_flows(
        &topology,
        &WorkloadConfig {
            flows: 30_000,
            total_gbps: 350.0,
            heavy_hitters: 2,
            heavy_hitter_gbps: 15.0,
            zipf_s: 1.1,
            mouse_cap_gbps: Some(2.0),
            ..WorkloadConfig::default()
        },
    );
    println!(
        "region: {} VPCs, {} VMs, {} routes; workload: {} flows, {:.0} Gbps nominal",
        topology.vpcs.len(),
        topology.vms.len(),
        topology.routes.len(),
        flows.len(),
        flows.iter().map(|f| f.bps()).sum::<f64>() / 1e9
    );

    // --- Baseline: 15 software gateways behind ECMP ---
    let baseline = X86Region::new(15, 16, XgwX86Config::default()).unwrap();
    // --- Sailfish: hardware clusters + software fallback ---
    let mut sailfish = Region::build(
        &topology,
        RegionConfig {
            capacity: ClusterCapacity {
                max_routes: 600,
                max_vms: 3_000,
            },
            ..RegionConfig::default()
        },
    )
    .unwrap();
    println!(
        "sailfish: {} hw clusters (+1:1 backups) x {} devices, {} sw fallback nodes\n",
        sailfish.plan.clusters_needed(),
        sailfish.config.devices_per_cluster,
        sailfish.config.sw_nodes
    );

    println!(
        "{:>5} {:>7} | {:>12} {:>10} | {:>12} {:>10} {:>9}",
        "day", "load", "x86 loss", "hot core", "sailfish", "peak dev", "punted"
    );
    let mut worst_x86: f64 = 0.0;
    let mut worst_sailfish: f64 = 0.0;
    for step in 0..16 {
        let day = step as f64 / 2.0;
        let m = festival_profile(day);
        let x86 = baseline.offer(&flows, m);
        let sf = sailfish.offer(&flows, m);
        let hot = x86
            .node_reports
            .iter()
            .map(|r| r.hottest_core().1)
            .fold(0.0, f64::max);
        worst_x86 = worst_x86.max(x86.loss_ratio());
        worst_sailfish = worst_sailfish.max(sf.loss_ratio());
        println!(
            "{day:>5.1} {m:>6.2}x | {:>12.2e} {:>9.0}% | {:>12.2e} {:>9.0}% {:>8.2}G",
            x86.loss_ratio(),
            hot * 100.0,
            sf.loss_ratio(),
            sf.peak_device_util() * 100.0,
            sf.punted_bps / 1e9,
        );
    }

    println!(
        "\nworst-case loss: x86 {worst_x86:.2e} vs sailfish {worst_sailfish:.2e} ({:.1} orders better)",
        (worst_x86 / worst_sailfish).log10()
    );
    assert!(
        worst_sailfish < worst_x86 / 1e3,
        "Sailfish must be orders of magnitude better"
    );
    println!("shopping_festival OK");
}
