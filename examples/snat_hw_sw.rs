//! Hardware/software co-design for stateful SNAT (Fig 11): the VM's
//! Internet-bound request punts from XGW-H to XGW-x86, which allocates a
//! public binding; the response from the Internet arrives directly at
//! XGW-x86 and is translated back to the tenant flow.
//!
//! Run with: `cargo run --example snat_hw_sw`

use sailfish::prelude::*;
use sailfish_xgw_h::PuntReason;
use sailfish_xgw_x86::Decision;

fn main() {
    let vpc = Vni::from_const(77);

    // Hardware gateway: local subnet + "special VNI tag" default route
    // marking Internet traffic as SNAT-required.
    let mut hw = XgwH::with_defaults();
    hw.tables
        .routes
        .insert(
            VxlanRouteKey::new(vpc, "192.168.0.0/16".parse().unwrap()),
            RouteTarget::Local,
        )
        .unwrap();
    hw.tables
        .routes
        .insert(
            VxlanRouteKey::new(vpc, "0.0.0.0/0".parse().unwrap()),
            RouteTarget::InternetSnat,
        )
        .unwrap();

    // Software gateway: same routes plus the stateful SNAT pool.
    let mut sw = SoftwareForwarder::default();
    sw.tables.routes.insert(
        VxlanRouteKey::new(vpc, "0.0.0.0/0".parse().unwrap()),
        RouteTarget::InternetSnat,
    );

    // The VM requests a web page (red arrow in Fig 11).
    let request = GatewayPacketBuilder::new(
        vpc,
        "192.168.0.5".parse().unwrap(),
        "93.184.216.34".parse().unwrap(),
    )
    .transport(IpProtocol::Tcp, 51000, 443)
    .build();

    // Step 1: XGW-H recognizes the SNAT tag and punts.
    let punted = match hw.process(&request, 0) {
        HwDecision::PuntToX86 { packet, reason } => {
            println!("XGW-H: punt to XGW-x86 ({reason:?})");
            assert_eq!(reason, PuntReason::SnatRequired);
            packet
        }
        other => panic!("unexpected hw decision: {other:?}"),
    };

    // Step 2: XGW-x86 allocates the public binding.
    let binding = match sw.process(&punted, 0) {
        Decision::ToInternet { binding } => {
            println!(
                "XGW-x86: session {} translated to {}:{}",
                punted.five_tuple(),
                binding.public_ip,
                binding.public_port
            );
            binding
        }
        other => panic!("unexpected sw decision: {other:?}"),
    };

    // Step 3: the Internet responds to the public binding (blue arrow);
    // XGW-x86 translates it back without touching XGW-H.
    let original = sw
        .tables
        .snat
        .translate_inbound(
            (binding.public_ip, binding.public_port),
            ("93.184.216.34".parse().unwrap(), 443),
            IpProtocol::Tcp,
            1,
        )
        .expect("response maps back to the tenant session");
    println!("XGW-x86: response mapped back to {original}");
    assert_eq!(original, request.five_tuple());

    // The punt path is rate limited; hardware protects the software tier.
    let mut flood_hw = XgwH::new(AlpmConfig::default(), 8_000, 1_000);
    flood_hw
        .tables
        .routes
        .insert(
            VxlanRouteKey::new(vpc, "0.0.0.0/0".parse().unwrap()),
            RouteTarget::InternetSnat,
        )
        .unwrap();
    let mut punted_count = 0;
    let mut limited = 0;
    for _ in 0..100 {
        match flood_hw.process(&request, 0) {
            HwDecision::PuntToX86 { .. } => punted_count += 1,
            HwDecision::Drop(_) => limited += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    println!("under flood: {punted_count} punted, {limited} rate-limited at XGW-H");
    assert!(limited > 0, "the limiter must engage under flood");

    // Session bookkeeping.
    println!(
        "SNAT table: {} live sessions, {} allocated total",
        sw.tables.snat.len(),
        sw.tables.snat.allocated_total()
    );
    println!("snat_hw_sw OK");
}
