//! One-call construction of a simulated Sailfish deployment.

use sailfish_cluster::region::{BuildError, Region, RegionConfig};
use sailfish_sim::topology::{Topology, TopologyConfig};
use sailfish_sim::workload::{generate_flows, Flow, WorkloadConfig};

/// Builds a topology, a region, and a workload together.
///
/// ```
/// use sailfish::prelude::*;
///
/// let (topology, mut region, flows) = SailfishBuilder::small().build().unwrap();
/// let report = region.offer(&flows, 1.0);
/// assert!(report.loss_ratio() < 1e-6);
/// assert_eq!(topology.routes.len(), region.sw.nodes[0].forwarder.tables.routes.len());
/// ```
#[derive(Debug, Clone)]
pub struct SailfishBuilder {
    /// Topology generation parameters.
    pub topology: TopologyConfig,
    /// Region deployment parameters.
    pub region: RegionConfig,
    /// Workload parameters.
    pub workload: WorkloadConfig,
}

impl SailfishBuilder {
    /// A laptop-friendly scale: hundreds of VPCs, thousands of flows.
    pub fn small() -> Self {
        SailfishBuilder {
            topology: TopologyConfig::default(),
            region: RegionConfig {
                capacity: sailfish_cluster::controller::ClusterCapacity {
                    max_routes: 600,
                    max_vms: 3_000,
                },
                ..RegionConfig::default()
            },
            workload: WorkloadConfig {
                flows: 2_000,
                total_gbps: 1_000.0,
                ..WorkloadConfig::default()
            },
        }
    }

    /// The paper's region scale (slow: ~hundreds of thousands of entries;
    /// used by the benches).
    pub fn region_scale() -> Self {
        SailfishBuilder {
            topology: TopologyConfig::region_scale(),
            region: RegionConfig::default(),
            workload: WorkloadConfig {
                flows: 50_000,
                total_gbps: 20_000.0,
                ..WorkloadConfig::default()
            },
        }
    }

    /// Generates everything.
    pub fn build(&self) -> Result<(Topology, Region, Vec<Flow>), BuildError> {
        let topology = Topology::generate(self.topology.clone());
        let region = Region::build(&topology, self.region.clone())?;
        let flows = generate_flows(&topology, &self.workload);
        Ok((topology, region, flows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_builder_builds() {
        let (topology, region, flows) = SailfishBuilder::small().build().unwrap();
        assert!(!topology.routes.is_empty());
        assert!(region.plan.clusters_needed() >= 1);
        assert_eq!(flows.len(), 2_000);
    }
}
