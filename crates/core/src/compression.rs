//! The §4.4 table-compression engine.
//!
//! Reproduces the paper's memory story mechanically: a
//! [`MemoryScenario`] (entry counts and IPv4/IPv6 mix) is laid out on the
//! chip at each [`CompressionStep`], and the occupancy is *computed* from
//! the `sailfish-asic` cost model — none of the Table 2 / Table 3 /
//! Fig 17 numbers are hard-coded.
//!
//! Steps (cumulative, matching Fig 17's x-axis):
//!
//! 1. `Initial` — both tables straightforwardly, every pipe a full copy,
//! 2. `+a` pipeline folding — the program spans two pipes' memory,
//! 3. `+a+b` splitting between pipelines — each loop pipe holds half,
//! 4. `+a+b+c+d` IPv4/IPv6 pooling + key compression — routing keys
//!    expand to 128-bit pooled LPM (TCAM grows), VM-NC keys shrink to
//!    32-bit digests with a conflict table (SRAM shrinks),
//! 5. `+a..e` ALPM — the routing table moves to TCAM-index + SRAM
//!    buckets (TCAM collapses, SRAM pays the bucket overhead).

use sailfish_asic::config::TofinoConfig;
use sailfish_asic::cost::{MatchKind, Storage, TableSpec};
use sailfish_asic::mem::Occupancy;
use sailfish_asic::placement::{FoldStep, Layout, PlacedTable};
use sailfish_tables::alpm::AlpmStats;
use sailfish_xgw_h::layout::{
    COMPRESSED_VMNC_KEY_BITS, CONFLICT_TABLE_RESERVED, POOLED_ROUTE_KEY_BITS,
};

/// The calibrated region scale (DESIGN.md §3): routes and VMs carried by
/// one XGW-H after cluster-level splitting, chosen so the *initial*
/// placement reproduces Table 2.
pub const CALIBRATED_ROUTES: usize = 229_300;

/// Calibrated VM-NC entries (see [`CALIBRATED_ROUTES`]).
pub const CALIBRATED_VMS: usize = 459_000;

/// The cumulative optimization steps of Fig 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CompressionStep {
    /// No optimization: four full copies.
    Initial,
    /// a: pipeline folding.
    Folding,
    /// a+b: table splitting between pipelines.
    FoldingSplit,
    /// a+b+c+d: IPv4/IPv6 pooling and key compression.
    FoldingSplitPooling,
    /// a+b+c+d+e: ALPM TCAM conservation.
    All,
}

impl CompressionStep {
    /// All steps in Fig 17 order.
    pub const ALL: [CompressionStep; 5] = [
        CompressionStep::Initial,
        CompressionStep::Folding,
        CompressionStep::FoldingSplit,
        CompressionStep::FoldingSplitPooling,
        CompressionStep::All,
    ];

    /// Fig 17's x-axis label.
    pub fn label(&self) -> &'static str {
        match self {
            CompressionStep::Initial => "Initial",
            CompressionStep::Folding => "a",
            CompressionStep::FoldingSplit => "a+b",
            CompressionStep::FoldingSplitPooling => "a+b+c+d",
            CompressionStep::All => "a+b+c+d+e",
        }
    }
}

/// A memory scenario: table sizes and family mix.
#[derive(Debug, Clone, Copy)]
pub struct MemoryScenario {
    /// VXLAN routing entries.
    pub route_entries: usize,
    /// VM-NC mapping entries.
    pub vm_entries: usize,
    /// Fraction of entries that are IPv4 (the paper evaluates 1.0, 0.75
    /// and 0.0).
    pub v4_fraction: f64,
}

impl MemoryScenario {
    /// The paper's headline mix: 75% IPv4, 25% IPv6 at calibrated scale.
    pub fn paper_mix() -> Self {
        MemoryScenario {
            route_entries: CALIBRATED_ROUTES,
            vm_entries: CALIBRATED_VMS,
            v4_fraction: 0.75,
        }
    }

    /// Pure-IPv4 scenario.
    pub fn all_v4() -> Self {
        MemoryScenario {
            v4_fraction: 1.0,
            ..Self::paper_mix()
        }
    }

    /// Pure-IPv6 scenario.
    pub fn all_v6() -> Self {
        MemoryScenario {
            v4_fraction: 0.0,
            ..Self::paper_mix()
        }
    }

    fn split(&self, entries: usize) -> (usize, usize) {
        let v4 = (entries as f64 * self.v4_fraction).round() as usize;
        (v4, entries - v4)
    }
}

/// Estimates ALPM layout statistics for a route count without building
/// the structure: partitions ≈ entries / (bucket_capacity × fill). The
/// default fill of 0.6 matches what the real [`AlpmTable`] measures on
/// clustered VPC route sets (the Fig 17 bench builds the real structure
/// and uses measured stats instead).
///
/// [`AlpmTable`]: sailfish_tables::alpm::AlpmTable
pub fn estimate_alpm_stats(entries: usize, bucket_capacity: usize, fill: f64) -> AlpmStats {
    let partitions = ((entries as f64) / (bucket_capacity as f64 * fill)).ceil() as usize;
    AlpmStats {
        tcam_entries: partitions,
        bucket_entries: entries,
        default_entries: partitions / 2,
        allocated_slots: partitions * bucket_capacity,
        avg_fill: fill,
    }
}

/// One row of the Fig 17 series.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// The cumulative step.
    pub step: CompressionStep,
    /// Chip-wide occupancy at this step.
    pub occupancy: Occupancy,
}

/// Builds the layout for one step.
pub fn layout_at(
    step: CompressionStep,
    scenario: &MemoryScenario,
    config: &TofinoConfig,
    alpm: &AlpmStats,
) -> Layout {
    let folded = step >= CompressionStep::Folding;
    let split = step >= CompressionStep::FoldingSplit;
    let pooled = step >= CompressionStep::FoldingSplitPooling;
    let use_alpm = step >= CompressionStep::All;

    let mut layout = Layout::new(config.clone(), folded);
    let mut place = |spec: TableSpec, step: FoldStep| {
        let mut t = PlacedTable::new(spec, step);
        t.split_across_pair = split;
        layout.push(t);
    };

    // --- VXLAN routing table ---
    if use_alpm {
        place(
            TableSpec::new(
                "vxlan-routing-alpm",
                MatchKind::Lpm,
                POOLED_ROUTE_KEY_BITS,
                32,
                scenario.route_entries,
                Storage::Alpm {
                    tcam_index_entries: alpm.tcam_entries,
                    allocated_slots: alpm.allocated_slots.max(scenario.route_entries),
                },
            )
            .expect("static spec"),
            FoldStep::EgressLoop,
        );
    } else if pooled {
        // Pooling expands every key to the 128-bit plane for LPM.
        place(
            TableSpec::new(
                "vxlan-routing-pooled",
                MatchKind::Lpm,
                POOLED_ROUTE_KEY_BITS,
                32,
                scenario.route_entries,
                Storage::Tcam,
            )
            .expect("static spec"),
            FoldStep::EgressLoop,
        );
    } else {
        // Per-family tables at native key widths.
        let (v4, v6) = scenario.split(scenario.route_entries);
        if v4 > 0 {
            place(
                TableSpec::new(
                    "vxlan-routing-v4",
                    MatchKind::Lpm,
                    24 + 32,
                    32,
                    v4,
                    Storage::Tcam,
                )
                .expect("static spec"),
                FoldStep::EgressLoop,
            );
        }
        if v6 > 0 {
            place(
                TableSpec::new(
                    "vxlan-routing-v6",
                    MatchKind::Lpm,
                    24 + 128,
                    32,
                    v6,
                    Storage::Tcam,
                )
                .expect("static spec"),
                FoldStep::EgressLoop,
            );
        }
    }

    // --- VM-NC mapping table ---
    if pooled {
        place(
            TableSpec::new(
                "vm-nc-compressed",
                MatchKind::Exact,
                COMPRESSED_VMNC_KEY_BITS,
                32,
                scenario.vm_entries,
                Storage::SramHash,
            )
            .expect("static spec"),
            FoldStep::IngressLoop,
        );
        place(
            TableSpec::new(
                "vm-nc-conflict",
                MatchKind::Exact,
                24 + 128,
                32,
                CONFLICT_TABLE_RESERVED,
                Storage::SramHash,
            )
            .expect("static spec"),
            FoldStep::IngressLoop,
        );
    } else {
        let (v4, v6) = scenario.split(scenario.vm_entries);
        if v4 > 0 {
            place(
                TableSpec::new(
                    "vm-nc-v4",
                    MatchKind::Exact,
                    24 + 32,
                    32,
                    v4,
                    Storage::SramHash,
                )
                .expect("static spec"),
                FoldStep::IngressLoop,
            );
        }
        if v6 > 0 {
            place(
                TableSpec::new(
                    "vm-nc-v6",
                    MatchKind::Exact,
                    24 + 128,
                    32,
                    v6,
                    Storage::SramHash,
                )
                .expect("static spec"),
                FoldStep::IngressLoop,
            );
        }
    }

    layout
}

/// Chip-wide occupancy at one step.
pub fn occupancy_at(
    step: CompressionStep,
    scenario: &MemoryScenario,
    config: &TofinoConfig,
    alpm: &AlpmStats,
) -> Occupancy {
    layout_at(step, scenario, config, alpm).total_occupancy()
}

/// The full Fig 17 series.
pub fn step_series(
    scenario: &MemoryScenario,
    config: &TofinoConfig,
    alpm: &AlpmStats,
) -> Vec<StepReport> {
    CompressionStep::ALL
        .iter()
        .map(|step| StepReport {
            step: *step,
            occupancy: occupancy_at(*step, scenario, config, alpm),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TofinoConfig {
        TofinoConfig::tofino_64t()
    }

    fn alpm() -> AlpmStats {
        estimate_alpm_stats(CALIBRATED_ROUTES, 24, 0.6)
    }

    /// Table 2's "Sum" row: SRAM 102%, TCAM ~389% at the 75/25 mix.
    #[test]
    fn initial_occupancy_reproduces_table2() {
        let occ = occupancy_at(
            CompressionStep::Initial,
            &MemoryScenario::paper_mix(),
            &cfg(),
            &alpm(),
        );
        assert_eq!(occ.sram_pct.round() as i64, 102, "{occ}");
        assert!((388.0..390.0).contains(&occ.tcam_pct), "{occ}");
        assert!(!occ.fits(), "the naive placement must NOT fit");
    }

    /// Fig 17: every step in the published series, derived.
    #[test]
    fn fig17_series_shape() {
        let series = step_series(&MemoryScenario::paper_mix(), &cfg(), &alpm());
        let rounded: Vec<(i64, i64)> = series
            .iter()
            .map(|r| {
                (
                    r.occupancy.sram_pct.round() as i64,
                    r.occupancy.tcam_pct.round() as i64,
                )
            })
            .collect();
        // Paper: (102,389) (51,194) (26,97) (18,156) (36,11).
        assert_eq!(rounded[0], (102, 389));
        assert_eq!(rounded[1], (51, 194));
        assert_eq!(rounded[2].0, 26);
        assert_eq!(rounded[2].1, 97);
        // Pooling: SRAM near 18, TCAM near 156.
        assert!((16..=20).contains(&rounded[3].0), "{rounded:?}");
        assert!((154..=158).contains(&rounded[3].1), "{rounded:?}");
        // ALPM: SRAM ~36, TCAM ~11 in the paper. Our partitions are
        // per-VPC (the VNI is an exact key component), which leaves some
        // buckets under-filled and lands TCAM a few points higher (16);
        // the 96% reduction claim still holds. Recorded in EXPERIMENTS.md.
        assert!((30..=42).contains(&rounded[4].0), "{rounded:?}");
        assert!((8..=17).contains(&rounded[4].1), "{rounded:?}");
        // The final configuration fits.
        assert!(series[4].occupancy.fits());
    }

    /// The abstract's reduction claims, derived from the model:
    /// IPv4: SRAM −38%, TCAM −96%; IPv6: SRAM −85%, TCAM −98%.
    #[test]
    fn abstract_reduction_claims() {
        for (scenario, sram_red, tcam_red) in [
            (MemoryScenario::all_v4(), 0.38, 0.96),
            (MemoryScenario::all_v6(), 0.85, 0.98),
        ] {
            let initial = occupancy_at(CompressionStep::Initial, &scenario, &cfg(), &alpm());
            let fin = occupancy_at(CompressionStep::All, &scenario, &cfg(), &alpm());
            let sram = 1.0 - fin.sram_pct / initial.sram_pct;
            let tcam = 1.0 - fin.tcam_pct / initial.tcam_pct;
            assert!(
                (sram - sram_red).abs() < 0.08,
                "v4_frac {}: SRAM reduction {sram:.2} vs paper {sram_red}",
                scenario.v4_fraction
            );
            assert!(
                (tcam - tcam_red).abs() < 0.03,
                "v4_frac {}: TCAM reduction {tcam:.2} vs paper {tcam_red}",
                scenario.v4_fraction
            );
        }
    }

    /// §4.4 "the memory occupancy will not further change with the traffic
    /// ratio of IPv4/IPv6" once pooling is in place.
    #[test]
    fn pooled_occupancy_is_mix_invariant() {
        let a = occupancy_at(
            CompressionStep::All,
            &MemoryScenario::all_v4(),
            &cfg(),
            &alpm(),
        );
        let b = occupancy_at(
            CompressionStep::All,
            &MemoryScenario::all_v6(),
            &cfg(),
            &alpm(),
        );
        assert!((a.sram_pct - b.sram_pct).abs() < 0.5, "{a} vs {b}");
        assert!((a.tcam_pct - b.tcam_pct).abs() < 0.5);
    }

    #[test]
    fn every_step_monotonically_helps_tcam_until_pooling() {
        let series = step_series(&MemoryScenario::paper_mix(), &cfg(), &alpm());
        // TCAM: down, down, up (pooling expands keys), down (ALPM).
        assert!(series[1].occupancy.tcam_pct < series[0].occupancy.tcam_pct);
        assert!(series[2].occupancy.tcam_pct < series[1].occupancy.tcam_pct);
        assert!(series[3].occupancy.tcam_pct > series[2].occupancy.tcam_pct);
        assert!(series[4].occupancy.tcam_pct < series[3].occupancy.tcam_pct);
    }
}
