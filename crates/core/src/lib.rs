//! # sailfish
//!
//! A full reproduction of **"Sailfish: Accelerating Cloud-Scale
//! Multi-Tenant Multi-Service Gateways with Programmable Switches"**
//! (SIGCOMM 2021) as a Rust library.
//!
//! Sailfish is Alibaba Cloud's hardware/software gateway system: Tofino
//! based hardware gateways (XGW-H) absorb the vast majority of
//! multi-tenant VXLAN traffic, DPDK software gateways (XGW-x86) keep the
//! stateful/volatile long tail, and a three-pronged memory strategy fits
//! cloud-scale forwarding tables into O(10MB) of on-chip memory.
//!
//! This crate is the facade over the workspace:
//!
//! - [`sailfish_net`] (re-exported as [`net`]) — wire formats,
//! - [`sailfish_tables`] ([`tables`]) — LPM/TCAM/exact/ALPM/digest/SNAT,
//! - [`sailfish_asic`] ([`asic`]) — the Tofino resource model,
//! - [`sailfish_xgw_h`] ([`xgw_h`]) / [`sailfish_xgw_x86`] ([`xgw_x86`])
//!   — the two gateway implementations,
//! - [`sailfish_sim`] ([`sim`]) — workloads and metrics,
//! - [`sailfish_cluster`] ([`cluster`]) — regions, the controller,
//!   disaster recovery,
//! - [`compression`] — the §4.4 step-by-step table-compression engine
//!   that regenerates Fig 17 / Tables 2–3,
//! - [`builder`] — one-call construction of a simulated region.
//!
//! ## Quickstart
//!
//! ```
//! use sailfish::prelude::*;
//!
//! // Fig 2's two-VPC scenario on a hardware gateway.
//! let mut gw = XgwH::with_defaults();
//! let vpc_a = Vni::from_const(100);
//! let vpc_b = Vni::from_const(200);
//! gw.tables.routes.insert(
//!     VxlanRouteKey::new(vpc_a, "192.168.10.0/24".parse().unwrap()),
//!     RouteTarget::Local,
//! ).unwrap();
//! gw.tables.routes.insert(
//!     VxlanRouteKey::new(vpc_a, "192.168.30.0/24".parse().unwrap()),
//!     RouteTarget::Peer(vpc_b),
//! ).unwrap();
//! gw.tables.routes.insert(
//!     VxlanRouteKey::new(vpc_b, "192.168.30.0/24".parse().unwrap()),
//!     RouteTarget::Local,
//! ).unwrap();
//! gw.tables.add_vm(
//!     vpc_b,
//!     "192.168.30.5".parse().unwrap(),
//!     NcAddr::new("10.1.1.15".parse().unwrap()),
//! ).unwrap();
//!
//! let packet = GatewayPacketBuilder::new(
//!     vpc_a,
//!     "192.168.10.2".parse().unwrap(),
//!     "192.168.30.5".parse().unwrap(),
//! ).build();
//! match gw.process(&packet, 0) {
//!     HwDecision::ToNc { packet, .. } => {
//!         assert_eq!(packet.vni, vpc_b); // rewritten to the peer VPC
//!     }
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]

pub use sailfish_asic as asic;
pub use sailfish_cluster as cluster;
pub use sailfish_net as net;
pub use sailfish_sim as sim;
pub use sailfish_tables as tables;
pub use sailfish_xgw_h as xgw_h;
pub use sailfish_xgw_x86 as xgw_x86;

pub mod builder;
pub mod compression;

/// The most commonly used types, for `use sailfish::prelude::*`.
pub mod prelude {
    pub use sailfish_asic::config::TofinoConfig;
    pub use sailfish_asic::perf::PerfEnvelope;
    pub use sailfish_cluster::controller::{ClusterCapacity, Controller};
    pub use sailfish_cluster::region::{Region, RegionConfig, X86Region};
    pub use sailfish_net::packet::GatewayPacketBuilder;
    pub use sailfish_net::{FiveTuple, GatewayPacket, IpPrefix, IpProtocol, MacAddr, Vni};
    pub use sailfish_sim::topology::{Topology, TopologyConfig};
    pub use sailfish_sim::workload::{festival_profile, generate_flows, WorkloadConfig};
    pub use sailfish_tables::alpm::AlpmConfig;
    pub use sailfish_tables::snat::SnatConfig;
    pub use sailfish_tables::types::{NcAddr, RouteTarget, VmKey, VxlanRouteKey};
    pub use sailfish_xgw_h::{HwDecision, XgwH};
    pub use sailfish_xgw_x86::{SoftwareForwarder, XgwX86Config};

    pub use crate::builder::SailfishBuilder;
    pub use crate::compression::{CompressionStep, MemoryScenario};
}
