//! SNAT offload moves work, never decisions.
//!
//! Publishing an epoch with a sealed [`sailfish_snat::SnatOffload`]
//! promotes hot SNAT flows from the punt path onto the hardware fast
//! path. The contract under test:
//!
//! - the run's decision digest is byte-identical with and without the
//!   offload (`ToInternet` digests the same wherever it was served),
//! - `punt_snat` stays a pure classification lane — identical across
//!   both runs — while `snat_translations` picks up exactly the flows
//!   the offload serves and `fallback_packets` drops by the same,
//! - scalar, multi-worker and batch executors agree field for field,
//! - an offload sealed for one epoch can never ship inside another.

use sailfish_dataplane::batch::BatchExecutor;
use sailfish_dataplane::executor::software_forwarder;
use sailfish_dataplane::{traffic, Dataplane, DataplaneConfig, EpochState};
use sailfish_sim::conn::ConnSignal;
use sailfish_sim::workload::{self, FlowKind, WorkloadConfig};
use sailfish_sim::{Topology, TopologyConfig};
use sailfish_snat::{HybridConfig, HybridSnat, SnatOffload};

fn setup() -> (Topology, Vec<Vec<u8>>, Vec<sailfish_sim::Flow>, Vec<usize>) {
    let topology = Topology::generate(TopologyConfig::default());
    let flows = workload::generate_flows(
        &topology,
        &WorkloadConfig {
            flows: 600,
            internet_share: 0.05, // force enough Internet (SNAT) flows
            ..WorkloadConfig::default()
        },
    );
    let frames = traffic::frames_for_flows(&flows);
    let sched = traffic::schedule(&flows[..frames.len()], 20_000, 23);
    let flows = flows[..frames.len()].to_vec();
    (topology, frames, flows, sched)
}

/// Drives the real promotion machinery: every Internet flow opens a
/// connection in the hybrid tier, then `rebalance` seals the hot set
/// for `epoch`.
fn build_offload(flows: &[sailfish_sim::Flow], epoch: u64) -> SnatOffload {
    let mut hybrid = HybridSnat::new(HybridConfig {
        promote_packets: 1,
        ..HybridConfig::default()
    });
    let mut now_ns = 0u64;
    for flow in flows
        .iter()
        .filter(|f| matches!(f.kind, FlowKind::Internet))
    {
        now_ns += 1_000;
        hybrid.outbound(flow.vni, flow.tuple, ConnSignal::Payload, now_ns);
    }
    hybrid.rebalance(epoch)
}

#[test]
fn offload_preserves_digest_and_drains_the_punt_path() {
    let (topology, frames, flows, sched) = setup();
    let config = DataplaneConfig::default();
    let dp = Dataplane::build(&topology, config.clone());
    let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();

    // Baseline: no offload published, every SNAT flow punts.
    let mut fb = software_forwarder(&topology);
    let baseline = dp.run_single(&seq, &mut fb);
    assert!(
        baseline.counters.punt_snat > 0,
        "workload exercises no SNAT flows — the equality below is vacuous"
    );
    assert_eq!(baseline.counters.snat_translations, 0);

    // Seal the hot set for the next epoch and publish it.
    let epoch = dp.next_epoch();
    let offload = build_offload(&flows, epoch);
    assert!(!offload.is_empty(), "no Internet flows promoted");
    dp.publish(EpochState::build(&topology, &config, epoch).with_snat(offload));

    let mut fb_off = software_forwarder(&topology);
    let offloaded = dp.run_single(&seq, &mut fb_off);

    // The load-bearing claim: offload changes who serves, never what
    // was decided.
    assert_eq!(
        offloaded.decision_digest, baseline.decision_digest,
        "offload changed decisions, not just placement"
    );
    assert_eq!(offloaded.packets, baseline.packets);

    // Classification is placement-independent; service is not.
    assert_eq!(
        offloaded.counters.punt_snat, baseline.counters.punt_snat,
        "punt_snat must stay a pure classification lane under offload"
    );
    assert!(offloaded.counters.snat_translations > 0);
    assert!(
        offloaded.fallback_packets < baseline.fallback_packets,
        "offload failed to drain the punt path"
    );
    // Every hardware-served SNAT packet is one the fallback no longer
    // sees, and it lands in the hw_forwarded lane.
    assert_eq!(
        offloaded.fallback_packets + offloaded.counters.snat_translations,
        baseline.fallback_packets
    );
    assert_eq!(
        offloaded.counters.hw_forwarded,
        baseline.counters.hw_forwarded + offloaded.counters.snat_translations
    );

    // The multi-worker scalar path agrees on the digest and the lanes.
    let mut fb_multi = software_forwarder(&topology);
    let multi = dp.run_multi(&seq, &mut fb_multi);
    assert_eq!(multi.decision_digest, baseline.decision_digest);
    assert_eq!(
        multi.counters.snat_translations,
        offloaded.counters.snat_translations
    );

    // The batch pipeline reproduces the offloaded scalar report field
    // for field — same interception points, same counter walks.
    let mut batch = BatchExecutor::new(&dp, 1);
    let mut fb_batch = software_forwarder(&topology);
    let batched = batch.run(&dp, &seq, &mut fb_batch);
    assert_eq!(batched.decision_digest, offloaded.decision_digest);
    assert_eq!(batched.epoch_digests, offloaded.epoch_digests);
    let diff: Vec<String> = offloaded
        .counters
        .fields()
        .iter()
        .zip(batched.counters.fields().iter())
        .filter(|(a, b)| a.1 != b.1)
        .map(|(a, b)| format!("{}: scalar={} batch={}", a.0, a.1, b.1))
        .collect();
    assert!(
        diff.is_empty(),
        "counters diverged scalar vs batch: {diff:?}"
    );
    assert_eq!(batched.fallback_packets, offloaded.fallback_packets);
    assert_eq!(batched.virtual_ns, offloaded.virtual_ns);
}

#[test]
#[should_panic(expected = "cannot ship in epoch")]
fn stale_offload_cannot_ship_in_a_newer_epoch() {
    let topology = Topology::generate(TopologyConfig::default());
    let config = DataplaneConfig::default();
    let mut hybrid = HybridSnat::new(HybridConfig::default());
    let stale = hybrid.rebalance(1);
    let _ = EpochState::build(&topology, &config, 2).with_snat(stale);
}
