//! The batch pipeline is pinned to the scalar executor.
//!
//! The scalar [`Dataplane`] stays the determinism oracle: on the same
//! frame sequence a cold [`BatchExecutor`] must reproduce the scalar
//! `RunReport` field for field — decision digest, per-epoch digests,
//! every counter (including the per-layer `FrameError` lanes), device
//! attribution, breaker stats and virtual time — in both single- and
//! multi-worker modes. A warm cache may shift the hit/miss split but
//! never the decision digest. Hostile batches (structure-aware mutants
//! mixed with valid traffic) must produce identical per-layer error
//! counts on both paths.

use sailfish_dataplane::batch::BatchExecutor;
use sailfish_dataplane::executor::{software_forwarder, Dataplane, DataplaneConfig};
use sailfish_dataplane::traffic;
use sailfish_dataplane::RunReport;
use sailfish_sim::{Topology, TopologyConfig, WorkloadConfig};
use sailfish_util::check;
use sailfish_util::fuzz::{FieldSpec, FrameMutator};
use sailfish_util::rand::Rng;

fn workload(flows: usize, packets: usize, seed: u64) -> (Topology, Vec<Vec<u8>>, Vec<usize>) {
    let topology = Topology::generate(TopologyConfig::default());
    let flow_set = sailfish_sim::workload::generate_flows(
        &topology,
        &WorkloadConfig {
            flows,
            internet_share: 0.05,
            ..WorkloadConfig::default()
        },
    );
    let frames = traffic::frames_for_flows(&flow_set);
    let sched = traffic::schedule(&flow_set[..frames.len()], packets, seed);
    (topology, frames, sched)
}

/// Full-report equality: everything the scalar executor measures, the
/// batch pipeline must measure identically.
fn assert_reports_match(scalar: &RunReport, batch: &RunReport, what: &str) {
    assert_eq!(
        scalar.decision_digest, batch.decision_digest,
        "{what}: decision digest diverged"
    );
    assert_eq!(
        scalar.epoch_digests, batch.epoch_digests,
        "{what}: per-epoch digests diverged"
    );
    let diff: Vec<String> = scalar
        .counters
        .fields()
        .iter()
        .zip(batch.counters.fields().iter())
        .filter(|(a, b)| a.1 != b.1)
        .map(|(a, b)| format!("{}: scalar={} batch={}", a.0, a.1, b.1))
        .collect();
    assert!(diff.is_empty(), "{what}: counters diverged: {diff:?}");
    assert_eq!(
        scalar.device_packets, batch.device_packets,
        "{what}: ECMP device attribution diverged"
    );
    assert_eq!(
        scalar.breaker, batch.breaker,
        "{what}: breaker stats diverged"
    );
    assert_eq!(
        scalar.fallback_packets, batch.fallback_packets,
        "{what}: punt volume diverged"
    );
    assert_eq!(
        scalar.virtual_ns, batch.virtual_ns,
        "{what}: virtual clock diverged"
    );
    assert_eq!(
        scalar.packets, batch.packets,
        "{what}: packet count diverged"
    );
}

#[test]
fn cold_batch_reproduces_scalar_report() {
    let (topology, frames, sched) = workload(900, 40_000, 11);
    let dp = Dataplane::build(&topology, DataplaneConfig::default());
    let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();

    let mut fb_scalar = software_forwarder(&topology);
    let scalar = dp.run_single(&seq, &mut fb_scalar);

    let mut batch = BatchExecutor::new(&dp, 1);
    let mut fb_batch = software_forwarder(&topology);
    let report = batch.run(&dp, &seq, &mut fb_batch);

    assert_reports_match(&scalar, &report, "single-worker cold");
    // The run must exercise real decision diversity or equality is vacuous.
    assert!(report.counters.hw_forwarded > 0, "no hardware forwards");
    assert!(report.fallback_packets > 0, "no punts exercised");
    assert!(report.counters.cache_hits > 0, "no cache hits exercised");
}

#[test]
fn multi_worker_batch_reproduces_scalar_multi() {
    let (topology, frames, sched) = workload(900, 40_000, 13);
    let dp = Dataplane::build(&topology, DataplaneConfig::default());
    let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();

    let mut fb_scalar = software_forwarder(&topology);
    let scalar_multi = dp.run_multi(&seq, &mut fb_scalar);

    let workers = dp.config().workers;
    let mut batch = BatchExecutor::new(&dp, workers);
    let mut fb_batch = software_forwarder(&topology);
    let report = batch.run(&dp, &seq, &mut fb_batch);

    // Same flow-entropy partitioning, same per-worker batching: the whole
    // report matches, not just the order-independent digest.
    assert_reports_match(&scalar_multi, &report, "multi-worker cold");

    // And the digest is partition-independent, matching single-worker.
    let mut fb_single = software_forwarder(&topology);
    let scalar_single = dp.run_single(&seq, &mut fb_single);
    assert_eq!(scalar_single.decision_digest, report.decision_digest);
    assert_eq!(scalar_single.epoch_digests, report.epoch_digests);
}

#[test]
fn warm_cache_shifts_hits_but_never_decisions() {
    let (topology, frames, sched) = workload(700, 25_000, 17);
    let dp = Dataplane::build(&topology, DataplaneConfig::default());
    let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();

    let mut batch = BatchExecutor::new(&dp, 1);
    let mut fb = software_forwarder(&topology);
    let cold = batch.run(&dp, &seq, &mut fb);

    let mut fb_warm = software_forwarder(&topology);
    let warm = batch.run(&dp, &seq, &mut fb_warm);

    assert_eq!(cold.decision_digest, warm.decision_digest, "warm digest");
    assert_eq!(cold.epoch_digests, warm.epoch_digests, "warm epoch digests");
    assert_eq!(cold.device_packets, warm.device_packets, "warm attribution");
    assert!(
        warm.counters.cache_hits > cold.counters.cache_hits,
        "warm run should hit more ({} vs {})",
        warm.counters.cache_hits,
        cold.counters.cache_hits
    );
    assert_eq!(warm.counters.cache_misses, 0, "warm run should never miss");

    // reset_caches restores the cold profile exactly.
    batch.reset_caches();
    let mut fb_cold2 = software_forwarder(&topology);
    let cold2 = batch.run(&dp, &seq, &mut fb_cold2);
    assert_eq!(cold.counters, cold2.counters, "reset_caches cold profile");
    assert_eq!(cold.decision_digest, cold2.decision_digest);
}

/// The decision-point field map of the hostile-frame suite: mutations
/// aimed at every layer's validation branches.
fn v4_field_map() -> Vec<FieldSpec> {
    vec![
        FieldSpec::new(12, 2),    // outer ethertype
        FieldSpec::length(14, 1), // outer version/IHL
        FieldSpec::length(16, 2), // outer total length
        FieldSpec::new(20, 2),    // outer flags/fragment
        FieldSpec::new(23, 1),    // outer protocol
        FieldSpec::new(24, 2),    // outer header checksum
        FieldSpec::new(36, 2),    // outer UDP dst port
        FieldSpec::length(38, 2), // outer UDP length
        FieldSpec::new(40, 2),    // outer UDP checksum
        FieldSpec::new(42, 1),    // VXLAN flags
        FieldSpec::new(46, 3),    // VNI
        FieldSpec::new(62, 2),    // inner ethertype
        FieldSpec::length(64, 1), // inner version/IHL
        FieldSpec::length(66, 2), // inner total length
        FieldSpec::new(70, 2),    // inner flags/fragment
        FieldSpec::new(73, 1),    // inner protocol
        FieldSpec::new(74, 2),    // inner header checksum
        FieldSpec::length(88, 2), // inner UDP length
    ]
}

#[test]
fn hostile_batches_keep_identical_error_lanes() {
    let (topology, frames, sched) = workload(400, 1, 19);
    let dp = Dataplane::build(&topology, DataplaneConfig::default());
    let mutator = FrameMutator::new(v4_field_map());
    let _ = sched;

    check::run("batch_hostile_equivalence", 6, |rng| {
        // A fuzzed batch: valid flow frames interleaved with
        // structure-aware mutants (truncations, checksum/length lies,
        // fragment bits, bad ports — whatever the mutator lands on).
        let mut storage: Vec<Vec<u8>> = Vec::new();
        for _ in 0..rng.gen_range(500..2000usize) {
            let base = &frames[rng.gen_range(0..frames.len())];
            if rng.gen_bool(0.45) {
                let (mutant, _applied) = mutator.mutate(rng, base);
                storage.push(mutant);
            } else {
                storage.push(base.clone());
            }
        }
        let seq: Vec<&[u8]> = storage.iter().map(|f| f.as_slice()).collect();

        let mut fb_scalar = software_forwarder(&topology);
        let scalar = dp.run_single(&seq, &mut fb_scalar);

        let mut batch = BatchExecutor::new(&dp, 1);
        let mut fb_batch = software_forwarder(&topology);
        let report = batch.run(&dp, &seq, &mut fb_batch);

        assert_reports_match(&scalar, &report, "hostile batch");

        // The per-layer error lanes must agree entry by entry, and the
        // mutated share of the batch must actually trip some of them.
        let layer_errors: u64 = report
            .counters
            .fields()
            .iter()
            .filter(|(name, _)| name.starts_with("layer_"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(
            layer_errors, report.counters.parse_errors,
            "layer lanes must partition parse errors"
        );

        // Multi-worker over the same hostile batch: digest and counters
        // still match the scalar multi run.
        let mut fb_sm = software_forwarder(&topology);
        let scalar_multi = dp.run_multi(&seq, &mut fb_sm);
        let mut batch_multi = BatchExecutor::new(&dp, dp.config().workers);
        let mut fb_bm = software_forwarder(&topology);
        let report_multi = batch_multi.run(&dp, &seq, &mut fb_bm);
        assert_reports_match(&scalar_multi, &report_multi, "hostile multi");
    });
}
