//! Satellite: forced 128→32-bit digest collisions stay exact under the
//! executor.
//!
//! The VM-NC table compresses IPv6 keys to a 32-bit digest (§5.2); the
//! conflict table catches colliding keys. These tests *force* collisions
//! by birthday-scanning sequential v6 addresses, install both colliding
//! VMs, and assert the executor still resolves each to its own NC — the
//! conflict table makes lookups exact, not probabilistic.

use core::net::{IpAddr, Ipv6Addr};

use sailfish_dataplane::engine;
use sailfish_dataplane::executor::{software_forwarder, Dataplane, DataplaneConfig};
use sailfish_dataplane::oracle::{differential_run, PathDecision};
use sailfish_dataplane::TableCounters;
use sailfish_net::packet::GatewayPacketBuilder;
use sailfish_net::{IpPrefix, IpProtocol, Vni};
use sailfish_sim::topology::{VmRecord, Vpc};
use sailfish_sim::{Topology, TopologyConfig};
use sailfish_tables::digest::{digest32, DigestLookup};
use sailfish_tables::types::{NcAddr, RouteTarget, VxlanRouteKey};
use sailfish_util::check;
use sailfish_util::rand::Rng;
use sailfish_xgw_h::tables::HardwareTables;
use sailfish_xgw_h::HwDecision;

/// Birthday-scans addresses `base | i` until two distinct ones share a
/// 32-bit digest under `vni`. The first collision is expected around
/// sqrt(π/2 · 2³²) ≈ 82k draws; the 600k cap makes absence a digest bug.
fn find_collision(vni: u32, base: u128) -> (u128, u128) {
    let mut seen: std::collections::HashMap<u32, u128> = std::collections::HashMap::new();
    for i in 0..600_000u128 {
        let addr = base | i;
        if let Some(prev) = seen.insert(digest32(vni, addr), addr) {
            if prev != addr {
                return (prev, addr);
            }
        }
    }
    panic!("no 32-bit digest collision in 600k sequential keys");
}

fn v6(bits: u128) -> IpAddr {
    IpAddr::V6(Ipv6Addr::from(bits))
}

#[test]
fn forced_collisions_stay_exact_under_the_walk() {
    check::run("digest-conflict-walk-exactness", 8, |rng| {
        let vni_value: u32 = rng.gen_range(1..0x00ff_ffff);
        let vni = Vni::from_const(vni_value);
        // A random documentation-prefix base; the scan varies only the
        // low 20 bits.
        let base = (0x2001_0db8_u128 << 96) | (u128::from(rng.gen::<u32>()) << 64);
        let (a, b) = find_collision(vni_value, base);

        let mut tables = HardwareTables::default();
        let prefix = IpPrefix::new(v6(0x2001_0db8_u128 << 96), 16).unwrap();
        tables
            .routes
            .insert(VxlanRouteKey::new(vni, prefix), RouteTarget::Local)
            .unwrap();
        let nc_a = NcAddr::new("192.0.2.1".parse().unwrap());
        let nc_b = NcAddr::new("192.0.2.2".parse().unwrap());
        tables.add_vm(vni, v6(a), nc_a).unwrap();
        tables.add_vm(vni, v6(b), nc_b).unwrap();

        // Installation displaced exactly one of the pair.
        let (got_a, trace_a) = tables.vm_nc.lookup_traced(vni, v6(a));
        let (got_b, trace_b) = tables.vm_nc.lookup_traced(vni, v6(b));
        assert_eq!(got_a, Some(nc_a));
        assert_eq!(got_b, Some(nc_b));
        assert_eq!(trace_a, DigestLookup::HitMain);
        assert_eq!(trace_b, DigestLookup::HitConflict);

        // The walk resolves each colliding VM to its own NC and accounts
        // the conflict probe.
        let mut counters = TableCounters::default();
        for (dst, want) in [(a, nc_a), (b, nc_b)] {
            let packet = GatewayPacketBuilder::new(vni, v6(base | 0xf_ffff), v6(dst))
                .transport(IpProtocol::Udp, 4000, 5000)
                .build();
            match engine::walk(&tables, &packet, &mut counters) {
                HwDecision::ToNc { nc, .. } => assert_eq!(nc, want),
                other => panic!("expected ToNc, got {other:?}"),
            }
        }
        assert_eq!(counters.vm_hit_main, 1);
        assert_eq!(counters.vm_hit_conflict, 1);
        assert_eq!(counters.vm_miss, 0);
    });
}

#[test]
fn executor_serves_colliding_vms_exactly() {
    let vni = Vni::from_const(4242);
    let base = 0x2001_0db8_u128 << 96;
    let (a, b) = find_collision(4242, base);
    let prefix = IpPrefix::new(v6(base), 32).unwrap();

    // A hand-built one-VPC topology. VM index 0 is a decoy: the builder
    // withholds every `hw_vm_stride`-th mapping starting at 0, so the
    // colliding pair (indexes 1 and 2) is guaranteed on-chip.
    let nc = |i: u8| NcAddr::new(IpAddr::V4(core::net::Ipv4Addr::new(192, 0, 2, i)));
    let vms = vec![
        VmRecord {
            vni,
            ip: v6(base | 0xdead),
            nc: nc(9),
        },
        VmRecord {
            vni,
            ip: v6(a),
            nc: nc(1),
        },
        VmRecord {
            vni,
            ip: v6(b),
            nc: nc(2),
        },
    ];
    let topology = Topology {
        config: TopologyConfig::default(),
        vpcs: vec![Vpc {
            vni,
            vm_range: (0, vms.len()),
            subnets: vec![prefix],
            peer: None,
            internet: false,
            idc: None,
            cross_region: None,
        }],
        routes: vec![(VxlanRouteKey::new(vni, prefix), RouteTarget::Local)],
        vms,
    };

    let dp = Dataplane::build(
        &topology,
        DataplaneConfig {
            clusters: 1,
            devices_per_cluster: 2,
            hw_vm_stride: 1_000_000,
            workers: 2,
            ..DataplaneConfig::default()
        },
    );
    assert!(
        dp.pin().clusters[0]
            .tables
            .vm_nc
            .digest_stats()
            .conflict_entries
            >= 1,
        "the colliding pair must occupy the conflict table"
    );

    // Many distinct flows to each colliding VM, emitted as wire frames.
    let mut frames = Vec::new();
    for port in 0..100u16 {
        for dst in [a, b] {
            let packet = GatewayPacketBuilder::new(vni, v6(base | 0xbeef), v6(dst))
                .transport(IpProtocol::Udp, 10_000 + port, 443)
                .build();
            frames.push(packet.emit().unwrap());
        }
    }
    let seq: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();

    let mut fallback = software_forwarder(&topology);
    let report = dp.run_single(&seq, &mut fallback);
    assert_eq!(report.counters.parse_errors, 0);
    assert_eq!(report.counters.hw_forwarded, seq.len() as u64);
    assert!(report.counters.vm_hit_conflict > 0, "{:?}", report.counters);
    assert!(report.counters.vm_hit_main > 0);
    assert_eq!(report.counters.vm_miss, 0);

    // Per-packet exactness against the reference forwarder, and each
    // colliding VM resolves to its own NC.
    let mut fb = software_forwarder(&topology);
    let mut reference = software_forwarder(&topology);
    let oracle = differential_run(&dp, &seq, &mut fb, &mut reference);
    assert!(oracle.holds(), "{:?}", oracle.first_mismatch);
    let mut fb2 = software_forwarder(&topology);
    for (dst, want) in [(a, nc(1)), (b, nc(2))] {
        let packet = GatewayPacketBuilder::new(vni, v6(base | 0xbeef), v6(dst))
            .transport(IpProtocol::Udp, 7, 443)
            .build();
        let frame = packet.emit().unwrap();
        match dp.decide_one(&frame, &mut fb2, 0).unwrap() {
            PathDecision::ToNc { nc, .. } => assert_eq!(nc, want),
            other => panic!("expected ToNc, got {other:?}"),
        }
    }
}
