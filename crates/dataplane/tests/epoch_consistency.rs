//! Epoch-consistency properties: live installs interleaved with traffic
//! batches must never tear the dataplane's view.
//!
//! The contract under test (see `dataplane::epoch`):
//!
//! - every batch is served entirely by one epoch (pinned once per batch),
//! - `epoch_violations` stays zero across arbitrary install/batch
//!   interleavings (no packet ever observes a cluster tagged with a
//!   different epoch than the directory that routed it), and
//! - the per-epoch decision digest of a live dataplane that swapped
//!   mid-run equals the digest a *fresh* dataplane pinned at that world
//!   computes for the same frames — installs change *which* epoch serves
//!   a batch, never *what* an epoch decides.

use std::collections::BTreeSet;

use sailfish_dataplane::executor::software_forwarder;
use sailfish_dataplane::{traffic, Dataplane, DataplaneConfig, EpochState, WorldView};
use sailfish_sim::workload::{self, WorkloadConfig};
use sailfish_sim::{Topology, TopologyConfig};
use sailfish_util::check;
use sailfish_util::rand::rngs::StdRng;
use sailfish_util::rand::Rng;

fn setup() -> (Topology, Vec<Vec<u8>>, Vec<sailfish_sim::Flow>) {
    let topology = Topology::generate(TopologyConfig::default());
    let flows = workload::generate_flows(
        &topology,
        &WorkloadConfig {
            flows: 400,
            internet_share: 0.01,
            ..WorkloadConfig::default()
        },
    );
    let frames = traffic::frames_for_flows(&flows);
    let flows = flows[..frames.len()].to_vec();
    (topology, frames, flows)
}

/// A small palette of worlds an install can publish.
fn world_palette() -> Vec<WorldView> {
    let mut wiped = WorldView::healthy();
    wiped.wiped_clusters.insert(1);
    let mut unassigned = WorldView::healthy();
    unassigned.unassigned_clusters.insert(2);
    let mut dead = WorldView::healthy();
    dead.dead_devices.insert((0, 1));
    let mut combo = WorldView::healthy();
    combo.wiped_clusters.insert(3);
    combo.dead_devices.insert((2, 0));
    vec![WorldView::healthy(), wiped, unassigned, dead, combo]
}

/// Seeded interleavings of installs and batches: violations stay zero and
/// each epoch's digest matches a fresh dataplane pinned at that world.
#[test]
fn interleaved_installs_never_tear_and_digests_pin_per_epoch() {
    let (topology, frames, flows) = setup();
    let config = DataplaneConfig::default();
    let palette = world_palette();

    check::run("install_batch_interleaving", 8, |rng: &mut StdRng| {
        let dp = Dataplane::build(&topology, config.clone());
        let mut current_world = WorldView::healthy();
        let mut served_epochs: BTreeSet<u64> = BTreeSet::new();

        for step in 0..6 {
            if step > 0 && rng.gen_bool(0.5) {
                // Install: publish a randomly chosen world as a staged
                // epoch swap.
                let world = rng.choose(&palette).expect("palette non-empty").clone();
                let staged =
                    EpochState::build_with_world(&topology, &config, dp.next_epoch(), &world);
                dp.publish(staged);
                current_world = world;
            }
            // Batch slice: a seeded Zipf slice of the traffic pool.
            let sched = traffic::schedule(&flows, 1_500, rng.gen::<u64>());
            let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();
            let mut fallback = software_forwarder(&topology);
            let live = dp.run_single(&seq, &mut fallback);

            assert_eq!(live.counters.epoch_violations, 0, "torn epoch observed");
            assert_eq!(live.counters.parse_errors, 0);
            // The whole run was served by the single currently-published
            // epoch (no publish happened mid-run here).
            let epoch = dp.pin().epoch;
            assert_eq!(
                live.epoch_digests.keys().copied().collect::<Vec<u64>>(),
                vec![epoch],
            );
            served_epochs.insert(epoch);

            // Per-epoch digest oracle: a fresh dataplane pinned at the
            // same world decides the same frames identically. Digests are
            // keyed by epoch number but their value is epoch-agnostic.
            let fresh = Dataplane::build(&topology, config.clone());
            if current_world != WorldView::healthy() {
                let staged = EpochState::build_with_world(
                    &topology,
                    &config,
                    fresh.next_epoch(),
                    &current_world,
                );
                fresh.publish(staged);
            }
            let fresh_epoch = fresh.pin().epoch;
            let mut fresh_fallback = software_forwarder(&topology);
            let reference = fresh.run_single(&seq, &mut fresh_fallback);
            assert_eq!(
                live.epoch_digests.get(&epoch),
                reference.epoch_digests.get(&fresh_epoch),
                "epoch {epoch} digest diverged from a fresh pin of the same world"
            );
            // Full decision digest (hardware + fallback) matches too.
            assert_eq!(live.decision_digest, reference.decision_digest);
        }
        assert_eq!(dp.epoch_swaps(), dp.pin().epoch);
        assert!(!served_epochs.is_empty());
    });
}

/// An old pin stays fully consistent after newer epochs publish: batches
/// run against the pinned snapshot see zero violations and identical
/// decisions before and after the swap (RCU grace-period behavior).
#[test]
fn pinned_snapshot_survives_later_publishes() {
    let (topology, frames, flows) = setup();
    let config = DataplaneConfig::default();
    let dp = Dataplane::build(&topology, config.clone());

    let sched = traffic::schedule(&flows, 4_000, 1234);
    let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();
    let mut fb = software_forwarder(&topology);
    let before = dp.run_single(&seq, &mut fb);

    let pinned = dp.pin();
    let mut world = WorldView::healthy();
    world.wiped_clusters.insert(0);
    world.unassigned_clusters.insert(1);
    dp.publish(EpochState::build_with_world(
        &topology,
        &config,
        dp.next_epoch(),
        &world,
    ));

    // The old snapshot is untouched by the swap.
    assert_eq!(pinned.epoch, 0);
    assert!(pinned.tags_consistent());
    assert!(pinned.directory.snapshot().iter().any(|(_, c)| *c == 1));

    // The live dataplane now decides against the degraded epoch...
    let mut fb2 = software_forwarder(&topology);
    let after = dp.run_single(&seq, &mut fb2);
    assert_eq!(after.counters.epoch_violations, 0);
    assert!(after.epoch_digests.contains_key(&1));
    assert!(after.counters.punted() > before.counters.punted());

    // ...while a fresh dataplane replays the healthy epoch's exact
    // decisions, proving the old state was never mutated in place.
    let fresh = Dataplane::build(&topology, config.clone());
    let mut fb3 = software_forwarder(&topology);
    let replay = fresh.run_single(&seq, &mut fb3);
    assert_eq!(replay.decision_digest, before.decision_digest);
    assert_eq!(replay.epoch_digests, before.epoch_digests);
}

/// Concurrent multi-worker traffic with a publisher thread swapping
/// epochs mid-run: every batch lands on an entirely-old or entirely-new
/// epoch (violations zero), digests land only on published epochs, and
/// the accounting identity holds.
#[test]
fn concurrent_publishes_never_tear_multi_worker_batches() {
    let (topology, frames, flows) = setup();
    let config = DataplaneConfig::default();
    let dp = Dataplane::build(&topology, config.clone());

    let sched = traffic::schedule(&flows, 60_000, 77);
    let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();

    let mut world = WorldView::healthy();
    world.wiped_clusters.insert(2);

    let report = std::thread::scope(|scope| {
        let dp_ref = &dp;
        let topo_ref = &topology;
        let config_ref = &config;
        let world_ref = &world;
        let publisher = scope.spawn(move || {
            // Publish a handful of alternating healthy/degraded epochs
            // while the workers chew through the frame sequence.
            for i in 1..=6u64 {
                std::thread::yield_now();
                let w = if i % 2 == 0 {
                    WorldView::healthy()
                } else {
                    world_ref.clone()
                };
                let staged =
                    EpochState::build_with_world(topo_ref, config_ref, dp_ref.next_epoch(), &w);
                dp_ref.publish(staged);
            }
        });
        let mut fallback = software_forwarder(topo_ref);
        let report = dp_ref.run_multi(&seq, &mut fallback);
        publisher.join().expect("publisher panicked");
        report
    });

    assert_eq!(report.counters.epoch_violations, 0, "torn batch observed");
    assert_eq!(report.counters.parse_errors, 0);
    // Digests only ever land on epochs that were actually published.
    assert_eq!(dp.epoch_swaps(), 6);
    for epoch in report.epoch_digests.keys() {
        assert!(*epoch <= 6, "digest on unpublished epoch {epoch}");
    }
    // No black hole under concurrent swaps.
    let c = &report.counters;
    assert_eq!(
        c.parsed,
        c.hw_forwarded + c.acl_denied + c.loop_drops + c.punted()
    );
    assert_eq!(
        c.punted(),
        c.fallback_forwarded + c.fallback_dropped + c.punt_rate_limited + c.punt_breaker_open
    );
}
