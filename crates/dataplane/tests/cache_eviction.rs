//! Seeded property tests for the S3-FIFO evicting flow cache.
//!
//! Three properties the batch hot path depends on:
//!
//! 1. **Residency is bounded**: no operation sequence pushes `len()`
//!    past `capacity()`.
//! 2. **Hit/miss accounting is exact**: every `get` bumps exactly one of
//!    the two counters, agreeing with the side-effect-free `peek`, and a
//!    hit returns the most recently inserted outcome for that key.
//! 3. **Scan resistance is strict**: a hot 80/20 working set that was
//!    touched during probation survives a scan of arbitrarily many
//!    one-hit-wonder flows — every hot key must still be resident.
//!
//! All properties run under `sailfish_util::check` so failures replay
//! from a printed seed.

use std::collections::HashMap;

use sailfish_dataplane::cache::{CachedAction, FlowCache, FlowOutcome};
use sailfish_net::view::FlowKey;
use sailfish_util::check;
use sailfish_util::rand::Rng;

/// A synthetic flow key from a dense id (distinct ids → distinct keys).
fn key(id: u64) -> FlowKey {
    FlowKey {
        src: u128::from(id) << 32 | 0x0a00_0001,
        dst: 0x0a00_0002,
        meta: (id % 50_000) << 16 | 17 << 8,
        vni: (id % 1000) as u32,
    }
}

fn outcome(id: u64) -> FlowOutcome {
    FlowOutcome {
        action: if id.is_multiple_of(2) {
            CachedAction::PuntSnat
        } else {
            CachedAction::DropAcl
        },
        slot: (id % 64) as u32,
        digest: id.wrapping_mul(0x9e37_79b9),
    }
}

#[test]
fn residency_never_exceeds_capacity() {
    check::run("cache_capacity_bounded", 64, |rng| {
        let capacity = rng.gen_range(1..300usize);
        let mut cache = FlowCache::new(capacity);
        let key_space = rng.gen_range(1..2000u64);
        for _ in 0..rng.gen_range(10..3000usize) {
            let id = rng.gen_range(0..key_space);
            match check::one_of(rng, 10) {
                0 => {
                    cache.clear();
                }
                1..=3 => {
                    let _ = cache.get(&key(id));
                }
                _ => cache.insert(key(id), outcome(id)),
            }
            assert!(
                cache.len() <= cache.capacity(),
                "len {} exceeded capacity {}",
                cache.len(),
                cache.capacity()
            );
        }
    });
}

#[test]
fn hit_miss_counters_stay_exact() {
    check::run("cache_hit_miss_exact", 48, |rng| {
        let capacity = rng.gen_range(4..200usize);
        let mut cache = FlowCache::new(capacity);
        // Last-written outcome per key: a hit must return this value.
        let mut last_written: HashMap<FlowKey, FlowOutcome> = HashMap::new();
        let key_space = rng.gen_range(1..1000u64);
        for op in 0..rng.gen_range(10..2000usize) {
            let id = rng.gen_range(0..key_space);
            let k = key(id);
            if rng.gen_bool(0.5) {
                let o = outcome(id ^ op as u64);
                cache.insert(k, o);
                last_written.insert(k, o);
                assert_eq!(
                    cache.peek(&k),
                    Some(o),
                    "insert must leave the key resident"
                );
            } else {
                let expected = cache.peek(&k);
                let (hits, misses) = (cache.hits(), cache.misses());
                let got = cache.get(&k);
                assert_eq!(got, expected, "get disagrees with peek");
                match got {
                    Some(v) => {
                        assert_eq!(cache.hits(), hits + 1, "hit not counted");
                        assert_eq!(cache.misses(), misses, "miss overcounted");
                        assert_eq!(Some(&v), last_written.get(&k), "stale outcome");
                    }
                    None => {
                        assert_eq!(cache.misses(), misses + 1, "miss not counted");
                        assert_eq!(cache.hits(), hits, "hit overcounted");
                    }
                }
            }
        }
    });
}

#[test]
fn scan_cannot_evict_hot_working_set() {
    check::run("cache_scan_resistance", 32, |rng| {
        let capacity = rng.gen_range(50..400usize);
        let small_target = (capacity / 10).max(1);
        let mut cache = FlowCache::new(capacity);

        // Hot 20%: inserted, then touched during probation so eviction
        // pressure promotes them instead of dropping them.
        let hot: Vec<u64> = (0..(capacity / 5) as u64).collect();
        for &id in &hot {
            cache.insert(key(id), outcome(id));
        }
        for &id in &hot {
            for _ in 0..rng.gen_range(1..4usize) {
                assert!(cache.get(&key(id)).is_some(), "hot key lost pre-scan");
            }
        }
        // Freq-0 padding keeps the probationary queue at its target so
        // scan evictions always drain `small`, never `main`.
        for id in 1_000_000..(1_000_000 + small_target as u64 + 2) {
            cache.insert(key(id), outcome(id));
        }

        // The scan: far more one-hit flows than the cache can hold,
        // interleaved with occasional hot-set traffic (the "80/20" mix).
        let scan_len = capacity * rng.gen_range(3..10usize);
        for i in 0..scan_len as u64 {
            cache.insert(key(2_000_000 + i), outcome(i));
            if rng.gen_bool(0.2) {
                let id = hot[rng.gen_range(0..hot.len())];
                assert!(
                    cache.get(&key(id)).is_some(),
                    "hot key evicted mid-scan after {i} scan inserts"
                );
            }
        }

        for &id in &hot {
            assert!(
                cache.peek(&key(id)).is_some(),
                "hot key {id} evicted by the scan (capacity {capacity})"
            );
        }
        assert!(cache.len() <= cache.capacity());
    });
}
