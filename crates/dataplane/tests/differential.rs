//! Tentpole acceptance: the differential oracle over a seeded Zipf
//! workload.
//!
//! Every packet the hardware executor serves — or punts — must reach the
//! same normalized `(next-hop, rewrite)` decision as the reference
//! XGW-x86 forwarder over the full table set. The tier-1 run here covers
//! tens of thousands of scheduled packets across every decision class;
//! the ≥1M-packet run lives in `dataplane_bench` (release mode).

use sailfish_dataplane::executor::{software_forwarder, Dataplane, DataplaneConfig};
use sailfish_dataplane::oracle::differential_run;
use sailfish_dataplane::traffic;
use sailfish_sim::{Topology, TopologyConfig, WorkloadConfig};

fn workload(flows: usize, seed: u64) -> (Topology, Vec<Vec<u8>>, Vec<usize>) {
    let topology = Topology::generate(TopologyConfig::default());
    let flow_set = sailfish_sim::workload::generate_flows(
        &topology,
        &WorkloadConfig {
            flows,
            internet_share: 0.05,
            ..WorkloadConfig::default()
        },
    );
    let frames = traffic::frames_for_flows(&flow_set);
    let sched = traffic::schedule(&flow_set[..frames.len()], 60_000, seed);
    (topology, frames, sched)
}

#[test]
fn executor_agrees_with_reference_over_zipf_workload() {
    let (topology, frames, sched) = workload(1_200, 7);
    let dp = Dataplane::build(&topology, DataplaneConfig::default());
    let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();

    let mut fallback = software_forwarder(&topology);
    let mut reference = software_forwarder(&topology);
    let report = differential_run(&dp, &seq, &mut fallback, &mut reference);

    assert_eq!(report.packets, seq.len() as u64);
    assert!(
        report.holds(),
        "{} mismatches over {} packets; first: {:?}",
        report.mismatches,
        report.packets,
        report.first_mismatch
    );
}

#[test]
fn oracle_covers_every_decision_class() {
    // The default topology mixes local, peered, internet, IDC and
    // cross-region VPCs; with the VM stride withholding mappings the run
    // must exercise hardware forwards, punts of all three reasons, and
    // fallback service — otherwise the oracle's "agreement" is vacuous.
    let (topology, frames, sched) = workload(1_200, 7);
    let dp = Dataplane::build(&topology, DataplaneConfig::default());
    let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();
    let mut fallback = software_forwarder(&topology);
    let report = dp.run_single(&seq, &mut fallback);
    let c = &report.counters;
    assert!(c.hw_forwarded > 0, "{c:?}");
    assert!(c.punt_snat > 0, "{c:?}");
    assert!(c.punt_no_vm > 0, "{c:?}");
    assert!(c.fallback_forwarded > 0, "{c:?}");
    assert!(c.vm_hit_main > 0, "{c:?}");
    assert!(c.route_hits > 0, "{c:?}");
}
