//! The counted table walk.
//!
//! [`walk`] executes the same folded-program decision logic as
//! [`sailfish_xgw_h::XgwH::classify`], but over the table set directly and
//! with a [`TableCounters`] update per stage: each single-step LPM lookup,
//! each peer-VPC recirculation and each VM-NC digest probe is visible to
//! the caller the way a switch pipeline exposes per-stage counters. A
//! property test pins `walk` to `classify` — the two must always agree.

use sailfish_net::GatewayPacket;
use sailfish_tables::acl::AclAction;
use sailfish_tables::digest::DigestLookup;
use sailfish_tables::types::RouteTarget;
use sailfish_xgw_h::program::{HwDropReason, PuntReason};
use sailfish_xgw_h::tables::{HardwareTables, MAX_PEER_HOPS};
use sailfish_xgw_h::HwDecision;

use crate::counters::TableCounters;

/// Virtual per-stage costs in nanoseconds, used by the deterministic
/// executor to derive a reproducible Mpps figure. The constants are sized
/// from the relative stage weights of a Tofino-class pipeline model (parse
/// and rewrite dominated by header touches, x86 fallback ~two orders of
/// magnitude above a hardware stage) — they make deterministic runs
/// comparable, not absolute predictions.
pub mod cost {
    /// Parsing a frame into the packet model.
    pub const PARSE_NS: u64 = 25;
    /// ACL evaluation.
    pub const ACL_NS: u64 = 8;
    /// One single-step LPM lookup (incl. each peer recirculation).
    pub const ROUTE_LOOKUP_NS: u64 = 12;
    /// A VM-NC digest probe.
    pub const VM_LOOKUP_NS: u64 = 10;
    /// Extra cost when the conflict plane resolves the key.
    pub const CONFLICT_PROBE_NS: u64 = 6;
    /// In-place header rewrite and re-encapsulation.
    pub const REWRITE_NS: u64 = 15;
    /// A flow-cache hit (replaces the whole walk).
    pub const CACHE_HIT_NS: u64 = 18;
    /// Handing a punted packet to the x86 path.
    pub const PUNT_HANDOFF_NS: u64 = 60;
    /// The x86 software forwarder serving one packet.
    pub const X86_PROCESS_NS: u64 = 1600;
    /// Per-batch overhead in the multi-worker mode.
    pub const BATCH_OVERHEAD_NS: u64 = 120;
}

/// Walks one packet through the hardware tables, counting each stage.
/// Behaviorally identical to `XgwH::classify`.
pub fn walk(
    tables: &HardwareTables,
    packet: &GatewayPacket,
    counters: &mut TableCounters,
) -> HwDecision {
    let tuple = packet.five_tuple();
    if tables.acl.evaluate(packet.vni, &tuple) == AclAction::Deny {
        counters.acl_denied += 1;
        return HwDecision::Drop(HwDropReason::AclDeny);
    }

    // Manual peer-chain resolution so each recirculation is counted.
    let mut current = packet.vni;
    let mut resolved = None;
    for _ in 0..=MAX_PEER_HOPS {
        counters.route_lookups += 1;
        match tables.routes.lookup(current, packet.inner.dst_ip) {
            None => {
                counters.route_misses += 1;
                counters.punt_no_route += 1;
                return HwDecision::PuntToX86 {
                    packet: *packet,
                    reason: PuntReason::NoHwRoute,
                };
            }
            Some(RouteTarget::Peer(next)) => {
                counters.route_hits += 1;
                counters.peer_hops += 1;
                current = next;
            }
            Some(target) => {
                counters.route_hits += 1;
                resolved = Some((current, target));
                break;
            }
        }
    }
    let Some((final_vni, target)) = resolved else {
        counters.loop_drops += 1;
        return HwDecision::Drop(HwDropReason::RoutingLoop);
    };

    match target {
        RouteTarget::Local => {
            let (nc, trace) = tables.vm_nc.lookup_traced(final_vni, packet.inner.dst_ip);
            match trace {
                DigestLookup::HitMain => counters.vm_hit_main += 1,
                DigestLookup::HitConflict => counters.vm_hit_conflict += 1,
                DigestLookup::Miss => counters.vm_miss += 1,
            }
            match nc {
                Some(nc) => {
                    let mut out = *packet;
                    out.outer.dst_ip = nc.ip;
                    out.vni = final_vni;
                    HwDecision::ToNc { packet: out, nc }
                }
                None => {
                    counters.punt_no_vm += 1;
                    HwDecision::PuntToX86 {
                        packet: *packet,
                        reason: PuntReason::NoVmMapping,
                    }
                }
            }
        }
        RouteTarget::CrossRegion(region) => HwDecision::ToRegion {
            region,
            vni: final_vni,
        },
        RouteTarget::Idc(idc) => HwDecision::ToIdc {
            idc,
            vni: final_vni,
        },
        RouteTarget::InternetSnat => {
            counters.punt_snat += 1;
            HwDecision::PuntToX86 {
                packet: *packet,
                reason: PuntReason::SnatRequired,
            }
        }
        RouteTarget::Peer(_) => unreachable!("peer targets are consumed by the loop"),
    }
}

/// Virtual nanoseconds spent by the walk stages recorded between two
/// counter snapshots (`after - before` must be one packet's worth).
pub fn walk_cost_ns(before: &TableCounters, after: &TableCounters) -> u64 {
    let d = |a: u64, b: u64| a - b;
    let mut ns = cost::ACL_NS;
    ns += cost::ROUTE_LOOKUP_NS * d(after.route_lookups, before.route_lookups);
    let vm_probes = d(after.vm_hit_main, before.vm_hit_main)
        + d(after.vm_hit_conflict, before.vm_hit_conflict)
        + d(after.vm_miss, before.vm_miss);
    ns += cost::VM_LOOKUP_NS * vm_probes;
    ns += cost::CONFLICT_PROBE_NS * d(after.vm_hit_conflict, before.vm_hit_conflict);
    ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_net::packet::GatewayPacketBuilder;
    use sailfish_net::{IpPrefix, Vni};
    use sailfish_tables::types::{IdcId, NcAddr, RegionId, VxlanRouteKey};
    use sailfish_util::check;
    use sailfish_util::rand::rngs::Xoshiro256pp;
    use sailfish_util::rand::Rng;
    use sailfish_xgw_h::XgwH;

    fn vni(v: u32) -> Vni {
        Vni::from_const(v)
    }

    fn prefix(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    /// Builds a random but structured table set: a handful of VNIs with
    /// local subnets, peer chains (including a deliberate loop), external
    /// targets and partial VM coverage.
    fn random_gateway(rng: &mut Xoshiro256pp) -> XgwH {
        let mut g = XgwH::with_defaults();
        let vnis = 4 + rng.gen_range(0..4u32);
        for v in 0..vnis {
            let id = vni(100 + v);
            g.tables
                .routes
                .insert(
                    VxlanRouteKey::new(id, prefix(&format!("10.{v}.0.0/16"))),
                    RouteTarget::Local,
                )
                .unwrap();
            // Peer chain to the next VNI; last one loops back to make the
            // recirculation bound reachable.
            let next = vni(100 + (v + 1) % vnis);
            g.tables
                .routes
                .insert(
                    VxlanRouteKey::new(id, prefix("172.20.0.0/16")),
                    RouteTarget::Peer(next),
                )
                .unwrap();
            if rng.gen_bool(0.5) {
                g.tables
                    .routes
                    .insert(
                        VxlanRouteKey::new(id, prefix("0.0.0.0/0")),
                        RouteTarget::InternetSnat,
                    )
                    .unwrap();
            }
            if rng.gen_bool(0.3) {
                g.tables
                    .routes
                    .insert(
                        VxlanRouteKey::new(id, prefix("192.168.0.0/16")),
                        RouteTarget::CrossRegion(RegionId(v)),
                    )
                    .unwrap();
            }
            if rng.gen_bool(0.3) {
                g.tables
                    .routes
                    .insert(
                        VxlanRouteKey::new(id, prefix("172.16.0.0/13")),
                        RouteTarget::Idc(IdcId(v)),
                    )
                    .unwrap();
            }
            // VM coverage with gaps.
            for host in 1..20u32 {
                if host % 3 == 0 {
                    continue;
                }
                let ip = format!("10.{v}.0.{host}").parse().unwrap();
                g.tables
                    .add_vm(
                        id,
                        ip,
                        NcAddr::new(format!("10.200.{v}.{host}").parse().unwrap()),
                    )
                    .unwrap();
            }
        }
        g
    }

    fn random_packet(rng: &mut Xoshiro256pp) -> GatewayPacket {
        let v = vni(100 + rng.gen_range(0..10u32));
        let dst: core::net::IpAddr = match rng.gen_range(0..6u8) {
            0 => format!(
                "10.{}.0.{}",
                rng.gen_range(0..8u32),
                rng.gen_range(0..32u32)
            )
            .parse()
            .unwrap(),
            1 => "172.20.1.1".parse().unwrap(),
            2 => "192.168.3.4".parse().unwrap(),
            3 => "172.17.0.1".parse().unwrap(),
            4 => "8.8.8.8".parse().unwrap(),
            _ => "203.0.113.7".parse().unwrap(),
        };
        GatewayPacketBuilder::new(v, "10.0.0.2".parse().unwrap(), dst).build()
    }

    #[test]
    fn walk_agrees_with_classify() {
        check::run("walk_agrees_with_classify", 64, |rng| {
            let g = random_gateway(rng);
            let mut counters = TableCounters::default();
            for _ in 0..64 {
                let p = random_packet(rng);
                let expected = g.classify(&p);
                let got = walk(&g.tables, &p, &mut counters);
                assert!(got == expected, "walk {got:?} != classify {expected:?}");
            }
            // The counters must have seen every packet's routing stage
            // except ACL denies (none are configured here).
            assert!(counters.route_lookups >= 64, "lookups {counters:?}");
        });
    }

    #[test]
    fn walk_counts_peer_hops_and_loops() {
        let mut g = XgwH::with_defaults();
        g.tables
            .routes
            .insert(
                VxlanRouteKey::new(vni(1), prefix("10.0.0.0/8")),
                RouteTarget::Peer(vni(2)),
            )
            .unwrap();
        g.tables
            .routes
            .insert(
                VxlanRouteKey::new(vni(2), prefix("10.0.0.0/8")),
                RouteTarget::Peer(vni(1)),
            )
            .unwrap();
        let p = GatewayPacketBuilder::new(
            vni(1),
            "10.0.0.1".parse().unwrap(),
            "10.9.9.9".parse().unwrap(),
        )
        .build();
        let mut c = TableCounters::default();
        assert_eq!(
            walk(&g.tables, &p, &mut c),
            HwDecision::Drop(HwDropReason::RoutingLoop)
        );
        assert_eq!(c.loop_drops, 1);
        assert_eq!(c.route_lookups as usize, MAX_PEER_HOPS + 1);
        assert_eq!(c.peer_hops as usize, MAX_PEER_HOPS + 1);
    }

    #[test]
    fn walk_cost_scales_with_stages() {
        let mut g = XgwH::with_defaults();
        g.tables
            .routes
            .insert(
                VxlanRouteKey::new(vni(1), prefix("10.0.0.0/8")),
                RouteTarget::Local,
            )
            .unwrap();
        g.tables
            .add_vm(
                vni(1),
                "10.0.0.5".parse().unwrap(),
                NcAddr::new("10.200.0.5".parse().unwrap()),
            )
            .unwrap();
        let p = GatewayPacketBuilder::new(
            vni(1),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.5".parse().unwrap(),
        )
        .build();
        let before = TableCounters::default();
        let mut after = before;
        walk(&g.tables, &p, &mut after);
        let ns = walk_cost_ns(&before, &after);
        assert_eq!(
            ns,
            cost::ACL_NS + cost::ROUTE_LOOKUP_NS + cost::VM_LOOKUP_NS
        );
    }
}
