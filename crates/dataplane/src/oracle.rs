//! The differential oracle.
//!
//! A packet served by the hardware executor must reach the same
//! `(next-hop, rewrite)` decision the reference software forwarder
//! (`sailfish_xgw_x86::SoftwareForwarder`) takes for the same packet —
//! including packets the hardware punts, which the fallback forwarder then
//! serves. [`PathDecision`] is the normalized decision both paths map
//! into, and [`differential_run`] replays a frame sequence through both,
//! reporting the first disagreement verbatim.

use sailfish_net::{GatewayPacket, Vni};
use sailfish_tables::types::{IdcId, NcAddr, RegionId};
use sailfish_xgw_x86::{Decision, DropReason};

use crate::executor::Dataplane;

/// Why a packet was ultimately dropped, normalized across both paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropClass {
    /// ACL deny.
    Acl,
    /// Peer-chain loop bound.
    RoutingLoop,
    /// No route anywhere.
    NoRoute,
    /// No VM mapping anywhere.
    NoVmMapping,
    /// SNAT pool exhausted.
    SnatExhausted,
    /// The hardware punt rate limiter rejected the packet.
    PuntRateLimited,
}

/// The normalized end-to-end decision for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathDecision {
    /// Delivered to an NC with the outer header rewritten.
    ToNc {
        /// Destination server.
        nc: NcAddr,
        /// Rewritten VNI.
        vni: Vni,
    },
    /// Handed off to another region.
    ToRegion {
        /// Destination region.
        region: RegionId,
        /// VNI context.
        vni: Vni,
    },
    /// Handed off to an IDC.
    ToIdc {
        /// Destination IDC.
        idc: IdcId,
        /// VNI context.
        vni: Vni,
    },
    /// SNAT'd toward the Internet. The public binding is excluded from
    /// the comparison: allocation order differs between single- and
    /// multi-worker replays, while reaching the SNAT stage at all is the
    /// decision under test.
    ToInternet,
    /// Dropped.
    Drop(DropClass),
}

impl PathDecision {
    /// Maps a software-forwarder decision into the normalized form.
    pub fn from_software(decision: &Decision) -> PathDecision {
        match decision {
            Decision::ToNc { packet, nc } => PathDecision::ToNc {
                nc: *nc,
                vni: packet.vni,
            },
            Decision::ToRegion { region, vni } => PathDecision::ToRegion {
                region: *region,
                vni: *vni,
            },
            Decision::ToIdc { idc, vni } => PathDecision::ToIdc {
                idc: *idc,
                vni: *vni,
            },
            Decision::ToInternet { .. } => PathDecision::ToInternet,
            Decision::Drop(reason) => PathDecision::Drop(match reason {
                DropReason::NoRoute => DropClass::NoRoute,
                DropReason::RoutingLoop => DropClass::RoutingLoop,
                DropReason::NoVmMapping => DropClass::NoVmMapping,
                DropReason::AclDeny => DropClass::Acl,
                DropReason::SnatExhausted => DropClass::SnatExhausted,
            }),
        }
    }

    /// An order-independent 64-bit digest of the decision (FNV-1a over a
    /// canonical byte rendering). Summed over a run it fingerprints the
    /// decision multiset regardless of worker interleaving.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        match self {
            PathDecision::ToNc { nc, vni } => {
                eat(&[1]);
                match nc.ip {
                    core::net::IpAddr::V4(a) => eat(&a.octets()),
                    core::net::IpAddr::V6(a) => eat(&a.octets()),
                }
                eat(&vni.value().to_be_bytes());
            }
            PathDecision::ToRegion { region, vni } => {
                eat(&[2]);
                eat(&region.0.to_be_bytes());
                eat(&vni.value().to_be_bytes());
            }
            PathDecision::ToIdc { idc, vni } => {
                eat(&[3]);
                eat(&idc.0.to_be_bytes());
                eat(&vni.value().to_be_bytes());
            }
            PathDecision::ToInternet => eat(&[4]),
            PathDecision::Drop(class) => eat(&[5, *class as u8]),
        }
        h
    }
}

/// Outcome of a differential replay.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Frames replayed.
    pub packets: u64,
    /// Frames where executor and reference agreed.
    pub agreements: u64,
    /// Frames where they disagreed.
    pub mismatches: u64,
    /// Human-readable description of the first disagreement.
    pub first_mismatch: Option<String>,
}

impl OracleReport {
    /// Whether every packet agreed.
    pub fn holds(&self) -> bool {
        self.mismatches == 0 && self.packets > 0
    }
}

/// Replays `frames` through the executor (punts resolved through
/// `fallback`) and through the independent `reference` forwarder, packet
/// by packet, comparing normalized decisions.
///
/// `fallback` and `reference` must be distinct instances over identical
/// tables: both are stateful (SNAT allocates bindings), and the oracle
/// compares decisions, not shared mutations.
pub fn differential_run(
    dataplane: &Dataplane,
    frames: &[&[u8]],
    fallback: &mut sailfish_xgw_x86::SoftwareForwarder,
    reference: &mut sailfish_xgw_x86::SoftwareForwarder,
) -> OracleReport {
    let mut report = OracleReport {
        packets: 0,
        agreements: 0,
        mismatches: 0,
        first_mismatch: None,
    };
    let mut now_ns = 0u64;
    for (i, frame) in frames.iter().enumerate() {
        let Ok(packet) = GatewayPacket::parse(frame) else {
            // Both paths reject unparsable frames by construction; they
            // are outside the decision comparison.
            continue;
        };
        now_ns += 1_000;
        report.packets += 1;
        let got = dataplane
            .decide_one(frame, fallback, now_ns)
            .expect("frame parsed above");
        let want = PathDecision::from_software(&reference.process(&packet, now_ns));
        if got == want {
            report.agreements += 1;
        } else {
            report.mismatches += 1;
            if report.first_mismatch.is_none() {
                report.first_mismatch = Some(format!(
                    "frame {i}: executor {got:?} != reference {want:?} \
                     (vni {}, dst {})",
                    packet.vni, packet.inner.dst_ip
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_separates_decisions() {
        let a = PathDecision::ToNc {
            nc: NcAddr::new("10.0.0.1".parse().unwrap()),
            vni: Vni::from_const(1),
        };
        let b = PathDecision::ToNc {
            nc: NcAddr::new("10.0.0.2".parse().unwrap()),
            vni: Vni::from_const(1),
        };
        let c = PathDecision::Drop(DropClass::NoRoute);
        let d = PathDecision::Drop(DropClass::Acl);
        let digests = [a.digest(), b.digest(), c.digest(), d.digest()];
        for (i, x) in digests.iter().enumerate() {
            for (j, y) in digests.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y, "decisions {i} and {j} collide");
                }
            }
        }
        assert_eq!(a.digest(), a.digest());
    }

    #[test]
    fn internet_decisions_ignore_binding() {
        use sailfish_tables::snat::{SnatConfig, SnatTable};
        let mut table = SnatTable::new(SnatConfig::default());
        let t1 = sailfish_net::FiveTuple::new(
            "10.0.0.1".parse().unwrap(),
            "8.8.8.8".parse().unwrap(),
            sailfish_net::IpProtocol::Udp,
            1111,
            53,
        );
        let t2 = sailfish_net::FiveTuple::new(
            "10.0.0.2".parse().unwrap(),
            "8.8.8.8".parse().unwrap(),
            sailfish_net::IpProtocol::Udp,
            2222,
            53,
        );
        let b1 = table.translate_outbound(t1, 0).unwrap();
        let b2 = table.translate_outbound(t2, 0).unwrap();
        let d1 = PathDecision::from_software(&Decision::ToInternet { binding: b1 });
        let d2 = PathDecision::from_software(&Decision::ToInternet { binding: b2 });
        assert_eq!(d1, d2);
        assert_eq!(d1.digest(), d2.digest());
    }
}
