//! Wire-frame traffic synthesis from the flow-level workload model.
//!
//! `sim::workload` produces Zipf-weighted flows; this module turns them
//! into real frames: one pre-emitted wire frame per flow (packets of a
//! flow are byte-identical up to payload content the gateway never reads)
//! and a pps-weighted packet schedule indexing into them. Pre-emitting
//! keeps million-packet replays allocation-free on the hot path.

use sailfish_net::packet::GatewayPacketBuilder;
use sailfish_net::rss::Toeplitz;
use sailfish_net::GatewayPacket;
use sailfish_sim::Flow;
use sailfish_util::rand::rngs::StdRng;
use sailfish_util::rand::{Rng, SeedableRng};

/// Builds the gateway packet for one flow.
///
/// The outer UDP source port — the underlay entropy the multi-worker
/// partitioner keys on — is derived from the flow's Toeplitz hash, as a
/// vSwitch would derive it from the inner flow.
pub fn packet_for_flow(flow: &Flow) -> GatewayPacket {
    let mut packet = GatewayPacketBuilder::new(flow.vni, flow.tuple.src_ip, flow.tuple.dst_ip)
        .transport(
            flow.tuple.protocol,
            flow.tuple.src_port,
            flow.tuple.dst_port,
        )
        .build();
    packet.outer.udp_src_port =
        0xC000 | (Toeplitz::default().hash_tuple(&flow.tuple) & 0x3FFF) as u16;
    // Fit the wire length to the flow's mean packet size.
    let overhead = packet.wire_len() - packet.inner.payload_len;
    packet.inner.payload_len = flow.wire_bytes.saturating_sub(overhead);
    packet
}

/// Emits one frame per flow. Flows whose address families cannot be
/// emitted (mixed-family tuples never leave the generator, so this is a
/// defensive filter) are skipped.
pub fn frames_for_flows(flows: &[Flow]) -> Vec<Vec<u8>> {
    flows
        .iter()
        .filter_map(|f| packet_for_flow(f).emit().ok())
        .collect()
}

/// A deterministic pps-weighted schedule of `count` packet slots over the
/// flow set: slot `i` carries a packet of flow `schedule[i]`.
pub fn schedule(flows: &[Flow], count: usize, seed: u64) -> Vec<usize> {
    assert!(!flows.is_empty(), "need at least one flow");
    let mut cumulative = Vec::with_capacity(flows.len());
    let mut total = 0.0f64;
    for f in flows {
        total += f.pps.max(0.0);
        cumulative.push(total);
    }
    assert!(total > 0.0, "workload offers no packets");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let x: f64 = rng.gen::<f64>() * total;
            cumulative.partition_point(|c| *c < x).min(flows.len() - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_sim::{Topology, TopologyConfig, WorkloadConfig};

    fn flows() -> Vec<Flow> {
        let topology = Topology::generate(TopologyConfig::default());
        sailfish_sim::workload::generate_flows(
            &topology,
            &WorkloadConfig {
                flows: 500,
                ..WorkloadConfig::default()
            },
        )
    }

    #[test]
    fn frames_parse_back_to_their_flow() {
        let flows = flows();
        let frames = frames_for_flows(&flows);
        assert_eq!(frames.len(), flows.len());
        for (flow, frame) in flows.iter().zip(&frames) {
            let p = GatewayPacket::parse(frame).unwrap();
            assert_eq!(p.vni, flow.vni);
            assert_eq!(p.five_tuple(), flow.tuple);
            // Frame length tracks the flow's mean packet size (never
            // smaller than the encapsulation floor).
            assert!(frame.len() >= flow.wire_bytes.min(frame.len()));
        }
    }

    #[test]
    fn entropy_port_varies_by_flow() {
        let flows = flows();
        let mut ports = std::collections::HashSet::new();
        for f in flows.iter().take(100) {
            let p = packet_for_flow(f);
            assert!(p.outer.udp_src_port >= 0xC000);
            ports.insert(p.outer.udp_src_port);
        }
        assert!(ports.len() > 20, "only {} distinct ports", ports.len());
    }

    #[test]
    fn schedule_is_deterministic_and_weighted() {
        let flows = flows();
        let a = schedule(&flows, 20_000, 11);
        let b = schedule(&flows, 20_000, 11);
        assert_eq!(a, b);
        // The heaviest flow must out-appear the median flow.
        let heaviest = flows
            .iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| x.pps.partial_cmp(&y.pps).unwrap())
            .unwrap()
            .0;
        let hits = a.iter().filter(|i| **i == heaviest).count();
        assert!(hits > 20_000 / flows.len(), "heavy flow got {hits} slots");
    }
}
