//! Dataplane chaos harness: replay fault schedules against a **live**
//! executor.
//!
//! PR 2's `sim::faults` schedules drive an abstract region model; this
//! harness replays the same six fault kinds against the packet-level
//! [`Dataplane`], with recovery applied the only way a live gateway may
//! apply it: **staged epoch builds published by atomic swap**
//! ([`crate::epoch`]). Per slot the harness
//!
//! 1. derives the degraded [`WorldView`] from the faults active this
//!    slot, stages a rebuild and publishes it (install faults defer or
//!    discard the publish — a torn staged state never goes live),
//! 2. drives a Zipf traffic slice through [`Dataplane::run_single`], and
//! 3. checks three invariants:
//!    - **no black hole** — the accounting identity holds exactly: every
//!      parsed packet is forwarded, intentionally dropped, or served by
//!      a software rung (DPU middle tier or x86 fallback);
//!    - **bounded fallback share** — punts never exceed the degradation's
//!      blast radius (per-frame classification against the published
//!      world) plus a small margin;
//!    - **oracle agreement** — after every published epoch swap, the
//!      differential oracle must find zero mismatches between the
//!      executor and the reference software forwarder.
//!
//! Per-tier share alerts ([`sailfish_cluster::monitor::Alert::DpuShare`]
//! and [`sailfish_cluster::monitor::Alert::FallbackShare`]) are raised
//! from the same measurements, so tests can assert the operator sees each
//! rung's degradation before that rung's circuit breaker opens. When the
//! dataplane runs the three-tier ladder ([`DataplaneConfig::tier`]), the
//! two DPU fault kinds — node death and pool saturation — land in the
//! [`WorldView`] like any other degradation and recover through the same
//! staged-epoch publishes, so consistent-hash re-homing and saturation
//! shedding are chaos-verified alongside the classic six kinds.

use std::collections::{BTreeMap, BTreeSet};

use sailfish_asic::verify::world::{
    trusted_certificate, verify_plan, EntryBudget, MoveStage, TransitionPlan, WorldModel,
    WorldMove, WorldOptions,
};
use sailfish_cluster::controller::InstallPolicy;
use sailfish_cluster::monitor::{evaluate_tier_shares, Alert, WaterLevels};
use sailfish_net::Vni;
use sailfish_sim::faults::{FaultEvent, FaultKind, FaultSchedule, InstallFault};
use sailfish_sim::workload::{self, WorkloadConfig};
use sailfish_sim::Topology;
use sailfish_xgw_h::HwDecision;

use crate::counters::TableCounters;
use crate::engine;
use crate::epoch::{EpochState, LiveMove, MovePhase, WorldView};
use crate::executor::{software_forwarder, Dataplane, DataplaneConfig};
use crate::oracle::differential_run;
use crate::traffic;

/// One scripted make-before-break migration the harness replays against
/// the live executor. Each phase dwells for `dwell` slots and advances
/// Announce → Dual → Commit → Drain; the implied phase transition is
/// published as a fresh epoch (and is therefore subject to any install
/// fault active at that slot, exactly like a recovery publish).
#[derive(Debug, Clone)]
pub struct ScriptedMove {
    /// Anchor VNI of the peer group to migrate (min of the pair — the
    /// key the epoch builder groups by).
    pub anchor: Vni,
    /// Source cluster; must be the group's healthy home for the world to
    /// converge back on rollback.
    pub from: usize,
    /// Destination cluster.
    pub to: usize,
    /// Slot the Announce phase begins.
    pub start: u64,
    /// Slots each phase lasts before advancing (min 1). Drain is
    /// terminal: once reached the group stays on the destination.
    pub dwell: u64,
    /// Roll back instead of advancing past this phase. Only pre-commit
    /// phases (`Announce`, `Dual`) can abort; the move is withdrawn from
    /// the world after the phase's window, returning the group home.
    pub abort_after: Option<MovePhase>,
}

/// Where a scripted move's make-before-break sequence stands at `slot`,
/// or `None` before it starts / after a scripted rollback.
fn move_state_at(mv: &ScriptedMove, slot: u64) -> Option<LiveMove> {
    if slot < mv.start {
        return None;
    }
    let step = (slot - mv.start) / mv.dwell.max(1);
    let phase = match step {
        0 => MovePhase::Announce,
        1 => MovePhase::Dual,
        2 => MovePhase::Commit,
        _ => MovePhase::Drain,
    };
    if let Some(limit) = mv.abort_after {
        if limit < MovePhase::Commit && phase > limit {
            return None; // rolled back: the group is home again
        }
    }
    Some(LiveMove {
        from: mv.from,
        to: mv.to,
        phase,
    })
}

/// What one scripted move actually did across the run, as observed in
/// the **published** worlds (an install fault can delay or absorb a
/// phase; the outcome records what traffic really saw).
#[derive(Debug, Clone)]
pub struct ScriptedMoveOutcome {
    /// Anchor VNI of the migrated group.
    pub anchor: Vni,
    /// Source cluster.
    pub from: usize,
    /// Destination cluster.
    pub to: usize,
    /// Phases that reached a published epoch, in first-seen order.
    pub phases_published: Vec<MovePhase>,
    /// Whether the move reached `Drain` in a published world.
    pub committed: bool,
    /// Whether the move was withdrawn after a pre-commit phase and the
    /// group returned to its source.
    pub rolled_back: bool,
}

/// Harness tuning.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Distinct flows in the traffic pool.
    pub flows: usize,
    /// Frames offered per slot (before storm multipliers).
    pub frames_per_slot: usize,
    /// Seed for workload generation and per-slot scheduling.
    pub traffic_seed: u64,
    /// Frames in the post-swap differential-oracle probe.
    pub probe_frames: usize,
    /// Slack over the computed blast-radius share before the bounded-
    /// fallback invariant trips.
    pub fallback_margin: f64,
    /// Alert thresholds (the per-tier share levels are used here).
    pub levels: WaterLevels,
    /// Retry/backoff policy for publishes under install faults.
    pub install: InstallPolicy,
    /// Live migrations to replay alongside the fault schedule. Empty by
    /// default — the harness then behaves exactly as before.
    pub reshard: Vec<ScriptedMove>,
    /// Replay scripted moves the plan-time world verifier rejected
    /// instead of excluding them. `false` (the production posture) gates
    /// the overlay on the static verdict; `true` is the soundness
    /// differential's ungated arm — the rejected move runs, its dynamic
    /// fallout must be fully explained by the recorded rejection
    /// ([`ChaosReport::soundness_escapes`]).
    pub replay_rejected: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            flows: 600,
            frames_per_slot: 3_000,
            traffic_seed: 0xC4A05,
            probe_frames: 1_200,
            fallback_margin: 0.02,
            levels: WaterLevels::default(),
            install: InstallPolicy::default(),
            reshard: Vec::new(),
            replay_rejected: false,
        }
    }
}

/// Per-slot measurements.
#[derive(Debug, Clone)]
pub struct SlotRecord {
    /// Slot index.
    pub slot: u64,
    /// Frames offered this slot.
    pub offered: u64,
    /// Packets the x86 software fallback served.
    pub fallback_packets: u64,
    /// `fallback_packets / offered`.
    pub fallback_share: f64,
    /// Packets the DPU middle tier served (zero without a configured
    /// tier).
    pub dpu_packets: u64,
    /// `dpu_packets / offered`.
    pub dpu_share: f64,
    /// Blast-radius share the published degradation explains.
    pub expected_fallback_share: f64,
    /// Packets the accounting identity could not explain (invariant 1;
    /// must be zero).
    pub unaccounted: u64,
    /// Punts shed by the meter or the open breaker.
    pub punts_shed: u64,
    /// The epoch the slot's traffic ran against.
    pub epoch: u64,
    /// Whether the published world was degraded during the slot.
    pub degraded: bool,
    /// Whether a `FallbackShare` alert fired.
    pub fallback_alert: bool,
    /// Whether a `DpuShare` alert fired.
    pub dpu_alert: bool,
    /// x86 punt-breaker open transitions observed this slot.
    pub breaker_opened: u64,
    /// DPU-tier breaker open transitions observed this slot.
    pub dpu_breaker_opened: u64,
    /// Punts served by a ring successor because the flow's primary DPU
    /// owner was dead (consistent-hash re-homing in action).
    pub dpu_rehomed: u64,
    /// Punts the DPU tier shed (meter or open breaker) that re-routed to
    /// the x86 rung.
    pub dpu_shed: u64,
    /// Packets a dual-ownership window steered to the secondary owner.
    pub dual_owner_packets: u64,
}

/// Outcome of one scheduled fault.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// Stable fault-kind label.
    pub label: &'static str,
    /// Injection slot.
    pub injected_at: u64,
    /// Slot the schedule clears the fault (recovery may start).
    pub cleared_at: u64,
    /// Slot the recovery actually landed (published world no longer
    /// carries the fault), when it did within the run.
    pub recovered_at: Option<u64>,
    /// Slots from injection until the recovery landed (the MTTR measured
    /// in slots), when recovery landed.
    pub outage_slots: Option<u64>,
    /// Install attempts spent while this fault blocked publishes.
    pub install_attempts: u32,
}

/// A scripted move the plan-time world verifier refused before replay.
#[derive(Debug, Clone)]
pub struct StaticReject {
    /// Anchor VNI of the rejected move.
    pub anchor: Vni,
    /// Source cluster the script named.
    pub from: usize,
    /// Destination cluster the script named.
    pub to: usize,
    /// Slot the move would have started.
    pub start: u64,
    /// The verifier's error diagnostics, `; `-joined.
    pub detail: String,
}

/// One invariant violation (an empty list means the run holds).
#[derive(Debug, Clone)]
pub struct InvariantViolation {
    /// Slot of the violation.
    pub slot: u64,
    /// Which invariant tripped.
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

/// Full harness report.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Per-slot measurements.
    pub slots: Vec<SlotRecord>,
    /// Per-fault outcomes in schedule order.
    pub faults: Vec<FaultOutcome>,
    /// Invariant violations (empty on a passing run).
    pub violations: Vec<InvariantViolation>,
    /// Epoch swaps published across the run.
    pub epochs_swapped: u64,
    /// Publishes discarded by the staged-state verify gate.
    pub discarded_installs: u64,
    /// Differential-oracle probes executed (one per published swap).
    pub oracle_checks: u64,
    /// Total oracle mismatches (must be zero).
    pub oracle_mismatches: u64,
    /// Per-scripted-move outcomes in config order.
    pub moves: Vec<ScriptedMoveOutcome>,
    /// Scripted moves the plan-time world verifier refused (in config
    /// order of the rejected moves). Unless
    /// [`ChaosConfig::replay_rejected`] is set they never reach a
    /// published world.
    pub static_rejects: Vec<StaticReject>,
    /// `(slot, alert)` pairs raised during the run.
    pub alerts: Vec<(u64, Alert)>,
    /// First slot a `FallbackShare` alert fired.
    pub first_fallback_alert_slot: Option<u64>,
    /// First slot the x86 punt breaker opened.
    pub first_breaker_open_slot: Option<u64>,
    /// First slot a `DpuShare` alert fired.
    pub first_dpu_alert_slot: Option<u64>,
    /// First slot the DPU-tier breaker opened.
    pub first_dpu_breaker_open_slot: Option<u64>,
}

impl ChaosReport {
    /// Whether all three invariants held across the whole run.
    pub fn holds(&self) -> bool {
        self.violations.is_empty() && self.oracle_mismatches == 0
    }

    /// The soundness differential: dynamic invariant violations that
    /// neither an injected fault (active in a window covering the slot)
    /// nor a statically rejected — and deliberately replayed — move
    /// explains. A sound plan-time verifier leaves **zero**: everything
    /// that goes wrong at runtime was either injected on purpose or
    /// flagged before the first packet.
    pub fn soundness_escapes(&self, schedule: &FaultSchedule) -> u64 {
        self.violations
            .iter()
            .filter(|v| {
                let faulted = schedule
                    .events
                    .iter()
                    .any(|e| e.at <= v.slot && v.slot <= e.ends_at());
                let flagged = self.static_rejects.iter().any(|r| v.slot >= r.start);
                !faulted && !flagged
            })
            .count() as u64
    }

    /// Mean MTTR in slots over the faults that recovered.
    pub fn mean_mttr_slots(&self) -> f64 {
        let recovered: Vec<u64> = self.faults.iter().filter_map(|f| f.outage_slots).collect();
        if recovered.is_empty() {
            0.0
        } else {
            recovered.iter().sum::<u64>() as f64 / recovered.len() as f64
        }
    }
}

/// The world the faults active at one slot imply, plus the traffic storm
/// multiplier and any install fault blocking publishes. `dpu_nodes` is
/// the configured pool size (0 without a tier — the DPU fault kinds then
/// land in the view but the epoch builder ignores them).
fn world_of(
    active: &[&FaultEvent],
    clusters: usize,
    dpu_nodes: usize,
) -> (WorldView, f64, Option<InstallFault>) {
    let mut world = WorldView::healthy();
    let mut storm = 1.0f64;
    let mut install: Option<InstallFault> = None;
    for event in active {
        match event.kind {
            FaultKind::NodeDeath { cluster, device }
            | FaultKind::PortDegradation {
                cluster, device, ..
            } => {
                world.dead_devices.insert((cluster % clusters, device));
            }
            FaultKind::ClusterFailure { cluster } => {
                world.unassigned_clusters.insert(cluster % clusters);
            }
            FaultKind::TableCorruption { cluster, .. } => {
                world.wiped_clusters.insert(cluster % clusters);
            }
            FaultKind::InstallFailure { fault, .. } => {
                install = Some(fault);
            }
            FaultKind::HeavyHitterStorm { multiplier } => {
                storm *= multiplier.max(1.0);
            }
            FaultKind::ConnectionStorm { multiplier, .. } => {
                // A connection-open storm loads the punt path the same
                // way a heavy-hitter storm loads the pipeline: every NEW
                // connection is a fresh SNAT walk until it is tracked.
                storm *= multiplier.max(1.0);
            }
            FaultKind::DpuNodeDeath { node } => {
                world.dead_dpus.insert((node % dpu_nodes.max(1)) as u16);
            }
            FaultKind::DpuPoolSaturation { .. } => {
                // The epoch's tier map keeps placement but inflates the
                // DPU admission byte cost, shedding overload to x86 —
                // the severity knob shapes experiment meters, not the
                // world view.
                world.dpu_saturated = true;
            }
        }
    }
    (world, storm, install)
}

/// Replays `schedule` against a live dataplane built from `topology`.
pub fn run_schedule(
    topology: &Topology,
    dp_config: DataplaneConfig,
    cfg: &ChaosConfig,
    schedule: &FaultSchedule,
) -> ChaosReport {
    let clusters = dp_config.clusters;
    let dpu_nodes = dp_config
        .tier
        .as_ref()
        .map_or(0usize, |t| usize::from(t.pool.nodes));
    let dp = Dataplane::build(topology, dp_config);

    // Traffic pool: Zipf flows, one wire frame per flow.
    let flows = workload::generate_flows(
        topology,
        &WorkloadConfig {
            seed: cfg.traffic_seed,
            flows: cfg.flows.max(1),
            internet_share: 0.01,
            ..WorkloadConfig::default()
        },
    );
    let frames = traffic::frames_for_flows(&flows);
    let flows = flows.get(..frames.len()).unwrap_or(&flows);

    // Classify every flow against the healthy epoch once: which cluster
    // serves it, and whether the healthy hardware punts it anyway
    // (withheld VM mapping, SNAT, no hardware route). The blast-radius
    // bound is computed from this classification.
    let healthy = dp.pin();
    let flow_cluster: Vec<Option<usize>> = flows
        .iter()
        .map(|f| healthy.directory.cluster_for(f.vni))
        .collect();
    // Peer-group anchor per flow, so the blast-radius bound can widen to
    // every owner of a mid-migration group.
    let anchor_of: BTreeMap<Vni, Vni> = topology
        .vpcs
        .iter()
        .map(|vpc| {
            let anchor = match vpc.peer {
                Some(peer) => vpc.vni.min(peer),
                None => vpc.vni,
            };
            (vpc.vni, anchor)
        })
        .collect();
    let flow_anchor: Vec<Option<Vni>> = flows
        .iter()
        .map(|f| anchor_of.get(&f.vni).copied())
        .collect();
    let healthy_punt: Vec<bool> = flows
        .iter()
        .zip(&flow_cluster)
        .map(|(flow, cluster)| match cluster {
            None => true,
            Some(c) => {
                let packet = traffic::packet_for_flow(flow);
                let mut scratch = TableCounters::default();
                let tables = healthy
                    .clusters
                    .get(*c)
                    .map(|cl| &cl.tables)
                    .expect("healthy directory stays in range");
                matches!(
                    engine::walk(tables, &packet, &mut scratch),
                    HwDecision::PuntToX86 { .. }
                )
            }
        })
        .collect();
    drop(healthy);

    // Plan-time gate over the scripted moves: each migration is verified
    // against the abstract anchor world (one unit per peer-group anchor,
    // home `anchor % clusters` — the epoch builder's own rule) before it
    // may reach a published world. A rejected move is excluded from the
    // replay unless `cfg.replay_rejected` deliberately lets it through
    // (the soundness differential's ungated arm).
    let mut rejected = vec![false; cfg.reshard.len()];
    let mut static_rejects: Vec<StaticReject> = Vec::new();
    if !cfg.reshard.is_empty() {
        let mut anchor_world = WorldModel::new("chaos-anchors", clusters);
        let anchors: BTreeSet<Vni> = anchor_of.values().copied().collect();
        for anchor in &anchors {
            anchor_world.add_unit(
                u64::from(anchor.value()),
                1,
                1,
                anchor.value() as usize % clusters,
            );
        }
        let certificate = trusted_certificate(&anchor_world);
        // Capacity is not the dataplane harness's concern (the epoch
        // builder holds whole tables per cluster); the gate proves the
        // ownership and phase-order invariants.
        let budget = EntryBudget {
            max_routes: usize::MAX,
            max_vms: usize::MAX,
        };
        let options = WorldOptions::default();
        for (i, mv) in cfg.reshard.iter().enumerate() {
            let stages = match mv.abort_after {
                Some(MovePhase::Announce) => vec![MoveStage::Announce],
                Some(MovePhase::Dual) => vec![MoveStage::Announce, MoveStage::Dual],
                _ => MoveStage::SEQUENCE.to_vec(),
            };
            let plan = TransitionPlan {
                moves: vec![WorldMove {
                    units: vec![u64::from(mv.anchor.value())],
                    from: mv.from,
                    to: mv.to,
                    stages,
                }],
            };
            let verdict = verify_plan(&anchor_world, &certificate, &plan, &budget, &options);
            if !verdict.is_clean() {
                rejected[i] = true;
                static_rejects.push(StaticReject {
                    anchor: mv.anchor,
                    from: mv.from,
                    to: mv.to,
                    start: mv.start,
                    detail: verdict.error_detail(),
                });
            }
        }
    }

    // Oracle probe slice, fixed across the run.
    let probe_idx = traffic::schedule(flows, cfg.probe_frames.max(1), cfg.traffic_seed ^ 0xA11CE);
    let probe: Vec<&[u8]> = probe_idx
        .iter()
        .filter_map(|i| frames.get(*i).map(|f| f.as_slice()))
        .collect();

    let mut report = ChaosReport {
        slots: Vec::new(),
        faults: schedule
            .events
            .iter()
            .map(|e| FaultOutcome {
                label: e.kind.label(),
                injected_at: e.at,
                cleared_at: e.ends_at(),
                recovered_at: None,
                outage_slots: None,
                install_attempts: 0,
            })
            .collect(),
        violations: Vec::new(),
        epochs_swapped: 0,
        discarded_installs: 0,
        oracle_checks: 0,
        oracle_mismatches: 0,
        moves: cfg
            .reshard
            .iter()
            .map(|mv| ScriptedMoveOutcome {
                anchor: mv.anchor,
                from: mv.from,
                to: mv.to,
                phases_published: Vec::new(),
                committed: false,
                rolled_back: false,
            })
            .collect(),
        static_rejects,
        alerts: Vec::new(),
        first_fallback_alert_slot: None,
        first_breaker_open_slot: None,
        first_dpu_alert_slot: None,
        first_dpu_breaker_open_slot: None,
    };

    let mut published_world = WorldView::healthy();

    for slot in 0..schedule.slots {
        let active: Vec<&FaultEvent> = schedule
            .events
            .iter()
            .filter(|e| slot >= e.at && slot < e.ends_at())
            .collect();
        let (mut target_world, storm, install_fault) = world_of(&active, clusters, dpu_nodes);
        for (i, mv) in cfg.reshard.iter().enumerate() {
            if rejected.get(i).copied().unwrap_or(false) && !cfg.replay_rejected {
                continue; // gated on the static verdict: never published
            }
            if let Some(live) = move_state_at(mv, slot) {
                target_world.moves.insert(mv.anchor, live);
            }
        }

        // Sync the published epoch to the target world. Install faults
        // gate the publish: a timeout burns every attempt, a partial push
        // leaves torn epoch tags that the verify gate rejects.
        let mut published_this_slot = false;
        if target_world != published_world {
            match install_fault {
                Some(InstallFault::Timeout) => {
                    for event in &active {
                        if matches!(event.kind, FaultKind::InstallFailure { .. }) {
                            record_attempts(&mut report.faults, event, cfg.install.max_attempts);
                        }
                    }
                }
                Some(InstallFault::Partial { .. }) => {
                    // Stage, tear one cluster's tag the way a half-landed
                    // push would, and let the verify gate discard it.
                    let mut staged = EpochState::build_with_world(
                        topology,
                        dp.config(),
                        dp.next_epoch(),
                        &target_world,
                    );
                    if let Some(first) = staged.clusters.first_mut() {
                        first.epoch_tag = staged.epoch.wrapping_sub(1);
                    }
                    if staged.tags_consistent() {
                        // Cannot happen with a cluster present; publish
                        // would be legal.
                        dp.publish(staged);
                        published_this_slot = true;
                        published_world = target_world.clone();
                    } else {
                        report.discarded_installs += 1;
                        for event in &active {
                            if matches!(event.kind, FaultKind::InstallFailure { .. }) {
                                record_attempts(
                                    &mut report.faults,
                                    event,
                                    cfg.install.max_attempts,
                                );
                            }
                        }
                    }
                }
                None => {
                    let staged = EpochState::build_with_world(
                        topology,
                        dp.config(),
                        dp.next_epoch(),
                        &target_world,
                    );
                    dp.publish(staged);
                    published_this_slot = true;
                    published_world = target_world.clone();
                }
            }
        }

        // Record what each scripted move's group actually experienced:
        // phases only count once they reach a *published* world.
        for (mv, outcome) in cfg.reshard.iter().zip(report.moves.iter_mut()) {
            match published_world.moves.get(&mv.anchor) {
                Some(live) => {
                    if !outcome.phases_published.contains(&live.phase) {
                        outcome.phases_published.push(live.phase);
                    }
                    if live.phase == MovePhase::Drain {
                        outcome.committed = true;
                    }
                }
                None => {
                    if !outcome.phases_published.is_empty() && !outcome.committed {
                        outcome.rolled_back = true;
                    }
                }
            }
        }

        // Invariant 3: after every published swap the oracle must agree.
        if published_this_slot {
            let mut fb = software_forwarder(topology);
            let mut reference = software_forwarder(topology);
            let oracle = differential_run(&dp, &probe, &mut fb, &mut reference);
            report.oracle_checks += 1;
            report.oracle_mismatches += oracle.mismatches;
            if oracle.mismatches > 0 {
                report.violations.push(InvariantViolation {
                    slot,
                    invariant: "oracle_agreement",
                    detail: format!(
                        "{} mismatches in {} probe packets after epoch swap",
                        oracle.mismatches, oracle.packets
                    ),
                });
            }
        }

        // Mark recoveries: a fault is recovered once its clearing slot
        // has passed and the published world has converged back to the
        // target implied by the faults still active.
        if published_world == target_world {
            for (event, outcome) in schedule.events.iter().zip(report.faults.iter_mut()) {
                if outcome.recovered_at.is_none() && slot >= event.ends_at() {
                    outcome.recovered_at = Some(slot);
                    outcome.outage_slots = Some(slot.saturating_sub(event.at));
                }
            }
        }

        // Drive the slot's Zipf traffic slice.
        let count = ((cfg.frames_per_slot.max(1) as f64) * storm) as usize;
        let sched = traffic::schedule(
            flows,
            count,
            cfg.traffic_seed
                .wrapping_add((slot + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let seq: Vec<&[u8]> = sched
            .iter()
            .filter_map(|i| frames.get(*i).map(|f| f.as_slice()))
            .collect();
        let mut fallback = software_forwarder(topology);
        let run = dp.run_single(&seq, &mut fallback);
        let c = &run.counters;

        // Invariant 1: no black hole. Two exact accounting identities,
        // checked as absolute differences so a broken identity reports a
        // violation instead of underflowing.
        let decided = c.hw_forwarded + c.acl_denied + c.loop_drops + c.punted();
        let unaccounted = c.parsed.abs_diff(decided);
        let punt_served = c.dpu_forwarded
            + c.dpu_dropped
            + c.fallback_forwarded
            + c.fallback_dropped
            + c.punt_rate_limited
            + c.punt_breaker_open;
        let punt_residue = c.punted().abs_diff(punt_served);
        if unaccounted != 0 || punt_residue != 0 || c.parse_errors != 0 {
            report.violations.push(InvariantViolation {
                slot,
                invariant: "no_black_hole",
                detail: format!(
                    "unaccounted={} punt_residue={} parse_errors={}",
                    unaccounted, punt_residue, c.parse_errors
                ),
            });
        }
        if c.epoch_violations != 0 {
            report.violations.push(InvariantViolation {
                slot,
                invariant: "epoch_consistency",
                detail: format!("{} packets saw torn epoch tags", c.epoch_violations),
            });
        }

        // Invariant 2: bounded fallback share. Expected share is the
        // exact blast radius of the *published* degradation plus the
        // healthy punt baseline.
        let degraded_clusters: Vec<usize> = published_world
            .wiped_clusters
            .iter()
            .chain(published_world.unassigned_clusters.iter())
            .copied()
            .collect();
        let expected_punts = sched
            .iter()
            .filter(|i| {
                if healthy_punt.get(**i).copied().unwrap_or(true) {
                    return true;
                }
                // A mid-migration group may be served by either owner, so
                // the bound widens to every cluster the published phase
                // lets traffic land on.
                let live = flow_anchor
                    .get(**i)
                    .copied()
                    .flatten()
                    .and_then(|anchor| published_world.moves.get(&anchor));
                let owners: [Option<usize>; 2] = match live {
                    Some(mv) => match mv.phase {
                        MovePhase::Announce => [Some(mv.from), None],
                        MovePhase::Dual => [Some(mv.from), Some(mv.to)],
                        MovePhase::Commit | MovePhase::Drain => [Some(mv.to), None],
                    },
                    None => [flow_cluster.get(**i).copied().flatten(), None],
                };
                owners
                    .iter()
                    .flatten()
                    .any(|c| degraded_clusters.contains(c))
            })
            .count() as u64;
        let offered = seq.len() as u64;
        let expected_share = if offered == 0 {
            0.0
        } else {
            expected_punts as f64 / offered as f64
        };
        let actual_punt_share = if c.parsed == 0 {
            0.0
        } else {
            c.punted() as f64 / c.parsed as f64
        };
        if actual_punt_share > expected_share + cfg.fallback_margin {
            report.violations.push(InvariantViolation {
                slot,
                invariant: "bounded_fallback_share",
                detail: format!(
                    "punt share {:.4} exceeds blast radius {:.4} + margin {:.4}",
                    actual_punt_share, expected_share, cfg.fallback_margin
                ),
            });
        }

        // Per-tier alerts and breaker observations: the monitor sees one
        // share per software rung and must alarm on each strictly before
        // the matching breaker opens.
        let fallback_share = if offered == 0 {
            0.0
        } else {
            run.fallback_packets as f64 / offered as f64
        };
        let dpu_share = if offered == 0 {
            0.0
        } else {
            run.dpu_packets as f64 / offered as f64
        };
        let tier_alerts = evaluate_tier_shares(dpu_share, fallback_share, cfg.levels);
        let dpu_alert = tier_alerts
            .iter()
            .any(|a| matches!(a, Alert::DpuShare { .. }));
        let fallback_alert = tier_alerts
            .iter()
            .any(|a| matches!(a, Alert::FallbackShare { .. }));
        for alert in tier_alerts {
            report.alerts.push((slot, alert));
        }
        if dpu_alert && report.first_dpu_alert_slot.is_none() {
            report.first_dpu_alert_slot = Some(slot);
        }
        if fallback_alert && report.first_fallback_alert_slot.is_none() {
            report.first_fallback_alert_slot = Some(slot);
        }
        if run.breaker.opened > 0 && report.first_breaker_open_slot.is_none() {
            report.first_breaker_open_slot = Some(slot);
        }
        if run.dpu_breaker.opened > 0 && report.first_dpu_breaker_open_slot.is_none() {
            report.first_dpu_breaker_open_slot = Some(slot);
        }

        report.slots.push(SlotRecord {
            slot,
            offered,
            fallback_packets: run.fallback_packets,
            fallback_share,
            expected_fallback_share: expected_share,
            dpu_packets: run.dpu_packets,
            dpu_share,
            dpu_rehomed: c.dpu_rehomed,
            dpu_shed: c.dpu_shed_meter + c.dpu_breaker_open,
            unaccounted,
            punts_shed: c.punt_rate_limited + c.punt_breaker_open,
            epoch: dp.pin().epoch,
            degraded: published_world.is_degraded(),
            fallback_alert,
            dpu_alert,
            breaker_opened: run.breaker.opened,
            dpu_breaker_opened: run.dpu_breaker.opened,
            dual_owner_packets: c.dual_owner_packets,
        });
    }

    report.epochs_swapped = dp.epoch_swaps();
    report
}

fn record_attempts(faults: &mut [FaultOutcome], event: &FaultEvent, attempts: u32) {
    // Attribute attempts to the matching outcome (same injection slot and
    // label — schedules never duplicate both).
    for outcome in faults.iter_mut() {
        if outcome.injected_at == event.at && outcome.label == event.kind.label() {
            outcome.install_attempts += attempts;
            return;
        }
    }
}

/// The anchor whose peer group splits most evenly across the two owners
/// under the dual-window flow-hash parity — so dual-window assertions
/// (and the chaos sweep's scripted-move arms) always observe traffic on
/// both sides. Returns the anchor and its home cluster under the epoch
/// builder's `anchor % clusters` rule. Deterministic for a given
/// topology and traffic seed.
pub fn busiest_anchor(topology: &Topology, cfg: &ChaosConfig, clusters: usize) -> (Vni, usize) {
    use sailfish_net::rss::Toeplitz;
    let flows = workload::generate_flows(
        topology,
        &WorkloadConfig {
            seed: cfg.traffic_seed,
            flows: cfg.flows.max(1),
            internet_share: 0.01,
            ..WorkloadConfig::default()
        },
    );
    let frames = traffic::frames_for_flows(&flows);
    let anchor_of: BTreeMap<Vni, Vni> = topology
        .vpcs
        .iter()
        .map(|vpc| {
            let anchor = match vpc.peer {
                Some(peer) => vpc.vni.min(peer),
                None => vpc.vni,
            };
            (vpc.vni, anchor)
        })
        .collect();
    let hasher = Toeplitz::default();
    let mut parity: BTreeMap<Vni, (usize, usize)> = BTreeMap::new();
    for (flow, frame) in flows.iter().zip(&frames) {
        let Some(a) = anchor_of.get(&flow.vni) else {
            continue;
        };
        let Ok(packet) = sailfish_net::GatewayPacket::parse(frame) else {
            continue;
        };
        let slot = parity.entry(*a).or_insert((0, 0));
        if hasher.hash_tuple(&packet.five_tuple()) & 1 == 0 {
            slot.0 += 1;
        } else {
            slot.1 += 1;
        }
    }
    let (anchor, _) = parity
        .into_iter()
        .max_by_key(|(a, (even, odd))| (*even.min(odd), even + odd, *a))
        .expect("workload covers some VPC");
    let from = anchor.value() as usize % clusters;
    (anchor, from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_sim::faults::FaultScheduleConfig;
    use sailfish_sim::TopologyConfig;

    fn quick_cfg() -> ChaosConfig {
        ChaosConfig {
            flows: 300,
            frames_per_slot: 800,
            probe_frames: 400,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn generated_schedule_holds_all_invariants() {
        let topology = Topology::generate(TopologyConfig::default());
        let schedule = FaultSchedule::generate(&FaultScheduleConfig {
            slots: 12,
            fault_rate: 0.5,
            ..FaultScheduleConfig::default()
        });
        let report = run_schedule(
            &topology,
            DataplaneConfig::default(),
            &quick_cfg(),
            &schedule,
        );
        assert!(report.holds(), "violations: {:?}", report.violations);
        assert_eq!(report.oracle_mismatches, 0);
        assert_eq!(report.slots.len(), 12);
        if !schedule.events.is_empty() {
            assert!(report.epochs_swapped > 0);
        }
    }

    #[test]
    fn corruption_degrades_and_recovers_with_epoch_swaps() {
        let topology = Topology::generate(TopologyConfig::default());
        let schedule = FaultSchedule::from_events(
            8,
            vec![FaultEvent {
                at: 2,
                duration: 3,
                kind: FaultKind::TableCorruption {
                    cluster: 0,
                    device: 0,
                },
            }],
        );
        let report = run_schedule(
            &topology,
            DataplaneConfig::default(),
            &quick_cfg(),
            &schedule,
        );
        assert!(report.holds(), "violations: {:?}", report.violations);
        // Inject swap + recovery swap.
        assert_eq!(report.epochs_swapped, 2);
        let outcome = report.faults.first().unwrap();
        assert_eq!(outcome.recovered_at, Some(5));
        assert_eq!(outcome.outage_slots, Some(3));
        // Degraded slots show elevated fallback share and raise alerts.
        let degraded: Vec<&SlotRecord> = report.slots.iter().filter(|s| s.degraded).collect();
        assert_eq!(degraded.len(), 3);
        assert!(degraded.iter().all(|s| s.fallback_alert));
        // After recovery the share returns to the healthy baseline.
        let last = report.slots.last().unwrap();
        assert!(!last.degraded);
        assert!(last.fallback_share < degraded[0].fallback_share);
    }

    #[test]
    fn fallback_alerts_fire_before_the_breaker_opens() {
        let topology = Topology::generate(TopologyConfig::default());
        // A punt meter sized to absorb the healthy punt baseline but not
        // a wiped cluster's punt storm: the negligible refill makes the
        // burst the whole per-slot budget.
        let dp_config = DataplaneConfig {
            punt_rate_bps: 8_000,
            punt_burst_bytes: 120_000,
            ..DataplaneConfig::default()
        };
        let schedule = FaultSchedule::from_events(
            6,
            vec![FaultEvent {
                at: 2,
                duration: 3,
                kind: FaultKind::TableCorruption {
                    cluster: 0,
                    device: 0,
                },
            }],
        );
        let report = run_schedule(&topology, dp_config, &quick_cfg(), &schedule);
        assert!(report.holds(), "violations: {:?}", report.violations);
        // The healthy punt baseline (withheld VM mappings, SNAT) already
        // crosses the 1% fallback water level, so the operator-facing
        // alert fires from the first slot...
        let alert_slot = report
            .first_fallback_alert_slot
            .expect("fallback alerts must fire");
        // ...while the breaker only opens once the wiped cluster floods
        // the punt path past the meter at slot 2.
        let breaker_slot = report
            .first_breaker_open_slot
            .expect("the punt storm must open the breaker");
        assert!(
            alert_slot < breaker_slot,
            "alert at slot {alert_slot} must precede breaker open at slot {breaker_slot}"
        );
        assert_eq!(breaker_slot, 2);
        // Healthy slots never trip the breaker (the meter may clip a few
        // punts at the margin, but never enough consecutive rejects).
        for s in report.slots.iter().filter(|s| !s.degraded) {
            assert_eq!(s.breaker_opened, 0, "slot {} opened the breaker", s.slot);
        }
        // Degraded slots shed punts (meter first, then the open breaker).
        assert!(report
            .slots
            .iter()
            .filter(|s| s.degraded)
            .all(|s| s.punts_shed > 0));
    }

    #[test]
    fn scripted_move_commits_and_splits_dual_traffic() {
        let topology = Topology::generate(TopologyConfig::default());
        let mut cfg = quick_cfg();
        let clusters = DataplaneConfig::default().clusters;
        let (anchor, from) = busiest_anchor(&topology, &cfg, clusters);
        let to = (from + 1) % clusters;
        cfg.reshard = vec![ScriptedMove {
            anchor,
            from,
            to,
            start: 1,
            dwell: 2,
            abort_after: None,
        }];
        let schedule = FaultSchedule::from_events(10, vec![]);
        let report = run_schedule(&topology, DataplaneConfig::default(), &cfg, &schedule);
        assert!(report.holds(), "violations: {:?}", report.violations);
        // One publish per phase transition: Announce, Dual, Commit, Drain.
        assert_eq!(report.epochs_swapped, 4);
        assert_eq!(report.oracle_checks, 4);
        let mv = report.moves.first().unwrap();
        assert!(mv.committed);
        assert!(!mv.rolled_back);
        assert_eq!(
            mv.phases_published,
            vec![
                MovePhase::Announce,
                MovePhase::Dual,
                MovePhase::Commit,
                MovePhase::Drain
            ]
        );
        // The dual window (slots 3–4) splits the group's flows across
        // both owners; outside it no packet is steered to a secondary.
        let dual_total: u64 = report.slots.iter().map(|s| s.dual_owner_packets).sum();
        assert!(dual_total > 0, "dual window steered nothing");
        for s in report.slots.iter().filter(|s| s.slot < 3 || s.slot >= 5) {
            assert_eq!(s.dual_owner_packets, 0, "slot {}", s.slot);
        }
    }

    #[test]
    fn aborted_move_rolls_back_to_the_source() {
        let topology = Topology::generate(TopologyConfig::default());
        let mut cfg = quick_cfg();
        let clusters = DataplaneConfig::default().clusters;
        let (anchor, from) = busiest_anchor(&topology, &cfg, clusters);
        let to = (from + 1) % clusters;
        cfg.reshard = vec![ScriptedMove {
            anchor,
            from,
            to,
            start: 1,
            dwell: 2,
            abort_after: Some(MovePhase::Dual),
        }];
        let schedule = FaultSchedule::from_events(10, vec![]);
        let report = run_schedule(&topology, DataplaneConfig::default(), &cfg, &schedule);
        assert!(report.holds(), "violations: {:?}", report.violations);
        let mv = report.moves.first().unwrap();
        assert!(mv.rolled_back);
        assert!(!mv.committed);
        assert_eq!(
            mv.phases_published,
            vec![MovePhase::Announce, MovePhase::Dual]
        );
        // Announce, Dual, then the rollback republish of the home world.
        assert_eq!(report.epochs_swapped, 3);
    }

    #[test]
    fn poison_move_is_statically_rejected_and_gated_out() {
        let topology = Topology::generate(TopologyConfig::default());
        let mut cfg = quick_cfg();
        let clusters = DataplaneConfig::default().clusters;
        let (anchor, from) = busiest_anchor(&topology, &cfg, clusters);
        // Destination outside the cluster set: from Commit on the
        // directory would point into the void.
        cfg.reshard = vec![ScriptedMove {
            anchor,
            from,
            to: clusters + 3,
            start: 1,
            dwell: 2,
            abort_after: None,
        }];
        let schedule = FaultSchedule::from_events(8, vec![]);
        let report = run_schedule(&topology, DataplaneConfig::default(), &cfg, &schedule);
        assert!(report.holds(), "violations: {:?}", report.violations);
        let reject = report
            .static_rejects
            .first()
            .expect("move must be rejected");
        assert!(
            reject.detail.contains("SF-E008"),
            "unexpected detail: {}",
            reject.detail
        );
        // Gated out: the poison move never reaches a published world.
        assert_eq!(report.epochs_swapped, 0);
        assert!(report.moves.first().unwrap().phases_published.is_empty());
        assert_eq!(report.soundness_escapes(&schedule), 0);
    }

    #[test]
    fn replayed_poison_move_violates_only_where_statically_flagged() {
        // The ungated arm of the soundness differential: replay the same
        // rejected move and every dynamic invariant violation it causes
        // must be explained by the recorded static rejection — zero
        // escapes means the verifier flagged everything that went wrong.
        let topology = Topology::generate(TopologyConfig::default());
        let mut cfg = quick_cfg();
        let clusters = DataplaneConfig::default().clusters;
        let (anchor, from) = busiest_anchor(&topology, &cfg, clusters);
        cfg.reshard = vec![ScriptedMove {
            anchor,
            from,
            to: clusters + 3,
            start: 1,
            dwell: 2,
            abort_after: None,
        }];
        cfg.replay_rejected = true;
        let schedule = FaultSchedule::from_events(8, vec![]);
        let report = run_schedule(&topology, DataplaneConfig::default(), &cfg, &schedule);
        assert_eq!(report.static_rejects.len(), 1);
        assert!(
            !report.holds(),
            "the replayed poison move must violate invariants at runtime"
        );
        assert!(report
            .violations
            .iter()
            .all(|v| v.slot >= report.static_rejects[0].start));
        assert_eq!(report.soundness_escapes(&schedule), 0);
    }

    #[test]
    fn move_survives_node_death_in_the_dual_window() {
        let topology = Topology::generate(TopologyConfig::default());
        let mut cfg = quick_cfg();
        let clusters = DataplaneConfig::default().clusters;
        let (anchor, from) = busiest_anchor(&topology, &cfg, clusters);
        let to = (from + 1) % clusters;
        cfg.reshard = vec![ScriptedMove {
            anchor,
            from,
            to,
            start: 1,
            dwell: 2,
            abort_after: None,
        }];
        // Kill a destination device for the whole dual window: ECMP must
        // absorb it with no black hole and no oracle drift.
        let schedule = FaultSchedule::from_events(
            10,
            vec![FaultEvent {
                at: 3,
                duration: 3,
                kind: FaultKind::NodeDeath {
                    cluster: to,
                    device: 1,
                },
            }],
        );
        let report = run_schedule(&topology, DataplaneConfig::default(), &cfg, &schedule);
        assert!(report.holds(), "violations: {:?}", report.violations);
        let mv = report.moves.first().unwrap();
        assert!(mv.committed, "phases: {:?}", mv.phases_published);
        assert!(report.epochs_swapped >= 4);
    }

    #[test]
    fn partial_install_is_discarded_then_lands_after_fault_clears() {
        let topology = Topology::generate(TopologyConfig::default());
        let schedule = FaultSchedule::from_events(
            8,
            vec![
                FaultEvent {
                    at: 1,
                    duration: 2,
                    kind: FaultKind::InstallFailure {
                        cluster: 0,
                        device: 0,
                        fault: InstallFault::Partial { fraction: 0.5 },
                    },
                },
                FaultEvent {
                    at: 1,
                    duration: 4,
                    kind: FaultKind::NodeDeath {
                        cluster: 1,
                        device: 1,
                    },
                },
            ],
        );
        let report = run_schedule(
            &topology,
            DataplaneConfig::default(),
            &quick_cfg(),
            &schedule,
        );
        assert!(report.holds(), "violations: {:?}", report.violations);
        // The degradation publish at slot 1/2 is blocked by the partial
        // install; the verify gate discards the torn state.
        assert!(report.discarded_installs > 0);
        let install = report
            .faults
            .iter()
            .find(|f| f.label == "install_failure")
            .unwrap();
        assert!(install.install_attempts > 0);
        // Once the install fault clears at slot 3 the degradation swap
        // lands; the recovery at slot 5 is the second swap.
        assert_eq!(report.epochs_swapped, 2);
    }

    fn tiered_config() -> DataplaneConfig {
        DataplaneConfig {
            tier: Some(crate::tier::TierConfig::default()),
            ..DataplaneConfig::default()
        }
    }

    #[test]
    fn dpu_node_death_rehomes_only_its_flows_and_recovers() {
        let topology = Topology::generate(TopologyConfig::default());
        let schedule = FaultSchedule::from_events(
            8,
            vec![FaultEvent {
                at: 2,
                duration: 3,
                kind: FaultKind::DpuNodeDeath { node: 1 },
            }],
        );
        let report = run_schedule(&topology, tiered_config(), &quick_cfg(), &schedule);
        assert!(report.holds(), "violations: {:?}", report.violations);
        // Death publish + recovery publish, and a bounded MTTR.
        assert_eq!(report.epochs_swapped, 2);
        let outcome = report.faults.first().unwrap();
        assert_eq!(outcome.recovered_at, Some(5));
        assert_eq!(outcome.outage_slots, Some(3));
        // Three live nodes still own the whole ring, so every punt keeps
        // being served at the DPU rung — nothing degrades to x86.
        assert!(report.slots.iter().all(|s| s.fallback_packets == 0));
        assert!(report.slots.iter().all(|s| s.dpu_packets > 0));
        // Bounded churn: ring successors serve the dead node's flows only
        // while it is dead; outside the window nothing is re-homed.
        let window: u64 = report
            .slots
            .iter()
            .filter(|s| (2..5).contains(&s.slot))
            .map(|s| s.dpu_rehomed)
            .sum();
        assert!(window > 0, "the dead node owned some punted flows");
        for s in report.slots.iter().filter(|s| s.slot < 2 || s.slot >= 5) {
            assert_eq!(
                s.dpu_rehomed, 0,
                "slot {} re-homed outside the window",
                s.slot
            );
        }
    }

    #[test]
    fn dpu_saturation_sheds_spills_to_the_x86_rung() {
        let topology = Topology::generate(TopologyConfig::default());
        // A DPU admission meter sized to absorb the healthy punt baseline
        // but not the saturation-inflated byte cost (16x): the negligible
        // refill makes the burst the whole per-slot budget.
        let dp_config = DataplaneConfig {
            tier: Some(crate::tier::TierConfig {
                dpu_rate_bps: 8_000,
                dpu_burst_bytes: 600_000,
                ..crate::tier::TierConfig::default()
            }),
            ..DataplaneConfig::default()
        };
        let schedule = FaultSchedule::from_events(
            8,
            vec![FaultEvent {
                at: 2,
                duration: 3,
                kind: FaultKind::DpuPoolSaturation { severity: 8.0 },
            }],
        );
        let report = run_schedule(&topology, dp_config, &quick_cfg(), &schedule);
        assert!(report.holds(), "violations: {:?}", report.violations);
        assert_eq!(report.epochs_swapped, 2);
        for s in &report.slots {
            if (2..5).contains(&s.slot) {
                // Saturated slots shed at the DPU meter and the sheds
                // re-route down the ladder — packets, never drops.
                assert!(s.dpu_shed > 0, "slot {} shed nothing", s.slot);
                assert!(s.fallback_packets > 0, "slot {} x86 served nothing", s.slot);
            } else {
                assert_eq!(s.dpu_shed, 0, "slot {} shed while healthy", s.slot);
                assert_eq!(s.fallback_packets, 0, "slot {} leaked to x86", s.slot);
            }
        }
    }

    #[test]
    fn dpu_alert_fires_before_the_dpu_breaker_opens() {
        let topology = Topology::generate(TopologyConfig::default());
        // Tight DPU meter (same shape as the x86 arm above): the healthy
        // punt baseline fits, a wiped cluster's punt storm does not.
        let dp_config = DataplaneConfig {
            tier: Some(crate::tier::TierConfig {
                dpu_rate_bps: 8_000,
                dpu_burst_bytes: 120_000,
                ..crate::tier::TierConfig::default()
            }),
            ..DataplaneConfig::default()
        };
        // The healthy DPU share sits above 1% (it absorbs the whole punt
        // baseline), so lowering the DPU water level to the x86 one makes
        // the operator-facing alert fire from slot 0.
        let mut cfg = quick_cfg();
        cfg.levels = WaterLevels {
            dpu_share_level: cfg.levels.fallback_level,
            ..cfg.levels
        };
        let schedule = FaultSchedule::from_events(
            6,
            vec![FaultEvent {
                at: 2,
                duration: 3,
                kind: FaultKind::TableCorruption {
                    cluster: 0,
                    device: 0,
                },
            }],
        );
        let report = run_schedule(&topology, dp_config, &cfg, &schedule);
        assert!(report.holds(), "violations: {:?}", report.violations);
        let alert_slot = report.first_dpu_alert_slot.expect("DPU alerts must fire");
        let breaker_slot = report
            .first_dpu_breaker_open_slot
            .expect("the punt storm must open the DPU breaker");
        assert!(
            alert_slot < breaker_slot,
            "DPU alert at slot {alert_slot} must precede breaker open at slot {breaker_slot}"
        );
        assert_eq!(breaker_slot, 2);
        // Healthy slots never trip the DPU breaker.
        for s in report.slots.iter().filter(|s| !s.degraded) {
            assert_eq!(
                s.dpu_breaker_opened, 0,
                "slot {} opened the breaker",
                s.slot
            );
        }
    }

    #[test]
    fn generated_schedule_with_tier_holds_all_invariants() {
        let topology = Topology::generate(TopologyConfig::default());
        let schedule = FaultSchedule::generate(&FaultScheduleConfig {
            slots: 12,
            fault_rate: 0.6,
            dpu_nodes: 4,
            ..FaultScheduleConfig::default()
        });
        let report = run_schedule(&topology, tiered_config(), &quick_cfg(), &schedule);
        assert!(report.holds(), "violations: {:?}", report.violations);
        assert_eq!(report.oracle_mismatches, 0);
        assert_eq!(report.slots.len(), 12);
        // The three-tier ladder serves every punt it admits.
        assert!(report.slots.iter().any(|s| s.dpu_packets > 0));
    }
}
