//! Epoch-consistent table state for live updates.
//!
//! Control-plane installs must never tear the dataplane's view: a packet
//! that starts its walk against epoch `N` tables must finish against
//! epoch `N` tables, for *every* table it touches (directory, routes,
//! VM/NC, ECMP membership). The executor gets that guarantee RCU-style:
//!
//! - the full region table state lives in an immutable [`EpochState`]
//!   behind an [`EpochCell`];
//! - workers **pin** the current state once per batch ([`EpochCell::pin`])
//!   and walk only the pinned snapshot;
//! - installs **stage** a complete replacement state off to the side
//!   ([`EpochState::build_with_world`]) and **publish** it with a single
//!   atomic pointer swap ([`EpochCell::publish`]).
//!
//! Readers therefore observe entirely-old or entirely-new tables, never a
//! mix. Every cluster carries the epoch it was built under
//! ([`ClusterTables::epoch_tag`]); the executor cross-checks the tag
//! against the pinned epoch on every packet and counts any disagreement
//! as an `epoch_violations` torn-state event (zero in a correct build —
//! the counter exists so tests can prove it).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use sailfish_cluster::lb::{EcmpGroup, VniDirectory};
use sailfish_net::Vni;
use sailfish_sim::Topology;
use sailfish_xgw_h::tables::HardwareTables;

use crate::executor::DataplaneConfig;

/// One hardware cluster inside an epoch: shared tables plus the device
/// ECMP group, stamped with the epoch they were built under.
#[derive(Debug)]
pub struct ClusterTables {
    /// The epoch this cluster's tables belong to. Always equals the
    /// owning [`EpochState::epoch`]; the executor verifies it per packet.
    pub epoch_tag: u64,
    /// The cluster's verified table set.
    pub tables: HardwareTables,
    /// ECMP group over the cluster's live devices.
    pub ecmp: EcmpGroup,
}

/// Dataplane-visible phase of a live make-before-break VNI migration.
///
/// Mirrors the pre-terminal phases of `sailfish_cluster::reshard`'s move
/// state machine: the control plane publishes one epoch per transition
/// and the packet path changes ownership only at `Commit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MovePhase {
    /// Destination tables are staged and verified; traffic still flows
    /// to the source only.
    Announce,
    /// Both owners hold the tables; per-flow hashing may direct a packet
    /// to either — no black hole regardless of which one serves it.
    Dual,
    /// Directory retargeted to the destination; source tables linger so
    /// in-flight batches pinned to the prior epoch stay served.
    Commit,
    /// Source tables freed; the destination is the only owner.
    Drain,
}

/// One in-flight VNI-group migration, keyed in [`WorldView::moves`] by
/// the peer group's **anchor** VNI (min of the pair, the same grouping
/// the directory build uses). Every VNI in the group moves together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveMove {
    /// Current owner the group is moving away from.
    pub from: usize,
    /// Destination cluster.
    pub to: usize,
    /// Where the make-before-break sequence currently stands.
    pub phase: MovePhase,
}

/// Which parts of the region are degraded when (re)building table state.
///
/// The chaos harness translates fault injections into a `WorldView` and
/// rebuilds the epoch from it; recovery publishes a healthy view again.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorldView {
    /// Devices removed from their cluster's ECMP group
    /// (`(cluster, device)`): node death or a degraded port.
    pub dead_devices: BTreeSet<(usize, usize)>,
    /// Clusters whose tables are lost (corruption detected, entries
    /// quarantined): traffic punts to x86 until reinstall.
    pub wiped_clusters: BTreeSet<usize>,
    /// Clusters withdrawn from the VNI directory entirely (cluster-wide
    /// failure): their VNIs lose hardware service and default-route to
    /// the software tier.
    pub unassigned_clusters: BTreeSet<usize>,
    /// Live migrations keyed by peer-group anchor VNI. Empty when no
    /// re-shard is in flight — the common case, and byte-identical to
    /// the pre-elasticity world.
    pub moves: BTreeMap<Vni, LiveMove>,
    /// DPU middle-tier nodes removed from the spill ring (node death):
    /// their flows re-home to ring successors; ignored when the region
    /// runs without a DPU tier.
    pub dead_dpus: BTreeSet<u16>,
    /// Whether the DPU pool is saturated: placement is unchanged but the
    /// tier's admission meter charges an inflated byte cost, shedding
    /// overload to x86 instead of queueing it.
    pub dpu_saturated: bool,
}

impl WorldView {
    /// A fully healthy region.
    pub fn healthy() -> Self {
        WorldView::default()
    }

    /// Whether any degradation is present.
    pub fn is_degraded(&self) -> bool {
        !self.dead_devices.is_empty()
            || !self.wiped_clusters.is_empty()
            || !self.unassigned_clusters.is_empty()
            || !self.dead_dpus.is_empty()
            || self.dpu_saturated
    }
}

/// A complete, immutable region table state for one epoch.
#[derive(Debug)]
pub struct EpochState {
    /// Monotonically increasing version of the table state.
    pub epoch: u64,
    /// VNI → cluster horizontal split.
    pub directory: VniDirectory,
    /// Per-cluster tables and ECMP membership.
    pub clusters: Vec<ClusterTables>,
    /// The SNAT tier's promoted hot-flow snapshot for this epoch, if
    /// the region runs a stateful SNAT service. `None` punts every SNAT
    /// packet to x86. Sealed with its own epoch tag so a rebalance can
    /// only ship inside the epoch it was computed for.
    pub snat: Option<Arc<sailfish_snat::SnatOffload>>,
    /// The DPU middle tier's placement map for this epoch, if the region
    /// runs the three-tier ladder. `None` keeps the historical binary
    /// punt (every miss degrades straight to x86). Built from the same
    /// [`WorldView`] as the tables and stamped with the same epoch so
    /// placement can never tear against the table swap.
    pub tier: Option<Arc<crate::tier::TierMap>>,
}

impl EpochState {
    /// Builds a healthy region state from a topology: VNIs are assigned
    /// to clusters so peered VPCs co-locate (their chains must resolve
    /// without leaving the cluster), routes follow their VNI's cluster,
    /// and every `hw_vm_stride`-th VM mapping is withheld from the chip.
    pub fn build(topology: &Topology, config: &DataplaneConfig, epoch: u64) -> Self {
        Self::build_with_world(topology, config, epoch, &WorldView::healthy())
    }

    /// Builds a region state under a degraded [`WorldView`]. This is the
    /// staging half of an install: the state is assembled off to the side
    /// and only becomes visible via [`EpochCell::publish`].
    pub fn build_with_world(
        topology: &Topology,
        config: &DataplaneConfig,
        epoch: u64,
        world: &WorldView,
    ) -> Self {
        assert!(config.clusters > 0 && config.devices_per_cluster > 0);
        let mut directory = VniDirectory::new();
        // VNI → (primary owner, optional second table holder). During a
        // live move both owners carry the group's tables so either can
        // serve a flow; outside a move the pair is just (home, None).
        let mut table_owners: BTreeMap<Vni, (usize, Option<usize>)> = BTreeMap::new();
        for vpc in &topology.vpcs {
            let anchor = match vpc.peer {
                Some(peer) => vpc.vni.min(peer),
                None => vpc.vni,
            };
            let home = anchor.value() as usize % config.clusters;
            let (primary, dual, extra) = match world.moves.get(&anchor) {
                Some(mv) => match mv.phase {
                    MovePhase::Announce => (mv.from, None, Some(mv.to)),
                    MovePhase::Dual => (mv.from, Some(mv.to), Some(mv.to)),
                    MovePhase::Commit => (mv.to, None, Some(mv.from)),
                    MovePhase::Drain => (mv.to, None, None),
                },
                None => (home, None, None),
            };
            if world.unassigned_clusters.contains(&primary) {
                continue; // the VNI falls back to the software tier
            }
            directory.assign(vpc.vni, primary);
            if let Some(s) = dual {
                if s != primary && !world.unassigned_clusters.contains(&s) {
                    directory.begin_dual(vpc.vni, s);
                }
            }
            let extra = extra.filter(|c| *c != primary && !world.unassigned_clusters.contains(c));
            table_owners.insert(vpc.vni, (primary, extra));
        }

        let mut clusters: Vec<ClusterTables> = (0..config.clusters)
            .map(|c| {
                let mut ecmp = EcmpGroup::new(config.ecmp_max);
                for d in 0..config.devices_per_cluster {
                    if world.dead_devices.contains(&(c, d)) {
                        continue;
                    }
                    ecmp.add(d).expect("devices_per_cluster under the cap");
                }
                ClusterTables {
                    epoch_tag: epoch,
                    tables: HardwareTables::default(),
                    ecmp,
                }
            })
            .collect();

        for (key, target) in &topology.routes {
            let Some(&(primary, extra)) = table_owners.get(&key.vni) else {
                continue; // VNI withdrawn from hardware
            };
            for c in std::iter::once(primary).chain(extra) {
                if world.wiped_clusters.contains(&c) {
                    continue;
                }
                let Some(cluster) = clusters.get_mut(c) else {
                    continue; // owner outside the cluster set: x86 serves it
                };
                cluster
                    .tables
                    .routes
                    .insert(*key, *target)
                    .expect("topology routes are unique");
            }
        }
        let stride = config.hw_vm_stride.max(1);
        for (i, vm) in topology.vms.iter().enumerate() {
            if i % stride == 0 {
                continue; // stays on x86
            }
            let Some(&(primary, extra)) = table_owners.get(&vm.vni) else {
                continue;
            };
            for c in std::iter::once(primary).chain(extra) {
                if world.wiped_clusters.contains(&c) {
                    continue;
                }
                let Some(cluster) = clusters.get_mut(c) else {
                    continue;
                };
                cluster
                    .tables
                    .add_vm(vm.vni, vm.ip, vm.nc)
                    .expect("topology VMs are unique");
            }
        }

        let tier = config
            .tier
            .as_ref()
            .map(|t| Arc::new(crate::tier::TierMap::build(t, epoch, world)));

        EpochState {
            epoch,
            directory,
            clusters,
            snat: None,
            tier,
        }
    }

    /// Attaches a sealed SNAT offload snapshot to this (staged, not yet
    /// published) state. Panics if the snapshot was sealed for a
    /// different epoch — the control plane must recompute a rebalance
    /// rather than smuggle a stale promotion set forward.
    pub fn with_snat(mut self, offload: sailfish_snat::SnatOffload) -> Self {
        assert_eq!(
            offload.epoch_tag, self.epoch,
            "SNAT offload sealed for epoch {} cannot ship in epoch {}",
            offload.epoch_tag, self.epoch
        );
        self.snat = Some(Arc::new(offload));
        self
    }

    /// Attaches a sealed tier placement map to this (staged, not yet
    /// published) state. Panics on an epoch-tag mismatch, mirroring
    /// [`EpochState::with_snat`]: a placement map computed for another
    /// epoch must be rebuilt, never smuggled forward.
    pub fn with_tier(mut self, map: crate::tier::TierMap) -> Self {
        assert_eq!(
            map.epoch_tag, self.epoch,
            "tier map sealed for epoch {} cannot ship in epoch {}",
            map.epoch_tag, self.epoch
        );
        self.tier = Some(Arc::new(map));
        self
    }

    /// Whether every cluster's epoch tag — and the SNAT snapshot's and
    /// tier map's, when attached — matches the state's epoch: the
    /// torn-state self-check installs run before publishing.
    pub fn tags_consistent(&self) -> bool {
        self.clusters.iter().all(|c| c.epoch_tag == self.epoch)
            && self.snat.as_ref().is_none_or(|s| s.epoch_tag == self.epoch)
            && self.tier.as_ref().is_none_or(|t| t.epoch_tag == self.epoch)
    }
}

/// The swap point between the control plane and the packet workers.
///
/// Deterministic single-worker runs and scoped multi-worker runs share
/// the same mechanism: `pin` takes a read lock just long enough to clone
/// the `Arc`, `publish` takes the write lock just long enough to replace
/// it. A pinned snapshot stays alive (and entirely consistent) for as
/// long as any batch still holds the `Arc`, even after newer epochs
/// publish — classic RCU grace-period behavior without unsafe code.
#[derive(Debug)]
pub struct EpochCell {
    current: RwLock<Arc<EpochState>>,
    swaps: AtomicU64,
}

impl EpochCell {
    /// Creates the cell with its initial state.
    pub fn new(state: EpochState) -> Self {
        EpochCell {
            current: RwLock::new(Arc::new(state)),
            swaps: AtomicU64::new(0),
        }
    }

    /// Pins the current epoch state. Callers hold the returned `Arc` for
    /// the duration of a batch so every packet in it sees one epoch.
    pub fn pin(&self) -> Arc<EpochState> {
        Arc::clone(&self.current.read().expect("epoch lock poisoned"))
    }

    /// Atomically publishes a staged state, returning its epoch.
    ///
    /// Panics if the staged epoch does not advance past the published one
    /// or the staged state is internally torn — both are control-plane
    /// bugs that must never reach the workers.
    pub fn publish(&self, state: EpochState) -> u64 {
        assert!(state.tags_consistent(), "staged state has torn epoch tags");
        let mut cur = self.current.write().expect("epoch lock poisoned");
        assert!(
            state.epoch > cur.epoch,
            "epoch must advance: staged {} vs published {}",
            state.epoch,
            cur.epoch
        );
        let epoch = state.epoch;
        *cur = Arc::new(state);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        epoch
    }

    /// How many publishes have happened.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_sim::TopologyConfig;

    fn topology() -> Topology {
        Topology::generate(TopologyConfig::default())
    }

    #[test]
    fn healthy_build_tags_every_cluster() {
        let state = EpochState::build(&topology(), &DataplaneConfig::default(), 3);
        assert_eq!(state.epoch, 3);
        assert!(state.tags_consistent());
        assert_eq!(state.clusters.len(), DataplaneConfig::default().clusters);
    }

    #[test]
    fn publish_swaps_and_enforces_monotonic_epochs() {
        let topo = topology();
        let config = DataplaneConfig::default();
        let cell = EpochCell::new(EpochState::build(&topo, &config, 0));
        assert_eq!(cell.pin().epoch, 0);
        assert_eq!(cell.swaps(), 0);
        let pinned = cell.pin();
        cell.publish(EpochState::build(&topo, &config, 1));
        // The old pin stays alive and untouched after the swap.
        assert_eq!(pinned.epoch, 0);
        assert_eq!(cell.pin().epoch, 1);
        assert_eq!(cell.swaps(), 1);
    }

    #[test]
    #[should_panic(expected = "epoch must advance")]
    fn publish_rejects_stale_epochs() {
        let topo = topology();
        let config = DataplaneConfig::default();
        let cell = EpochCell::new(EpochState::build(&topo, &config, 5));
        cell.publish(EpochState::build(&topo, &config, 5));
    }

    #[test]
    fn live_moves_dual_own_tables_and_retarget_at_commit() {
        let topo = topology();
        let config = DataplaneConfig::default();
        let healthy = EpochState::build(&topo, &config, 0);

        // Pick a peer group that actually owns routes so the table
        // movement is observable.
        let routed_vni = topo
            .routes
            .iter()
            .map(|(k, _)| k.vni)
            .next()
            .expect("default topology has routes");
        let vpc = topo
            .vpcs
            .iter()
            .find(|v| v.vni == routed_vni)
            .expect("routed VNI has a VPC");
        let anchor = match vpc.peer {
            Some(peer) => vpc.vni.min(peer),
            None => vpc.vni,
        };
        let from = anchor.value() as usize % config.clusters;
        let to = (from + 1) % config.clusters;
        let group: Vec<Vni> = topo
            .vpcs
            .iter()
            .filter(|v| {
                let a = match v.peer {
                    Some(peer) => v.vni.min(peer),
                    None => v.vni,
                };
                a == anchor
            })
            .map(|v| v.vni)
            .collect();
        let moved_routes = topo
            .routes
            .iter()
            .filter(|(k, _)| group.contains(&k.vni))
            .count();
        assert!(moved_routes > 0);
        let healthy_from = healthy.clusters.get(from).unwrap().tables.routes.len();
        let healthy_to = healthy.clusters.get(to).unwrap().tables.routes.len();

        let staged = |phase: MovePhase, epoch: u64| {
            let mut world = WorldView::healthy();
            world.moves.insert(anchor, LiveMove { from, to, phase });
            EpochState::build_with_world(&topo, &config, epoch, &world)
        };

        // Announce: traffic stays on the source; destination pre-staged.
        let announce = staged(MovePhase::Announce, 1);
        for vni in &group {
            assert_eq!(announce.directory.cluster_for(*vni), Some(from));
            assert_eq!(announce.directory.dual_of(*vni), None);
        }
        let a_to = announce.clusters.get(to).unwrap().tables.routes.len();
        assert_eq!(a_to, healthy_to + moved_routes);
        let a_from = announce.clusters.get(from).unwrap().tables.routes.len();
        assert_eq!(a_from, healthy_from);

        // Dual: either owner may serve; both hold the tables.
        let dual = staged(MovePhase::Dual, 2);
        for vni in &group {
            assert_eq!(dual.directory.cluster_for(*vni), Some(from));
            assert_eq!(dual.directory.dual_of(*vni), Some(to));
        }
        assert_eq!(
            dual.clusters.get(to).unwrap().tables.routes.len(),
            healthy_to + moved_routes
        );

        // Commit: directory retargets; source tables linger for pinned
        // batches on the prior epoch.
        let commit = staged(MovePhase::Commit, 3);
        for vni in &group {
            assert_eq!(commit.directory.cluster_for(*vni), Some(to));
            assert_eq!(commit.directory.dual_of(*vni), None);
        }
        assert_eq!(
            commit.clusters.get(from).unwrap().tables.routes.len(),
            healthy_from
        );

        // Drain: the source frees the group's entries.
        let drain = staged(MovePhase::Drain, 4);
        for vni in &group {
            assert_eq!(drain.directory.cluster_for(*vni), Some(to));
        }
        assert_eq!(
            drain.clusters.get(from).unwrap().tables.routes.len(),
            healthy_from - moved_routes
        );
        assert_eq!(
            drain.clusters.get(to).unwrap().tables.routes.len(),
            healthy_to + moved_routes
        );
        assert!(drain.tags_consistent());
    }

    #[test]
    fn tier_map_builds_with_the_epoch_and_checks_tags() {
        let topo = topology();
        let config = DataplaneConfig {
            tier: Some(crate::tier::TierConfig::default()),
            ..DataplaneConfig::default()
        };
        let mut world = WorldView::healthy();
        world.dead_dpus.insert(1);
        world.dpu_saturated = true;
        assert!(world.is_degraded());
        let state = EpochState::build_with_world(&topo, &config, 7, &world);
        let tier = state.tier.as_ref().expect("tier configured");
        assert_eq!(tier.epoch_tag, 7);
        assert!(tier.saturated);
        assert_eq!(tier.pool.dead(), &BTreeSet::from([1u16]));
        assert!(state.tags_consistent());
    }

    #[test]
    #[should_panic(expected = "tier map sealed for epoch")]
    fn with_tier_rejects_a_stale_map() {
        let topo = topology();
        let config = DataplaneConfig::default();
        let state = EpochState::build(&topo, &config, 2);
        let stale = crate::tier::TierMap::build(
            &crate::tier::TierConfig::default(),
            1,
            &WorldView::healthy(),
        );
        let _ = state.with_tier(stale);
    }

    #[test]
    fn degraded_world_removes_devices_and_tables() {
        let topo = topology();
        let config = DataplaneConfig::default();
        let mut world = WorldView::healthy();
        assert!(!world.is_degraded());
        world.dead_devices.insert((0, 1));
        world.wiped_clusters.insert(1);
        world.unassigned_clusters.insert(2);
        assert!(world.is_degraded());

        let healthy = EpochState::build(&topo, &config, 0);
        let degraded = EpochState::build_with_world(&topo, &config, 1, &world);
        let h0 = healthy.clusters.first().unwrap();
        let d0 = degraded.clusters.first().unwrap();
        assert_eq!(d0.ecmp.len(), h0.ecmp.len() - 1);
        let d1 = degraded.clusters.get(1).unwrap();
        assert_eq!(d1.tables.routes.len(), 0);
        // Withdrawn cluster: no VNI maps to it any more.
        let snapshot = degraded.directory.snapshot();
        assert!(snapshot.iter().all(|(_, c)| *c != 2));
        // Healthy directory does use cluster 2.
        assert!(healthy.directory.snapshot().iter().any(|(_, c)| *c == 2));
    }
}
