//! Flow caches for the scalar and batch executors.
//!
//! Gateways front the table pipeline with an exact-match flow cache: the
//! first packet of a flow takes the full walk, later packets replay the
//! recorded action. Two implementations live here:
//!
//! - [`ShardedFlowCache`]: the scalar executor's no-evict sharded map
//!   (insertion fails when a shard is full). Shards are selected by the
//!   same Toeplitz hash the underlay RSS uses. Kept as-is — it is the
//!   behavior the differential oracle and the committed artifacts pin.
//! - [`FlowCache`]: the batch hot path's evicting cache, an S3-FIFO
//!   (small probationary FIFO + main FIFO + ghost fingerprints) over a
//!   preallocated slab. It survives millions of flows within a bounded
//!   footprint, never allocates after construction, and its one-hit
//!   wonders churn through the small queue without displacing the hot
//!   working set in main. Eviction order is a pure function of the
//!   operation sequence, so batch runs stay deterministic.

use std::collections::{HashMap, VecDeque};

use sailfish_net::rss::Toeplitz;
use sailfish_net::view::FlowKey;
use sailfish_net::{FiveTuple, Vni};
use sailfish_tables::types::{IdcId, NcAddr, RegionId};

/// The replayable outcome of a table walk for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedAction {
    /// Forward to an NC after rewrite.
    ToNc {
        /// Destination server.
        nc: NcAddr,
        /// Rewritten VNI.
        vni: Vni,
    },
    /// Hand off to another region.
    ToRegion {
        /// Destination region.
        region: RegionId,
        /// VNI context.
        vni: Vni,
    },
    /// Hand off to an IDC.
    ToIdc {
        /// Destination IDC.
        idc: IdcId,
        /// VNI context.
        vni: Vni,
    },
    /// Punt: the route needs stateful SNAT.
    PuntSnat,
    /// Punt: no hardware route.
    PuntNoRoute,
    /// Punt: VM mapping off-chip.
    PuntNoVm,
    /// Drop: ACL deny.
    DropAcl,
    /// Drop: peer-chain loop bound.
    DropLoop,
}

/// An exact-match `(VNI, inner 5-tuple)` → action cache split into shards.
#[derive(Debug)]
pub struct ShardedFlowCache {
    shards: Vec<HashMap<(Vni, FiveTuple), CachedAction>>,
    capacity_per_shard: usize,
    hasher: Toeplitz,
}

impl ShardedFlowCache {
    /// Creates a cache with `shards` shards of `capacity_per_shard` flows.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedFlowCache {
            shards: (0..shards).map(|_| HashMap::new()).collect(),
            capacity_per_shard,
            hasher: Toeplitz::default(),
        }
    }

    fn shard_for(&self, tuple: &FiveTuple) -> usize {
        self.hasher.hash_tuple(tuple) as usize % self.shards.len()
    }

    /// Looks up the cached action for a flow.
    pub fn get(&self, vni: Vni, tuple: &FiveTuple) -> Option<CachedAction> {
        self.shards[self.shard_for(tuple)]
            .get(&(vni, *tuple))
            .copied()
    }

    /// Records an action; returns `false` (and stores nothing) when the
    /// flow's shard is full.
    pub fn insert(&mut self, vni: Vni, tuple: &FiveTuple, action: CachedAction) -> bool {
        let idx = self.shard_for(tuple);
        let shard = &mut self.shards[idx];
        if shard.len() >= self.capacity_per_shard && !shard.contains_key(&(vni, *tuple)) {
            return false;
        }
        shard.insert((vni, *tuple), action);
        true
    }

    /// Total cached flows.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no flow is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached flow (table update invalidation).
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }

    /// Per-shard occupancy, for balance diagnostics.
    pub fn occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }
}

/// The replayable outcome the batch pipeline caches per flow: the action
/// plus everything needed to skip the walk entirely on a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowOutcome {
    /// The recorded table-walk action.
    pub action: CachedAction,
    /// Flattened ECMP device slot (`cluster_idx * devices_per_cluster +
    /// device`), or [`FlowOutcome::NO_SLOT`] when the flow never reached
    /// device selection (directory miss).
    pub slot: u32,
    /// Precomputed decision digest for actions whose digest does not
    /// depend on the x86 fallback (0 for punts, which resolve later).
    pub digest: u64,
}

impl FlowOutcome {
    /// Sentinel slot for flows that bypass ECMP device selection.
    pub const NO_SLOT: u32 = u32::MAX;
}

const INDEX_EMPTY: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct SlabEntry {
    key: FlowKey,
    hash: u64,
    outcome: FlowOutcome,
    freq: u8,
}

/// An S3-FIFO evicting flow cache over a preallocated slab.
///
/// Layout: a slab of entries plus a free list (bounded residency), an
/// open-addressing index (linear probing at ≤ 0.5 load, backward-shift
/// deletion so scans cannot build tombstone chains), two FIFO queues —
/// `small` (probationary, ~10% of capacity) and `main` — and a
/// direct-mapped ghost table of fingerprints remembering keys recently
/// evicted from `small`.
///
/// Policy: new keys enter `small`; a key evicted from `small` without
/// ever being re-hit leaves only a ghost fingerprint behind; a key whose
/// ghost is still resident re-enters straight into `main`; `main`
/// evictions give entries with nonzero frequency a second pass. The net
/// effect is strict scan resistance — a flood of one-hit flows recycles
/// the small queue and never displaces the hot set in `main` — which the
/// seeded property tests assert exactly.
///
/// No operation allocates after construction: `get`/`insert`/`clear`
/// only move fixed-size values between preallocated arrays.
#[derive(Debug)]
pub struct FlowCache {
    slab: Vec<SlabEntry>,
    free: Vec<u32>,
    index: Vec<u32>,
    small: VecDeque<u32>,
    main: VecDeque<u32>,
    ghost: Vec<u64>,
    capacity: usize,
    small_target: usize,
    hits: u64,
    misses: u64,
}

impl FlowCache {
    /// Maximum per-entry frequency (2 bits, as in the S3-FIFO paper).
    const FREQ_MAX: u8 = 3;

    /// Creates a cache bounding residency to `capacity` flows. All
    /// storage is allocated here, up front.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flow cache needs capacity");
        let index_len = (capacity * 2).next_power_of_two();
        FlowCache {
            slab: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            index: vec![INDEX_EMPTY; index_len],
            small: VecDeque::with_capacity(capacity),
            main: VecDeque::with_capacity(capacity),
            ghost: vec![0; capacity.next_power_of_two()],
            capacity,
            small_target: (capacity / 10).max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a flow, counting a hit or miss and bumping the entry's
    /// frequency on a hit.
    #[inline]
    pub fn get(&mut self, key: &FlowKey) -> Option<FlowOutcome> {
        match self.probe(key) {
            Some((_, slot)) => {
                let entry = &mut self.slab[slot as usize];
                entry.freq = (entry.freq + 1).min(Self::FREQ_MAX);
                self.hits += 1;
                Some(entry.outcome)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a flow without touching counters or frequencies (test
    /// oracle use; the hot path always goes through [`FlowCache::get`]).
    pub fn peek(&self, key: &FlowKey) -> Option<FlowOutcome> {
        self.probe(key)
            .map(|(_, slot)| self.slab[slot as usize].outcome)
    }

    /// Records a flow's outcome, evicting per S3-FIFO when at capacity.
    /// A resident key is updated in place.
    pub fn insert(&mut self, key: FlowKey, outcome: FlowOutcome) {
        if let Some((_, slot)) = self.probe(&key) {
            self.slab[slot as usize].outcome = outcome;
            return;
        }
        while self.len() >= self.capacity {
            self.evict_one();
        }
        let hash = key.mix();
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = SlabEntry {
                    key,
                    hash,
                    outcome,
                    freq: 0,
                };
                slot
            }
            None => {
                let slot = self.slab.len() as u32;
                self.slab.push(SlabEntry {
                    key,
                    hash,
                    outcome,
                    freq: 0,
                });
                slot
            }
        };
        self.index_insert(hash, slot);
        let ghost_pos = hash as usize & (self.ghost.len() - 1);
        if self.ghost[ghost_pos] == hash {
            // Recently evicted from small and back already: skip probation.
            self.ghost[ghost_pos] = 0;
            self.main.push_back(slot);
        } else {
            self.small.push_back(slot);
        }
    }

    /// Evicts exactly one resident entry per the S3-FIFO policy.
    fn evict_one(&mut self) {
        loop {
            if self.small.len() >= self.small_target {
                let slot = self.small.pop_front().expect("small non-empty");
                let entry = self.slab[slot as usize];
                if entry.freq > 0 {
                    // Re-hit during probation: promote instead of evicting.
                    self.main.push_back(slot);
                    continue;
                }
                // One-hit wonder: leave only a ghost fingerprint behind.
                let ghost_pos = entry.hash as usize & (self.ghost.len() - 1);
                self.ghost[ghost_pos] = entry.hash;
                self.release(slot, entry.hash);
                return;
            }
            match self.main.pop_front() {
                Some(slot) => {
                    let freq = self.slab[slot as usize].freq;
                    if freq > 0 {
                        // Second chance: decay and recycle to the tail.
                        self.slab[slot as usize].freq = freq - 1;
                        self.main.push_back(slot);
                        continue;
                    }
                    let hash = self.slab[slot as usize].hash;
                    self.release(slot, hash);
                    return;
                }
                // Main empty: fall through to draining small regardless
                // of the target (only possible at tiny capacities).
                None => {
                    let slot = self.small.pop_front().expect("cache non-empty");
                    let entry = self.slab[slot as usize];
                    let ghost_pos = entry.hash as usize & (self.ghost.len() - 1);
                    self.ghost[ghost_pos] = entry.hash;
                    self.release(slot, entry.hash);
                    return;
                }
            }
        }
    }

    /// Returns a slab slot to the free list and unlinks it from the index.
    fn release(&mut self, slot: u32, hash: u64) {
        let mask = self.index.len() - 1;
        let mut pos = hash as usize & mask;
        loop {
            match self.index[pos] {
                s if s == slot => break,
                INDEX_EMPTY => unreachable!("resident entry missing from index"),
                _ => pos = (pos + 1) & mask,
            }
        }
        self.index_remove(pos);
        self.free.push(slot);
    }

    #[inline]
    fn probe(&self, key: &FlowKey) -> Option<(usize, u32)> {
        let hash = key.mix();
        let mask = self.index.len() - 1;
        let mut pos = hash as usize & mask;
        loop {
            let slot = self.index[pos];
            if slot == INDEX_EMPTY {
                return None;
            }
            let entry = &self.slab[slot as usize];
            if entry.hash == hash && entry.key == *key {
                return Some((pos, slot));
            }
            pos = (pos + 1) & mask;
        }
    }

    fn index_insert(&mut self, hash: u64, slot: u32) {
        let mask = self.index.len() - 1;
        let mut pos = hash as usize & mask;
        while self.index[pos] != INDEX_EMPTY {
            pos = (pos + 1) & mask;
        }
        self.index[pos] = slot;
    }

    /// Backward-shift deletion: closes the probe chain without leaving a
    /// tombstone, so delete-heavy scan workloads cannot degrade probes.
    fn index_remove(&mut self, mut pos: usize) {
        let mask = self.index.len() - 1;
        self.index[pos] = INDEX_EMPTY;
        let mut probe = pos;
        loop {
            probe = (probe + 1) & mask;
            let slot = self.index[probe];
            if slot == INDEX_EMPTY {
                return;
            }
            let home = self.slab[slot as usize].hash as usize & mask;
            // Shift back iff the hole sits inside this entry's probe path
            // (cyclic distance from home to the hole ≤ distance to the
            // entry's current position).
            let dist_to_probe = probe.wrapping_sub(home) & mask;
            let dist_to_hole = pos.wrapping_sub(home) & mask;
            if dist_to_hole <= dist_to_probe {
                self.index[pos] = slot;
                self.index[probe] = INDEX_EMPTY;
                pos = probe;
            }
        }
    }

    /// Resident flows.
    pub fn len(&self) -> usize {
        self.slab.len() - self.free.len()
    }

    /// Whether no flow is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The residency bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime `get` hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime `get` misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every resident flow and ghost (table-update invalidation),
    /// keeping all allocations and the hit/miss history.
    pub fn clear(&mut self) {
        self.slab.clear();
        self.free.clear();
        self.index.fill(INDEX_EMPTY);
        self.small.clear();
        self.main.clear();
        self.ghost.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_net::IpProtocol;

    fn tuple(i: u32) -> FiveTuple {
        FiveTuple::new(
            core::net::Ipv4Addr::from(0x0a00_0000 | i).into(),
            "10.0.0.1".parse().unwrap(),
            IpProtocol::Udp,
            1000 + (i % 100) as u16,
            80,
        )
    }

    #[test]
    fn insert_get_round_trip() {
        let mut c = ShardedFlowCache::new(4, 16);
        let v = Vni::from_const(7);
        let t = tuple(1);
        assert!(c.get(v, &t).is_none());
        assert!(c.insert(v, &t, CachedAction::PuntSnat));
        assert_eq!(c.get(v, &t), Some(CachedAction::PuntSnat));
        // Same tuple under another VNI is a distinct flow.
        assert!(c.get(Vni::from_const(8), &t).is_none());
    }

    #[test]
    fn full_shard_rejects_new_flows_but_updates_existing() {
        let mut c = ShardedFlowCache::new(1, 8);
        let v = Vni::from_const(1);
        for i in 0..8 {
            assert!(c.insert(v, &tuple(i), CachedAction::PuntNoRoute));
        }
        assert!(!c.insert(v, &tuple(99), CachedAction::PuntNoRoute));
        assert_eq!(c.len(), 8);
        // Updating a resident flow is always allowed.
        assert!(c.insert(v, &tuple(0), CachedAction::DropAcl));
        assert_eq!(c.get(v, &tuple(0)), Some(CachedAction::DropAcl));
    }

    fn key(i: u32) -> FlowKey {
        FlowKey::from_tuple(Vni::from_const(3), &tuple(i))
    }

    fn outcome(i: u32) -> FlowOutcome {
        FlowOutcome {
            action: CachedAction::PuntSnat,
            slot: i,
            digest: u64::from(i) * 17,
        }
    }

    #[test]
    fn evicting_cache_round_trip_and_bound() {
        let mut c = FlowCache::new(64);
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.misses(), 1);
        c.insert(key(1), outcome(1));
        assert_eq!(c.get(&key(1)), Some(outcome(1)));
        assert_eq!(c.hits(), 1);
        for i in 0..10_000 {
            c.insert(key(i), outcome(i));
        }
        assert!(c.len() <= c.capacity(), "residency exceeded capacity");
        assert_eq!(c.capacity(), 64);
    }

    #[test]
    fn evicting_cache_updates_resident_key_in_place() {
        let mut c = FlowCache::new(8);
        c.insert(key(5), outcome(5));
        c.insert(key(5), outcome(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&key(5)), Some(outcome(9)));
    }

    #[test]
    fn ghost_readmission_goes_to_main() {
        let mut c = FlowCache::new(20);
        // Fill to capacity; one more insert pushes key(0), untouched
        // during probation, out of small and into the ghost table.
        for i in 0..21 {
            c.insert(key(i), outcome(i));
        }
        assert!(c.peek(&key(0)).is_none());
        // Reinsertion finds the ghost and lands in main, so a subsequent
        // scan of fresh one-hit keys (which only recycles small) cannot
        // displace it.
        c.insert(key(0), outcome(0));
        for i in 1_000..1_040 {
            c.insert(key(i), outcome(i));
        }
        assert!(
            c.peek(&key(0)).is_some(),
            "ghost-readmitted key displaced by a scan"
        );
    }

    #[test]
    fn clear_keeps_capacity_and_counts_fresh_misses() {
        let mut c = FlowCache::new(16);
        for i in 0..16 {
            c.insert(key(i), outcome(i));
        }
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&key(0)).is_none());
        c.insert(key(0), outcome(0));
        assert_eq!(c.get(&key(0)), Some(outcome(0)));
    }

    #[test]
    fn shards_spread_flows() {
        let mut c = ShardedFlowCache::new(8, 10_000);
        let v = Vni::from_const(1);
        for i in 0..4_000 {
            c.insert(v, &tuple(i), CachedAction::PuntSnat);
        }
        let occ = c.occupancy();
        assert_eq!(occ.iter().sum::<usize>(), 4_000);
        for (i, o) in occ.iter().enumerate() {
            assert!(*o > 100, "shard {i} got {o}");
        }
        c.clear();
        assert!(c.is_empty());
    }
}
