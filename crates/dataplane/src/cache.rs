//! The sharded flow cache used by the multi-worker executor.
//!
//! Gateways front the table pipeline with an exact-match flow cache: the
//! first packet of a flow takes the full walk, later packets replay the
//! recorded action. Shards are selected by the same Toeplitz hash the
//! underlay RSS uses, so a worker touching one flow keeps hitting one
//! shard. The cache is deliberately no-evict (insertion fails when a
//! shard is full) — deterministic runs must not depend on eviction order.

use std::collections::HashMap;

use sailfish_net::rss::Toeplitz;
use sailfish_net::{FiveTuple, Vni};
use sailfish_tables::types::{IdcId, NcAddr, RegionId};

/// The replayable outcome of a table walk for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedAction {
    /// Forward to an NC after rewrite.
    ToNc {
        /// Destination server.
        nc: NcAddr,
        /// Rewritten VNI.
        vni: Vni,
    },
    /// Hand off to another region.
    ToRegion {
        /// Destination region.
        region: RegionId,
        /// VNI context.
        vni: Vni,
    },
    /// Hand off to an IDC.
    ToIdc {
        /// Destination IDC.
        idc: IdcId,
        /// VNI context.
        vni: Vni,
    },
    /// Punt: the route needs stateful SNAT.
    PuntSnat,
    /// Punt: no hardware route.
    PuntNoRoute,
    /// Punt: VM mapping off-chip.
    PuntNoVm,
    /// Drop: ACL deny.
    DropAcl,
    /// Drop: peer-chain loop bound.
    DropLoop,
}

/// An exact-match `(VNI, inner 5-tuple)` → action cache split into shards.
#[derive(Debug)]
pub struct ShardedFlowCache {
    shards: Vec<HashMap<(Vni, FiveTuple), CachedAction>>,
    capacity_per_shard: usize,
    hasher: Toeplitz,
}

impl ShardedFlowCache {
    /// Creates a cache with `shards` shards of `capacity_per_shard` flows.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedFlowCache {
            shards: (0..shards).map(|_| HashMap::new()).collect(),
            capacity_per_shard,
            hasher: Toeplitz::default(),
        }
    }

    fn shard_for(&self, tuple: &FiveTuple) -> usize {
        self.hasher.hash_tuple(tuple) as usize % self.shards.len()
    }

    /// Looks up the cached action for a flow.
    pub fn get(&self, vni: Vni, tuple: &FiveTuple) -> Option<CachedAction> {
        self.shards[self.shard_for(tuple)]
            .get(&(vni, *tuple))
            .copied()
    }

    /// Records an action; returns `false` (and stores nothing) when the
    /// flow's shard is full.
    pub fn insert(&mut self, vni: Vni, tuple: &FiveTuple, action: CachedAction) -> bool {
        let idx = self.shard_for(tuple);
        let shard = &mut self.shards[idx];
        if shard.len() >= self.capacity_per_shard && !shard.contains_key(&(vni, *tuple)) {
            return false;
        }
        shard.insert((vni, *tuple), action);
        true
    }

    /// Total cached flows.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no flow is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached flow (table update invalidation).
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }

    /// Per-shard occupancy, for balance diagnostics.
    pub fn occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_net::IpProtocol;

    fn tuple(i: u32) -> FiveTuple {
        FiveTuple::new(
            core::net::Ipv4Addr::from(0x0a00_0000 | i).into(),
            "10.0.0.1".parse().unwrap(),
            IpProtocol::Udp,
            1000 + (i % 100) as u16,
            80,
        )
    }

    #[test]
    fn insert_get_round_trip() {
        let mut c = ShardedFlowCache::new(4, 16);
        let v = Vni::from_const(7);
        let t = tuple(1);
        assert!(c.get(v, &t).is_none());
        assert!(c.insert(v, &t, CachedAction::PuntSnat));
        assert_eq!(c.get(v, &t), Some(CachedAction::PuntSnat));
        // Same tuple under another VNI is a distinct flow.
        assert!(c.get(Vni::from_const(8), &t).is_none());
    }

    #[test]
    fn full_shard_rejects_new_flows_but_updates_existing() {
        let mut c = ShardedFlowCache::new(1, 8);
        let v = Vni::from_const(1);
        for i in 0..8 {
            assert!(c.insert(v, &tuple(i), CachedAction::PuntNoRoute));
        }
        assert!(!c.insert(v, &tuple(99), CachedAction::PuntNoRoute));
        assert_eq!(c.len(), 8);
        // Updating a resident flow is always allowed.
        assert!(c.insert(v, &tuple(0), CachedAction::DropAcl));
        assert_eq!(c.get(v, &tuple(0)), Some(CachedAction::DropAcl));
    }

    #[test]
    fn shards_spread_flows() {
        let mut c = ShardedFlowCache::new(8, 10_000);
        let v = Vni::from_const(1);
        for i in 0..4_000 {
            c.insert(v, &tuple(i), CachedAction::PuntSnat);
        }
        let occ = c.occupancy();
        assert_eq!(occ.iter().sum::<usize>(), 4_000);
        for (i, o) in occ.iter().enumerate() {
            assert!(*o > 100, "shard {i} got {o}");
        }
        c.clear();
        assert!(c.is_empty());
    }
}
