//! The zero-allocation batch executor.
//!
//! [`BatchExecutor`] walks frames through the same logical pipeline as
//! the scalar [`crate::executor::Dataplane`] — parse → flow-cache
//! exact-match → directory/ECMP → table walk → rewrite/punt — but as
//! per-stage loops over contiguous lanes instead of one function call
//! per packet, in the style of capsule-like batch operators:
//!
//! 1. **Parse + probe lane**: every frame is validated through the
//!    borrowed [`FrameView`] (no owned packet build, no allocation) and
//!    its [`sailfish_net::FlowKey`] immediately probes the evicting
//!    S3-FIFO [`FlowCache`] while the parsed fields are still in
//!    registers. Hits record a [`FlowOutcome`] (action + ECMP slot +
//!    precomputed decision digest) in the status lane; hostile frames
//!    drop into the error lane as typed `FrameError`s, counted per kind
//!    *and* per layer, and never branch the later loops. Only probe
//!    misses park their view in the pending lane.
//! 2. **Miss loop** (empty once the cache is warm): each pending frame
//!    re-probes (an earlier miss in the same batch may have inserted the
//!    flow), consults the VNI directory *before* any owned parse, and
//!    only a genuine directory-resident miss builds the owned
//!    `GatewayPacket` for the full table walk, recording the outcome for
//!    the rest of the flow.
//! 3. **Apply loop** (original frame order, so punt order matches the
//!    scalar executor byte-for-byte): bump attribution counters, charge
//!    the virtual clock, rewrite `ToNc` frames into the batch's slab
//!    arena — a v4 underlay takes the incremental-checksum patch
//!    (`patch_v4`, byte-identical to `rewrite::apply` on a validated
//!    frame), v6 takes the generic path — and queue punts through the
//!    breaker *by frame index*: the owned punt parse happens in
//!    [`BatchExecutor::finish`], off the hot path.
//!
//! The epoch is pinned **once per batch**, exactly like the scalar
//! executor's batch loop, so epoch digests match entry for entry.
//!
//! # Determinism contract
//!
//! On the same frame sequence, with a cold cache, and a flow population
//! inside both caches' capacity, a `BatchExecutor` run reproduces the
//! scalar executor's `RunReport` almost field-for-field: identical
//! decision digest, epoch digests, counters, device attribution,
//! fallback decisions and virtual time. With a *warm* cache the
//! hit/miss split shifts (by design) but the decision digest is still
//! identical — decisions are per-flow facts, not cache artifacts. Two
//! scoped divergences, both asserted away in the equivalence tests:
//! under cache-eviction pressure the hit/miss counters may differ from
//! the no-evict scalar cache, and under a *tight* punt meter mid-batch
//! admission timestamps differ (stage-ordered clock), which the default
//! generous meter never exercises.
//!
//! # Allocation contract
//!
//! After construction plus one warm-up run, [`BatchExecutor::execute`]
//! performs **zero heap allocation**: lanes, arena, cache, punt queue
//! and partition buffers all retain capacity across runs. The wall-clock
//! bench enforces 0 allocations/packet in its steady-state loop with a
//! counting allocator.

use core::net::{IpAddr, Ipv4Addr};

use sailfish_net::checksum;
use sailfish_net::rss::Toeplitz;
use sailfish_net::view::FrameView;
use sailfish_net::wire::ethernet;
use sailfish_net::{Error, FrameError, FrameLayer, GatewayPacket, Vni};
use sailfish_tables::meter::Meter;
use sailfish_xgw_h::program::HwDropReason;
use sailfish_xgw_h::HwDecision;
use sailfish_xgw_x86::SoftwareForwarder;

use crate::breaker::{Admission, BreakerStats, PuntBreaker};
use crate::cache::{CachedAction, FlowCache, FlowOutcome};
use crate::counters::TableCounters;
use crate::engine::{self, cost};
use crate::epoch::EpochState;
use crate::executor::{worker_for, Dataplane, DataplaneConfig, RunReport};
use crate::oracle::{DropClass, PathDecision};
use crate::rewrite;

/// Builds the DPU middle-tier breaker for a worker, when the config
/// carries a tier — shared by construction and `begin_run` reset.
fn tier_breaker(config: &DataplaneConfig) -> Option<PuntBreaker> {
    config.tier.as_ref().map(|t| {
        PuntBreaker::named(
            "dpu",
            Meter::new(t.dpu_rate_bps, t.dpu_burst_bytes),
            t.dpu_breaker.clone(),
        )
    })
}

use std::collections::BTreeMap;

/// How many slots ahead the parse lane warms the next frames' header
/// cache lines (see the stage-1 loop).
const PARSE_LOOKAHEAD: usize = 2;

/// Frame-local facts the apply loop needs for an in-arena rewrite:
/// where the VXLAN header sits, where the rewrite region ends (the inner
/// Ethernet offset), and which underlay family delimits it.
#[derive(Debug, Clone, Copy, Default)]
struct RewriteCtx {
    vxlan: u16,
    inner_eth: u16,
    outer_v6: bool,
}

impl RewriteCtx {
    fn of(view: &FrameView) -> Self {
        RewriteCtx {
            vxlan: view.vxlan,
            inner_eth: view.inner_eth,
            outer_v6: view.outer_v6,
        }
    }
}

/// Where a frame stands after the per-batch stage loops.
#[derive(Debug, Clone, Copy)]
enum SlotState {
    /// Rejected by the parse lane (already counted); skipped by every
    /// later loop.
    Error,
    /// Flow-cache hit: replay the recorded outcome.
    Hit(FlowOutcome, RewriteCtx),
    /// Probation: a probe miss awaiting the miss loop.
    Pending,
    /// Miss resolved by the full walk this batch.
    Walked(FlowOutcome, RewriteCtx),
    /// The VNI directory has no cluster: default-route to software.
    DirectoryMiss,
    /// A SNAT punt served on-chip by a promoted exact-match entry in
    /// the pinned epoch's offload snapshot: no handoff, no breaker, no
    /// fallback. `from_cache` preserves the scalar executor's hit/miss
    /// counter split.
    SnatOffloaded {
        /// ECMP device slot for attribution (`FlowOutcome::NO_SLOT` if
        /// the cluster had no live device).
        slot: u32,
        /// Whether the flow was resolved by the probe lane.
        from_cache: bool,
    },
}

/// Reusable per-worker state: cache, lanes, arena, accounting.
struct BatchWorker {
    cache: FlowCache,
    counters: TableCounters,
    breaker: PuntBreaker,
    /// DPU middle-tier admission breaker; `None` without a configured
    /// tier (the historical two-rung ladder).
    dpu_breaker: Option<PuntBreaker>,
    owner_hash: Toeplitz,
    clock_ns: u64,
    digest: u64,
    /// `(epoch, digest)` accumulated batch-by-batch; a linear scan over
    /// the handful of live epochs avoids `BTreeMap` node allocation on
    /// the hot path.
    epoch_digests: Vec<(u64, u64)>,
    /// Global frame indices admitted for punt, in decision order, tagged
    /// with the serving tier — `Some((node, process_ns))` for a DPU
    /// spill, `None` for x86; the owned parse happens at resolution time
    /// in `finish`.
    punted: Vec<(u32, Option<(u16, u64)>)>,
    device_packets: Vec<u64>,
    /// Miss lane: `(position in batch, view)` for probe misses only —
    /// empty once the cache is warm.
    pending: Vec<(u32, FrameView)>,
    /// Status lane (per batch).
    slots: Vec<SlotState>,
    /// Slab arena receiving rewritten output frames, recycled per batch.
    arena: Vec<u8>,
}

impl BatchWorker {
    fn new(dp: &Dataplane) -> Self {
        let config = dp.config();
        let batch = config.batch_size.max(1);
        BatchWorker {
            cache: FlowCache::new((config.cache_shards * config.cache_shard_capacity).max(1)),
            counters: TableCounters::default(),
            breaker: PuntBreaker::new(
                Meter::new(config.punt_rate_bps, config.punt_burst_bytes),
                config.breaker.clone(),
            ),
            dpu_breaker: tier_breaker(config),
            owner_hash: Toeplitz::default(),
            clock_ns: 0,
            digest: 0,
            epoch_digests: Vec::with_capacity(4),
            punted: Vec::new(),
            device_packets: vec![0; config.clusters * config.devices_per_cluster],
            pending: Vec::with_capacity(batch),
            slots: Vec::with_capacity(batch),
            arena: Vec::new(),
        }
    }

    /// Clears per-run accounting; keeps the cache and every allocation.
    fn begin_run(&mut self, dp: &Dataplane) {
        let config = dp.config();
        self.counters = TableCounters::default();
        self.breaker = PuntBreaker::new(
            Meter::new(config.punt_rate_bps, config.punt_burst_bytes),
            config.breaker.clone(),
        );
        self.dpu_breaker = tier_breaker(config);
        self.clock_ns = 0;
        self.digest = 0;
        self.epoch_digests.clear();
        self.punted.clear();
        self.device_packets.fill(0);
    }

    fn note_epoch_digest(&mut self, epoch: u64, digest: u64) {
        for slot in &mut self.epoch_digests {
            if slot.0 == epoch {
                slot.1 = slot.1.wrapping_add(digest);
                return;
            }
        }
        self.epoch_digests.push((epoch, digest));
    }
}

/// The batch-pipeline executor over a [`Dataplane`]'s epoch-versioned
/// tables. Owns all reusable worker state; see the module docs for the
/// stage structure and the determinism/allocation contracts.
pub struct BatchExecutor {
    workers: Vec<BatchWorker>,
    /// Frame indices per worker, rebuilt (allocation-free once warm)
    /// every run.
    partitions: Vec<Vec<u32>>,
    devices_per_cluster: usize,
    batch_size: usize,
}

impl BatchExecutor {
    /// Builds an executor with `workers` independent pipelines (1 for
    /// the deterministic golden mode). Each worker gets its own evicting
    /// flow cache sized like the scalar executor's total shard capacity.
    pub fn new(dp: &Dataplane, workers: usize) -> Self {
        let workers = workers.max(1);
        BatchExecutor {
            workers: (0..workers).map(|_| BatchWorker::new(dp)).collect(),
            partitions: (0..workers).map(|_| Vec::new()).collect(),
            devices_per_cluster: dp.config().devices_per_cluster,
            batch_size: dp.config().batch_size.max(1),
        }
    }

    /// Pipeline workers in this executor.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Drops all cached flows (keeps allocations) — for cold-start runs.
    pub fn reset_caches(&mut self) {
        for worker in &mut self.workers {
            worker.cache.clear();
        }
    }

    /// Sum of resident flows across worker caches.
    pub fn cached_flows(&self) -> usize {
        self.workers.iter().map(|w| w.cache.len()).sum()
    }

    /// Runs the batch pipeline over `frames`. This is the measured,
    /// allocation-gated hot path: after one warm-up run it does not
    /// touch the heap. Punt resolution and report assembly live in
    /// [`BatchExecutor::finish`].
    pub fn execute(&mut self, dp: &Dataplane, frames: &[&[u8]]) {
        for (worker, part) in self.workers.iter_mut().zip(&mut self.partitions) {
            worker.begin_run(dp);
            part.clear();
        }
        let worker_count = self.workers.len();
        if worker_count == 1 {
            if let (Some(worker), Some(part)) =
                (self.workers.first_mut(), self.partitions.first_mut())
            {
                part.extend(0..frames.len() as u32);
                run_worker(
                    dp,
                    worker,
                    frames,
                    part,
                    self.batch_size,
                    self.devices_per_cluster,
                );
            }
            return;
        }
        for (i, frame) in frames.iter().enumerate() {
            if let Some(part) = self.partitions.get_mut(worker_for(frame, worker_count)) {
                part.push(i as u32);
            }
        }
        let devices_per_cluster = self.devices_per_cluster;
        let batch_size = self.batch_size;
        std::thread::scope(|scope| {
            for (worker, part) in self.workers.iter_mut().zip(&self.partitions) {
                scope.spawn(move || {
                    run_worker(dp, worker, frames, part, batch_size, devices_per_cluster);
                });
            }
        });
    }

    /// Resolves queued punts through `fallback` (serially, after the
    /// slowest pipeline, exactly like the scalar finalize — the owned
    /// punt parse happens here, outside the measured hot path) and
    /// assembles the run report. Allocation is permitted here.
    pub fn finish(&mut self, frames: &[&[u8]], fallback: &mut SoftwareForwarder) -> RunReport {
        let mut counters = TableCounters::default();
        let mut digest = 0u64;
        let mut epoch_digests: BTreeMap<u64, u64> = BTreeMap::new();
        let mut pipeline_ns = 0u64;
        let mut device_packets =
            vec![0u64; self.workers.first().map_or(0, |w| w.device_packets.len())];
        let mut breaker = BreakerStats::default();
        let mut dpu_breaker = BreakerStats::default();
        let mut fallback_packets = 0u64;
        let mut dpu_packets = 0u64;
        for worker in &self.workers {
            counters.merge(&worker.counters);
            digest = digest.wrapping_add(worker.digest);
            for (epoch, d) in &worker.epoch_digests {
                let slot = epoch_digests.entry(*epoch).or_insert(0);
                *slot = slot.wrapping_add(*d);
            }
            pipeline_ns = pipeline_ns.max(worker.clock_ns);
            for (acc, d) in device_packets.iter_mut().zip(&worker.device_packets) {
                *acc += d;
            }
            let s = worker.breaker.stats();
            breaker.opened += s.opened;
            breaker.half_opened += s.half_opened;
            breaker.closed += s.closed;
            breaker.shed_open += s.shed_open;
            breaker.shed_meter += s.shed_meter;
            if let Some(db) = &worker.dpu_breaker {
                let s = db.stats();
                dpu_breaker.opened += s.opened;
                dpu_breaker.half_opened += s.half_opened;
                dpu_breaker.closed += s.closed;
                dpu_breaker.shed_open += s.shed_open;
                dpu_breaker.shed_meter += s.shed_meter;
            }
        }

        // Both software rungs resolve through the same forwarder — the
        // DPU spill just costs the owning node's latency instead of the
        // x86 cost — exactly like the scalar finalize.
        let mut now_ns = pipeline_ns;
        for worker in &self.workers {
            for &(idx, tier_tag) in &worker.punted {
                // Guaranteed parseable: only view-validated frames punt.
                let Some(frame) = frames.get(idx as usize) else {
                    continue;
                };
                let Ok(packet) = GatewayPacket::parse_classified(frame) else {
                    continue;
                };
                let decision = match tier_tag {
                    Some((_node, process_ns)) => {
                        dpu_packets += 1;
                        now_ns += process_ns;
                        let d = PathDecision::from_software(&fallback.process(&packet, now_ns));
                        if matches!(d, PathDecision::Drop(_)) {
                            counters.dpu_dropped += 1;
                        } else {
                            counters.dpu_forwarded += 1;
                        }
                        d
                    }
                    None => {
                        fallback_packets += 1;
                        now_ns += cost::X86_PROCESS_NS;
                        let d = PathDecision::from_software(&fallback.process(&packet, now_ns));
                        if matches!(d, PathDecision::Drop(_)) {
                            counters.fallback_dropped += 1;
                        } else {
                            counters.fallback_forwarded += 1;
                        }
                        d
                    }
                };
                digest = digest.wrapping_add(decision.digest());
            }
        }

        RunReport {
            packets: frames.len() as u64,
            counters,
            decision_digest: digest,
            epoch_digests,
            virtual_ns: now_ns,
            fallback_packets,
            dpu_packets,
            workers: self.workers.len(),
            device_packets,
            breaker,
            dpu_breaker,
        }
    }

    /// Convenience: [`BatchExecutor::execute`] + [`BatchExecutor::finish`].
    pub fn run(
        &mut self,
        dp: &Dataplane,
        frames: &[&[u8]],
        fallback: &mut SoftwareForwarder,
    ) -> RunReport {
        self.execute(dp, frames);
        self.finish(frames, fallback)
    }
}

/// Precomputed digest for a decided (non-punt) action; punts resolve
/// their digest at the software tier.
fn decided_digest(action: &CachedAction) -> u64 {
    match *action {
        CachedAction::ToNc { nc, vni } => PathDecision::ToNc { nc, vni }.digest(),
        CachedAction::ToRegion { region, vni } => PathDecision::ToRegion { region, vni }.digest(),
        CachedAction::ToIdc { idc, vni } => PathDecision::ToIdc { idc, vni }.digest(),
        CachedAction::DropAcl => PathDecision::Drop(DropClass::Acl).digest(),
        CachedAction::DropLoop => PathDecision::Drop(DropClass::RoutingLoop).digest(),
        CachedAction::PuntSnat | CachedAction::PuntNoRoute | CachedAction::PuntNoVm => 0,
    }
}

fn action_of(decision: &HwDecision) -> CachedAction {
    match decision {
        HwDecision::ToNc { packet, nc } => CachedAction::ToNc {
            nc: *nc,
            vni: packet.vni,
        },
        HwDecision::ToRegion { region, vni } => CachedAction::ToRegion {
            region: *region,
            vni: *vni,
        },
        HwDecision::ToIdc { idc, vni } => CachedAction::ToIdc {
            idc: *idc,
            vni: *vni,
        },
        HwDecision::PuntToX86 { reason, .. } => match reason {
            sailfish_xgw_h::PuntReason::SnatRequired => CachedAction::PuntSnat,
            sailfish_xgw_h::PuntReason::NoHwRoute => CachedAction::PuntNoRoute,
            sailfish_xgw_h::PuntReason::NoVmMapping => CachedAction::PuntNoVm,
        },
        HwDecision::Drop(HwDropReason::AclDeny) => CachedAction::DropAcl,
        HwDecision::Drop(HwDropReason::RoutingLoop) => CachedAction::DropLoop,
        HwDecision::Drop(HwDropReason::PuntRateLimited) => {
            unreachable!("walk never rate-limits")
        }
    }
}

/// Runs one worker's share of the frames, batch by batch.
fn run_worker(
    dp: &Dataplane,
    worker: &mut BatchWorker,
    frames: &[&[u8]],
    indices: &[u32],
    batch_size: usize,
    devices_per_cluster: usize,
) {
    for batch in indices.chunks(batch_size) {
        // One pin per batch: every frame sees a single epoch even while
        // installs publish concurrently — same contract as the scalar
        // executor's batch loop.
        let state = dp.pin();
        worker.clock_ns += cost::BATCH_OVERHEAD_NS;
        worker.slots.clear();
        worker.pending.clear();
        worker.arena.clear();

        // Stage 1 — fused parse + probe lane. Hostile frames drop to the
        // error lane as typed, per-layer-counted FrameErrors; hits are
        // decided while the parsed fields are still in registers; only
        // misses park a view in the pending lane.
        let mut warmed = 0u64;
        for (pos, &idx) in batch.iter().enumerate() {
            // Software lookahead: touch a frame a few slots ahead so its
            // header lines are in flight while this frame parses — the
            // parse chain is otherwise bound on the first random-access
            // touch of each frame buffer.
            if let Some(f) = batch
                .get(pos + PARSE_LOOKAHEAD)
                .and_then(|a| frames.get(*a as usize))
            {
                warmed = warmed
                    .wrapping_add(u64::from(f.first().copied().unwrap_or(0)))
                    .wrapping_add(u64::from(f.get(64).copied().unwrap_or(0)));
            }
            let Some(frame) = frames.get(idx as usize) else {
                worker.slots.push(SlotState::Error);
                continue;
            };
            match FrameView::parse(frame) {
                Ok(view) => {
                    worker.counters.parsed += 1;
                    if let Some(outcome) = worker.cache.get(&view.flow_key()) {
                        // Same logical point as the scalar executor's
                        // cache-hit offload check.
                        if outcome.action == CachedAction::PuntSnat
                            && state
                                .snat
                                .as_deref()
                                .is_some_and(|o| o.lookup(view.vni, &view.five_tuple()).is_some())
                        {
                            worker.slots.push(SlotState::SnatOffloaded {
                                slot: outcome.slot,
                                from_cache: true,
                            });
                            continue;
                        }
                        worker
                            .slots
                            .push(SlotState::Hit(outcome, RewriteCtx::of(&view)));
                    } else {
                        worker.pending.push((pos as u32, view));
                        worker.slots.push(SlotState::Pending);
                    }
                }
                Err(e) => {
                    worker.counters.record_frame_error(e);
                    worker.slots.push(SlotState::Error);
                }
            }
        }
        std::hint::black_box(warmed);
        worker.clock_ns += cost::PARSE_NS * batch.len() as u64;

        // Stage 2 — miss loop: the only place the owned packet model and
        // the full table walk run. Empty once the cache is warm.
        let pending = std::mem::take(&mut worker.pending);
        for &(pos, ref view) in &pending {
            let Some(frame) = batch
                .get(pos as usize)
                .and_then(|idx| frames.get(*idx as usize))
            else {
                continue;
            };
            // Re-probe: an earlier miss in this same batch may have
            // inserted the flow already (the probe in stage 1 ran before
            // any insert). Scalar processing hits here, so the batch
            // must too for the hit/miss split to match.
            if let Some(outcome) = worker.cache.get(&view.flow_key()) {
                if let Some(slot) = worker.slots.get_mut(pos as usize) {
                    *slot = if outcome.action == CachedAction::PuntSnat
                        && state
                            .snat
                            .as_deref()
                            .is_some_and(|o| o.lookup(view.vni, &view.five_tuple()).is_some())
                    {
                        SlotState::SnatOffloaded {
                            slot: outcome.slot,
                            from_cache: true,
                        }
                    } else {
                        SlotState::Hit(outcome, RewriteCtx::of(view))
                    };
                }
                continue;
            }
            // Directory first, straight from the view's VNI: a
            // directory miss never needs the owned packet model.
            let cluster = state
                .directory
                .cluster_for(view.vni)
                .and_then(|i| state.clusters.get(i).map(|c| (i, c)));
            let Some((cluster_idx, cluster)) = cluster else {
                if let Some(slot) = worker.slots.get_mut(pos as usize) {
                    *slot = SlotState::DirectoryMiss;
                }
                continue;
            };
            if cluster.epoch_tag != state.epoch {
                worker.counters.epoch_violations += 1;
            }
            worker.counters.cache_misses += 1;
            let tuple = view.five_tuple();
            let device_slot = match cluster.ecmp.pick(&tuple) {
                Ok(device) => (cluster_idx * devices_per_cluster + device) as u32,
                Err(_) => FlowOutcome::NO_SLOT,
            };
            // The view parsed, so the owned parse cannot fail (pinned by
            // the view-parity property tests).
            let Ok(packet) = GatewayPacket::parse_classified(frame) else {
                continue;
            };
            let before = worker.counters;
            let decision = engine::walk(&cluster.tables, &packet, &mut worker.counters);
            worker.clock_ns += engine::walk_cost_ns(&before, &worker.counters);
            let action = action_of(&decision);
            let outcome = FlowOutcome {
                action,
                slot: device_slot,
                digest: decided_digest(&action),
            };
            worker.cache.insert(view.flow_key(), outcome);
            if let Some(slot) = worker.slots.get_mut(pos as usize) {
                // Same logical point as the scalar executor's post-walk
                // offload check (after the cache insert, so later hits
                // in this batch re-take the offload branch themselves).
                *slot = if action == CachedAction::PuntSnat
                    && state
                        .snat
                        .as_deref()
                        .is_some_and(|o| o.lookup(view.vni, &view.five_tuple()).is_some())
                {
                    SlotState::SnatOffloaded {
                        slot: device_slot,
                        from_cache: false,
                    }
                } else {
                    SlotState::Walked(outcome, RewriteCtx::of(view))
                };
            }
        }
        worker.pending = pending;

        // Stage 3 — apply loop, in original frame order so the punt
        // queue (and therefore stateful fallback processing) matches
        // the scalar executor exactly.
        let mut batch_digest = 0u64;
        for (pos, &idx) in batch.iter().enumerate() {
            let Some(frame) = frames.get(idx as usize) else {
                continue;
            };
            let (outcome, ctx, from_cache) = match worker.slots.get(pos) {
                Some(SlotState::Hit(outcome, ctx)) => {
                    worker.counters.cache_hits += 1;
                    worker.clock_ns += cost::CACHE_HIT_NS;
                    (*outcome, *ctx, true)
                }
                Some(SlotState::Walked(outcome, ctx)) => (*outcome, *ctx, false),
                Some(SlotState::DirectoryMiss) => (
                    FlowOutcome {
                        action: CachedAction::PuntNoRoute,
                        slot: FlowOutcome::NO_SLOT,
                        digest: 0,
                    },
                    RewriteCtx::default(),
                    true,
                ),
                Some(&SlotState::SnatOffloaded { slot, from_cache }) => {
                    // Mirrors the scalar `snat_offload_hit` counter walk
                    // exactly: hit bookkeeping first (when the probe lane
                    // resolved the flow), then the on-chip translation.
                    if from_cache {
                        worker.counters.cache_hits += 1;
                        worker.clock_ns += cost::CACHE_HIT_NS;
                        worker.counters.punt_snat += 1;
                    }
                    if slot != FlowOutcome::NO_SLOT {
                        if let Some(count) = worker.device_packets.get_mut(slot as usize) {
                            *count += 1;
                        }
                    }
                    worker.counters.snat_translations += 1;
                    worker.counters.hw_forwarded += 1;
                    worker.clock_ns += cost::REWRITE_NS;
                    batch_digest = batch_digest.wrapping_add(PathDecision::ToInternet.digest());
                    continue;
                }
                _ => continue,
            };
            if outcome.slot != FlowOutcome::NO_SLOT {
                if let Some(count) = worker.device_packets.get_mut(outcome.slot as usize) {
                    *count += 1;
                }
            }
            batch_digest = batch_digest.wrapping_add(apply_outcome(
                &state, worker, idx, frame, outcome, ctx, from_cache,
            ));
        }
        worker.digest = worker.digest.wrapping_add(batch_digest);
        worker.note_epoch_digest(state.epoch, batch_digest);
    }
}

/// Tries the DPU middle tier for one punt-classified frame — the batch
/// mirror of the scalar executor's `try_spill_dpu`, keyed off the same
/// Toeplitz tuple hash so both executors place every flow identically.
/// `Some(())` means the spill was queued; `None` falls through to x86
/// admission (no tier, dead pool, or a shed re-route).
fn try_spill_dpu(
    state: &EpochState,
    worker: &mut BatchWorker,
    idx: u32,
    frame: &[u8],
) -> Option<()> {
    let map = state.tier.as_deref()?;
    // Punt-classified frames passed the view parser in stage 1, so this
    // re-parse cannot fail; it runs only on the (cold) punt lane and
    // stays allocation-free like every view parse.
    let view = FrameView::parse(frame).ok()?;
    let tuple_hash = worker.owner_hash.hash_tuple(&view.five_tuple());
    let crate::tier::TierDecision::SpillDpu {
        node,
        process_ns,
        rehomed,
    } = map.place(view.vni.value(), tuple_hash)
    else {
        return None;
    };
    let dpu_breaker = worker.dpu_breaker.as_mut()?;
    match dpu_breaker.admit(worker.clock_ns, map.byte_cost(frame.len())) {
        Admission::Admitted => {
            worker.clock_ns += cost::PUNT_HANDOFF_NS;
            worker.counters.dpu_spilled += 1;
            if rehomed {
                worker.counters.dpu_rehomed += 1;
            }
            worker.punted.push((idx, Some((node, process_ns))));
            Some(())
        }
        Admission::ShedMeter => {
            worker.counters.dpu_shed_meter += 1;
            None
        }
        Admission::ShedOpen => {
            worker.counters.dpu_breaker_open += 1;
            None
        }
    }
}

/// Applies one frame's outcome: arena rewrite, punt admission, counter
/// attribution. Returns the decided digest contribution (0 for punts
/// and errors — punts resolve at the fallback tier).
#[allow(clippy::too_many_arguments)]
fn apply_outcome(
    state: &EpochState,
    worker: &mut BatchWorker,
    idx: u32,
    frame: &[u8],
    outcome: FlowOutcome,
    ctx: RewriteCtx,
    from_cache: bool,
) -> u64 {
    match outcome.action {
        CachedAction::ToNc { nc, vni } => {
            if let Err(e) = rewrite_into_arena(worker, frame, ctx, nc, vni) {
                worker.counters.record_frame_error(e);
                return 0;
            }
            worker.clock_ns += cost::REWRITE_NS;
            worker.counters.hw_forwarded += 1;
            outcome.digest
        }
        CachedAction::ToRegion { .. } | CachedAction::ToIdc { .. } => {
            worker.counters.hw_forwarded += 1;
            outcome.digest
        }
        CachedAction::PuntSnat | CachedAction::PuntNoRoute | CachedAction::PuntNoVm => {
            if from_cache {
                match outcome.action {
                    CachedAction::PuntSnat => worker.counters.punt_snat += 1,
                    CachedAction::PuntNoRoute => worker.counters.punt_no_route += 1,
                    CachedAction::PuntNoVm => worker.counters.punt_no_vm += 1,
                    _ => unreachable!(),
                }
            }
            if try_spill_dpu(state, worker, idx, frame).is_some() {
                return 0;
            }
            match worker.breaker.admit(worker.clock_ns, frame.len()) {
                Admission::Admitted => {
                    worker.clock_ns += cost::PUNT_HANDOFF_NS;
                    worker.punted.push((idx, None));
                    0
                }
                Admission::ShedMeter => {
                    worker.clock_ns += cost::PUNT_HANDOFF_NS;
                    worker.counters.punt_rate_limited += 1;
                    PathDecision::Drop(DropClass::PuntRateLimited).digest()
                }
                Admission::ShedOpen => {
                    worker.counters.punt_breaker_open += 1;
                    PathDecision::Drop(DropClass::PuntRateLimited).digest()
                }
            }
        }
        CachedAction::DropAcl => {
            if from_cache {
                worker.counters.acl_denied += 1;
            }
            outcome.digest
        }
        CachedAction::DropLoop => {
            if from_cache {
                worker.counters.loop_drops += 1;
            }
            outcome.digest
        }
    }
}

/// Copies the frame into the batch's slab arena and rewrites it there in
/// place — TTL decrement, destination rewrite, VNI stamp. A v4 underlay
/// takes [`patch_v4`]; a v6 underlay takes the generic `rewrite::apply`
/// path (UDP checksum refill included). The only post-parse error — a
/// v6-homed NC under a v4 underlay — matches `rewrite::apply`'s exactly.
/// The arena retains capacity across batches, so this is heap-free once
/// warm.
fn rewrite_into_arena(
    worker: &mut BatchWorker,
    frame: &[u8],
    ctx: RewriteCtx,
    nc: sailfish_tables::types::NcAddr,
    vni: Vni,
) -> Result<(), FrameError> {
    let start = worker.arena.len();
    if ctx.outer_v6 {
        // The generic path revalidates layer delimiters, so it needs the
        // whole datagram in the arena.
        worker.arena.extend_from_slice(frame);
        let Some(out) = worker.arena.get_mut(start..) else {
            return Ok(());
        };
        return rewrite::apply(out, nc, vni);
    }
    let IpAddr::V4(nc_v4) = nc.ip else {
        // A v6-homed NC cannot terminate a v4 underlay frame — the same
        // typed reject `rewrite::apply` produces.
        return Err(FrameError::new(FrameLayer::OuterIpv4, Error::Malformed));
    };
    // Header-split emit: only the rewrite region (everything before the
    // inner Ethernet header) lands in the arena — the tenant payload is
    // never copied, exactly like a scatter-gather TX ring pairing a
    // rewritten header segment with the original payload buffer. Every
    // byte the v4 patch touches (TTL, checksum, dst, VNI) sits below
    // `inner_eth` by construction of the view.
    worker
        .arena
        .extend_from_slice(frame.get(..usize::from(ctx.inner_eth)).unwrap_or(frame));
    let Some(out) = worker.arena.get_mut(start..) else {
        return Ok(());
    };
    patch_v4(out, usize::from(ctx.vxlan), nc_v4, vni);
    Ok(())
}

/// In-place v4 rewrite of a frame that already passed [`FrameView`]
/// validation: TTL decrement and destination rewrite with RFC 1624
/// incremental checksum patches, then the VNI stamp at the validated
/// VXLAN offset. Byte-identical to `rewrite::apply` on the same frame
/// (the unit tests pin this), minus the per-layer revalidation the view
/// already performed.
fn patch_v4(frame: &mut [u8], vxlan: usize, nc_v4: Ipv4Addr, vni: Vni) {
    let Some(ip) = frame.get_mut(ethernet::HEADER_LEN..) else {
        return;
    };
    // TTL decrement; a zero TTL is left untouched, like `decrement_ttl`.
    if let (Some(&ttl), Some(&proto)) = (ip.get(8), ip.get(9)) {
        if ttl > 0 {
            let old_word = u16::from_be_bytes([ttl, proto]);
            let new_word = u16::from_be_bytes([ttl - 1, proto]);
            if let Some(b) = ip.get_mut(8) {
                *b = ttl - 1;
            }
            patch_ip_sum(ip, |sum| {
                checksum::incremental_update(sum, old_word, new_word)
            });
        }
    }
    // Destination rewrite with the slice form of the same patch.
    if let Some(dst) = ip.get_mut(16..20) {
        let mut old = [0u8; 4];
        old.copy_from_slice(dst);
        dst.copy_from_slice(&nc_v4.octets());
        patch_ip_sum(ip, |sum| {
            checksum::incremental_update_slice(sum, &old, &nc_v4.octets())
        });
    }
    // VNI stamp into the VXLAN header the view delimited.
    let v = vni.value();
    if let Some(b) = frame.get_mut(vxlan + 4..vxlan + 7) {
        b.copy_from_slice(&[(v >> 16) as u8, (v >> 8) as u8, v as u8]);
    }
}

/// Applies `patch` to the IPv4 header checksum field in place.
fn patch_ip_sum(ip: &mut [u8], patch: impl FnOnce(u16) -> u16) {
    if let Some(cs) = ip
        .get_mut(10..12)
        .and_then(|b| <&mut [u8; 2]>::try_from(b).ok())
    {
        *cs = patch(u16::from_be_bytes(*cs)).to_be_bytes();
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use sailfish_net::packet::GatewayPacketBuilder;
    use sailfish_tables::types::NcAddr;

    /// The arena fast patch must be byte-identical to `rewrite::apply`
    /// on every view-validated v4 frame, including the TTL=0 no-op.
    #[test]
    fn patch_v4_matches_generic_rewrite_bytes() {
        for ttl_zero in [false, true] {
            let packet = GatewayPacketBuilder::new(
                Vni::from_const(7001),
                "192.168.4.2".parse().unwrap(),
                "192.168.9.9".parse().unwrap(),
            )
            .build();
            let mut frame = packet.emit().unwrap();
            if ttl_zero {
                // Zero the outer TTL and re-fill the header checksum so
                // the frame still parses.
                frame[ethernet::HEADER_LEN + 8] = 0;
                let mut ip = sailfish_net::wire::ipv4::Packet::new_unchecked(
                    &mut frame[ethernet::HEADER_LEN..],
                );
                ip.fill_checksum();
            }
            let view = FrameView::parse(&frame).expect("emitted frame parses");
            let nc = NcAddr {
                ip: "10.77.1.3".parse().unwrap(),
            };
            let vni = Vni::from_const(4242);

            let mut generic = frame.clone();
            rewrite::apply(&mut generic, nc, vni).unwrap();

            let mut patched = frame.clone();
            let IpAddr::V4(v4) = nc.ip else {
                unreachable!()
            };
            patch_v4(&mut patched, usize::from(view.vxlan), v4, vni);

            assert_eq!(generic, patched, "ttl_zero={ttl_zero}");
            // And the patched checksum still verifies.
            let ip =
                sailfish_net::wire::ipv4::Packet::new_checked(&patched[ethernet::HEADER_LEN..])
                    .unwrap();
            assert!(ip.verify_checksum());
        }
    }
}
