//! Per-table hit/miss/conflict counters.
//!
//! The executor counts every table interaction the way a switch pipeline
//! exposes per-stage counters: route LPM lookups and misses, VM-NC digest
//! hits split by resolving plane (main vs conflict table), punt causes,
//! and flow-cache effectiveness. The counter set is `Copy` so the virtual
//! cost model can snapshot it around a single packet walk.

use sailfish_net::{Error, FrameError, FrameLayer};

/// Stage-by-stage dataplane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableCounters {
    /// Frames parsed successfully into a gateway packet.
    pub parsed: u64,
    /// Frames rejected by the parser (truncated, malformed, non-VXLAN).
    /// Always the sum of the per-kind `frame_*` counters below.
    pub parse_errors: u64,
    /// Frames rejected because a header ran past the buffer end.
    pub frame_truncated: u64,
    /// Frames rejected for inconsistent length or field encoding.
    pub frame_malformed: u64,
    /// Frames rejected for an unsupported protocol or port.
    pub frame_unsupported: u64,
    /// Frames rejected by checksum verification.
    pub frame_checksum: u64,
    /// Frames rejected for an out-of-range field value.
    pub frame_out_of_range: u64,
    /// Frames rejected at the outer Ethernet layer.
    pub layer_outer_ethernet: u64,
    /// Frames rejected at the outer IPv4 layer.
    pub layer_outer_ipv4: u64,
    /// Frames rejected at the outer IPv6 layer.
    pub layer_outer_ipv6: u64,
    /// Frames rejected at the outer UDP layer.
    pub layer_outer_udp: u64,
    /// Frames rejected at the VXLAN layer.
    pub layer_vxlan: u64,
    /// Frames rejected at the inner Ethernet layer.
    pub layer_inner_ethernet: u64,
    /// Frames rejected at the inner IPv4 layer.
    pub layer_inner_ipv4: u64,
    /// Frames rejected at the inner IPv6 layer.
    pub layer_inner_ipv6: u64,
    /// Frames rejected at the inner transport layer.
    pub layer_inner_transport: u64,
    /// Packets dropped by the ACL stage.
    pub acl_denied: u64,
    /// Single-step LPM lookups issued against the routing table.
    pub route_lookups: u64,
    /// LPM lookups that matched an entry.
    pub route_hits: u64,
    /// LPM lookups that missed (long-tail routes live on x86).
    pub route_misses: u64,
    /// Peer-VPC hops followed (pipeline recirculations).
    pub peer_hops: u64,
    /// Packets dropped by the peer-chain loop bound.
    pub loop_drops: u64,
    /// VM-NC lookups resolved by the 32-bit digest (main) plane.
    pub vm_hit_main: u64,
    /// VM-NC lookups resolved by the exact conflict table.
    pub vm_hit_conflict: u64,
    /// VM-NC lookups that missed both planes.
    pub vm_miss: u64,
    /// Punts because the route requires stateful SNAT.
    pub punt_snat: u64,
    /// Punts because no hardware route matched.
    pub punt_no_route: u64,
    /// Punts because the VM mapping is off-chip.
    pub punt_no_vm: u64,
    /// Punts rejected by the protective rate limiter (dropped).
    pub punt_rate_limited: u64,
    /// Punts shed because the punt-path circuit breaker was open.
    pub punt_breaker_open: u64,
    /// Punts admitted to the DPU middle tier (spilled, not degraded).
    /// Always `dpu_forwarded + dpu_dropped` after a run resolves.
    pub dpu_spilled: u64,
    /// Spilled packets the DPU tier forwarded.
    pub dpu_forwarded: u64,
    /// Spilled packets the DPU tier dropped (typed software drops).
    pub dpu_dropped: u64,
    /// Punts the DPU admission meter refused — the packet *degrades to
    /// x86*, it is not dropped, so this lane is outside the disposition
    /// identity.
    pub dpu_shed_meter: u64,
    /// Punts refused because the DPU tier's breaker was open — degraded
    /// to x86 like `dpu_shed_meter`.
    pub dpu_breaker_open: u64,
    /// DPU-served packets whose consistent-hash owner was dead, served
    /// by the next live node on the ring instead (bounded-churn
    /// re-homing). Nonzero only while a DPU node-death window is active.
    pub dpu_rehomed: u64,
    /// Packets that observed a cluster whose epoch tag disagreed with the
    /// pinned epoch — torn table state. Zero in a correct build; the
    /// epoch-consistency tests assert it stays zero.
    pub epoch_violations: u64,
    /// Packets steered to a migration's secondary owner during a dual-
    /// ownership window (flow-hash parity picked the destination).
    pub dual_owner_packets: u64,
    /// Flow-cache hits (walk skipped entirely).
    pub cache_hits: u64,
    /// Flow-cache misses (full table walk taken).
    pub cache_misses: u64,
    /// Packets forwarded by the hardware pipeline.
    pub hw_forwarded: u64,
    /// Punted packets the software fallback then forwarded.
    pub fallback_forwarded: u64,
    /// Punted packets the software fallback then dropped.
    pub fallback_dropped: u64,
    /// SNAT packets translated in hardware via a promoted exact-match
    /// entry (the punt the offload saved).
    pub snat_translations: u64,
    /// Connections promoted into the SNAT offload at epoch swaps.
    pub snat_promotions: u64,
    /// Connections demoted out of the SNAT offload at epoch swaps.
    pub snat_demotions: u64,
    /// SNAT connection opens refused because the external port pool had
    /// no free block.
    pub snat_port_alloc_failures: u64,
}

impl TableCounters {
    /// Accumulates another counter set (worker merge).
    pub fn merge(&mut self, other: &TableCounters) {
        for ((_, a), (_, b)) in self.fields_mut().into_iter().zip(other.fields()) {
            *a += b;
        }
    }

    /// Records a typed parse failure: bumps the `parse_errors` total plus
    /// the per-kind and per-layer breakdown counters, so hostile bytes
    /// always degrade to a counted drop-with-reason.
    pub fn record_frame_error(&mut self, err: FrameError) {
        self.parse_errors += 1;
        match err.kind {
            Error::Truncated => self.frame_truncated += 1,
            Error::Malformed => self.frame_malformed += 1,
            Error::Unsupported => self.frame_unsupported += 1,
            Error::Checksum => self.frame_checksum += 1,
            Error::OutOfRange => self.frame_out_of_range += 1,
        }
        match err.layer {
            FrameLayer::OuterEthernet => self.layer_outer_ethernet += 1,
            FrameLayer::OuterIpv4 => self.layer_outer_ipv4 += 1,
            FrameLayer::OuterIpv6 => self.layer_outer_ipv6 += 1,
            FrameLayer::OuterUdp => self.layer_outer_udp += 1,
            FrameLayer::Vxlan => self.layer_vxlan += 1,
            FrameLayer::InnerEthernet => self.layer_inner_ethernet += 1,
            FrameLayer::InnerIpv4 => self.layer_inner_ipv4 += 1,
            FrameLayer::InnerIpv6 => self.layer_inner_ipv6 += 1,
            FrameLayer::InnerTransport => self.layer_inner_transport += 1,
        }
    }

    /// Stable-ordered `(name, value)` view for deterministic JSON output.
    pub fn fields(&self) -> [(&'static str, u64); 47] {
        [
            ("parsed", self.parsed),
            ("parse_errors", self.parse_errors),
            ("frame_truncated", self.frame_truncated),
            ("frame_malformed", self.frame_malformed),
            ("frame_unsupported", self.frame_unsupported),
            ("frame_checksum", self.frame_checksum),
            ("frame_out_of_range", self.frame_out_of_range),
            ("layer_outer_ethernet", self.layer_outer_ethernet),
            ("layer_outer_ipv4", self.layer_outer_ipv4),
            ("layer_outer_ipv6", self.layer_outer_ipv6),
            ("layer_outer_udp", self.layer_outer_udp),
            ("layer_vxlan", self.layer_vxlan),
            ("layer_inner_ethernet", self.layer_inner_ethernet),
            ("layer_inner_ipv4", self.layer_inner_ipv4),
            ("layer_inner_ipv6", self.layer_inner_ipv6),
            ("layer_inner_transport", self.layer_inner_transport),
            ("acl_denied", self.acl_denied),
            ("route_lookups", self.route_lookups),
            ("route_hits", self.route_hits),
            ("route_misses", self.route_misses),
            ("peer_hops", self.peer_hops),
            ("loop_drops", self.loop_drops),
            ("vm_hit_main", self.vm_hit_main),
            ("vm_hit_conflict", self.vm_hit_conflict),
            ("vm_miss", self.vm_miss),
            ("punt_snat", self.punt_snat),
            ("punt_no_route", self.punt_no_route),
            ("punt_no_vm", self.punt_no_vm),
            ("punt_rate_limited", self.punt_rate_limited),
            ("punt_breaker_open", self.punt_breaker_open),
            ("dpu_spilled", self.dpu_spilled),
            ("dpu_forwarded", self.dpu_forwarded),
            ("dpu_dropped", self.dpu_dropped),
            ("dpu_shed_meter", self.dpu_shed_meter),
            ("dpu_breaker_open", self.dpu_breaker_open),
            ("dpu_rehomed", self.dpu_rehomed),
            ("epoch_violations", self.epoch_violations),
            ("dual_owner_packets", self.dual_owner_packets),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("hw_forwarded", self.hw_forwarded),
            ("fallback_forwarded", self.fallback_forwarded),
            ("fallback_dropped", self.fallback_dropped),
            ("snat_translations", self.snat_translations),
            ("snat_promotions", self.snat_promotions),
            ("snat_demotions", self.snat_demotions),
            ("snat_port_alloc_failures", self.snat_port_alloc_failures),
        ]
    }

    fn fields_mut(&mut self) -> [(&'static str, &mut u64); 47] {
        [
            ("parsed", &mut self.parsed),
            ("parse_errors", &mut self.parse_errors),
            ("frame_truncated", &mut self.frame_truncated),
            ("frame_malformed", &mut self.frame_malformed),
            ("frame_unsupported", &mut self.frame_unsupported),
            ("frame_checksum", &mut self.frame_checksum),
            ("frame_out_of_range", &mut self.frame_out_of_range),
            ("layer_outer_ethernet", &mut self.layer_outer_ethernet),
            ("layer_outer_ipv4", &mut self.layer_outer_ipv4),
            ("layer_outer_ipv6", &mut self.layer_outer_ipv6),
            ("layer_outer_udp", &mut self.layer_outer_udp),
            ("layer_vxlan", &mut self.layer_vxlan),
            ("layer_inner_ethernet", &mut self.layer_inner_ethernet),
            ("layer_inner_ipv4", &mut self.layer_inner_ipv4),
            ("layer_inner_ipv6", &mut self.layer_inner_ipv6),
            ("layer_inner_transport", &mut self.layer_inner_transport),
            ("acl_denied", &mut self.acl_denied),
            ("route_lookups", &mut self.route_lookups),
            ("route_hits", &mut self.route_hits),
            ("route_misses", &mut self.route_misses),
            ("peer_hops", &mut self.peer_hops),
            ("loop_drops", &mut self.loop_drops),
            ("vm_hit_main", &mut self.vm_hit_main),
            ("vm_hit_conflict", &mut self.vm_hit_conflict),
            ("vm_miss", &mut self.vm_miss),
            ("punt_snat", &mut self.punt_snat),
            ("punt_no_route", &mut self.punt_no_route),
            ("punt_no_vm", &mut self.punt_no_vm),
            ("punt_rate_limited", &mut self.punt_rate_limited),
            ("punt_breaker_open", &mut self.punt_breaker_open),
            ("dpu_spilled", &mut self.dpu_spilled),
            ("dpu_forwarded", &mut self.dpu_forwarded),
            ("dpu_dropped", &mut self.dpu_dropped),
            ("dpu_shed_meter", &mut self.dpu_shed_meter),
            ("dpu_breaker_open", &mut self.dpu_breaker_open),
            ("dpu_rehomed", &mut self.dpu_rehomed),
            ("epoch_violations", &mut self.epoch_violations),
            ("dual_owner_packets", &mut self.dual_owner_packets),
            ("cache_hits", &mut self.cache_hits),
            ("cache_misses", &mut self.cache_misses),
            ("hw_forwarded", &mut self.hw_forwarded),
            ("fallback_forwarded", &mut self.fallback_forwarded),
            ("fallback_dropped", &mut self.fallback_dropped),
            ("snat_translations", &mut self.snat_translations),
            ("snat_promotions", &mut self.snat_promotions),
            ("snat_demotions", &mut self.snat_demotions),
            (
                "snat_port_alloc_failures",
                &mut self.snat_port_alloc_failures,
            ),
        ]
    }

    /// Total punts charged to the x86 path.
    pub fn punted(&self) -> u64 {
        self.punt_snat + self.punt_no_route + self.punt_no_vm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_every_field() {
        let mut a = TableCounters {
            parsed: 1,
            route_hits: 2,
            ..TableCounters::default()
        };
        let b = TableCounters {
            parsed: 10,
            vm_hit_conflict: 3,
            fallback_dropped: 5,
            ..TableCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.parsed, 11);
        assert_eq!(a.route_hits, 2);
        assert_eq!(a.vm_hit_conflict, 3);
        assert_eq!(a.fallback_dropped, 5);
    }

    #[test]
    fn record_frame_error_keeps_total_in_sync() {
        use sailfish_net::FrameLayer;
        let mut c = TableCounters::default();
        c.record_frame_error(FrameError::new(FrameLayer::OuterIpv4, Error::Truncated));
        c.record_frame_error(FrameError::new(FrameLayer::Vxlan, Error::Malformed));
        c.record_frame_error(FrameError::new(FrameLayer::OuterUdp, Error::Checksum));
        assert_eq!(c.parse_errors, 3);
        assert_eq!(c.frame_truncated, 1);
        assert_eq!(c.frame_malformed, 1);
        assert_eq!(c.frame_checksum, 1);
        let breakdown = c.frame_truncated
            + c.frame_malformed
            + c.frame_unsupported
            + c.frame_checksum
            + c.frame_out_of_range;
        assert_eq!(c.parse_errors, breakdown);
        assert_eq!(c.layer_outer_ipv4, 1);
        assert_eq!(c.layer_vxlan, 1);
        assert_eq!(c.layer_outer_udp, 1);
        let by_layer: u64 = c
            .fields()
            .iter()
            .filter(|(n, _)| n.starts_with("layer_"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(c.parse_errors, by_layer, "layer breakdown out of sync");
    }

    #[test]
    fn fields_cover_the_struct() {
        // Sentinel check: each field projected exactly once, in a stable
        // order shared by fields() and fields_mut().
        let mut c = TableCounters::default();
        for (i, (_, v)) in c.fields_mut().into_iter().enumerate() {
            *v = i as u64 + 1;
        }
        let names: Vec<&str> = c.fields().iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate counter name");
        for (i, (_, v)) in c.fields().into_iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }
}
