//! Cost-based tier placement: the three-tier degradation ladder.
//!
//! The paper's gateway degrades in one binary step — a punt lands
//! directly on XGW-x86, ~two orders of magnitude slower than the chip.
//! This module inserts the DPU pool ([`sailfish_cluster::dpu`]) as a
//! middle rung and replaces the binary punt with a [`TierDecision`]
//! driven by a per-packet cost model:
//!
//! 1. **Serve on-chip** whenever the hardware tables resolve the packet
//!    (cost ≈ tens of ns) — the walk itself makes this decision.
//! 2. **Spill to the DPU pool** when the chip punts and the flow's
//!    consistent-hash owner is alive (cost ≈ [`DpuNode::process_ns`],
//!    hundreds of ns), guarded by a per-tier token-bucket admission
//!    meter and a named circuit breaker.
//! 3. **Degrade to XGW-x86** (cost ≈ µs) when the pool is dead,
//!    saturated, or sheds the packet — guarded by its own meter and
//!    breaker exactly as before.
//!
//! Placement state is epoch-sealed: a [`TierMap`] is built alongside the
//! rest of an [`crate::epoch::EpochState`] from the same [`WorldView`]
//! (which now carries DPU node deaths and pool saturation), carries the
//! epoch's tag, and lands atomically with the table swap. A stale map
//! can never ship inside a newer epoch — `tags_consistent` refuses it.
//!
//! [`DpuNode::process_ns`]: sailfish_cluster::dpu::DpuNode

use sailfish_cluster::dpu::{flow_key, DpuPool, DpuPoolConfig};

use crate::breaker::BreakerConfig;
use crate::epoch::WorldView;

/// Static configuration of the DPU middle tier. `None` in
/// [`crate::executor::DataplaneConfig::tier`] keeps the historical
/// two-tier ladder byte-identical.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Pool shape and per-node envelopes.
    pub pool: DpuPoolConfig,
    /// Per-worker DPU admission meter rate (bits/s). Generous by
    /// default so deterministic runs never shed at the DPU rung unless
    /// a bench tightens it.
    pub dpu_rate_bps: u64,
    /// DPU admission meter burst (bytes).
    pub dpu_burst_bytes: u64,
    /// The DPU tier's named circuit breaker over that meter.
    pub dpu_breaker: BreakerConfig,
    /// Byte-cost multiplier applied to DPU admission while the pool is
    /// saturated: charging `factor ×` bytes models the pool serving at
    /// `1/factor` capacity without perturbing meter state across the
    /// epoch swap.
    pub saturation_cost_factor: u32,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            pool: DpuPoolConfig::default(),
            dpu_rate_bps: 400_000_000_000,
            dpu_burst_bytes: 1 << 31,
            dpu_breaker: BreakerConfig::default(),
            saturation_cost_factor: 16,
        }
    }
}

/// Where one punt-classified packet is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierDecision {
    /// The hardware tables resolved the packet; no punt happens.
    OnChip,
    /// Spill to the DPU pool.
    SpillDpu {
        /// The owning node (after re-homing around deaths).
        node: u16,
        /// Per-packet latency of that node, captured at placement time
        /// so the punt resolution needs no pool access.
        process_ns: u64,
        /// Whether the flow's primary owner is dead and a ring
        /// successor serves it instead.
        rehomed: bool,
    },
    /// Degrade to the XGW-x86 fallback tier.
    DegradeX86,
}

/// The epoch-sealed placement map: the DPU pool with the world's death
/// set applied, plus the saturation flag, stamped with the epoch it was
/// built for.
#[derive(Debug, Clone)]
pub struct TierMap {
    /// The epoch this map belongs to; checked by `tags_consistent`.
    pub epoch_tag: u64,
    /// The pool with [`WorldView::dead_dpus`] applied.
    pub pool: DpuPool,
    /// Whether [`WorldView::dpu_saturated`] was set when building.
    pub saturated: bool,
    saturation_cost_factor: u32,
}

impl TierMap {
    /// Builds the placement map for `epoch` under `world`.
    pub fn build(config: &TierConfig, epoch: u64, world: &WorldView) -> Self {
        let mut pool = DpuPool::new(config.pool);
        for node in &world.dead_dpus {
            pool.fail(*node);
        }
        TierMap {
            epoch_tag: epoch,
            pool,
            saturated: world.dpu_saturated,
            saturation_cost_factor: config.saturation_cost_factor.max(1),
        }
    }

    /// Places one punt-classified flow: spill to its live consistent-hash
    /// owner, or degrade to x86 when the pool has none.
    pub fn place(&self, vni: u32, tuple_hash: u32) -> TierDecision {
        let key = flow_key(vni, tuple_hash);
        match self.pool.owner_of(key) {
            Some(node) => {
                let process_ns = self
                    .pool
                    .node(node)
                    .map_or(crate::engine::cost::X86_PROCESS_NS, |n| n.process_ns);
                let rehomed = self.pool.primary_owner(key) != Some(node);
                TierDecision::SpillDpu {
                    node,
                    process_ns,
                    rehomed,
                }
            }
            None => TierDecision::DegradeX86,
        }
    }

    /// The byte cost one packet charges the DPU admission meter:
    /// inflated by the saturation factor while the pool is saturated.
    pub fn byte_cost(&self, bytes: usize) -> usize {
        if self.saturated {
            bytes.saturating_mul(self.saturation_cost_factor as usize)
        } else {
            bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn healthy_map_spills_everything_to_primaries() {
        let map = TierMap::build(&TierConfig::default(), 3, &WorldView::healthy());
        assert_eq!(map.epoch_tag, 3);
        assert!(!map.saturated);
        for i in 0..256u32 {
            match map.place(100 + i, i.wrapping_mul(0x9E37)) {
                TierDecision::SpillDpu { rehomed, node, .. } => {
                    assert!(!rehomed, "healthy pool never re-homes");
                    assert!(node < 4);
                }
                other => panic!("healthy pool must own every flow: {other:?}"),
            }
        }
        assert_eq!(map.byte_cost(1500), 1500);
    }

    #[test]
    fn dead_node_rehomes_only_its_flows() {
        let config = TierConfig::default();
        let healthy = TierMap::build(&config, 1, &WorldView::healthy());
        let mut world = WorldView::healthy();
        world.dead_dpus.insert(2);
        let degraded = TierMap::build(&config, 2, &world);
        let mut rehomed = 0u32;
        for i in 0..512u32 {
            let (vni, th) = (100 + i, i.wrapping_mul(0x9E37));
            let before = healthy.place(vni, th);
            let after = degraded.place(vni, th);
            match (before, after) {
                (
                    TierDecision::SpillDpu { node: b, .. },
                    TierDecision::SpillDpu {
                        node: a,
                        rehomed: r,
                        ..
                    },
                ) => {
                    assert_ne!(a, 2, "dead node still serving");
                    if b != a {
                        assert_eq!(b, 2, "a live owner's flow moved");
                        assert!(r);
                        rehomed += 1;
                    } else {
                        assert!(!r);
                    }
                }
                other => panic!("both maps must spill: {other:?}"),
            }
        }
        assert!(rehomed > 0, "node 2 owned some of 512 flows");
    }

    #[test]
    fn all_dead_pool_degrades_to_x86() {
        let config = TierConfig {
            pool: DpuPoolConfig {
                nodes: 2,
                ..DpuPoolConfig::default()
            },
            ..TierConfig::default()
        };
        let mut world = WorldView::healthy();
        world.dead_dpus = BTreeSet::from([0, 1]);
        let map = TierMap::build(&config, 1, &world);
        assert_eq!(map.place(100, 7), TierDecision::DegradeX86);
    }

    #[test]
    fn saturation_inflates_the_byte_cost() {
        let mut world = WorldView::healthy();
        world.dpu_saturated = true;
        let map = TierMap::build(&TierConfig::default(), 1, &world);
        assert!(map.saturated);
        assert_eq!(map.byte_cost(100), 1_600);
        // Saturation throttles; it must not change placement.
        assert!(matches!(map.place(100, 7), TierDecision::SpillDpu { .. }));
    }

    #[test]
    fn dpu_latency_sits_between_the_tiers() {
        let map = TierMap::build(&TierConfig::default(), 0, &WorldView::healthy());
        for i in 0..64u32 {
            if let TierDecision::SpillDpu { process_ns, .. } = map.place(i, i) {
                assert!(process_ns >= crate::engine::cost::PUNT_HANDOFF_NS);
                assert!(process_ns < crate::engine::cost::X86_PROCESS_NS);
            }
        }
    }
}
