//! Per-tier circuit breakers for the degradation ladder.
//!
//! The punt meter protects a software tier from a sustained hardware-miss
//! storm, but a raw token bucket keeps charging the handoff cost for
//! every packet it rejects. The breaker wraps the meter with the classic
//! three-state machine: after enough *consecutive* meter rejections it
//! **opens** and sheds punts outright for a cool-down window, then probes
//! the meter again through a **half-open** trial phase before closing.
//! All transitions run on the worker's deterministic virtual clock, so
//! single-worker runs and replays are byte-identical.
//!
//! A worker runs one **named instance per protected tier** — the x86
//! fallback (`"x86"`) and the DPU middle tier (`"dpu"`) each get their
//! own meter, state machine, and stats, fully independent of each other
//! ([`PuntBreaker::named`]). Half-open trial packets that *are* admitted
//! drain the token bucket like any other punt; when a later trial in the
//! same probe cycle fails, the breaker credits those tokens back before
//! reopening, so a failed probe can never leave the bucket partially
//! drained across reopen cycles (which would make every subsequent probe
//! fail spuriously and latch the breaker open).

use sailfish_tables::meter::Meter;

/// Public view of the breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Punts flow through the meter normally.
    Closed,
    /// Punts are shed without consulting the meter.
    Open,
    /// A limited number of trial punts probe the meter.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What the breaker decided for one punt attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The punt proceeds to the x86 tier.
    Admitted,
    /// The meter rejected the punt (breaker still closed/half-open).
    ShedMeter,
    /// The breaker was open: shed without consulting the meter.
    ShedOpen,
}

/// Breaker tuning. Defaults are generous enough that runs under the
/// default (effectively unlimited) punt meter never trip it.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive meter rejections that open the breaker.
    pub open_threshold: u32,
    /// Cool-down in virtual nanoseconds while open.
    pub open_ns: u64,
    /// Successful trials required to close again from half-open.
    pub half_open_trials: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            open_threshold: 32,
            open_ns: 5_000_000,
            half_open_trials: 8,
        }
    }
}

/// Lifetime transition counts, for reports and alert ordering checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed/half-open → open transitions.
    pub opened: u64,
    /// Open → half-open transitions (cool-down expired).
    pub half_opened: u64,
    /// Half-open → closed transitions (trials succeeded).
    pub closed: u64,
    /// Punts shed while open.
    pub shed_open: u64,
    /// Punts rejected by the meter.
    pub shed_meter: u64,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed,
    Open { until_ns: u64 },
    HalfOpen { remaining: u32 },
}

/// The token-bucket-backed three-state breaker guarding one tier's punt
/// path. Instances are named so a worker can run several side by side
/// (x86 fallback, DPU pool) with independent deterministic state.
#[derive(Debug)]
pub struct PuntBreaker {
    name: &'static str,
    meter: Meter,
    config: BreakerConfig,
    state: State,
    consecutive_rejects: u32,
    /// Bytes drained by admitted trials of the current half-open probe
    /// cycle; credited back to the meter if the cycle fails.
    half_open_drained: u64,
    stats: BreakerStats,
}

impl PuntBreaker {
    /// Creates a closed breaker over `meter` with the default name
    /// (`"x86"`, the historical single-instance punt path).
    pub fn new(meter: Meter, config: BreakerConfig) -> Self {
        Self::named("x86", meter, config)
    }

    /// Creates a closed breaker named `name` over `meter`. Each named
    /// instance carries its own meter, state machine, and stats.
    pub fn named(name: &'static str, meter: Meter, config: BreakerConfig) -> Self {
        PuntBreaker {
            name,
            meter,
            config,
            state: State::Closed,
            consecutive_rejects: 0,
            half_open_drained: 0,
            stats: BreakerStats::default(),
        }
    }

    /// The tier this breaker guards.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The current position.
    pub fn state(&self) -> BreakerState {
        match self.state {
            State::Closed => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Lifetime transition and shed counts.
    pub fn stats(&self) -> BreakerStats {
        self.stats
    }

    /// Decides one punt of `bytes` at virtual time `now_ns`.
    pub fn admit(&mut self, now_ns: u64, bytes: usize) -> Admission {
        if let State::Open { until_ns } = self.state {
            if now_ns < until_ns {
                self.stats.shed_open += 1;
                return Admission::ShedOpen;
            }
            // Cool-down over: probe the meter through trial punts.
            self.state = State::HalfOpen {
                remaining: self.config.half_open_trials.max(1),
            };
            self.stats.half_opened += 1;
        }

        if self.meter.offer(now_ns, bytes) {
            self.consecutive_rejects = 0;
            if let State::HalfOpen { remaining } = self.state {
                self.half_open_drained = self.half_open_drained.saturating_add(bytes as u64);
                let left = remaining.saturating_sub(1);
                if left == 0 {
                    self.state = State::Closed;
                    self.stats.closed += 1;
                    self.half_open_drained = 0;
                } else {
                    self.state = State::HalfOpen { remaining: left };
                }
            }
            return Admission::Admitted;
        }

        match self.state {
            State::HalfOpen { .. } => {
                // A failed trial reopens immediately. The cycle's earlier
                // admitted trials already drained the bucket; credit them
                // back so the failed probe leaves the meter exactly as it
                // found it — otherwise each reopen starts the next probe
                // with a shallower bucket and the breaker latches open.
                // The shed is attributed to the open transition (the
                // admission returned), not to the meter.
                self.meter.credit(self.half_open_drained);
                self.half_open_drained = 0;
                self.state = State::Open {
                    until_ns: now_ns + self.config.open_ns,
                };
                self.stats.opened += 1;
                self.stats.shed_open += 1;
                Admission::ShedOpen
            }
            State::Closed => {
                self.stats.shed_meter += 1;
                self.consecutive_rejects += 1;
                if self.consecutive_rejects >= self.config.open_threshold.max(1) {
                    self.state = State::Open {
                        until_ns: now_ns + self.config.open_ns,
                    };
                    self.stats.opened += 1;
                    self.consecutive_rejects = 0;
                }
                Admission::ShedMeter
            }
            State::Open { .. } => unreachable!("open state handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A meter so slow it rejects everything after the first byte-sized
    /// burst: 1 byte/s, 1-byte burst.
    fn starved() -> Meter {
        Meter::new(8, 1)
    }

    /// A meter that admits everything at these sizes.
    fn generous() -> Meter {
        Meter::new(400_000_000_000, 1 << 31)
    }

    fn config() -> BreakerConfig {
        BreakerConfig {
            open_threshold: 3,
            open_ns: 1_000,
            half_open_trials: 2,
        }
    }

    #[test]
    fn generous_meter_never_trips() {
        let mut b = PuntBreaker::new(generous(), config());
        for t in 0..1_000u64 {
            assert_eq!(b.admit(t, 1500), Admission::Admitted);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats(), BreakerStats::default());
    }

    #[test]
    fn consecutive_rejects_open_the_breaker() {
        let mut b = PuntBreaker::new(starved(), config());
        // First offer drains the 1-byte burst and is rejected for 1500B.
        assert_eq!(b.admit(0, 1500), Admission::ShedMeter);
        assert_eq!(b.admit(1, 1500), Admission::ShedMeter);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(2, 1500), Admission::ShedMeter);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().opened, 1);
        // While open, punts shed without touching the meter.
        assert_eq!(b.admit(3, 1500), Admission::ShedOpen);
        assert_eq!(b.stats().shed_open, 1);
    }

    #[test]
    fn half_open_probes_then_closes_on_success() {
        let mut b = PuntBreaker::new(generous(), config());
        // Force open by swapping in rejections: use a starved breaker to
        // reach Open, then advance time past the cool-down.
        let mut s = PuntBreaker::new(starved(), config());
        for t in 0..3u64 {
            s.admit(t, 1500);
        }
        assert_eq!(s.state(), BreakerState::Open);
        // After the cool-down the starved meter still rejects: the trial
        // fails and the breaker reopens.
        assert_eq!(s.admit(5_000, 1500), Admission::ShedOpen);
        assert_eq!(s.state(), BreakerState::Open);
        assert_eq!(s.stats().half_opened, 1);
        assert_eq!(s.stats().opened, 2);

        // With a generous meter the trials succeed and the breaker closes.
        for t in 0..3u64 {
            b.admit(t, 1500);
        }
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "generous meter stays closed"
        );
    }

    #[test]
    fn half_open_success_path_closes_after_trials() {
        // Meter with a burst big enough for exactly a few trial packets
        // after refill: 8000 bps = 1000 bytes/s, burst 3000 bytes.
        let meter = Meter::new(8_000, 3_000);
        let mut b = PuntBreaker::new(meter, config());
        // Drain the burst (2 admissions of 1500B), then three rejects.
        assert_eq!(b.admit(0, 1500), Admission::Admitted);
        assert_eq!(b.admit(0, 1500), Admission::Admitted);
        for _ in 0..3 {
            assert_eq!(b.admit(1, 1500), Admission::ShedMeter);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Wait long enough for the cool-down AND a full meter refill:
        // 4 seconds refills 4000 bytes, capped at the 3000-byte burst
        // (3 s would refill one token short after integer flooring).
        let later = 4_000_000_000u64;
        assert_eq!(b.admit(later, 1500), Admission::Admitted);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(later, 1500), Admission::Admitted);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().closed, 1);
        assert_eq!(b.stats().half_opened, 1);
    }

    #[test]
    fn named_instances_keep_independent_state() {
        let mut x86 = PuntBreaker::named("x86", generous(), config());
        let mut dpu = PuntBreaker::named("dpu", starved(), config());
        assert_eq!(x86.name(), "x86");
        assert_eq!(dpu.name(), "dpu");
        // Drive both on the same virtual clock: the starved tier opens,
        // the generous one never notices.
        for t in 0..8u64 {
            x86.admit(t, 1500);
            dpu.admit(t, 1500);
        }
        assert_eq!(x86.state(), BreakerState::Closed);
        assert_eq!(x86.stats(), BreakerStats::default());
        assert_eq!(dpu.state(), BreakerState::Open);
        assert!(dpu.stats().opened >= 1);
        // The default constructor keeps the historical x86 identity.
        assert_eq!(PuntBreaker::new(generous(), config()).name(), "x86");
    }

    #[test]
    fn failed_probe_refunds_the_trial_drain() {
        // 8 kbit/s = 1000 B/s, burst 3000 B, 3 trials: after a refill the
        // probe admits two 1500-byte trials (draining the bucket to zero)
        // and the third fails. The failed cycle must credit the 3000
        // drained bytes back, so the *next* probe cycle starts from the
        // same full bucket instead of failing instantly forever.
        let meter = Meter::new(8_000, 3_000);
        let mut b = PuntBreaker::new(
            meter,
            BreakerConfig {
                open_threshold: 1,
                open_ns: 1_000,
                half_open_trials: 3,
            },
        );
        assert_eq!(b.admit(0, 1500), Admission::Admitted);
        assert_eq!(b.admit(0, 1500), Admission::Admitted);
        assert_eq!(b.admit(0, 1500), Admission::ShedMeter);
        assert_eq!(b.state(), BreakerState::Open);

        // 4 s refills past the burst cap: the bucket is full again.
        let t1 = 4_000_000_000u64;
        assert_eq!(b.admit(t1, 1500), Admission::Admitted);
        assert_eq!(b.admit(t1, 1500), Admission::Admitted);
        // Third trial finds an empty bucket: the cycle fails and reopens,
        // crediting the 3000 bytes its first two trials drained.
        assert_eq!(b.admit(t1, 1500), Admission::ShedOpen);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().shed_open, 1, "failed probe sheds as open");

        // Immediately after the cool-down — with *no* meaningful refill
        // time elapsed — the next probe cycle sees the same full bucket
        // and makes identical progress. Without the refund it would
        // start 3000 bytes short and shed its first trial.
        let t2 = t1 + 1_000;
        assert_eq!(b.admit(t2, 1500), Admission::Admitted);
        assert_eq!(b.admit(t2, 1500), Admission::Admitted);
        assert_eq!(b.stats().half_opened, 2);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BreakerState::Closed.label(), "closed");
        assert_eq!(BreakerState::Open.label(), "open");
        assert_eq!(BreakerState::HalfOpen.label(), "half_open");
    }
}
