//! The frame executor: single-threaded deterministic and multi-worker.
//!
//! A [`Dataplane`] models one region's hardware tier the way the upstream
//! fabric sees it: a VNI directory splits traffic horizontally across
//! clusters (Fig 12), flow-hash ECMP attributes packets to devices inside
//! a cluster, and each cluster's table set serves the walk. Packets the
//! hardware cannot serve degrade to the XGW-x86 software forwarder, the
//! PR 2 fallback model, behind a punt-path circuit breaker wrapping the
//! protective punt meter.
//!
//! Table state is epoch-versioned ([`crate::epoch`]): workers pin the
//! current [`EpochState`] once per batch, so every packet walks an
//! entirely-old or entirely-new table set even while installs publish new
//! epochs concurrently. Hardware decisions are digested **per epoch**
//! ([`RunReport::epoch_digests`]) so the oracle can pin each epoch's
//! decision multiset independently.
//!
//! Determinism contract: [`Dataplane::run_single`] and
//! [`Dataplane::run_multi`] produce the **same decision digest** for the
//! same frame sequence — the multiset of per-packet decisions is
//! independent of worker partitioning — while their virtual-time Mpps
//! differ (that difference *is* the measurement).

use std::collections::BTreeMap;
use std::sync::Arc;

use sailfish_cluster::lb::pick_owner;
use sailfish_net::rss::Toeplitz;
use sailfish_net::wire::ethernet;
use sailfish_net::{FiveTuple, GatewayPacket};
use sailfish_sim::Topology;
use sailfish_tables::meter::Meter;
use sailfish_xgw_h::program::HwDropReason;
use sailfish_xgw_h::HwDecision;
use sailfish_xgw_x86::{SoftwareForwarder, SoftwareTables};

use crate::breaker::{Admission, BreakerConfig, BreakerStats, PuntBreaker};
use crate::cache::{CachedAction, ShardedFlowCache};
use crate::counters::TableCounters;
use crate::engine::{self, cost};
use crate::epoch::{EpochCell, EpochState};
use crate::oracle::{DropClass, PathDecision};
use crate::rewrite;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct DataplaneConfig {
    /// Hardware clusters in the region.
    pub clusters: usize,
    /// Devices per cluster (ECMP members).
    pub devices_per_cluster: usize,
    /// ECMP next-hop cap (commercial gear stays under 64).
    pub ecmp_max: usize,
    /// Every `hw_vm_stride`-th VM mapping stays off-chip (volatile or
    /// mid-migration entries served by x86) — the NoVmMapping punt source.
    pub hw_vm_stride: usize,
    /// Punt meter rate. Generous by default so deterministic runs and the
    /// oracle never hit the limiter; benches can tighten it.
    pub punt_rate_bps: u64,
    /// Punt meter burst.
    pub punt_burst_bytes: u64,
    /// Punt-path circuit breaker over the meter.
    pub breaker: BreakerConfig,
    /// Flow-cache shards per worker.
    pub cache_shards: usize,
    /// Flow capacity per shard (no-evict).
    pub cache_shard_capacity: usize,
    /// Worker threads in [`Dataplane::run_multi`].
    pub workers: usize,
    /// Frames per batch (per-batch overhead is charged once; the epoch is
    /// pinned once per batch).
    pub batch_size: usize,
    /// The DPU middle tier of the degradation ladder. `None` (the
    /// default) keeps the historical binary punt — every hardware miss
    /// degrades straight to x86 — byte-identical to pre-tier builds.
    pub tier: Option<crate::tier::TierConfig>,
}

impl Default for DataplaneConfig {
    fn default() -> Self {
        DataplaneConfig {
            clusters: 4,
            devices_per_cluster: 4,
            ecmp_max: 64,
            hw_vm_stride: 20,
            punt_rate_bps: 400_000_000_000,
            punt_burst_bytes: 1 << 31,
            breaker: BreakerConfig::default(),
            cache_shards: 8,
            cache_shard_capacity: 4096,
            workers: 4,
            batch_size: 32,
            tier: None,
        }
    }
}

/// The region-level hardware dataplane.
#[derive(Debug)]
pub struct Dataplane {
    config: DataplaneConfig,
    cell: EpochCell,
}

/// A punt queued for post-pipeline resolution: the packet plus the tier
/// that serves it — `Some((node, process_ns))` for a DPU spill, `None`
/// for the x86 fallback. The tag is captured at placement time so
/// resolution needs no epoch access.
type QueuedPunt = (GatewayPacket, Option<(u16, u64)>);

/// Per-worker mutable state.
struct WorkerState {
    cache: ShardedFlowCache,
    counters: TableCounters,
    owner_hash: Toeplitz,
    breaker: PuntBreaker,
    dpu_breaker: Option<PuntBreaker>,
    clock_ns: u64,
    digest: u64,
    epoch_digests: BTreeMap<u64, u64>,
    punted: Vec<QueuedPunt>,
    device_packets: Vec<u64>,
    scratch: Vec<u8>,
}

/// What one frame produced inside a worker.
enum FrameOutcome {
    /// The frame did not parse (counted per layer/kind already).
    ParseError,
    /// A final decision was reached on the hardware tier.
    Decided(PathDecision),
    /// Queued for the software fallback.
    Punted,
}

/// Report of one executor run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Frames offered.
    pub packets: u64,
    /// Merged stage counters.
    pub counters: TableCounters,
    /// Order-independent sum of per-packet decision digests. Equal
    /// between single and multi mode on the same frame sequence.
    pub decision_digest: u64,
    /// Hardware decision digests keyed by the epoch the deciding batch
    /// had pinned. (Fallback decisions resolve after the pipeline and are
    /// not epoch-attributed.) With no concurrent installs this holds a
    /// single entry whose value is the hardware share of
    /// [`RunReport::decision_digest`].
    pub epoch_digests: BTreeMap<u64, u64>,
    /// Virtual nanoseconds: slowest worker's pipeline time plus the
    /// serial software-fallback time.
    pub virtual_ns: u64,
    /// Packets served by the x86 software fallback (the bottom tier).
    pub fallback_packets: u64,
    /// Packets served by the DPU middle tier. Zero when the region runs
    /// without [`DataplaneConfig::tier`].
    pub dpu_packets: u64,
    /// Workers used.
    pub workers: usize,
    /// Packets attributed per `(cluster, device)`, flattened row-major.
    pub device_packets: Vec<u64>,
    /// Merged x86 punt-breaker transition/shed stats across workers.
    pub breaker: BreakerStats,
    /// Merged DPU-tier breaker stats across workers; all-zero without a
    /// configured tier.
    pub dpu_breaker: BreakerStats,
}

impl RunReport {
    /// Throughput in Mpps under the virtual cost model.
    pub fn virtual_mpps(&self) -> f64 {
        if self.virtual_ns == 0 {
            0.0
        } else {
            self.packets as f64 / self.virtual_ns as f64 * 1000.0
        }
    }
}

/// Builds the reference/fallback software forwarder holding the complete
/// table set of `topology` (routes and every VM mapping).
pub fn software_forwarder(topology: &Topology) -> SoftwareForwarder {
    let mut tables = SoftwareTables::default();
    for (key, target) in &topology.routes {
        tables.routes.insert(*key, *target);
    }
    for vm in &topology.vms {
        tables
            .vm_nc
            .insert(vm.vni, vm.ip, vm.nc)
            .expect("topology VMs are unique");
    }
    SoftwareForwarder::new(tables)
}

impl Dataplane {
    /// Builds the hardware tier from a topology at epoch 0. See
    /// [`EpochState::build`] for the table-placement rules.
    pub fn build(topology: &Topology, config: DataplaneConfig) -> Self {
        let state = EpochState::build(topology, &config, 0);
        Dataplane {
            config,
            cell: EpochCell::new(state),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DataplaneConfig {
        &self.config
    }

    /// Pins the currently published epoch state.
    pub fn pin(&self) -> Arc<EpochState> {
        self.cell.pin()
    }

    /// Atomically publishes a staged state built off to the side (e.g.
    /// via [`EpochState::build_with_world`]); returns the new epoch.
    pub fn publish(&self, state: EpochState) -> u64 {
        self.cell.publish(state)
    }

    /// The epoch number a fresh staged build should use.
    pub fn next_epoch(&self) -> u64 {
        self.cell.pin().epoch + 1
    }

    /// How many epoch swaps have been published.
    pub fn epoch_swaps(&self) -> u64 {
        self.cell.swaps()
    }

    fn new_worker_state(&self) -> WorkerState {
        WorkerState {
            cache: ShardedFlowCache::new(
                self.config.cache_shards,
                self.config.cache_shard_capacity,
            ),
            counters: TableCounters::default(),
            owner_hash: Toeplitz::default(),
            breaker: PuntBreaker::new(
                Meter::new(self.config.punt_rate_bps, self.config.punt_burst_bytes),
                self.config.breaker.clone(),
            ),
            dpu_breaker: self.config.tier.as_ref().map(|t| {
                PuntBreaker::named(
                    "dpu",
                    Meter::new(t.dpu_rate_bps, t.dpu_burst_bytes),
                    t.dpu_breaker.clone(),
                )
            }),
            clock_ns: 0,
            digest: 0,
            epoch_digests: BTreeMap::new(),
            punted: Vec::new(),
            device_packets: vec![0; self.config.clusters * self.config.devices_per_cluster],
            scratch: Vec::new(),
        }
    }

    fn action_of(decision: &HwDecision) -> CachedAction {
        match decision {
            HwDecision::ToNc { packet, nc } => CachedAction::ToNc {
                nc: *nc,
                vni: packet.vni,
            },
            HwDecision::ToRegion { region, vni } => CachedAction::ToRegion {
                region: *region,
                vni: *vni,
            },
            HwDecision::ToIdc { idc, vni } => CachedAction::ToIdc {
                idc: *idc,
                vni: *vni,
            },
            HwDecision::PuntToX86 { reason, .. } => match reason {
                sailfish_xgw_h::PuntReason::SnatRequired => CachedAction::PuntSnat,
                sailfish_xgw_h::PuntReason::NoHwRoute => CachedAction::PuntNoRoute,
                sailfish_xgw_h::PuntReason::NoVmMapping => CachedAction::PuntNoVm,
            },
            HwDecision::Drop(HwDropReason::AclDeny) => CachedAction::DropAcl,
            HwDecision::Drop(HwDropReason::RoutingLoop) => CachedAction::DropLoop,
            HwDecision::Drop(HwDropReason::PuntRateLimited) => {
                unreachable!("walk never rate-limits")
            }
        }
    }

    /// Tries to place a punt-classified packet on the DPU middle tier.
    /// Returns the queued outcome when the tier admits it; `None` means
    /// the packet falls through to the x86 admission path — either no
    /// tier is configured, the pool owns no live node for the flow, or
    /// the tier's meter/breaker shed it (a *re-route*, not a drop: the
    /// shed counters record the event and x86 still serves the packet).
    fn try_spill_dpu(
        state: &EpochState,
        frame: &[u8],
        packet: &GatewayPacket,
        st: &mut WorkerState,
    ) -> Option<FrameOutcome> {
        let map = state.tier.as_deref()?;
        let dpu_breaker = st.dpu_breaker.as_mut()?;
        let tuple_hash = st.owner_hash.hash_tuple(&packet.five_tuple());
        let crate::tier::TierDecision::SpillDpu {
            node,
            process_ns,
            rehomed,
        } = map.place(packet.vni.value(), tuple_hash)
        else {
            return None; // pool fully dead: degrade to x86
        };
        match dpu_breaker.admit(st.clock_ns, map.byte_cost(frame.len())) {
            Admission::Admitted => {
                st.clock_ns += cost::PUNT_HANDOFF_NS;
                st.counters.dpu_spilled += 1;
                if rehomed {
                    st.counters.dpu_rehomed += 1;
                }
                st.punted.push((*packet, Some((node, process_ns))));
                Some(FrameOutcome::Punted)
            }
            Admission::ShedMeter => {
                st.counters.dpu_shed_meter += 1;
                None
            }
            Admission::ShedOpen => {
                st.counters.dpu_breaker_open += 1;
                None
            }
        }
    }

    /// Applies a (possibly cache-replayed) action to the frame. When the
    /// action comes from the cache the per-stage counters the walk would
    /// have bumped are bumped here instead, so stage totals stay exact.
    fn apply_action(
        &self,
        state: &EpochState,
        action: CachedAction,
        frame: &[u8],
        packet: &GatewayPacket,
        st: &mut WorkerState,
        from_cache: bool,
    ) -> FrameOutcome {
        match action {
            CachedAction::ToNc { nc, vni } => {
                st.scratch.clear();
                st.scratch.extend_from_slice(frame);
                if let Err(e) = rewrite::apply(&mut st.scratch, nc, vni) {
                    // A parseable VXLAN frame always rewrites; a failure
                    // means the frame lied about its structure in a way
                    // the parser tolerated. Count it per layer/kind.
                    st.counters.record_frame_error(e);
                    return FrameOutcome::ParseError;
                }
                st.clock_ns += cost::REWRITE_NS;
                st.counters.hw_forwarded += 1;
                FrameOutcome::Decided(PathDecision::ToNc { nc, vni })
            }
            CachedAction::ToRegion { region, vni } => {
                st.counters.hw_forwarded += 1;
                FrameOutcome::Decided(PathDecision::ToRegion { region, vni })
            }
            CachedAction::ToIdc { idc, vni } => {
                st.counters.hw_forwarded += 1;
                FrameOutcome::Decided(PathDecision::ToIdc { idc, vni })
            }
            CachedAction::PuntSnat | CachedAction::PuntNoRoute | CachedAction::PuntNoVm => {
                if from_cache {
                    match action {
                        CachedAction::PuntSnat => st.counters.punt_snat += 1,
                        CachedAction::PuntNoRoute => st.counters.punt_no_route += 1,
                        CachedAction::PuntNoVm => st.counters.punt_no_vm += 1,
                        _ => unreachable!(),
                    }
                }
                // The degradation ladder: try the DPU middle tier first;
                // only what it cannot serve reaches the x86 admission.
                if let Some(out) = Self::try_spill_dpu(state, frame, packet, st) {
                    return out;
                }
                match st.breaker.admit(st.clock_ns, frame.len()) {
                    Admission::Admitted => {
                        st.clock_ns += cost::PUNT_HANDOFF_NS;
                        st.punted.push((*packet, None));
                        FrameOutcome::Punted
                    }
                    Admission::ShedMeter => {
                        // The handoff was attempted and the meter refused.
                        st.clock_ns += cost::PUNT_HANDOFF_NS;
                        st.counters.punt_rate_limited += 1;
                        FrameOutcome::Decided(PathDecision::Drop(DropClass::PuntRateLimited))
                    }
                    Admission::ShedOpen => {
                        // Open breaker: fail fast on-chip, no handoff cost.
                        st.counters.punt_breaker_open += 1;
                        FrameOutcome::Decided(PathDecision::Drop(DropClass::PuntRateLimited))
                    }
                }
            }
            CachedAction::DropAcl => {
                if from_cache {
                    st.counters.acl_denied += 1;
                }
                FrameOutcome::Decided(PathDecision::Drop(DropClass::Acl))
            }
            CachedAction::DropLoop => {
                if from_cache {
                    st.counters.loop_drops += 1;
                }
                FrameOutcome::Decided(PathDecision::Drop(DropClass::RoutingLoop))
            }
        }
    }

    /// Intercepts a SNAT punt when the pinned epoch carries a promoted
    /// exact-match entry for this flow: the translation is served
    /// on-chip and the punt (handoff, breaker, fallback) never happens.
    /// The decision is `ToInternet`, whose digest deliberately excludes
    /// the binding — so an offloaded decision compares equal to the one
    /// the software fallback would have produced, and offload placement
    /// can never change a run's decision digest.
    ///
    /// `punt_snat` stays a *classification* lane (walk bumps it on
    /// misses, this path mirrors `apply_action`'s cache-hit bump), so
    /// `punt_snat - snat_translations` is the software-served SNAT load.
    fn snat_offload_hit(
        state: &EpochState,
        action: CachedAction,
        packet: &GatewayPacket,
        tuple: &FiveTuple,
        st: &mut WorkerState,
        from_cache: bool,
    ) -> Option<FrameOutcome> {
        if action != CachedAction::PuntSnat {
            return None;
        }
        let offload = state.snat.as_deref()?;
        offload.lookup(packet.vni, tuple)?;
        if from_cache {
            st.counters.punt_snat += 1;
        }
        st.counters.snat_translations += 1;
        st.counters.hw_forwarded += 1;
        st.clock_ns += cost::REWRITE_NS;
        Some(FrameOutcome::Decided(PathDecision::ToInternet))
    }

    /// Processes one frame inside a worker against the pinned epoch:
    /// parse, directory, ECMP attribution, flow cache, table walk,
    /// rewrite/punt. Hostile bytes degrade to a typed, counted parse
    /// error — never a panic, never a silent punt.
    fn process_frame(
        &self,
        state: &EpochState,
        frame: &[u8],
        st: &mut WorkerState,
    ) -> FrameOutcome {
        st.clock_ns += cost::PARSE_NS;
        let packet = match GatewayPacket::parse_classified(frame) {
            Ok(p) => p,
            Err(e) => {
                st.counters.record_frame_error(e);
                return FrameOutcome::ParseError;
            }
        };
        st.counters.parsed += 1;

        let tuple = packet.five_tuple();
        let Some(primary) = state.directory.cluster_for(packet.vni) else {
            // The upstream balancer has no hardware assignment: default
            // route to the software tier.
            return self.apply_action(state, CachedAction::PuntNoRoute, frame, &packet, st, true);
        };
        // During a dual-ownership migration window either owner serves
        // the VNI; flow-hash parity decides per flow, the same split the
        // region model uses, so no flow ever black-holes mid-move.
        let cluster_idx = match state.directory.dual_of(packet.vni) {
            Some(secondary) => {
                let owner = pick_owner(&st.owner_hash, &tuple, primary, secondary);
                if owner != primary {
                    st.counters.dual_owner_packets += 1;
                }
                owner
            }
            None => primary,
        };
        let Some(cluster) = state.clusters.get(cluster_idx) else {
            // Directory points past the cluster set: treat as unassigned.
            return self.apply_action(state, CachedAction::PuntNoRoute, frame, &packet, st, true);
        };
        if cluster.epoch_tag != state.epoch {
            // Torn state: the cluster belongs to a different epoch than
            // the directory that routed us here. Must never happen; the
            // counter lets tests prove it doesn't.
            st.counters.epoch_violations += 1;
        }
        if let Ok(device) = cluster.ecmp.pick(&tuple) {
            let slot = cluster_idx * self.config.devices_per_cluster + device;
            if let Some(count) = st.device_packets.get_mut(slot) {
                *count += 1;
            }
        }

        if let Some(action) = st.cache.get(packet.vni, &tuple) {
            st.counters.cache_hits += 1;
            st.clock_ns += cost::CACHE_HIT_NS;
            if let Some(out) = Self::snat_offload_hit(state, action, &packet, &tuple, st, true) {
                return out;
            }
            return self.apply_action(state, action, frame, &packet, st, true);
        }
        st.counters.cache_misses += 1;
        let before = st.counters;
        let decision = engine::walk(&cluster.tables, &packet, &mut st.counters);
        st.clock_ns += engine::walk_cost_ns(&before, &st.counters);
        let action = Self::action_of(&decision);
        st.cache.insert(packet.vni, &tuple, action);
        if let Some(out) = Self::snat_offload_hit(state, action, &packet, &tuple, st, false) {
            return out;
        }
        self.apply_action(state, action, frame, &packet, st, false)
    }

    fn run_worker(&self, frames: &[&[u8]]) -> WorkerState {
        let mut st = self.new_worker_state();
        for batch in frames.chunks(self.config.batch_size.max(1)) {
            // Pin once per batch: every frame in the batch sees exactly
            // one epoch, even if an install publishes mid-run.
            let state = self.cell.pin();
            st.clock_ns += cost::BATCH_OVERHEAD_NS;
            let mut batch_digest = 0u64;
            for frame in batch {
                if let FrameOutcome::Decided(d) = self.process_frame(&state, frame, &mut st) {
                    let dg = d.digest();
                    st.digest = st.digest.wrapping_add(dg);
                    batch_digest = batch_digest.wrapping_add(dg);
                }
            }
            let slot = st.epoch_digests.entry(state.epoch).or_insert(0);
            *slot = slot.wrapping_add(batch_digest);
        }
        st
    }

    fn finalize(
        &self,
        states: Vec<WorkerState>,
        fallback: &mut SoftwareForwarder,
        packets: u64,
        workers: usize,
    ) -> RunReport {
        let mut counters = TableCounters::default();
        let mut digest = 0u64;
        let mut epoch_digests: BTreeMap<u64, u64> = BTreeMap::new();
        let mut pipeline_ns = 0u64;
        let mut device_packets = vec![0u64; self.config.clusters * self.config.devices_per_cluster];
        let mut punted = Vec::new();
        let mut breaker = BreakerStats::default();
        let mut dpu_breaker = BreakerStats::default();
        for st in states {
            counters.merge(&st.counters);
            digest = digest.wrapping_add(st.digest);
            for (epoch, d) in st.epoch_digests {
                let slot = epoch_digests.entry(epoch).or_insert(0);
                *slot = slot.wrapping_add(d);
            }
            pipeline_ns = pipeline_ns.max(st.clock_ns);
            for (acc, d) in device_packets.iter_mut().zip(&st.device_packets) {
                *acc += d;
            }
            punted.extend(st.punted);
            let s = st.breaker.stats();
            breaker.opened += s.opened;
            breaker.half_opened += s.half_opened;
            breaker.closed += s.closed;
            breaker.shed_open += s.shed_open;
            breaker.shed_meter += s.shed_meter;
            if let Some(db) = &st.dpu_breaker {
                let s = db.stats();
                dpu_breaker.opened += s.opened;
                dpu_breaker.half_opened += s.half_opened;
                dpu_breaker.closed += s.closed;
                dpu_breaker.shed_open += s.shed_open;
                dpu_breaker.shed_meter += s.shed_meter;
            }
        }

        // The software tiers serve punts serially after the pipeline
        // time: a DPU spill resolves through the *same* forwarder as an
        // x86 punt (both run the full software table set), just at the
        // owning DPU node's per-packet latency instead of the x86 cost —
        // which is exactly why tier placement can never change a run's
        // decision digest.
        let mut now_ns = pipeline_ns;
        let mut fallback_packets = 0u64;
        let mut dpu_packets = 0u64;
        for (packet, tier_tag) in &punted {
            let decision = match tier_tag {
                Some((_node, process_ns)) => {
                    dpu_packets += 1;
                    now_ns += process_ns;
                    let decision = PathDecision::from_software(&fallback.process(packet, now_ns));
                    if matches!(decision, PathDecision::Drop(_)) {
                        counters.dpu_dropped += 1;
                    } else {
                        counters.dpu_forwarded += 1;
                    }
                    decision
                }
                None => {
                    fallback_packets += 1;
                    now_ns += cost::X86_PROCESS_NS;
                    let decision = PathDecision::from_software(&fallback.process(packet, now_ns));
                    if matches!(decision, PathDecision::Drop(_)) {
                        counters.fallback_dropped += 1;
                    } else {
                        counters.fallback_forwarded += 1;
                    }
                    decision
                }
            };
            digest = digest.wrapping_add(decision.digest());
        }

        RunReport {
            packets,
            counters,
            decision_digest: digest,
            epoch_digests,
            virtual_ns: now_ns,
            fallback_packets,
            dpu_packets,
            workers,
            device_packets,
            breaker,
            dpu_breaker,
        }
    }

    /// Runs every frame in order on one worker — the deterministic golden
    /// mode. Punted packets are resolved through `fallback` afterwards.
    pub fn run_single(&self, frames: &[&[u8]], fallback: &mut SoftwareForwarder) -> RunReport {
        let st = self.run_worker(frames);
        self.finalize(vec![st], fallback, frames.len() as u64, 1)
    }

    /// Runs frames across `config.workers` scoped threads, partitioned by
    /// outer-UDP flow entropy (what an underlay ECMP fabric hashes).
    /// Decision digest matches [`Dataplane::run_single`] on the same
    /// frames; virtual time reflects the slowest worker.
    pub fn run_multi(&self, frames: &[&[u8]], fallback: &mut SoftwareForwarder) -> RunReport {
        let workers = self.config.workers.max(1);
        let mut parts: Vec<Vec<&[u8]>> = (0..workers).map(|_| Vec::new()).collect();
        for frame in frames {
            if let Some(part) = parts.get_mut(worker_for(frame, workers)) {
                part.push(frame);
            }
        }
        let states: Vec<WorkerState> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|part| scope.spawn(move || self.run_worker(part)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        self.finalize(states, fallback, frames.len() as u64, workers)
    }

    /// Decides one frame end-to-end without touching caches or the punt
    /// breaker — the oracle's view of the executor against the currently
    /// published epoch. Punts are resolved immediately through
    /// `fallback`. Returns `None` when the frame does not parse.
    pub fn decide_one(
        &self,
        frame: &[u8],
        fallback: &mut SoftwareForwarder,
        now_ns: u64,
    ) -> Option<PathDecision> {
        let state = self.cell.pin();
        let packet = GatewayPacket::parse(frame).ok()?;
        let owner_hash = Toeplitz::default();
        let cluster = state
            .directory
            .cluster_for(packet.vni)
            .map(|primary| match state.directory.dual_of(packet.vni) {
                // Mirror the worker's dual-window owner pick so the
                // oracle walks the very tables the pipeline walked.
                Some(secondary) => {
                    pick_owner(&owner_hash, &packet.five_tuple(), primary, secondary)
                }
                None => primary,
            })
            .and_then(|idx| state.clusters.get(idx));
        let Some(cluster) = cluster else {
            return Some(PathDecision::from_software(
                &fallback.process(&packet, now_ns),
            ));
        };
        let mut scratch = TableCounters::default();
        Some(match engine::walk(&cluster.tables, &packet, &mut scratch) {
            HwDecision::ToNc { packet: out, nc } => PathDecision::ToNc { nc, vni: out.vni },
            HwDecision::ToRegion { region, vni } => PathDecision::ToRegion { region, vni },
            HwDecision::ToIdc { idc, vni } => PathDecision::ToIdc { idc, vni },
            HwDecision::PuntToX86 { packet, reason } => {
                // Mirror the workers' offload check at the same logical
                // point: a promoted SNAT flow never reaches the fallback.
                if reason == sailfish_xgw_h::PuntReason::SnatRequired
                    && state
                        .snat
                        .as_deref()
                        .is_some_and(|o| o.lookup(packet.vni, &packet.five_tuple()).is_some())
                {
                    PathDecision::ToInternet
                } else {
                    PathDecision::from_software(&fallback.process(&packet, now_ns))
                }
            }
            HwDecision::Drop(HwDropReason::AclDeny) => PathDecision::Drop(DropClass::Acl),
            HwDecision::Drop(HwDropReason::RoutingLoop) => {
                PathDecision::Drop(DropClass::RoutingLoop)
            }
            HwDecision::Drop(HwDropReason::PuntRateLimited) => {
                unreachable!("walk never rate-limits")
            }
        })
    }
}

/// Which worker a frame belongs to: the outer UDP source port (underlay
/// flow entropy) mixed and reduced. Unparsable-at-a-glance frames land on
/// worker 0.
pub fn worker_for(frame: &[u8], workers: usize) -> usize {
    if workers <= 1 {
        return 0;
    }
    let port = peek_outer_udp_src(frame).unwrap_or(0);
    (u64::from(port).wrapping_mul(0x9E37_79B1) >> 16) as usize % workers
}

fn peek_outer_udp_src(frame: &[u8]) -> Option<u16> {
    let ethertype = u16::from_be_bytes([*frame.get(12)?, *frame.get(13)?]);
    let udp_start = match ethertype {
        0x0800 => ethernet::HEADER_LEN + usize::from(*frame.get(ethernet::HEADER_LEN)? & 0x0f) * 4,
        0x86dd => ethernet::HEADER_LEN + 40,
        _ => return None,
    };
    Some(u16::from_be_bytes([
        *frame.get(udp_start)?,
        *frame.get(udp_start + 1)?,
    ]))
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::traffic;
    use sailfish_sim::{TopologyConfig, WorkloadConfig};

    fn small_setup() -> (Topology, Vec<Vec<u8>>, Vec<usize>) {
        let topology = Topology::generate(TopologyConfig::default());
        let flows = sailfish_sim::workload::generate_flows(
            &topology,
            &WorkloadConfig {
                flows: 800,
                internet_share: 0.01,
                ..WorkloadConfig::default()
            },
        );
        let frames = traffic::frames_for_flows(&flows);
        let sched = traffic::schedule(&flows[..frames.len()], 30_000, 42);
        (topology, frames, sched)
    }

    #[test]
    fn single_and_multi_agree_on_decisions() {
        let (topology, frames, sched) = small_setup();
        let dp = Dataplane::build(&topology, DataplaneConfig::default());
        let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();

        let mut fb1 = software_forwarder(&topology);
        let single = dp.run_single(&seq, &mut fb1);
        let mut fb2 = software_forwarder(&topology);
        let multi = dp.run_multi(&seq, &mut fb2);

        assert_eq!(single.decision_digest, multi.decision_digest);
        assert_eq!(single.epoch_digests, multi.epoch_digests);
        assert_eq!(single.packets, multi.packets);
        assert_eq!(single.counters.parse_errors, 0);
        assert_eq!(single.counters.parsed, seq.len() as u64);
        // Stage totals are partition-independent too (no-evict cache).
        assert_eq!(single.counters.punted(), multi.counters.punted());
        assert_eq!(
            single.counters.hw_forwarded + single.counters.fallback_forwarded,
            multi.counters.hw_forwarded + multi.counters.fallback_forwarded,
        );
        assert_eq!(multi.workers, dp.config().workers);
        // Parallel pipelines are faster in virtual time.
        assert!(multi.virtual_mpps() >= single.virtual_mpps());
    }

    #[test]
    fn deterministic_across_repeated_runs() {
        let (topology, frames, sched) = small_setup();
        let dp = Dataplane::build(&topology, DataplaneConfig::default());
        let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();
        let mut fb1 = software_forwarder(&topology);
        let a = dp.run_multi(&seq, &mut fb1);
        let mut fb2 = software_forwarder(&topology);
        let b = dp.run_multi(&seq, &mut fb2);
        assert_eq!(a.decision_digest, b.decision_digest);
        assert_eq!(a.virtual_ns, b.virtual_ns);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.device_packets, b.device_packets);
    }

    #[test]
    fn stride_withholds_vm_mappings() {
        let (topology, frames, sched) = small_setup();
        let dp = Dataplane::build(&topology, DataplaneConfig::default());
        let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();
        let mut fb = software_forwarder(&topology);
        let report = dp.run_single(&seq, &mut fb);
        // With 1-in-20 mappings off-chip and thousands of flows, some
        // NoVmMapping punts must occur — and the fallback must serve them
        // (full tables, no black hole).
        assert!(report.counters.punt_no_vm > 0, "{:?}", report.counters);
        assert!(report.counters.fallback_forwarded > 0);
        assert_eq!(report.counters.punt_rate_limited, 0);
        assert_eq!(report.counters.punt_breaker_open, 0);
        // Cache effectiveness: repeated flows hit after the first miss.
        assert!(report.counters.cache_hits > report.counters.cache_misses);
    }

    #[test]
    fn quiescent_run_stays_on_one_untorn_epoch() {
        let (topology, frames, sched) = small_setup();
        let dp = Dataplane::build(&topology, DataplaneConfig::default());
        let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();
        let mut fb = software_forwarder(&topology);
        let report = dp.run_single(&seq, &mut fb);
        assert_eq!(report.counters.epoch_violations, 0);
        assert_eq!(report.epoch_digests.len(), 1);
        assert!(report.epoch_digests.contains_key(&0));
        assert_eq!(dp.epoch_swaps(), 0);
        assert_eq!(dp.pin().epoch, 0);
    }

    #[test]
    fn dpu_tier_serves_punts_without_changing_the_digest() {
        let (topology, frames, sched) = small_setup();
        let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();

        let flat = Dataplane::build(&topology, DataplaneConfig::default());
        let mut fb = software_forwarder(&topology);
        let two_tier = flat.run_single(&seq, &mut fb);

        let tiered = Dataplane::build(
            &topology,
            DataplaneConfig {
                tier: Some(crate::tier::TierConfig::default()),
                ..DataplaneConfig::default()
            },
        );
        let mut fb = software_forwarder(&topology);
        let three_tier = tiered.run_single(&seq, &mut fb);

        // Tier placement moves *where* a punt is served, never *what*
        // the decision is.
        assert_eq!(two_tier.decision_digest, three_tier.decision_digest);
        assert_eq!(two_tier.epoch_digests, three_tier.epoch_digests);

        // A healthy pool with generous meters owns every punted flow:
        // the x86 rung sees nothing.
        assert!(three_tier.dpu_packets > 0);
        assert_eq!(three_tier.fallback_packets, 0);
        assert_eq!(three_tier.dpu_packets, two_tier.fallback_packets);
        let c = &three_tier.counters;
        assert_eq!(c.dpu_spilled, c.dpu_forwarded + c.dpu_dropped);
        assert_eq!(c.dpu_shed_meter, 0);
        assert_eq!(c.dpu_breaker_open, 0);
        assert_eq!(c.dpu_rehomed, 0);
        assert_eq!(
            c.punted(),
            c.dpu_forwarded
                + c.dpu_dropped
                + c.fallback_forwarded
                + c.fallback_dropped
                + c.punt_rate_limited
                + c.punt_breaker_open
        );

        // DPU service is cheaper than x86 service, so the three-tier
        // ladder finishes earlier in virtual time.
        assert!(three_tier.virtual_ns < two_tier.virtual_ns);
    }

    #[test]
    fn tiered_single_and_multi_agree_on_decisions() {
        let (topology, frames, sched) = small_setup();
        let dp = Dataplane::build(
            &topology,
            DataplaneConfig {
                tier: Some(crate::tier::TierConfig::default()),
                ..DataplaneConfig::default()
            },
        );
        let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();
        let mut fb1 = software_forwarder(&topology);
        let single = dp.run_single(&seq, &mut fb1);
        let mut fb2 = software_forwarder(&topology);
        let multi = dp.run_multi(&seq, &mut fb2);
        assert_eq!(single.decision_digest, multi.decision_digest);
        assert_eq!(single.epoch_digests, multi.epoch_digests);
        assert_eq!(single.dpu_packets, multi.dpu_packets);
        assert_eq!(single.counters.dpu_spilled, multi.counters.dpu_spilled);
    }

    #[test]
    fn worker_partition_is_total_and_stable() {
        let (_, frames, _) = small_setup();
        for frame in frames.iter().take(200) {
            let w = worker_for(frame, 4);
            assert!(w < 4);
            assert_eq!(w, worker_for(frame, 4));
        }
        assert_eq!(worker_for(&[], 4), 0);
        assert_eq!(worker_for(&[0u8; 60], 1), 0);
    }

    #[test]
    fn ecmp_attribution_spreads_devices() {
        let (topology, frames, sched) = small_setup();
        let dp = Dataplane::build(&topology, DataplaneConfig::default());
        let seq: Vec<&[u8]> = sched.iter().map(|i| frames[*i].as_slice()).collect();
        let mut fb = software_forwarder(&topology);
        let report = dp.run_single(&seq, &mut fb);
        let busy = report.device_packets.iter().filter(|c| **c > 0).count();
        assert!(
            busy > dp.config().devices_per_cluster,
            "only {busy} devices saw traffic: {:?}",
            report.device_packets
        );
        assert_eq!(
            report.device_packets.iter().sum::<u64>(),
            report.counters.parsed
        );
    }
}
