//! Behavioral packet-level dataplane executor.
//!
//! Every other crate in the workspace reasons about [`sailfish_net::GatewayPacket`]
//! — an already-parsed model of a VXLAN frame. This crate closes the loop
//! down to real wire bytes: it parses Ethernet/IPv4/IPv6/VXLAN frames with
//! the `net::wire` views, walks the verified XGW-H table layout stage by
//! stage (digest match with conflict-table fallback, pooled-ALPM LPM,
//! VNI-based horizontal split and ECMP device choice), applies the header
//! rewrite and re-encapsulation in place, and degrades to the XGW-x86
//! software path whenever the hardware pipeline cannot serve a packet —
//! the same fallback model the region simulation uses.
//!
//! Two executors exist over the same epoch-versioned tables:
//!
//! - the **scalar** [`executor::Dataplane`] (single-threaded deterministic
//!   [`executor::Dataplane::run_single`] for golden tests and byte-identical
//!   benchmark JSON, plus scoped-thread [`executor::Dataplane::run_multi`]
//!   partitioned by outer-UDP flow entropy exactly like an underlay ECMP
//!   fabric would), and
//! - the **zero-allocation batch pipeline** ([`batch::BatchExecutor`]),
//!   which walks contiguous frame lanes through per-stage loops with a
//!   borrowed-view parser, an evicting S3-FIFO flow cache and a reusable
//!   rewrite arena. The scalar executor stays the determinism oracle: both
//!   produce identical decision digests on the same frames.
//!
//! The differential oracle ([`oracle::differential_run`]) pins the whole
//! pipeline against the reference software forwarder: every packet the
//! hardware executor serves must reach the same `(next-hop, rewrite)`
//! decision `xgw_x86::SoftwareForwarder` would take.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Non-test code must not `unwrap()` (see clippy.toml `disallowed-methods`);
// CI's `-D warnings` escalates this to deny. Test builds carry `cfg(test)`
// and keep their unwraps.
#![cfg_attr(not(test), warn(clippy::disallowed_methods))]

// The zero-alloc batch hot path handles raw frames at line rate; its
// slicing lint is `deny` like `rewrite`'s — unchecked indexing on
// hostile bytes must not compile.
#[deny(clippy::indexing_slicing)]
pub mod batch;
pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod counters;
pub mod engine;
pub mod epoch;
// Hot paths touching raw frame bytes must prove every slice: the lint
// rejects unchecked indexing so truncated or hostile frames cannot panic
// the pipeline (per-module `allow`s carry the bounds proofs).
#[warn(clippy::indexing_slicing)]
pub mod executor;
pub mod oracle;
#[deny(clippy::indexing_slicing)]
pub mod rewrite;
pub mod tier;
pub mod traffic;

pub use batch::BatchExecutor;
pub use breaker::{Admission, BreakerConfig, BreakerState, BreakerStats, PuntBreaker};
pub use cache::{CachedAction, FlowCache, FlowOutcome};
pub use chaos::{ChaosConfig, ChaosReport, FaultOutcome, InvariantViolation, SlotRecord};
pub use counters::TableCounters;
pub use epoch::{EpochCell, EpochState, WorldView};
pub use executor::{Dataplane, DataplaneConfig, RunReport};
pub use oracle::{differential_run, OracleReport, PathDecision};
pub use tier::{TierConfig, TierDecision, TierMap};
