//! In-place header rewrite and re-encapsulation.
//!
//! After the table walk decides `ToNc { nc, vni }`, the wire frame is
//! rewritten the way the egress pipe does it (Fig 2): decrement the outer
//! TTL/hop limit, point the outer destination at the hosting NC, and stamp
//! the destination VPC's VNI into the VXLAN header. Over IPv4 underlays
//! both changes patch the header checksum incrementally (RFC 1624 Eqn. 3,
//! see `sailfish_net::checksum`); over IPv6 the mandatory outer UDP
//! checksum is refilled across the datagram.
//!
//! Every byte access is bounds-checked: a frame that is shorter than its
//! headers claim (hostile IHL, short buffer, lying UDP length) degrades to
//! a typed [`FrameError`], never a panic. Header regions are delimited by
//! the validated length fields, so trailing bytes past the declared packet
//! end are never interpreted as headers.

use core::net::IpAddr;

use sailfish_net::wire::ethernet::{self, EtherType};
use sailfish_net::wire::{ipv4, ipv6, udp, vxlan};
use sailfish_net::{Error, FrameError, FrameLayer, Vni};
use sailfish_tables::types::NcAddr;

/// Rewrites `frame` in place for delivery to `nc` under `vni`.
///
/// The frame must be a VXLAN-in-UDP packet as produced by
/// [`sailfish_net::GatewayPacket::emit`]. Fails with a typed
/// [`FrameError`] naming the offending layer: `Malformed` at the outer IP
/// layer when the NC address family does not match an IPv4 underlay, and
/// `Truncated`/`Malformed` when the frame is shorter or less consistent
/// than its headers claim.
pub fn apply(frame: &mut [u8], nc: NcAddr, vni: Vni) -> Result<(), FrameError> {
    let ethertype = ethernet::Frame::new_checked(&*frame)
        .map_err(|e| FrameError::new(FrameLayer::OuterEthernet, e))?
        .ethertype();
    match ethertype {
        EtherType::Ipv4 => apply_v4(frame, nc, vni),
        EtherType::Ipv6 => apply_v6(frame, nc, vni),
        _ => Err(FrameError::new(
            FrameLayer::OuterEthernet,
            Error::Unsupported,
        )),
    }
}

fn apply_v4(frame: &mut [u8], nc: NcAddr, vni: Vni) -> Result<(), FrameError> {
    let IpAddr::V4(nc_v4) = nc.ip else {
        // A v6-homed NC cannot terminate a v4 underlay frame.
        return Err(FrameError::new(FrameLayer::OuterIpv4, Error::Malformed));
    };
    let ip_bytes = frame
        .get_mut(ethernet::HEADER_LEN..)
        .ok_or(FrameError::new(FrameLayer::OuterIpv4, Error::Truncated))?;
    let (header_len, total_len) = {
        let ip = ipv4::Packet::new_checked(&*ip_bytes)
            .map_err(|e| FrameError::new(FrameLayer::OuterIpv4, e))?;
        (ip.header_len(), ip.total_len() as usize)
    };
    {
        let mut ip = ipv4::Packet::new_unchecked(&mut *ip_bytes);
        ip.decrement_ttl();
        ip.rewrite_dst_addr(nc_v4);
    }
    // Outer UDP checksum stays zero over IPv4 underlays (emit() convention),
    // so only the VXLAN VNI needs stamping. The datagram region is delimited
    // by the validated IP total length, not the buffer end.
    let udp_bytes = ip_bytes
        .get_mut(header_len..total_len)
        .ok_or(FrameError::new(FrameLayer::OuterUdp, Error::Truncated))?;
    let udp_total = udp::Datagram::new_checked(&*udp_bytes)
        .map_err(|e| FrameError::new(FrameLayer::OuterUdp, e))?
        .len() as usize;
    let vx_bytes = udp_bytes
        .get_mut(udp::HEADER_LEN..udp_total)
        .ok_or(FrameError::new(FrameLayer::Vxlan, Error::Truncated))?;
    let mut vx =
        vxlan::Header::new_checked(vx_bytes).map_err(|e| FrameError::new(FrameLayer::Vxlan, e))?;
    vx.set_vni(vni);
    Ok(())
}

fn apply_v6(frame: &mut [u8], nc: NcAddr, vni: Vni) -> Result<(), FrameError> {
    let nc_v6 = match nc.ip {
        IpAddr::V6(a) => a,
        // NCs are v4-homed; a v6 underlay reaches them via the mapped form.
        IpAddr::V4(a) => a.to_ipv6_mapped(),
    };
    let ip_bytes = frame
        .get_mut(ethernet::HEADER_LEN..)
        .ok_or(FrameError::new(FrameLayer::OuterIpv6, Error::Truncated))?;
    let (src, payload_len) = {
        let mut ip = ipv6::Packet::new_checked(&mut *ip_bytes)
            .map_err(|e| FrameError::new(FrameLayer::OuterIpv6, e))?;
        let hop = ip.hop_limit();
        if hop > 0 {
            ip.set_hop_limit(hop - 1);
        }
        ip.set_dst_addr(nc_v6);
        (ip.src_addr(), ip.payload_len() as usize)
    };
    // The datagram region is delimited by the validated IPv6 payload length.
    let udp_bytes = ip_bytes
        .get_mut(ipv6::HEADER_LEN..ipv6::HEADER_LEN + payload_len)
        .ok_or(FrameError::new(FrameLayer::OuterUdp, Error::Truncated))?;
    let udp_total = udp::Datagram::new_checked(&*udp_bytes)
        .map_err(|e| FrameError::new(FrameLayer::OuterUdp, e))?
        .len() as usize;
    {
        let vx_bytes = udp_bytes
            .get_mut(udp::HEADER_LEN..udp_total)
            .ok_or(FrameError::new(FrameLayer::Vxlan, Error::Truncated))?;
        let mut vx = vxlan::Header::new_checked(vx_bytes)
            .map_err(|e| FrameError::new(FrameLayer::Vxlan, e))?;
        vx.set_vni(vni);
    }
    // The v6 outer UDP checksum covers the rewritten addresses and VNI:
    // refill it over the whole datagram. The length was validated by
    // `new_checked` above, so the unchecked view is safe.
    let mut u = udp::Datagram::new_unchecked(udp_bytes);
    u.fill_checksum_v6(src, nc_v6);
    Ok(())
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use sailfish_net::packet::GatewayPacketBuilder;
    use sailfish_net::GatewayPacket;

    fn nc(s: &str) -> NcAddr {
        NcAddr::new(s.parse().unwrap())
    }

    fn sample_v4() -> GatewayPacket {
        GatewayPacketBuilder::new(
            Vni::from_const(100),
            "192.168.10.2".parse().unwrap(),
            "192.168.30.5".parse().unwrap(),
        )
        .build()
    }

    fn sample_v6() -> GatewayPacket {
        let mut p = sample_v4();
        p.outer.src_ip = "fd00::1".parse().unwrap();
        p.outer.dst_ip = "fd00::2".parse().unwrap();
        p
    }

    #[test]
    fn v4_rewrite_round_trips_and_checksums() {
        let p = sample_v4();
        let mut frame = p.emit().unwrap();
        apply(&mut frame, nc("10.1.1.12"), Vni::from_const(200)).unwrap();

        // The outer IPv4 header checksum must still verify after the
        // incremental patches.
        let ip = ipv4::Packet::new_checked(&frame[ethernet::HEADER_LEN..]).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.ttl(), 63);
        assert_eq!(
            ip.dst_addr(),
            "10.1.1.12".parse::<core::net::Ipv4Addr>().unwrap()
        );

        let q = GatewayPacket::parse(&frame).unwrap();
        assert_eq!(q.outer.dst_ip, "10.1.1.12".parse::<IpAddr>().unwrap());
        assert_eq!(q.vni, Vni::from_const(200));
        // The inner tenant packet is untouched.
        assert_eq!(q.inner, p.inner);
    }

    #[test]
    fn v6_rewrite_refills_udp_checksum() {
        let mut frame = sample_v6().emit().unwrap();
        apply(&mut frame, nc("10.1.1.12"), Vni::from_const(300)).unwrap();

        let expected_dst: core::net::Ipv6Addr = "10.1.1.12"
            .parse::<core::net::Ipv4Addr>()
            .unwrap()
            .to_ipv6_mapped();
        let ip = ipv6::Packet::new_checked(&frame[ethernet::HEADER_LEN..]).unwrap();
        assert_eq!(ip.hop_limit(), 63);
        assert_eq!(ip.dst_addr(), expected_dst);
        let u =
            udp::Datagram::new_checked(&frame[ethernet::HEADER_LEN + ipv6::HEADER_LEN..]).unwrap();
        assert!(u.verify_checksum_v6(ip.src_addr(), expected_dst));

        let q = GatewayPacket::parse(&frame).unwrap();
        assert_eq!(q.vni, Vni::from_const(300));
        assert_eq!(q.outer.dst_ip, IpAddr::V6(expected_dst));
    }

    #[test]
    fn v4_frame_rejects_v6_nc() {
        let mut frame = sample_v4().emit().unwrap();
        assert_eq!(
            apply(&mut frame, nc("2001:db8::1"), Vni::from_const(1)),
            Err(FrameError::new(FrameLayer::OuterIpv4, Error::Malformed))
        );
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = sample_v4().emit().unwrap();
        let mut cut = frame[..40].to_vec();
        assert!(apply(&mut cut, nc("10.1.1.12"), Vni::from_const(1)).is_err());
    }

    /// Regression: the pre-hardening rewrite sliced `frame[vxlan_start..]`
    /// unconditionally and panicked whenever the buffer ended between the
    /// outer IP header and the VXLAN header. Every truncation point must
    /// now degrade to an error.
    #[test]
    fn v4_truncation_at_every_length_is_an_error_not_a_panic() {
        let frame = sample_v4().emit().unwrap();
        for cut in 0..frame.len() {
            let mut short = frame[..cut].to_vec();
            assert!(
                apply(&mut short, nc("10.1.1.12"), Vni::from_const(9)).is_err(),
                "cut at {cut} must fail, not panic or succeed"
            );
        }
    }

    #[test]
    fn v6_truncation_at_every_length_is_an_error_not_a_panic() {
        let frame = sample_v6().emit().unwrap();
        for cut in 0..frame.len() {
            let mut short = frame[..cut].to_vec();
            // Shorter buffers invalidate the IPv6 payload-length check, so
            // every cut must be rejected without panicking.
            assert!(
                apply(&mut short, nc("10.1.1.12"), Vni::from_const(9)).is_err(),
                "cut at {cut} must fail, not panic or succeed"
            );
        }
    }

    /// Regression: a hostile IHL that walks the UDP/VXLAN offsets past the
    /// buffer end used to panic in the slice math. The IP header itself is
    /// consistent (IHL == total length == buffer), so only the hardened
    /// UDP delimiting catches it.
    #[test]
    fn v4_hostile_ihl_overruns_are_rejected() {
        let mut frame = sample_v4().emit().unwrap();
        // Keep only the Ethernet header plus a 60-byte "IP header" so the
        // UDP region is empty.
        frame.truncate(ethernet::HEADER_LEN + 60);
        frame[ethernet::HEADER_LEN] = 0x4f; // version 4, IHL 15 (60 bytes)
        frame[ethernet::HEADER_LEN + 2..ethernet::HEADER_LEN + 4]
            .copy_from_slice(&60u16.to_be_bytes());
        let got = apply(&mut frame, nc("10.1.1.12"), Vni::from_const(9));
        assert_eq!(
            got,
            Err(FrameError::new(FrameLayer::OuterUdp, Error::Truncated))
        );
    }

    /// A lying UDP length field (shorter than header + VXLAN) must be
    /// caught when delimiting the VXLAN region.
    #[test]
    fn v4_lying_udp_length_is_rejected() {
        let mut frame = sample_v4().emit().unwrap();
        let ihl = (frame[ethernet::HEADER_LEN] & 0x0f) as usize * 4;
        let udp_start = ethernet::HEADER_LEN + ihl;
        // Declare exactly the UDP header: VXLAN no longer fits.
        frame[udp_start + 4..udp_start + 6].copy_from_slice(&8u16.to_be_bytes());
        let got = apply(&mut frame, nc("10.1.1.12"), Vni::from_const(9));
        assert_eq!(
            got,
            Err(FrameError::new(FrameLayer::Vxlan, Error::Truncated))
        );
    }
}
