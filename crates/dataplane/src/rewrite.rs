//! In-place header rewrite and re-encapsulation.
//!
//! After the table walk decides `ToNc { nc, vni }`, the wire frame is
//! rewritten the way the egress pipe does it (Fig 2): decrement the outer
//! TTL/hop limit, point the outer destination at the hosting NC, and stamp
//! the destination VPC's VNI into the VXLAN header. Over IPv4 underlays
//! both changes patch the header checksum incrementally (RFC 1624 Eqn. 3,
//! see `sailfish_net::checksum`); over IPv6 the mandatory outer UDP
//! checksum is refilled across the datagram.

use core::net::IpAddr;

use sailfish_net::wire::ethernet::{self, EtherType};
use sailfish_net::wire::{ipv4, ipv6, udp, vxlan};
use sailfish_net::{Error, Result, Vni};
use sailfish_tables::types::NcAddr;

/// Rewrites `frame` in place for delivery to `nc` under `vni`.
///
/// The frame must be a VXLAN-in-UDP packet as produced by
/// [`sailfish_net::GatewayPacket::emit`]. Fails with `Error::Malformed`
/// when the NC address family does not match an IPv4 underlay, and with
/// parse errors when the frame is inconsistent.
pub fn apply(frame: &mut [u8], nc: NcAddr, vni: Vni) -> Result<()> {
    let ethertype = ethernet::Frame::new_checked(&frame[..])?.ethertype();
    match ethertype {
        EtherType::Ipv4 => apply_v4(frame, nc, vni),
        EtherType::Ipv6 => apply_v6(frame, nc, vni),
        _ => Err(Error::Unsupported),
    }
}

fn apply_v4(frame: &mut [u8], nc: NcAddr, vni: Vni) -> Result<()> {
    let IpAddr::V4(nc_v4) = nc.ip else {
        // A v6-homed NC cannot terminate a v4 underlay frame.
        return Err(Error::Malformed);
    };
    let ip_start = ethernet::HEADER_LEN;
    let header_len = {
        let ip = ipv4::Packet::new_checked(&frame[ip_start..])?;
        ip.header_len()
    };
    {
        let mut ip = ipv4::Packet::new_unchecked(&mut frame[ip_start..]);
        ip.decrement_ttl();
        ip.rewrite_dst_addr(nc_v4);
    }
    // Outer UDP checksum stays zero over IPv4 underlays (emit() convention),
    // so only the VXLAN VNI needs stamping.
    let vxlan_start = ip_start + header_len + udp::HEADER_LEN;
    let mut vx = vxlan::Header::new_checked(&mut frame[vxlan_start..])?;
    vx.set_vni(vni);
    Ok(())
}

fn apply_v6(frame: &mut [u8], nc: NcAddr, vni: Vni) -> Result<()> {
    let ip_start = ethernet::HEADER_LEN;
    let nc_v6 = match nc.ip {
        IpAddr::V6(a) => a,
        // NCs are v4-homed; a v6 underlay reaches them via the mapped form.
        IpAddr::V4(a) => a.to_ipv6_mapped(),
    };
    let src = {
        let mut ip = ipv6::Packet::new_checked(&mut frame[ip_start..])?;
        let hop = ip.hop_limit();
        if hop > 0 {
            ip.set_hop_limit(hop - 1);
        }
        ip.set_dst_addr(nc_v6);
        ip.src_addr()
    };
    let udp_start = ip_start + ipv6::HEADER_LEN;
    {
        let mut vx = vxlan::Header::new_checked(&mut frame[udp_start + udp::HEADER_LEN..])?;
        vx.set_vni(vni);
    }
    // The v6 outer UDP checksum covers the rewritten addresses and VNI:
    // refill it over the whole datagram.
    let mut u = udp::Datagram::new_checked(&mut frame[udp_start..])?;
    u.fill_checksum_v6(src, nc_v6);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_net::packet::GatewayPacketBuilder;
    use sailfish_net::GatewayPacket;

    fn nc(s: &str) -> NcAddr {
        NcAddr::new(s.parse().unwrap())
    }

    fn sample_v4() -> GatewayPacket {
        GatewayPacketBuilder::new(
            Vni::from_const(100),
            "192.168.10.2".parse().unwrap(),
            "192.168.30.5".parse().unwrap(),
        )
        .build()
    }

    #[test]
    fn v4_rewrite_round_trips_and_checksums() {
        let p = sample_v4();
        let mut frame = p.emit().unwrap();
        apply(&mut frame, nc("10.1.1.12"), Vni::from_const(200)).unwrap();

        // The outer IPv4 header checksum must still verify after the
        // incremental patches.
        let ip = ipv4::Packet::new_checked(&frame[ethernet::HEADER_LEN..]).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.ttl(), 63);
        assert_eq!(
            ip.dst_addr(),
            "10.1.1.12".parse::<core::net::Ipv4Addr>().unwrap()
        );

        let q = GatewayPacket::parse(&frame).unwrap();
        assert_eq!(q.outer.dst_ip, "10.1.1.12".parse::<IpAddr>().unwrap());
        assert_eq!(q.vni, Vni::from_const(200));
        // The inner tenant packet is untouched.
        assert_eq!(q.inner, p.inner);
    }

    #[test]
    fn v6_rewrite_refills_udp_checksum() {
        let mut p = sample_v4();
        p.outer.src_ip = "fd00::1".parse().unwrap();
        p.outer.dst_ip = "fd00::2".parse().unwrap();
        let mut frame = p.emit().unwrap();
        apply(&mut frame, nc("10.1.1.12"), Vni::from_const(300)).unwrap();

        let expected_dst: core::net::Ipv6Addr = "10.1.1.12"
            .parse::<core::net::Ipv4Addr>()
            .unwrap()
            .to_ipv6_mapped();
        let ip = ipv6::Packet::new_checked(&frame[ethernet::HEADER_LEN..]).unwrap();
        assert_eq!(ip.hop_limit(), 63);
        assert_eq!(ip.dst_addr(), expected_dst);
        let u =
            udp::Datagram::new_checked(&frame[ethernet::HEADER_LEN + ipv6::HEADER_LEN..]).unwrap();
        assert!(u.verify_checksum_v6(ip.src_addr(), expected_dst));

        let q = GatewayPacket::parse(&frame).unwrap();
        assert_eq!(q.vni, Vni::from_const(300));
        assert_eq!(q.outer.dst_ip, IpAddr::V6(expected_dst));
    }

    #[test]
    fn v4_frame_rejects_v6_nc() {
        let mut frame = sample_v4().emit().unwrap();
        assert_eq!(
            apply(&mut frame, nc("2001:db8::1"), Vni::from_const(1)),
            Err(Error::Malformed)
        );
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = sample_v4().emit().unwrap();
        let mut cut = frame[..40].to_vec();
        assert!(apply(&mut cut, nc("10.1.1.12"), Vni::from_const(1)).is_err());
    }
}
