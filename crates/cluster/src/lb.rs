//! The ECMP load balancer in front of gateway clusters.
//!
//! "Cloud gateways are placed behind the load balancing switch/router
//! which conducts ECMP flow-based forwarding... commercial load balancers
//! are generally limited to allowing fewer than 64 possible next-hops"
//! (§2.3). The cap is the reason a region needs several clusters; the
//! balancer enforces it.
//!
//! Two dispatch layers exist in Sailfish mode (Fig 12): a VNI directory
//! choosing the *cluster* ("traffic is distributed according to the VNI
//! via a load balancer"), then flow-hash ECMP choosing the *device*
//! within the cluster.

use std::collections::HashMap;

use sailfish_net::rss::Toeplitz;
use sailfish_net::{FiveTuple, Vni};

/// Errors from balancer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LbError {
    /// Adding the next hop would exceed the ECMP group's hardware cap.
    NextHopLimit {
        /// The configured cap.
        max: usize,
    },
    /// The group has no members.
    Empty,
}

impl core::fmt::Display for LbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LbError::NextHopLimit { max } => {
                write!(f, "ECMP next-hop limit ({max}) exceeded")
            }
            LbError::Empty => write!(f, "ECMP group has no members"),
        }
    }
}

impl std::error::Error for LbError {}

/// A flow-hash ECMP group with a commercial next-hop cap.
#[derive(Debug, Clone)]
pub struct EcmpGroup {
    members: Vec<usize>,
    max_next_hops: usize,
    hasher: Toeplitz,
}

impl EcmpGroup {
    /// Creates a group with a next-hop cap (Juniper-style caps are 16;
    /// most gear stays under 64).
    pub fn new(max_next_hops: usize) -> Self {
        EcmpGroup {
            members: Vec::new(),
            max_next_hops,
            hasher: Toeplitz::default(),
        }
    }

    /// Current members (node ids).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Adds a next hop, enforcing the cap.
    pub fn add(&mut self, node: usize) -> Result<(), LbError> {
        if self.members.len() >= self.max_next_hops {
            return Err(LbError::NextHopLimit {
                max: self.max_next_hops,
            });
        }
        self.members.push(node);
        Ok(())
    }

    /// Removes a next hop (node failure / maintenance). Flows re-hash to
    /// the remaining members.
    pub fn remove(&mut self, node: usize) -> bool {
        match self.members.iter().position(|m| *m == node) {
            Some(idx) => {
                self.members.remove(idx);
                true
            }
            None => false,
        }
    }

    /// Picks the member for a flow.
    pub fn pick(&self, tuple: &FiveTuple) -> Result<usize, LbError> {
        if self.members.is_empty() {
            return Err(LbError::Empty);
        }
        let h = self.hasher.hash_tuple(tuple) as usize;
        Ok(self.members[h % self.members.len()])
    }
}

/// Picks between two co-owners of a VNI range during a make-before-break
/// migration's `Dual` phase. The choice is a pure flow-hash function, so
/// upstream ECMP, the region model, and the packet-level executor all
/// send a given flow to the *same* owner — no packet can land on a device
/// that lacks the tables, because both owners hold them.
pub fn pick_owner(hasher: &Toeplitz, tuple: &FiveTuple, primary: usize, secondary: usize) -> usize {
    if hasher.hash_tuple(tuple) & 1 == 0 {
        primary
    } else {
        secondary
    }
}

/// VNI → cluster directory, maintained by the controller's split plan.
///
/// During an elastic re-shard a VNI can temporarily have a *second*
/// owner (`Dual` phase of the make-before-break sequence): the primary
/// map keeps the old owner until `promote` retargets it in one step.
#[derive(Debug, Clone, Default)]
pub struct VniDirectory {
    map: HashMap<Vni, usize>,
    dual: HashMap<Vni, usize>,
}

impl VniDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a VNI to a cluster.
    pub fn assign(&mut self, vni: Vni, cluster: usize) {
        self.map.insert(vni, cluster);
    }

    /// The cluster serving a VNI.
    pub fn cluster_for(&self, vni: Vni) -> Option<usize> {
        self.map.get(&vni).copied()
    }

    /// Starts dual ownership: `secondary` co-owns the VNI alongside the
    /// current primary. Traffic may be hashed to either owner until the
    /// migration commits (`promote`) or aborts (`abort_dual`).
    pub fn begin_dual(&mut self, vni: Vni, secondary: usize) {
        self.dual.insert(vni, secondary);
    }

    /// Commits a migration: the dual owner becomes the sole primary in
    /// one atomic directory step. Returns `false` when no dual ownership
    /// was in effect for the VNI.
    pub fn promote(&mut self, vni: Vni) -> bool {
        match self.dual.remove(&vni) {
            Some(new_owner) => {
                self.map.insert(vni, new_owner);
                true
            }
            None => false,
        }
    }

    /// Aborts a migration: drops the dual owner, leaving the primary
    /// untouched. Returns `false` when no dual ownership was in effect.
    pub fn abort_dual(&mut self, vni: Vni) -> bool {
        self.dual.remove(&vni).is_some()
    }

    /// The secondary owner of a VNI during `Dual`, if any.
    pub fn dual_of(&self, vni: Vni) -> Option<usize> {
        self.dual.get(&vni).copied()
    }

    /// Number of VNIs currently under dual ownership.
    pub fn dual_len(&self) -> usize {
        self.dual.len()
    }

    /// Both owners of a VNI: `(primary, Option<secondary>)`.
    pub fn owners_for(&self, vni: Vni) -> Option<(usize, Option<usize>)> {
        self.cluster_for(vni).map(|p| (p, self.dual_of(vni)))
    }

    /// Number of assigned VNIs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// A deterministic (sorted) snapshot of every assignment. Chaos
    /// invariant checks and property tests compare snapshots before and
    /// after recovery sequences.
    pub fn snapshot(&self) -> Vec<(Vni, usize)> {
        let mut entries: Vec<(Vni, usize)> = self.map.iter().map(|(v, c)| (*v, *c)).collect();
        entries.sort();
        entries
    }

    /// Moves every VNI on `from` to `to` (cluster-level disaster
    /// recovery: "any anomaly will alert the controller to modify the
    /// routes in the upstream devices for traffic reroute to the backup
    /// clusters", §6.1). Returns how many VNIs moved.
    pub fn reroute_cluster(&mut self, from: usize, to: usize) -> usize {
        let mut moved = 0;
        for target in self.map.values_mut() {
            if *target == from {
                *target = to;
                moved += 1;
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_net::IpProtocol;

    fn tuple(i: u32) -> FiveTuple {
        FiveTuple::new(
            core::net::Ipv4Addr::from(0x0a000000 | i).into(),
            "10.255.0.1".parse().unwrap(),
            IpProtocol::Tcp,
            1000,
            4789,
        )
    }

    #[test]
    fn next_hop_cap_enforced() {
        let mut g = EcmpGroup::new(16);
        for i in 0..16 {
            g.add(i).unwrap();
        }
        assert_eq!(g.add(16), Err(LbError::NextHopLimit { max: 16 }));
        assert_eq!(g.len(), 16);
    }

    #[test]
    fn pick_is_stable_and_in_range() {
        let mut g = EcmpGroup::new(8);
        for i in 0..8 {
            g.add(i * 10).unwrap();
        }
        for i in 0..100 {
            let t = tuple(i);
            let a = g.pick(&t).unwrap();
            assert_eq!(a, g.pick(&t).unwrap());
            assert!(g.members().contains(&a));
        }
    }

    #[test]
    fn spreads_flows_roughly_evenly() {
        let mut g = EcmpGroup::new(64);
        for i in 0..10 {
            g.add(i).unwrap();
        }
        let mut counts = [0usize; 10];
        for i in 0..20_000 {
            counts[g.pick(&tuple(i)).unwrap()] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let dev = (*c as f64 - 2_000.0).abs() / 2_000.0;
            assert!(dev < 0.2, "member {i} got {c}");
        }
    }

    #[test]
    fn removal_reroutes_remaining() {
        let mut g = EcmpGroup::new(8);
        g.add(1).unwrap();
        g.add(2).unwrap();
        assert!(g.remove(1));
        assert!(!g.remove(1));
        for i in 0..10 {
            assert_eq!(g.pick(&tuple(i)).unwrap(), 2);
        }
        g.remove(2);
        assert_eq!(g.pick(&tuple(0)), Err(LbError::Empty));
    }

    #[test]
    fn dual_ownership_promote_and_abort() {
        let mut d = VniDirectory::new();
        let v = Vni::from_const(7);
        d.assign(v, 0);
        assert_eq!(d.owners_for(v), Some((0, None)));
        d.begin_dual(v, 3);
        assert_eq!(d.owners_for(v), Some((0, Some(3))));
        assert_eq!(d.cluster_for(v), Some(0), "primary unchanged in Dual");
        assert!(d.promote(v));
        assert_eq!(d.owners_for(v), Some((3, None)));
        assert!(!d.promote(v), "promote is one-shot");

        d.begin_dual(v, 1);
        assert!(d.abort_dual(v));
        assert_eq!(d.owners_for(v), Some((3, None)), "abort keeps primary");
        assert!(!d.abort_dual(v));
    }

    #[test]
    fn pick_owner_is_stable_and_covers_both() {
        let h = Toeplitz::default();
        let mut saw = [false; 2];
        for i in 0..200 {
            let t = tuple(i);
            let o = pick_owner(&h, &t, 0, 1);
            assert_eq!(o, pick_owner(&h, &t, 0, 1));
            saw[o] = true;
        }
        assert!(saw[0] && saw[1], "both owners should receive flows");
    }

    #[test]
    fn vni_directory_reroute() {
        let mut d = VniDirectory::new();
        d.assign(Vni::from_const(1), 0);
        d.assign(Vni::from_const(2), 0);
        d.assign(Vni::from_const(3), 1);
        assert_eq!(d.cluster_for(Vni::from_const(1)), Some(0));
        assert_eq!(d.reroute_cluster(0, 9), 2);
        assert_eq!(d.cluster_for(Vni::from_const(1)), Some(9));
        assert_eq!(d.cluster_for(Vni::from_const(3)), Some(1));
        assert_eq!(d.cluster_for(Vni::from_const(99)), None);
    }
}
