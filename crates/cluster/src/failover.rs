//! Disaster recovery (§6.1).
//!
//! "Disaster recovery is designed at different levels including cluster,
//! node and port. At the cluster level, all the gateway clusters strictly
//! follow 1:1 backup... At the node level, when some gateway reports
//! hardware failures..., the gateway will be put offline and the other
//! gateways in the same cluster will share the traffic load... At the
//! port level, when a port suffers abnormal jitters or persistent packet
//! loss, it will be isolated."
//!
//! Every action returns `Result<RecoveryOutcome, RecoveryError>`: a bad
//! target (out-of-range cluster/device, missing backup, failed probe
//! gate) is a typed error, while a valid target with nothing to do is
//! `Ok(RecoveryOutcome::NotApplicable)` — chaos schedules and operators
//! can tell the two apart.

use crate::probe::{self, Probe};
use crate::region::Region;

/// Result of a recovery action.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryOutcome {
    /// Traffic rerouted to the backup cluster (`backup`).
    RolledToBackup {
        /// The backup cluster now serving the traffic.
        backup: usize,
        /// VNIs that moved.
        vnis_moved: usize,
    },
    /// A previously failed primary is serving its traffic again.
    Restored {
        /// The primary cluster back in charge.
        primary: usize,
        /// VNIs that moved back.
        vnis_moved: usize,
    },
    /// The node went offline; its cluster absorbed the load.
    NodeOffline {
        /// Devices still online in the cluster.
        remaining: usize,
    },
    /// The node is back in the ECMP group.
    NodeOnline {
        /// Devices online in the cluster.
        online: usize,
    },
    /// Ports isolated; the device runs at reduced capacity.
    PortsIsolated {
        /// Remaining capacity fraction.
        remaining_capacity: f64,
    },
    /// Valid target, nothing to do (e.g. the device was already in the
    /// requested state).
    NotApplicable,
}

/// Why a recovery action was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The cluster index does not name a usable target.
    UnknownCluster {
        /// The offending index.
        cluster: usize,
        /// Clusters that exist.
        clusters: usize,
    },
    /// The device index is out of range for the cluster.
    UnknownDevice {
        /// The cluster.
        cluster: usize,
        /// The offending device index.
        device: usize,
        /// Devices the cluster has.
        devices: usize,
    },
    /// Cluster-level failover needs a 1:1 backup and none is configured.
    NoBackup {
        /// The cluster without a backup.
        cluster: usize,
    },
    /// Probe-gated re-admission refused the device: it failed validation
    /// probes and stays out of the ECMP group.
    ProbeGateFailed {
        /// The cluster.
        cluster: usize,
        /// The device that failed its probes.
        device: usize,
        /// Probe failures observed.
        failures: usize,
    },
}

impl core::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoveryError::UnknownCluster { cluster, clusters } => {
                write!(f, "cluster {cluster} does not exist ({clusters} clusters)")
            }
            RecoveryError::UnknownDevice {
                cluster,
                device,
                devices,
            } => write!(
                f,
                "device {device} does not exist in cluster {cluster} ({devices} devices)"
            ),
            RecoveryError::NoBackup { cluster } => {
                write!(f, "cluster {cluster} has no 1:1 backup configured")
            }
            RecoveryError::ProbeGateFailed {
                cluster,
                device,
                failures,
            } => write!(
                f,
                "device {device} of cluster {cluster} failed {failures} probes; \
                 re-admission refused"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Convenience alias for recovery actions.
pub type RecoveryResult = Result<RecoveryOutcome, RecoveryError>;

fn check_cluster(region: &Region, cluster: usize) -> Result<(), RecoveryError> {
    if cluster >= region.hw.len() {
        return Err(RecoveryError::UnknownCluster {
            cluster,
            clusters: region.hw.len(),
        });
    }
    Ok(())
}

fn check_device(region: &Region, cluster: usize, device: usize) -> Result<(), RecoveryError> {
    check_cluster(region, cluster)?;
    let devices = region.hw[cluster].devices.len();
    if device >= devices {
        return Err(RecoveryError::UnknownDevice {
            cluster,
            device,
            devices,
        });
    }
    Ok(())
}

/// Whether a device is out of service *on purpose*: retired by an elastic
/// scale-in, or part of a cluster the split plan assigns nothing to (a
/// spare that was never admitted, or a source cluster drained by a
/// re-shard). Recovery actions aimed at such a device are no-ops —
/// `Ok(NotApplicable)`, never an error — so chaos and re-shard schedules
/// compose without coordinating.
fn intentionally_out(region: &Region, cluster: usize, device: usize) -> bool {
    if region.is_retired(cluster, device) {
        return true;
    }
    let primaries = region.plan.clusters_needed();
    let plan_cluster = if cluster >= primaries {
        cluster - primaries
    } else {
        cluster
    };
    !region.plan.assignments.values().any(|c| *c == plan_cluster)
}

fn check_primary(region: &Region, cluster: usize) -> Result<usize, RecoveryError> {
    let primaries = region.plan.clusters_needed();
    if cluster >= primaries {
        return Err(RecoveryError::UnknownCluster {
            cluster,
            clusters: primaries,
        });
    }
    region
        .backup_of(cluster)
        .ok_or(RecoveryError::NoBackup { cluster })
}

/// Fails an entire primary cluster: the controller rewrites the upstream
/// routes so its VNIs land on the 1:1 backup.
pub fn fail_cluster(region: &mut Region, cluster: usize) -> RecoveryResult {
    let backup = check_primary(region, cluster)?;
    let moved = region.directory.reroute_cluster(cluster, backup);
    if moved == 0 {
        return Ok(RecoveryOutcome::NotApplicable);
    }
    Ok(RecoveryOutcome::RolledToBackup {
        backup,
        vnis_moved: moved,
    })
}

/// Restores a failed primary cluster, moving its VNIs back.
pub fn restore_cluster(region: &mut Region, cluster: usize) -> RecoveryResult {
    let backup = check_primary(region, cluster)?;
    let moved = region.directory.reroute_cluster(backup, cluster);
    if moved == 0 {
        return Ok(RecoveryOutcome::NotApplicable);
    }
    Ok(RecoveryOutcome::Restored {
        primary: cluster,
        vnis_moved: moved,
    })
}

/// Takes one device offline; remaining cluster members share its load via
/// ECMP re-hashing.
pub fn fail_device(region: &mut Region, cluster: usize, device: usize) -> RecoveryResult {
    check_device(region, cluster, device)?;
    if intentionally_out(region, cluster, device) {
        return Ok(RecoveryOutcome::NotApplicable);
    }
    if region.hw[cluster].take_device_offline(device) {
        Ok(RecoveryOutcome::NodeOffline {
            remaining: region.hw[cluster].online_devices(),
        })
    } else {
        // Valid target, already offline.
        Ok(RecoveryOutcome::NotApplicable)
    }
}

/// Isolates a fraction of a device's ports after "abnormal jitters or
/// persistent packet loss": its capacity drops proportionally while the
/// remaining ports keep forwarding ("the traffic will be migrated to
/// other ports"). `healthy_fraction` is the capacity that remains.
pub fn isolate_ports(
    region: &mut Region,
    cluster: usize,
    device: usize,
    healthy_fraction: f64,
) -> RecoveryResult {
    check_device(region, cluster, device)?;
    if intentionally_out(region, cluster, device) {
        return Ok(RecoveryOutcome::NotApplicable);
    }
    let scale = &mut region.capacity_scale[cluster][device];
    *scale = healthy_fraction.clamp(0.0, 1.0);
    Ok(RecoveryOutcome::PortsIsolated {
        remaining_capacity: *scale,
    })
}

/// Restores all ports of a device.
pub fn restore_ports(region: &mut Region, cluster: usize, device: usize) -> RecoveryResult {
    isolate_ports(region, cluster, device, 1.0)
}

/// Brings a device straight back (no probe gate — prefer
/// [`readmit_device`] after any event that may have touched tables).
pub fn restore_device(region: &mut Region, cluster: usize, device: usize) -> RecoveryResult {
    check_device(region, cluster, device)?;
    if intentionally_out(region, cluster, device) {
        return Ok(RecoveryOutcome::NotApplicable);
    }
    if region.hw[cluster].ecmp.members().contains(&device) {
        return Ok(RecoveryOutcome::NotApplicable);
    }
    region.hw[cluster]
        .bring_device_online(device)
        .expect("validated index cannot exceed the ECMP cap");
    Ok(RecoveryOutcome::NodeOnline {
        online: region.hw[cluster].online_devices(),
    })
}

/// Probe-gated re-admission (§6.1 "modify the routes in the upstream
/// devices to admit user traffic" — only after probes pass): runs every
/// probe whose VNI the cluster serves against the target device and
/// brings it back into the ECMP group only on a clean sweep. A device
/// with corrupted or half-installed tables stays offline and the caller
/// gets the failure count.
pub fn readmit_device(
    region: &mut Region,
    probes: &[Probe],
    cluster: usize,
    device: usize,
) -> RecoveryResult {
    check_device(region, cluster, device)?;
    if intentionally_out(region, cluster, device) {
        return Ok(RecoveryOutcome::NotApplicable);
    }
    let failures = probe::run_device(region, probes, cluster, device);
    if !failures.is_empty() {
        return Err(RecoveryError::ProbeGateFailed {
            cluster,
            device,
            failures: failures.len(),
        });
    }
    restore_device(region, cluster, device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ClusterCapacity;
    use crate::region::{FlowPath, RegionConfig};
    use sailfish_sim::topology::{Topology, TopologyConfig};
    use sailfish_sim::workload::{generate_flows, WorkloadConfig};

    fn build() -> (Topology, Vec<sailfish_sim::workload::Flow>, Region) {
        let topology = Topology::generate(TopologyConfig::default());
        let region = Region::build(
            &topology,
            RegionConfig {
                hw_clusters: 4,
                devices_per_cluster: 3,
                with_backup: true,
                sw_nodes: 2,
                capacity: ClusterCapacity {
                    max_routes: 600,
                    max_vms: 3_000,
                },
                ..RegionConfig::default()
            },
        )
        .unwrap();
        let flows = generate_flows(
            &topology,
            &WorkloadConfig {
                flows: 2_000,
                total_gbps: 1_000.0,
                ..WorkloadConfig::default()
            },
        );
        (topology, flows, region)
    }

    #[test]
    fn cluster_failover_keeps_forwarding() {
        let (_t, flows, mut region) = build();
        let before = region.offer(&flows, 1.0);
        assert_eq!(before.unrouted_pps, 0.0);
        let victim = 0usize;
        let outcome = fail_cluster(&mut region, victim).unwrap();
        let backup = match outcome {
            RecoveryOutcome::RolledToBackup { backup, vnis_moved } => {
                assert!(vnis_moved > 0);
                backup
            }
            other => panic!("unexpected {other:?}"),
        };
        let after = region.offer(&flows, 1.0);
        // No traffic lost to missing routes: the backup carries identical
        // tables.
        assert_eq!(after.unrouted_pps, 0.0);
        assert!((after.offered_pps - before.offered_pps).abs() < 1.0);
        // The backup cluster now carries load; the failed primary none.
        let primary_load: f64 = after.device_util[victim].iter().sum();
        let backup_load: f64 = after.device_util[backup].iter().sum();
        assert_eq!(primary_load, 0.0);
        assert!(backup_load > 0.0);
        // Restore reports the distinct Restored outcome and moves
        // everything back.
        match restore_cluster(&mut region, victim).unwrap() {
            RecoveryOutcome::Restored {
                primary,
                vnis_moved,
            } => {
                assert_eq!(primary, victim);
                assert!(vnis_moved > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let restored = region.offer(&flows, 1.0);
        assert!(restored.device_util[victim].iter().sum::<f64>() > 0.0);
        assert_eq!(restored.device_util[backup].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn node_failover_shares_load_within_cluster() {
        let (_t, flows, mut region) = build();
        let before = region.offer(&flows, 1.0);
        // Pick the busiest device of cluster 0.
        let (victim, _) = before.device_util[0]
            .iter()
            .enumerate()
            .fold(
                (0, 0.0),
                |acc, (i, u)| if *u > acc.1 { (i, *u) } else { acc },
            );
        let outcome = fail_device(&mut region, 0, victim).unwrap();
        assert_eq!(outcome, RecoveryOutcome::NodeOffline { remaining: 2 });
        // Failing it again is a no-op, not an error.
        assert_eq!(
            fail_device(&mut region, 0, victim).unwrap(),
            RecoveryOutcome::NotApplicable
        );
        let after = region.offer(&flows, 1.0);
        // The victim serves nothing; its former flows re-hash within the
        // cluster, keeping totals constant.
        assert_eq!(after.device_util[0][victim], 0.0);
        let cluster_pps_before: f64 = before.device_util[0].iter().sum();
        let cluster_pps_after: f64 = after.device_util[0].iter().sum();
        assert!((cluster_pps_after - cluster_pps_before).abs() / cluster_pps_before < 0.05);
        assert_eq!(after.unrouted_pps, 0.0);

        assert_eq!(
            restore_device(&mut region, 0, victim).unwrap(),
            RecoveryOutcome::NodeOnline { online: 3 }
        );
        let restored = region.offer(&flows, 1.0);
        assert!(restored.device_util[0][victim] > 0.0);
    }

    #[test]
    fn failing_all_devices_degrades_to_fallback() {
        let (_t, flows, mut region) = build();
        for d in 0..region.config.devices_per_cluster {
            fail_device(&mut region, 0, d).unwrap();
        }
        // Flows of cluster 0 can no longer pick a hardware device; the
        // hardened region degrades them to the rate-limited XGW-x86 path
        // instead of black-holing.
        let mut degraded = 0;
        for f in &flows {
            if region.directory.cluster_for(f.vni) == Some(0) {
                match region.classify(f) {
                    FlowPath::Fallback { .. } => degraded += 1,
                    other => panic!("expected fallback, got {other:?}"),
                }
            }
        }
        assert!(degraded > 0, "cluster-0 flows must degrade to fallback");
        let report = region.offer(&flows, 1.0);
        assert_eq!(report.unrouted_pps, 0.0, "nothing may black-hole");
        assert!(report.fallback_pps > 0.0);
        // The documented remedy is cluster-level failover, which moves the
        // traffic back into hardware.
        fail_cluster(&mut region, 0).unwrap();
        let after = region.offer(&flows, 1.0);
        assert_eq!(after.unrouted_pps, 0.0);
        assert_eq!(after.fallback_pps, 0.0);
    }

    #[test]
    fn port_isolation_reduces_capacity_and_restores() {
        let (_t, flows, mut region) = build();
        let before = region.offer(&flows, 1.0);
        // Halve the ports of the busiest device of cluster 0.
        let (victim, _) = before.device_util[0]
            .iter()
            .enumerate()
            .fold(
                (0, 0.0),
                |acc, (i, u)| if *u > acc.1 { (i, *u) } else { acc },
            );
        let outcome = isolate_ports(&mut region, 0, victim, 0.5).unwrap();
        assert_eq!(
            outcome,
            RecoveryOutcome::PortsIsolated {
                remaining_capacity: 0.5
            }
        );
        let degraded = region.offer(&flows, 1.0);
        // Same offered load, roughly doubled utilization on the victim.
        let ratio = degraded.device_util[0][victim] / before.device_util[0][victim];
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
        // And a correspondingly higher residual-loss exposure.
        assert!(degraded.residual_dropped_pps >= before.residual_dropped_pps);
        restore_ports(&mut region, 0, victim).unwrap();
        let restored = region.offer(&flows, 1.0);
        let ratio = restored.device_util[0][victim] / before.device_util[0][victim];
        assert!((ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bad_targets_are_typed_errors() {
        let (_t, _flows, mut region) = build();
        let clusters = region.hw.len();
        assert_eq!(
            isolate_ports(&mut region, 99, 0, 0.5),
            Err(RecoveryError::UnknownCluster {
                cluster: 99,
                clusters
            })
        );
        assert_eq!(
            fail_device(&mut region, 0, 99),
            Err(RecoveryError::UnknownDevice {
                cluster: 0,
                device: 99,
                devices: 3
            })
        );
        assert_eq!(
            restore_device(&mut region, clusters, 0),
            Err(RecoveryError::UnknownCluster {
                cluster: clusters,
                clusters
            })
        );
        // Backup indices are not valid cluster-failover targets.
        let primaries = region.plan.clusters_needed();
        assert!(matches!(
            fail_cluster(&mut region, primaries),
            Err(RecoveryError::UnknownCluster { .. })
        ));
    }

    #[test]
    fn retired_and_never_admitted_devices_are_not_applicable() {
        let (topology, _flows, mut region) = build();
        let probes = probe::generate(&topology, 3);
        // Retire a device (elastic scale-in): every recovery action aimed
        // at it becomes a typed no-op, not an error.
        region.retire_device(0, 2);
        assert_eq!(
            fail_device(&mut region, 0, 2).unwrap(),
            RecoveryOutcome::NotApplicable
        );
        assert_eq!(
            restore_device(&mut region, 0, 2).unwrap(),
            RecoveryOutcome::NotApplicable
        );
        assert_eq!(
            readmit_device(&mut region, &probes, 0, 2).unwrap(),
            RecoveryOutcome::NotApplicable
        );
        assert_eq!(
            isolate_ports(&mut region, 0, 2, 0.5).unwrap(),
            RecoveryOutcome::NotApplicable
        );
        // It stays out of rotation.
        assert_eq!(region.hw[0].online_devices(), 2);

        // A spare cluster's devices were never admitted into service (the
        // plan assigns them nothing): same no-op semantics, and an
        // out-of-range index is still a typed error.
        let mut spare_region = Region::build(
            &topology,
            RegionConfig {
                spare_clusters: 1,
                with_backup: false,
                capacity: ClusterCapacity {
                    max_routes: 600,
                    max_vms: 3_000,
                },
                ..RegionConfig::default()
            },
        )
        .unwrap();
        let spare = spare_region.plan.clusters_needed() - 1;
        assert!(!spare_region.plan.assignments.values().any(|c| *c == spare));
        assert_eq!(
            fail_device(&mut spare_region, spare, 0).unwrap(),
            RecoveryOutcome::NotApplicable
        );
        assert_eq!(
            readmit_device(&mut spare_region, &probes, spare, 0).unwrap(),
            RecoveryOutcome::NotApplicable
        );
        assert!(matches!(
            fail_device(&mut spare_region, spare, 99),
            Err(RecoveryError::UnknownDevice { .. })
        ));
    }

    #[test]
    fn no_backup_is_a_typed_error() {
        let topology = Topology::generate(TopologyConfig::default());
        let mut region = Region::build(
            &topology,
            RegionConfig {
                with_backup: false,
                capacity: ClusterCapacity {
                    max_routes: 600,
                    max_vms: 3_000,
                },
                ..RegionConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            fail_cluster(&mut region, 0),
            Err(RecoveryError::NoBackup { cluster: 0 })
        );
    }

    #[test]
    fn probe_gate_blocks_corrupted_device_and_admits_healthy_one() {
        let (topology, _flows, mut region) = build();
        let probes = probe::generate(&topology, 5);
        fail_device(&mut region, 0, 1).unwrap();
        // Corrupt the offline device: the gate must refuse it.
        region.hw[0].devices[1].wipe_tables();
        match readmit_device(&mut region, &probes, 0, 1) {
            Err(RecoveryError::ProbeGateFailed {
                cluster: 0,
                device: 1,
                failures,
            }) => assert!(failures > 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(region.hw[0].online_devices(), 2, "must stay offline");
        // Repair the tables; the gate now admits it.
        let mut clock = sailfish_sim::faults::VirtualClock::new();
        let plan = region.plan.clone();
        region
            .controller
            .reinstall_device(
                &topology,
                &plan,
                &mut region.hw,
                0,
                0,
                1,
                &mut clock,
                &crate::controller::InstallPolicy::default(),
                &mut |_, _| None,
            )
            .unwrap();
        assert_eq!(
            readmit_device(&mut region, &probes, 0, 1).unwrap(),
            RecoveryOutcome::NodeOnline { online: 3 }
        );
    }
}
