//! Disaster recovery (§6.1).
//!
//! "Disaster recovery is designed at different levels including cluster,
//! node and port. At the cluster level, all the gateway clusters strictly
//! follow 1:1 backup... At the node level, when some gateway reports
//! hardware failures..., the gateway will be put offline and the other
//! gateways in the same cluster will share the traffic load... At the
//! port level, when a port suffers abnormal jitters or persistent packet
//! loss, it will be isolated."

use crate::region::Region;

/// Result of a recovery action.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryOutcome {
    /// Traffic rerouted to the backup cluster (`index`).
    RolledToBackup {
        /// The backup cluster now serving the traffic.
        backup: usize,
        /// VNIs that moved.
        vnis_moved: usize,
    },
    /// The node went offline; its cluster absorbed the load.
    NodeOffline {
        /// Devices still online in the cluster.
        remaining: usize,
    },
    /// Ports isolated; the device runs at reduced capacity.
    PortsIsolated {
        /// Remaining capacity fraction.
        remaining_capacity: f64,
    },
    /// Nothing to do / not applicable.
    NotApplicable,
}

/// Fails an entire primary cluster: the controller rewrites the upstream
/// routes so its VNIs land on the 1:1 backup.
pub fn fail_cluster(region: &mut Region, cluster: usize) -> RecoveryOutcome {
    match region.backup_of(cluster) {
        Some(backup) => {
            let moved = region.directory.reroute_cluster(cluster, backup);
            RecoveryOutcome::RolledToBackup {
                backup,
                vnis_moved: moved,
            }
        }
        None => RecoveryOutcome::NotApplicable,
    }
}

/// Restores a failed primary cluster, moving its VNIs back.
pub fn restore_cluster(region: &mut Region, cluster: usize) -> RecoveryOutcome {
    match region.backup_of(cluster) {
        Some(backup) => {
            let moved = region.directory.reroute_cluster(backup, cluster);
            RecoveryOutcome::RolledToBackup {
                backup: cluster,
                vnis_moved: moved,
            }
        }
        None => RecoveryOutcome::NotApplicable,
    }
}

/// Takes one device offline; remaining cluster members share its load via
/// ECMP re-hashing.
pub fn fail_device(region: &mut Region, cluster: usize, device: usize) -> RecoveryOutcome {
    if region.hw[cluster].take_device_offline(device) {
        RecoveryOutcome::NodeOffline {
            remaining: region.hw[cluster].online_devices(),
        }
    } else {
        RecoveryOutcome::NotApplicable
    }
}

/// Isolates a fraction of a device's ports after "abnormal jitters or
/// persistent packet loss": its capacity drops proportionally while the
/// remaining ports keep forwarding ("the traffic will be migrated to
/// other ports"). `healthy_fraction` is the capacity that remains.
pub fn isolate_ports(
    region: &mut Region,
    cluster: usize,
    device: usize,
    healthy_fraction: f64,
) -> RecoveryOutcome {
    match region
        .capacity_scale
        .get_mut(cluster)
        .and_then(|c| c.get_mut(device))
    {
        Some(scale) => {
            *scale = healthy_fraction.clamp(0.0, 1.0);
            RecoveryOutcome::PortsIsolated {
                remaining_capacity: *scale,
            }
        }
        None => RecoveryOutcome::NotApplicable,
    }
}

/// Restores all ports of a device.
pub fn restore_ports(region: &mut Region, cluster: usize, device: usize) -> RecoveryOutcome {
    isolate_ports(region, cluster, device, 1.0)
}

/// Brings a device back.
pub fn restore_device(region: &mut Region, cluster: usize, device: usize) -> RecoveryOutcome {
    match region.hw[cluster].bring_device_online(device) {
        Ok(()) => RecoveryOutcome::NodeOffline {
            remaining: region.hw[cluster].online_devices(),
        },
        Err(_) => RecoveryOutcome::NotApplicable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ClusterCapacity;
    use crate::region::{FlowPath, RegionConfig};
    use sailfish_sim::topology::{Topology, TopologyConfig};
    use sailfish_sim::workload::{generate_flows, WorkloadConfig};

    fn build() -> (Vec<sailfish_sim::workload::Flow>, Region) {
        let topology = Topology::generate(TopologyConfig::default());
        let region = Region::build(
            &topology,
            RegionConfig {
                hw_clusters: 4,
                devices_per_cluster: 3,
                with_backup: true,
                sw_nodes: 2,
                capacity: ClusterCapacity {
                    max_routes: 600,
                    max_vms: 3_000,
                },
                ..RegionConfig::default()
            },
        )
        .unwrap();
        let flows = generate_flows(
            &topology,
            &WorkloadConfig {
                flows: 2_000,
                total_gbps: 1_000.0,
                ..WorkloadConfig::default()
            },
        );
        (flows, region)
    }

    #[test]
    fn cluster_failover_keeps_forwarding() {
        let (flows, mut region) = build();
        let before = region.offer(&flows, 1.0);
        assert_eq!(before.unrouted_pps, 0.0);
        let victim = 0usize;
        let outcome = fail_cluster(&mut region, victim);
        let backup = match outcome {
            RecoveryOutcome::RolledToBackup { backup, vnis_moved } => {
                assert!(vnis_moved > 0);
                backup
            }
            other => panic!("unexpected {other:?}"),
        };
        let after = region.offer(&flows, 1.0);
        // No traffic lost to missing routes: the backup carries identical
        // tables.
        assert_eq!(after.unrouted_pps, 0.0);
        assert!((after.offered_pps - before.offered_pps).abs() < 1.0);
        // The backup cluster now carries load; the failed primary none.
        let primary_load: f64 = after.device_util[victim].iter().sum();
        let backup_load: f64 = after.device_util[backup].iter().sum();
        assert_eq!(primary_load, 0.0);
        assert!(backup_load > 0.0);
        // Restore moves everything back.
        restore_cluster(&mut region, victim);
        let restored = region.offer(&flows, 1.0);
        assert!(restored.device_util[victim].iter().sum::<f64>() > 0.0);
        assert_eq!(restored.device_util[backup].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn node_failover_shares_load_within_cluster() {
        let (flows, mut region) = build();
        let before = region.offer(&flows, 1.0);
        // Pick the busiest device of cluster 0.
        let (victim, _) = before.device_util[0]
            .iter()
            .enumerate()
            .fold(
                (0, 0.0),
                |acc, (i, u)| if *u > acc.1 { (i, *u) } else { acc },
            );
        let outcome = fail_device(&mut region, 0, victim);
        assert_eq!(outcome, RecoveryOutcome::NodeOffline { remaining: 2 });
        let after = region.offer(&flows, 1.0);
        // The victim serves nothing; its former flows re-hash within the
        // cluster, keeping totals constant.
        assert_eq!(after.device_util[0][victim], 0.0);
        let cluster_pps_before: f64 = before.device_util[0].iter().sum();
        let cluster_pps_after: f64 = after.device_util[0].iter().sum();
        assert!((cluster_pps_after - cluster_pps_before).abs() / cluster_pps_before < 0.05);
        assert_eq!(after.unrouted_pps, 0.0);

        restore_device(&mut region, 0, victim);
        let restored = region.offer(&flows, 1.0);
        assert!(restored.device_util[0][victim] > 0.0);
    }

    #[test]
    fn failing_all_devices_leaves_flows_unrouted() {
        let (flows, mut region) = build();
        for d in 0..region.config.devices_per_cluster {
            fail_device(&mut region, 0, d);
        }
        // Flows of cluster 0 can no longer pick a device.
        let mut unrouted = 0;
        for f in &flows {
            if region.directory.cluster_for(f.vni) == Some(0)
                && region.classify(f) == FlowPath::Unrouted
            {
                unrouted += 1;
            }
        }
        assert!(unrouted > 0, "cluster-0 flows must become unroutable");
        // The documented remedy is cluster-level failover.
        fail_cluster(&mut region, 0);
        let after = region.offer(&flows, 1.0);
        assert_eq!(after.unrouted_pps, 0.0);
    }

    #[test]
    fn port_isolation_reduces_capacity_and_restores() {
        let (flows, mut region) = build();
        let before = region.offer(&flows, 1.0);
        // Halve the ports of the busiest device of cluster 0.
        let (victim, _) = before.device_util[0]
            .iter()
            .enumerate()
            .fold(
                (0, 0.0),
                |acc, (i, u)| if *u > acc.1 { (i, *u) } else { acc },
            );
        let outcome = isolate_ports(&mut region, 0, victim, 0.5);
        assert_eq!(
            outcome,
            RecoveryOutcome::PortsIsolated {
                remaining_capacity: 0.5
            }
        );
        let degraded = region.offer(&flows, 1.0);
        // Same offered load, roughly doubled utilization on the victim.
        let ratio = degraded.device_util[0][victim] / before.device_util[0][victim];
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
        // And a correspondingly higher residual-loss exposure.
        assert!(degraded.residual_dropped_pps >= before.residual_dropped_pps);
        restore_ports(&mut region, 0, victim);
        let restored = region.offer(&flows, 1.0);
        let ratio = restored.device_util[0][victim] / before.device_util[0][victim];
        assert!((ratio - 1.0).abs() < 1e-9);
        // Out-of-range targets are rejected gracefully.
        assert_eq!(
            isolate_ports(&mut region, 99, 0, 0.5),
            RecoveryOutcome::NotApplicable
        );
    }
}
