//! "N+1" hierarchical cache clusters (§8, future work).
//!
//! "We plan to build the 'N+1' hierarchical XGW-H clusters with N cache
//! clusters at the front serving only active entries and 1 backup cluster
//! storing entries of all tenants to handle the cache miss traffic...
//! if only 25% of the tenants' entries are active, we can build 4 cache
//! clusters (each carries the 25% active entries) and 1 backup cluster
//! ... to provide 4x performance at the cost of only 2x the number of
//! XGW-H nodes."
//!
//! The evaluator quantifies that trade for arbitrary activity skews: node
//! cost scales with *entries stored* (memory is the binding constraint
//! per cluster, §4.4), performance with the cache clusters' aggregate
//! throughput times their hit ratio.

use crate::controller::ClusterCapacity;
use sailfish_sim::zipf::{top_share, zipf_weights};

/// Configuration of an N+1 deployment.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Number of cache clusters (the "N").
    pub cache_clusters: usize,
    /// Fraction of entries considered active (identified by "data mining
    /// or cache replacements").
    pub active_fraction: f64,
    /// Total entries in the region.
    pub total_entries: usize,
    /// Zipf exponent of per-entry traffic activity.
    pub activity_skew: f64,
    /// Capacity of one cluster (determines node count per cluster).
    pub capacity: ClusterCapacity,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            cache_clusters: 4,
            active_fraction: 0.25,
            total_entries: 229_300,
            activity_skew: 1.5,
            capacity: ClusterCapacity::default(),
        }
    }
}

/// Evaluation of an N+1 deployment against the flat baseline.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyReport {
    /// Share of traffic served by the cache clusters.
    pub hit_ratio: f64,
    /// Aggregate throughput relative to one flat cluster.
    pub performance_multiplier: f64,
    /// Entry-storage (≈ node) cost relative to one flat cluster.
    pub cost_multiplier: f64,
    /// Traffic share falling through to the backup cluster.
    pub backup_load: f64,
}

impl HierarchyReport {
    /// Performance gained per unit cost, normalized so the flat baseline
    /// is 1.0.
    pub fn efficiency(&self) -> f64 {
        self.performance_multiplier / self.cost_multiplier
    }
}

/// Evaluates an N+1 configuration.
pub fn evaluate(config: &HierarchyConfig) -> HierarchyReport {
    assert!(config.cache_clusters >= 1);
    assert!((0.0..=1.0).contains(&config.active_fraction));
    let weights = zipf_weights(config.total_entries.max(1), config.activity_skew);
    let active = (config.active_fraction * config.total_entries as f64).round() as usize;
    // Active set = the most-active entries (what data mining would pick).
    let hit_ratio = top_share(&weights, active);

    // Cost: each cache cluster stores the active fraction; the backup
    // stores everything. Node count per cluster scales with entries
    // stored (memory-bound sizing).
    let cost = config.cache_clusters as f64 * config.active_fraction + 1.0;

    // Performance: cache clusters serve hits at full tilt; misses are
    // bounded by the single backup cluster, which also consumes one
    // cluster's worth of throughput budget.
    let miss = 1.0 - hit_ratio;
    let perf = config.cache_clusters as f64 * hit_ratio + miss.min(1.0);

    HierarchyReport {
        hit_ratio,
        performance_multiplier: perf,
        cost_multiplier: cost,
        backup_load: miss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example: 25% active, 4 cache clusters → ~4x
    /// performance at ~2x node cost.
    #[test]
    fn paper_example_holds() {
        let report = evaluate(&HierarchyConfig::default());
        assert!(
            report.hit_ratio > 0.9,
            "skewed activity makes 25% of entries serve >90% of traffic: {}",
            report.hit_ratio
        );
        assert!((report.cost_multiplier - 2.0).abs() < 1e-9);
        assert!(
            report.performance_multiplier > 3.6,
            "≈4x: {}",
            report.performance_multiplier
        );
        assert!(report.efficiency() > 1.5);
    }

    #[test]
    fn uniform_activity_degrades_gracefully() {
        let report = evaluate(&HierarchyConfig {
            activity_skew: 0.0,
            ..HierarchyConfig::default()
        });
        // With uniform activity the hit ratio equals the active fraction.
        assert!((report.hit_ratio - 0.25).abs() < 0.01);
        assert!(report.performance_multiplier < 2.0);
        // Caching no longer pays: efficiency near (or below) baseline.
        assert!(report.efficiency() < 1.0);
    }

    #[test]
    fn more_cache_clusters_scale_until_backup_binds() {
        let perf: Vec<f64> = (1..=8)
            .map(|n| {
                evaluate(&HierarchyConfig {
                    cache_clusters: n,
                    ..HierarchyConfig::default()
                })
                .performance_multiplier
            })
            .collect();
        for pair in perf.windows(2) {
            assert!(pair[1] > pair[0], "performance must grow with N: {perf:?}");
        }
        // But sub-linearly per added cluster? With high hit ratios growth
        // stays near-linear; the backup share is constant.
        let r = evaluate(&HierarchyConfig {
            cache_clusters: 8,
            ..HierarchyConfig::default()
        });
        assert!(r.backup_load < 0.1);
    }

    #[test]
    fn full_active_fraction_degenerates_to_replication() {
        let report = evaluate(&HierarchyConfig {
            active_fraction: 1.0,
            cache_clusters: 4,
            ..HierarchyConfig::default()
        });
        assert!((report.hit_ratio - 1.0).abs() < 1e-9);
        assert!((report.cost_multiplier - 5.0).abs() < 1e-9);
        assert!((report.performance_multiplier - 4.0).abs() < 1e-9);
    }
}
