//! Gateway clusters.
//!
//! "Within a cluster, multiple XGW-H devices maintain the same table
//! entries, share the traffic load and backup for each other" (§4.3).
//! Installs fan out to every device; traffic spreads by flow-hash ECMP.

use sailfish_net::{FiveTuple, GatewayPacket, Vni};
use sailfish_tables::alpm::AlpmConfig;
use sailfish_tables::snat::SnatConfig;
use sailfish_tables::types::{NcAddr, RouteTarget, VxlanRouteKey};
use sailfish_tables::Result as TableResult;
use sailfish_xgw_h::{HwDecision, XgwH};
use sailfish_xgw_x86::{FluidEngine, SoftwareForwarder, SoftwareTables, XgwX86Config};

use crate::lb::{EcmpGroup, LbError};

/// A cluster of hardware gateways with identical tables.
#[derive(Debug)]
pub struct HwCluster {
    /// Cluster id within the region.
    pub id: usize,
    /// The member devices. Offline devices are removed from `ecmp` but
    /// kept here (their tables survive for fast re-admission).
    pub devices: Vec<XgwH>,
    /// Flow-hash spread across the devices.
    pub ecmp: EcmpGroup,
}

impl HwCluster {
    /// Builds a cluster of `devices` gateways.
    pub fn new(
        id: usize,
        devices: usize,
        ecmp_max: usize,
        alpm: AlpmConfig,
        punt_rate_bps: u64,
    ) -> Result<Self, LbError> {
        let mut ecmp = EcmpGroup::new(ecmp_max);
        let mut list = Vec::with_capacity(devices);
        for d in 0..devices {
            ecmp.add(d)?;
            list.push(XgwH::new(alpm, punt_rate_bps, punt_rate_bps / 80));
        }
        Ok(HwCluster {
            id,
            devices: list,
            ecmp,
        })
    }

    /// Installs a route on every device.
    pub fn install_route(&mut self, key: VxlanRouteKey, target: RouteTarget) -> TableResult<()> {
        for d in &mut self.devices {
            d.tables.routes.insert(key, target)?;
        }
        Ok(())
    }

    /// Removes a route from every device.
    pub fn remove_route(&mut self, key: &VxlanRouteKey) {
        for d in &mut self.devices {
            d.tables.routes.remove(key);
        }
    }

    /// Installs a VM mapping on every device.
    pub fn install_vm(&mut self, vni: Vni, ip: core::net::IpAddr, nc: NcAddr) -> TableResult<()> {
        for d in &mut self.devices {
            d.tables.add_vm(vni, ip, nc)?;
        }
        Ok(())
    }

    /// Removes a VM mapping from every device (two-phase install
    /// rollback).
    pub fn remove_vm(&mut self, vni: Vni, ip: core::net::IpAddr) {
        for d in &mut self.devices {
            d.tables.vm_nc.remove(vni, ip);
        }
    }

    /// Route entries held (devices are replicas; device 0 is
    /// representative).
    pub fn route_entries(&self) -> usize {
        self.devices.first().map_or(0, |d| d.tables.routes.len())
    }

    /// VM entries held.
    pub fn vm_entries(&self) -> usize {
        self.devices.first().map_or(0, |d| d.tables.vm_nc.len())
    }

    /// Route entries of one VNI on one device (consistency checking).
    pub fn route_entries_for(&self, device: usize, vni: Vni) -> usize {
        self.devices[device].tables.routes.len_for_vni(vni)
    }

    /// Number of online devices.
    pub fn online_devices(&self) -> usize {
        self.ecmp.len()
    }

    /// Takes a device offline (node-level disaster recovery: "the other
    /// gateways in the same cluster will share the traffic load", §6.1).
    pub fn take_device_offline(&mut self, device: usize) -> bool {
        self.ecmp.remove(device)
    }

    /// Brings a device back online.
    pub fn bring_device_online(&mut self, device: usize) -> Result<(), LbError> {
        if self.ecmp.members().contains(&device) {
            return Ok(());
        }
        self.ecmp.add(device)
    }

    /// Processes a packet on the device its flow hashes to.
    pub fn process(
        &mut self,
        packet: &GatewayPacket,
        now_ns: u64,
    ) -> Result<(usize, HwDecision), LbError> {
        let device = self.ecmp.pick(&packet.five_tuple())?;
        Ok((device, self.devices[device].process(packet, now_ns)))
    }

    /// The device a flow would hit.
    pub fn device_for(&self, tuple: &FiveTuple) -> Result<usize, LbError> {
        self.ecmp.pick(tuple)
    }
}

/// One software fallback node: a DPDK box plus its forwarding state.
#[derive(Debug)]
pub struct SwNode {
    /// Multi-core capacity model.
    pub engine: FluidEngine,
    /// The full software table set (incl. SNAT).
    pub forwarder: SoftwareForwarder,
}

/// The XGW-x86 fallback cluster: "four XGW-x86s for fallback traffic
/// processing" (§4.2).
#[derive(Debug)]
pub struct SwCluster {
    /// Member nodes.
    pub nodes: Vec<SwNode>,
    /// Flow spread across the nodes.
    pub ecmp: EcmpGroup,
}

impl SwCluster {
    /// Builds the fallback cluster.
    pub fn new(
        nodes: usize,
        ecmp_max: usize,
        node_config: XgwX86Config,
        snat: SnatConfig,
    ) -> Result<Self, LbError> {
        let mut ecmp = EcmpGroup::new(ecmp_max);
        let mut list = Vec::with_capacity(nodes);
        for n in 0..nodes {
            ecmp.add(n)?;
            list.push(SwNode {
                engine: FluidEngine::new(node_config.clone()),
                forwarder: SoftwareForwarder::new(SoftwareTables::new(snat.clone())),
            });
        }
        Ok(SwCluster { nodes: list, ecmp })
    }

    /// Installs a route on every node (software holds the full region
    /// table).
    pub fn install_route(&mut self, key: VxlanRouteKey, target: RouteTarget) {
        for n in &mut self.nodes {
            n.forwarder.tables.routes.insert(key, target);
        }
    }

    /// Installs a VM mapping on every node.
    pub fn install_vm(&mut self, vni: Vni, ip: core::net::IpAddr, nc: NcAddr) -> TableResult<()> {
        for n in &mut self.nodes {
            n.forwarder.tables.vm_nc.insert(vni, ip, nc)?;
        }
        Ok(())
    }

    /// Aggregate packet capacity of the cluster.
    pub fn total_pps(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.engine.config().total_pps())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_net::packet::GatewayPacketBuilder;
    use sailfish_net::IpPrefix;

    fn vni(v: u32) -> Vni {
        Vni::from_const(v)
    }

    fn sample_cluster() -> HwCluster {
        let mut c = HwCluster::new(0, 4, 64, AlpmConfig::default(), 10_000_000_000).unwrap();
        c.install_route(
            VxlanRouteKey::new(vni(1), "192.168.0.0/16".parse::<IpPrefix>().unwrap()),
            RouteTarget::Local,
        )
        .unwrap();
        c.install_vm(
            vni(1),
            "192.168.0.5".parse().unwrap(),
            NcAddr::new("10.1.1.1".parse().unwrap()),
        )
        .unwrap();
        c
    }

    #[test]
    fn install_replicates_to_all_devices() {
        let c = sample_cluster();
        for d in &c.devices {
            assert_eq!(d.tables.routes.len(), 1);
            assert_eq!(d.tables.vm_nc.len(), 1);
        }
        assert_eq!(c.route_entries(), 1);
        assert_eq!(c.vm_entries(), 1);
    }

    #[test]
    fn any_device_forwards_identically() {
        let mut c = sample_cluster();
        let p = GatewayPacketBuilder::new(
            vni(1),
            "192.168.0.9".parse().unwrap(),
            "192.168.0.5".parse().unwrap(),
        )
        .build();
        let (device, decision) = c.process(&p, 0).unwrap();
        assert!(device < 4);
        assert!(matches!(decision, HwDecision::ToNc { .. }));
        // Offline the chosen device; another one serves the same flow the
        // same way.
        c.take_device_offline(device);
        let (device2, decision2) = c.process(&p, 0).unwrap();
        assert_ne!(device, device2);
        assert_eq!(format!("{decision:?}"), format!("{decision2:?}"));
        assert_eq!(c.online_devices(), 3);
        c.bring_device_online(device).unwrap();
        assert_eq!(c.online_devices(), 4);
    }

    #[test]
    fn remove_route_applies_everywhere() {
        let mut c = sample_cluster();
        c.remove_route(&VxlanRouteKey::new(
            vni(1),
            "192.168.0.0/16".parse::<IpPrefix>().unwrap(),
        ));
        assert_eq!(c.route_entries(), 0);
    }

    #[test]
    fn sw_cluster_holds_full_tables() {
        let mut sw = SwCluster::new(4, 64, XgwX86Config::default(), SnatConfig::default()).unwrap();
        sw.install_route(
            VxlanRouteKey::new(vni(1), "0.0.0.0/0".parse::<IpPrefix>().unwrap()),
            RouteTarget::InternetSnat,
        );
        for n in &sw.nodes {
            assert_eq!(n.forwarder.tables.routes.len(), 1);
        }
        assert!((sw.total_pps() - 100e6).abs() < 1.0);
    }
}
