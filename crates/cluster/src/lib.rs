//! # sailfish-cluster
//!
//! Region-level assembly of Sailfish (Fig 10):
//!
//! - [`lb`] — the ECMP load balancer in front of the gateway clusters,
//!   with the commercial next-hop cap that forces multiple clusters
//!   (§2.3),
//! - [`cluster`] — XGW-H clusters (replicated tables, shared load, mutual
//!   backup) and the XGW-x86 fallback cluster,
//! - [`controller`] — the central controller: horizontal table splitting
//!   by VNI (§4.3), installation, consistency checking (§6.1), and the
//!   table-update timeline of Fig 23,
//! - [`region`] — the end-to-end region simulation in both Sailfish mode
//!   and the XGW-x86-only baseline, producing the series behind Figs 4–6
//!   and 19–22,
//! - [`failover`] — disaster recovery at cluster, node, and port level
//!   (§6.1), with typed errors and probe-gated re-admission,
//! - [`chaos`] — the deterministic fault-injection harness: replays
//!   seeded [`sailfish_sim::faults`] schedules against a region and
//!   records loss, fallback share, recovery timing, and invariants,
//! - [`dpu`] — the DPU middle tier of the degradation ladder: a pool of
//!   SmartNIC-class nodes with per-node capacity/latency envelopes and
//!   consistent-hash flow ownership (bounded churn on node death),
//! - [`hierarchy`] — the "N+1" hierarchical cache-cluster design of the
//!   paper's future work (§8),
//! - [`monitor`] — water-level monitoring and alerting (§6.1),
//! - [`probe`] — the probe-generator validation gate used before
//!   admitting user traffic to a new cluster (§6.1),
//! - [`worldcheck`] — the cluster-side adapter for the plan-time world
//!   verifier: staged installs and re-shard plans are statically proved
//!   black-hole-free and within capacity before any push.

#![forbid(unsafe_code)]
// Non-test code must not `unwrap()` (see clippy.toml `disallowed-methods`);
// CI's `-D warnings` escalates this to deny. Test builds carry `cfg(test)`
// and keep their unwraps.
#![cfg_attr(not(test), warn(clippy::disallowed_methods))]

pub mod chaos;
pub mod cluster;
pub mod controller;
pub mod dpu;
pub mod failover;
pub mod hierarchy;
pub mod lb;
pub mod monitor;
pub mod probe;
pub mod region;
pub mod reshard;
pub mod worldcheck;

pub use controller::{Controller, SplitPlan};
pub use region::{Region, RegionConfig, RegionReport};
