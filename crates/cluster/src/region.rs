//! End-to-end region simulation.
//!
//! [`Region`] is the Sailfish deployment of Fig 10: load balancers → a
//! VNI directory choosing the XGW-H cluster → flow-hash ECMP choosing the
//! device → the folded hardware program, with SNAT/long-tail traffic
//! punted to the XGW-x86 fallback cluster. [`X86Region`] is the
//! pre-Sailfish baseline: a fleet of software gateways behind flow-hash
//! ECMP (Figs 4–7).
//!
//! ## Loss model
//!
//! Deterministic losses come from capacity arithmetic (per-core overload
//! on x86, line-rate/pps overload on XGW-H, punt rate limiting). On top
//! of that, real deployments observe a tiny *residual* loss floor
//! (micro-bursts inside the chip's buffers, FEC escapes); Fig 19 measures
//! it at 10⁻¹¹–10⁻¹⁰ for Sailfish. We model the floor as
//! `10^-(11 - 1.5·u)` per device at utilization `u` — calibrated so a
//! lightly loaded device sits at 10⁻¹¹ and a festival-peak device
//! approaches 10⁻¹⁰ (see DESIGN.md §2; this is a documented substitution
//! for effects below the fluid model's resolution).

use std::collections::BTreeSet;

use sailfish_net::packet::GatewayPacketBuilder;
use sailfish_net::rss::Toeplitz;
use sailfish_sim::topology::Topology;
use sailfish_sim::workload::Flow;
use sailfish_tables::alpm::AlpmConfig;
use sailfish_tables::snat::SnatConfig;
use sailfish_xgw_h::{HwDecision, XgwH};
use sailfish_xgw_x86::{CoreLoadReport, FlowRate, FluidEngine, XgwX86Config};

use crate::cluster::{HwCluster, SwCluster};
use crate::controller::{
    ClusterCapacity, ClusterLoad, Controller, InstallError, PlanError, SplitPlan,
};
use crate::lb::{pick_owner, EcmpGroup, LbError, VniDirectory};

/// Residual (micro-burst) loss ratio of one hardware device at
/// utilization `u ∈ [0, 1]`.
pub fn hw_residual_loss_ratio(u: f64) -> f64 {
    let u = u.clamp(0.0, 1.0);
    10f64.powf(-(11.0 - 1.5 * u))
}

/// Region configuration.
#[derive(Debug, Clone)]
pub struct RegionConfig {
    /// Primary XGW-H clusters.
    pub hw_clusters: usize,
    /// Empty spare clusters built beyond the split plan's needs — the
    /// headroom an elastic scale-out re-shard migrates VNIs into. Spares
    /// mirror to backups like any other cluster when `with_backup`.
    pub spare_clusters: usize,
    /// Devices per cluster.
    pub devices_per_cluster: usize,
    /// Whether to build 1:1 hot-standby backup clusters (§6.1).
    pub with_backup: bool,
    /// XGW-x86 fallback nodes.
    pub sw_nodes: usize,
    /// ECMP next-hop cap of the upstream load balancer.
    pub ecmp_max: usize,
    /// Folded per-device line rate, bits/s.
    pub device_bps: f64,
    /// Folded per-device packet rate, packets/s.
    pub device_pps: f64,
    /// Per-device punt budget toward XGW-x86, bits/s.
    pub punt_rate_bps: f64,
    /// ALPM partition size.
    pub alpm: AlpmConfig,
    /// Split-planning capacity per cluster.
    pub capacity: ClusterCapacity,
    /// Software node envelope.
    pub x86: XgwX86Config,
    /// SNAT pool of the software nodes.
    pub snat: SnatConfig,
    /// Degrade flows with no serving hardware (directory gap after a
    /// failed install, every device of a cluster offline) to the XGW-x86
    /// path instead of black-holing them.
    pub degrade_to_x86: bool,
    /// Region-level rate budget for that degraded traffic, bits/s. The
    /// fallback path is a safety net, not a second data plane: beyond the
    /// budget it sheds load proportionally.
    pub fallback_rate_bps: f64,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            hw_clusters: 4,
            spare_clusters: 0,
            devices_per_cluster: 3,
            with_backup: true,
            sw_nodes: 4,
            ecmp_max: 16,
            device_bps: 3.2e12,
            device_pps: 1.8e9,
            punt_rate_bps: 10e9,
            alpm: AlpmConfig::default(),
            capacity: ClusterCapacity::default(),
            x86: XgwX86Config::default(),
            snat: SnatConfig {
                public_ips: vec![
                    "203.0.113.1".parse().expect("valid IPv4 literal"),
                    "203.0.113.2".parse().expect("valid IPv4 literal"),
                    "203.0.113.3".parse().expect("valid IPv4 literal"),
                    "203.0.113.4".parse().expect("valid IPv4 literal"),
                ],
                ..SnatConfig::default()
            },
            degrade_to_x86: true,
            fallback_rate_bps: 40e9,
        }
    }
}

/// Errors building a region.
#[derive(Debug)]
pub enum BuildError {
    /// Split planning failed.
    Plan(PlanError),
    /// Load-balancer configuration failed.
    Lb(LbError),
    /// Table installation failed.
    Table(sailfish_tables::Error),
    /// The two-phase install gave up (retries exhausted or a device
    /// rejected entries).
    Install(InstallError),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::Plan(e) => write!(f, "planning: {e}"),
            BuildError::Lb(e) => write!(f, "load balancer: {e}"),
            BuildError::Table(e) => write!(f, "table install: {e}"),
            BuildError::Install(e) => write!(f, "install: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<PlanError> for BuildError {
    fn from(e: PlanError) -> Self {
        BuildError::Plan(e)
    }
}

impl From<LbError> for BuildError {
    fn from(e: LbError) -> Self {
        BuildError::Lb(e)
    }
}

impl From<sailfish_tables::Error> for BuildError {
    fn from(e: sailfish_tables::Error) -> Self {
        BuildError::Table(e)
    }
}

impl From<InstallError> for BuildError {
    fn from(e: InstallError) -> Self {
        BuildError::Install(e)
    }
}

/// Where a flow goes after classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPath {
    /// Served in hardware by `(cluster, device)`.
    Hw {
        /// Serving cluster.
        cluster: usize,
        /// Serving device within the cluster.
        device: usize,
    },
    /// Punted to the software cluster through `(cluster, device)`.
    Punt {
        /// Hardware cluster the flow transits.
        cluster: usize,
        /// Hardware device the flow transits.
        device: usize,
        /// Software node serving it.
        node: usize,
    },
    /// Dropped in hardware (ACL, loop).
    HwDrop,
    /// No serving hardware; degraded to the rate-limited XGW-x86 path
    /// (graceful degradation instead of black-holing).
    Fallback {
        /// Software node serving it.
        node: usize,
    },
    /// The flow's VNI is not in the directory (configuration gap) and
    /// degradation is disabled.
    Unrouted,
}

/// The outcome of offering one interval of traffic.
#[derive(Debug, Clone)]
pub struct RegionReport {
    /// Total offered packets/s.
    pub offered_pps: f64,
    /// Total offered bits/s.
    pub offered_bps: f64,
    /// Utilization per `[cluster][device]`.
    pub device_util: Vec<Vec<f64>>,
    /// Deterministic hardware overload drops, packets/s.
    pub overload_dropped_pps: f64,
    /// Residual micro-burst drops, packets/s.
    pub residual_dropped_pps: f64,
    /// Drops at the punt rate limiter, packets/s.
    pub punt_limited_pps: f64,
    /// Per software node core reports.
    pub sw_reports: Vec<CoreLoadReport>,
    /// Software drops (core overload + NIC), packets/s.
    pub sw_dropped_pps: f64,
    /// Traffic reaching the software cluster, packets/s.
    pub punted_pps: f64,
    /// Traffic reaching the software cluster, bits/s.
    pub punted_bps: f64,
    /// Per-cluster loop-pipe byte split `(pipe1, pipe3)` in bits/s.
    pub loop_pipe_bps: Vec<(f64, f64)>,
    /// Traffic degraded to the XGW-x86 fallback path because no hardware
    /// could serve it, packets/s (before the fallback rate limit).
    pub fallback_pps: f64,
    /// Degraded traffic shed at the region fallback rate limit, packets/s.
    pub fallback_limited_pps: f64,
    /// Flows that had no directory entry, packets/s (should be 0).
    pub unrouted_pps: f64,
}

impl RegionReport {
    /// Total drop ratio across the region.
    pub fn loss_ratio(&self) -> f64 {
        if self.offered_pps == 0.0 {
            return 0.0;
        }
        (self.overload_dropped_pps
            + self.residual_dropped_pps
            + self.punt_limited_pps
            + self.sw_dropped_pps
            + self.fallback_limited_pps
            + self.unrouted_pps)
            / self.offered_pps
    }

    /// Share of offered traffic that had to degrade to the XGW-x86
    /// fallback path (the chaos harness's graceful-degradation signal).
    pub fn fallback_share(&self) -> f64 {
        if self.offered_pps == 0.0 {
            0.0
        } else {
            self.fallback_pps / self.offered_pps
        }
    }

    /// Share of offered traffic handled by XGW-x86 (Fig 22).
    pub fn punt_ratio(&self) -> f64 {
        if self.offered_pps == 0.0 {
            0.0
        } else {
            self.punted_pps / self.offered_pps
        }
    }

    /// The busiest device's utilization.
    pub fn peak_device_util(&self) -> f64 {
        self.device_util
            .iter()
            .flatten()
            .copied()
            .fold(0.0, f64::max)
    }
}

/// A deployed Sailfish region.
#[derive(Debug)]
pub struct Region {
    /// Configuration.
    pub config: RegionConfig,
    /// VNI → cluster directory (upstream LB state).
    pub directory: VniDirectory,
    /// The split plan in force.
    pub plan: SplitPlan,
    /// The controller (holds install intent).
    pub controller: Controller,
    /// Hardware clusters: primaries `0..hw_clusters`, then backups when
    /// configured.
    pub hw: Vec<HwCluster>,
    /// The software fallback cluster.
    pub sw: SwCluster,
    /// Per-device capacity scale in `[0, 1]` (`[cluster][device]`);
    /// port-level isolation (§6.1) reduces it below 1.
    pub capacity_scale: Vec<Vec<f64>>,
    /// Devices retired by an elastic scale-in (drained, out of rotation).
    /// Recovery actions aimed at a retired device are no-ops
    /// ([`crate::failover::RecoveryOutcome::NotApplicable`]), so chaos
    /// and re-shard schedules compose.
    pub retired: BTreeSet<(usize, usize)>,
    /// Flow hasher shared with the ECMP layer; dual-owner picks during a
    /// re-shard's `Dual` phase use it so the region model and the
    /// packet-level executor agree on which owner serves a flow.
    hasher: Toeplitz,
}

impl Region {
    /// Plans, builds and installs a region for a topology.
    pub fn build(topology: &Topology, config: RegionConfig) -> Result<Region, BuildError> {
        let mut plan = Controller::plan_split(topology, config.capacity, config.hw_clusters)?;
        // Spares are planned-empty clusters: real hardware, zero load.
        // A scale-out re-shard later migrates VNIs into them.
        let padded = plan.per_cluster.len() + config.spare_clusters;
        plan.per_cluster.resize(padded, ClusterLoad::default());
        let clusters = plan.clusters_needed().max(1);
        let total_clusters = if config.with_backup {
            clusters * 2
        } else {
            clusters
        };
        let mut hw = Vec::with_capacity(total_clusters);
        for id in 0..total_clusters {
            hw.push(HwCluster::new(
                id,
                config.devices_per_cluster,
                config.ecmp_max,
                config.alpm,
                config.punt_rate_bps as u64,
            )?);
        }
        let mut sw = SwCluster::new(
            config.sw_nodes,
            config.ecmp_max,
            config.x86.clone(),
            config.snat.clone(),
        )?;
        let mut directory = VniDirectory::new();
        let mut controller = Controller::new();
        controller.install(
            topology,
            &plan,
            &mut hw[..clusters],
            &mut sw,
            &mut directory,
        )?;
        // Backups mirror their primaries ("hot standby with the same
        // configuration", §6.1).
        if config.with_backup {
            let mut backup_controller = Controller::new();
            let mut backup_dir = VniDirectory::new();
            let (primaries, backups) = hw.split_at_mut(clusters);
            let _ = primaries; // tables already installed above
            backup_controller.install(
                topology,
                &plan,
                backups,
                &mut SwCluster::new(1, 64, config.x86.clone(), config.snat.clone())?,
                &mut backup_dir,
            )?;
        }
        let capacity_scale = vec![vec![1.0; config.devices_per_cluster]; hw.len()];
        Ok(Region {
            config,
            directory,
            plan,
            controller,
            hw,
            sw,
            capacity_scale,
            retired: BTreeSet::new(),
            hasher: Toeplitz::default(),
        })
    }

    /// Retires a device (elastic scale-in): pulls it out of ECMP and
    /// marks it so later recovery actions treat it as intentionally gone.
    pub fn retire_device(&mut self, cluster: usize, device: usize) {
        if let Some(hw) = self.hw.get_mut(cluster) {
            hw.take_device_offline(device);
        }
        self.retired.insert((cluster, device));
    }

    /// Whether a device was retired by a scale-in (as opposed to failed).
    pub fn is_retired(&self, cluster: usize, device: usize) -> bool {
        self.retired.contains(&(cluster, device))
    }

    /// Index of the backup cluster for primary `cluster`.
    pub fn backup_of(&self, cluster: usize) -> Option<usize> {
        if self.config.with_backup {
            Some(self.plan.clusters_needed() + cluster)
        } else {
            None
        }
    }

    /// A flow with no serving hardware: degrade to XGW-x86 when
    /// configured, otherwise report it unrouted.
    fn no_hw_path(&self, flow: &Flow) -> FlowPath {
        if self.config.degrade_to_x86 {
            FlowPath::Fallback {
                node: self
                    .sw
                    .ecmp
                    .pick(&flow.tuple)
                    .expect("sw cluster is never empty"),
            }
        } else {
            FlowPath::Unrouted
        }
    }

    /// Classifies one flow: which path it takes through the region.
    pub fn classify(&self, flow: &Flow) -> FlowPath {
        let Some(mut cluster) = self.directory.cluster_for(flow.vni) else {
            // Directory gap: the VNI's install failed or was rolled back.
            return self.no_hw_path(flow);
        };
        if let Some(secondary) = self.directory.dual_of(flow.vni) {
            // Make-before-break `Dual` phase: both owners hold the VNI's
            // tables, so the flow hash may steer to either one.
            cluster = pick_owner(&self.hasher, &flow.tuple, cluster, secondary);
        }
        let Ok(device) = self.hw[cluster].device_for(&flow.tuple) else {
            // Every device of the serving cluster is offline.
            return self.no_hw_path(flow);
        };
        let packet = GatewayPacketBuilder::new(flow.vni, flow.tuple.src_ip, flow.tuple.dst_ip)
            .transport(
                flow.tuple.protocol,
                flow.tuple.src_port,
                flow.tuple.dst_port,
            )
            .build();
        match self.hw[cluster].devices[device].classify(&packet) {
            HwDecision::ToNc { .. } | HwDecision::ToRegion { .. } | HwDecision::ToIdc { .. } => {
                FlowPath::Hw { cluster, device }
            }
            HwDecision::PuntToX86 { .. } => {
                let node = self
                    .sw
                    .ecmp
                    .pick(&flow.tuple)
                    .expect("sw cluster is never empty");
                FlowPath::Punt {
                    cluster,
                    device,
                    node,
                }
            }
            HwDecision::Drop(_) => FlowPath::HwDrop,
        }
    }

    /// Offers one interval of traffic at a load `multiplier` (the festival
    /// profile) and reports utilization and losses.
    pub fn offer(&mut self, flows: &[Flow], multiplier: f64) -> RegionReport {
        let primaries = self.plan.clusters_needed();
        let devices = self.config.devices_per_cluster;
        let mut device_bps = vec![vec![0.0f64; devices]; self.hw.len()];
        let mut device_pps = vec![vec![0.0f64; devices]; self.hw.len()];
        let mut punt_bps = vec![vec![0.0f64; devices]; self.hw.len()];
        let mut loop_pipe_bps = vec![(0.0f64, 0.0f64); self.hw.len()];
        let mut sw_flows: Vec<Vec<FlowRate>> = vec![Vec::new(); self.sw.nodes.len()];
        let mut sw_flow_scale: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.sw.nodes.len()];
        let mut fb_flows: Vec<Vec<FlowRate>> = vec![Vec::new(); self.sw.nodes.len()];
        let mut offered_pps = 0.0;
        let mut offered_bps = 0.0;
        let mut unrouted_pps = 0.0;

        for flow in flows {
            let pps = flow.pps * multiplier;
            let bps = flow.bps() * multiplier;
            offered_pps += pps;
            offered_bps += bps;
            match self.classify(flow) {
                FlowPath::Hw { cluster, device } => {
                    device_bps[cluster][device] += bps;
                    device_pps[cluster][device] += pps;
                    let split = &mut loop_pipe_bps[cluster];
                    if XgwH::loop_pipe_for(flow.vni) == 1 {
                        split.0 += bps;
                    } else {
                        split.1 += bps;
                    }
                }
                FlowPath::Punt {
                    cluster,
                    device,
                    node,
                } => {
                    // Punted traffic transits the hardware device too.
                    device_bps[cluster][device] += bps;
                    device_pps[cluster][device] += pps;
                    punt_bps[cluster][device] += bps;
                    sw_flows[node].push(FlowRate {
                        tuple: flow.tuple,
                        pps,
                        wire_bytes: flow.wire_bytes,
                    });
                    sw_flow_scale[node].push((cluster, device));
                }
                FlowPath::HwDrop => {
                    // ACL drops are intentional, not loss; exclude from
                    // offered totals.
                    offered_pps -= pps;
                    offered_bps -= bps;
                }
                FlowPath::Fallback { node } => {
                    // No hardware transit: the LB steers the flow straight
                    // at the software cluster.
                    fb_flows[node].push(FlowRate {
                        tuple: flow.tuple,
                        pps,
                        wire_bytes: flow.wire_bytes,
                    });
                }
                FlowPath::Unrouted => unrouted_pps += pps,
            }
        }

        // Region-level rate limit on the degraded path: it is a safety
        // net sized for disasters, not a second data plane.
        let total_fb_bps: f64 = fb_flows.iter().flatten().map(|f| f.bps()).sum();
        let fb_scale = if total_fb_bps > self.config.fallback_rate_bps {
            self.config.fallback_rate_bps / total_fb_bps
        } else {
            1.0
        };
        let mut fallback_pps = 0.0;
        let mut fallback_limited_pps = 0.0;

        // Punt rate limiting per device: scale down software-bound flows
        // proportionally where the budget is exceeded.
        let mut punt_scale = vec![vec![1.0f64; devices]; self.hw.len()];
        let mut punt_limited_pps = 0.0;
        for c in 0..self.hw.len() {
            for d in 0..devices {
                if punt_bps[c][d] > self.config.punt_rate_bps {
                    punt_scale[c][d] = self.config.punt_rate_bps / punt_bps[c][d];
                }
            }
        }
        let mut punted_pps = 0.0;
        let mut punted_bps = 0.0;
        let mut sw_reports = Vec::with_capacity(self.sw.nodes.len());
        let mut sw_dropped_pps = 0.0;
        for (node, flows) in sw_flows.iter_mut().enumerate() {
            for (i, f) in flows.iter_mut().enumerate() {
                let (c, d) = sw_flow_scale[node][i];
                let scale = punt_scale[c][d];
                punt_limited_pps += f.pps * (1.0 - scale);
                f.pps *= scale;
                punted_pps += f.pps;
                punted_bps += f.bps();
            }
            // Degraded flows share the node with punted ones; the core
            // model sees both.
            for f in &mut fb_flows[node] {
                fallback_pps += f.pps;
                fallback_limited_pps += f.pps * (1.0 - fb_scale);
                f.pps *= fb_scale;
            }
            flows.extend(fb_flows[node].iter().cloned());
            let report = self.sw.nodes[node].engine.offer(flows);
            sw_dropped_pps += report.dropped_pps + report.nic_dropped_pps;
            sw_reports.push(report);
        }

        // Hardware device utilizations and losses.
        let mut device_util = vec![vec![0.0f64; devices]; self.hw.len()];
        let mut overload = 0.0;
        let mut residual = 0.0;
        for c in 0..self.hw.len() {
            for d in 0..devices {
                let scale = self.capacity_scale[c][d].clamp(0.0, 1.0).max(1e-9);
                let u_bps = device_bps[c][d] / (self.config.device_bps * scale);
                let u_pps = device_pps[c][d] / (self.config.device_pps * scale);
                let u = u_bps.max(u_pps);
                device_util[c][d] = u;
                if u > 1.0 {
                    overload += device_pps[c][d] * (u - 1.0) / u;
                }
                residual += device_pps[c][d] * hw_residual_loss_ratio(u);
            }
        }
        let _ = primaries;

        RegionReport {
            offered_pps,
            offered_bps,
            device_util,
            overload_dropped_pps: overload,
            residual_dropped_pps: residual,
            punt_limited_pps,
            sw_reports,
            sw_dropped_pps,
            punted_pps,
            punted_bps,
            loop_pipe_bps,
            fallback_pps,
            fallback_limited_pps,
            unrouted_pps,
        }
    }
}

/// The pre-Sailfish baseline: a fleet of XGW-x86 gateways behind ECMP.
#[derive(Debug)]
pub struct X86Region {
    /// The software gateways.
    pub nodes: Vec<FluidEngine>,
    /// Flow-hash spread across them.
    pub ecmp: EcmpGroup,
}

/// Report of one baseline interval.
#[derive(Debug, Clone)]
pub struct X86RegionReport {
    /// Per-node core reports.
    pub node_reports: Vec<CoreLoadReport>,
    /// Total offered packets/s.
    pub offered_pps: f64,
    /// Total dropped packets/s.
    pub dropped_pps: f64,
}

impl X86RegionReport {
    /// Region loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        if self.offered_pps == 0.0 {
            0.0
        } else {
            self.dropped_pps / self.offered_pps
        }
    }

    /// Per-node average core utilization (Fig 6's box-level balance).
    pub fn node_mean_utilization(&self) -> Vec<f64> {
        self.node_reports
            .iter()
            .map(|r| r.utilization.iter().sum::<f64>() / r.utilization.len() as f64)
            .collect()
    }
}

impl X86Region {
    /// Builds a fleet of `nodes` identical software gateways.
    pub fn new(nodes: usize, ecmp_max: usize, config: XgwX86Config) -> Result<Self, LbError> {
        let mut ecmp = EcmpGroup::new(ecmp_max);
        let mut list = Vec::with_capacity(nodes);
        for n in 0..nodes {
            ecmp.add(n)?;
            list.push(FluidEngine::new(config.clone()));
        }
        Ok(X86Region { nodes: list, ecmp })
    }

    /// Offers one interval of traffic at a load multiplier.
    pub fn offer(&self, flows: &[Flow], multiplier: f64) -> X86RegionReport {
        let mut per_node: Vec<Vec<FlowRate>> = vec![Vec::new(); self.nodes.len()];
        let mut offered_pps = 0.0;
        for flow in flows {
            let node = self.ecmp.pick(&flow.tuple).expect("nodes exist");
            let pps = flow.pps * multiplier;
            offered_pps += pps;
            per_node[node].push(FlowRate {
                tuple: flow.tuple,
                pps,
                wire_bytes: flow.wire_bytes,
            });
        }
        let mut node_reports = Vec::with_capacity(self.nodes.len());
        let mut dropped = 0.0;
        for (node, flows) in per_node.iter().enumerate() {
            let report = self.nodes[node].offer(flows);
            dropped += report.dropped_pps + report.nic_dropped_pps;
            node_reports.push(report);
        }
        X86RegionReport {
            node_reports,
            offered_pps,
            dropped_pps: dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_sim::topology::TopologyConfig;
    use sailfish_sim::workload::{generate_flows, WorkloadConfig};

    fn small_region() -> (Topology, Region) {
        let topology = Topology::generate(TopologyConfig::default());
        let config = RegionConfig {
            hw_clusters: 4,
            devices_per_cluster: 2,
            with_backup: true,
            sw_nodes: 2,
            capacity: ClusterCapacity {
                max_routes: 600,
                max_vms: 3_000,
            },
            ..RegionConfig::default()
        };
        let region = Region::build(&topology, config).unwrap();
        (topology, region)
    }

    #[test]
    fn build_splits_across_clusters() {
        let (topology, region) = small_region();
        assert!(region.plan.clusters_needed() > 1);
        assert_eq!(region.directory.len(), region.plan.assignments.len());
        // Every cluster's install matches its planned load.
        for (i, load) in region.plan.per_cluster.iter().enumerate() {
            assert_eq!(region.hw[i].route_entries(), load.routes);
            assert_eq!(region.hw[i].vm_entries(), load.vms);
        }
        // Backups mirror primaries.
        let primaries = region.plan.clusters_needed();
        for i in 0..primaries {
            let b = region.backup_of(i).unwrap();
            assert_eq!(region.hw[i].route_entries(), region.hw[b].route_entries());
        }
        // Software holds everything.
        assert_eq!(
            region.sw.nodes[0].forwarder.tables.routes.len(),
            topology.routes.len()
        );
    }

    #[test]
    fn consistency_check_is_clean_then_detects_corruption() {
        let (_t, mut region) = small_region();
        let findings = region
            .controller
            .check_consistency(&region.plan, &region.hw);
        assert!(findings.is_empty(), "{findings:?}");
        // Simulate memory corruption/loss on one device by swapping in a
        // fresh (empty) gateway; the checker must localize the fault.
        let (_, &cluster) = region.plan.assignments.iter().next().unwrap();
        region.hw[cluster].devices[1] = sailfish_xgw_h::XgwH::with_defaults();
        let findings = region
            .controller
            .check_consistency(&region.plan, &region.hw);
        assert!(!findings.is_empty());
        assert!(findings
            .iter()
            .all(|f| f.cluster == cluster && f.device == 1));
        assert!(findings.iter().all(|f| f.actual == 0 && f.expected > 0));
    }

    #[test]
    fn offer_reports_sane_numbers() {
        let (topology, mut region) = small_region();
        let flows = generate_flows(
            &topology,
            &WorkloadConfig {
                flows: 3_000,
                total_gbps: 2_000.0,
                ..WorkloadConfig::default()
            },
        );
        let report = region.offer(&flows, 1.0);
        assert!(report.offered_pps > 0.0);
        assert!(report.unrouted_pps == 0.0);
        // Devices lightly loaded at 2 Tbps over 8+ devices.
        assert!(report.peak_device_util() < 1.0);
        assert_eq!(report.overload_dropped_pps, 0.0);
        // Residual loss exists but is tiny.
        assert!(report.residual_dropped_pps > 0.0);
        assert!(report.loss_ratio() < 1e-8, "loss {}", report.loss_ratio());
        // Punt ratio is small (internet share is ~0.2‰ of flows).
        assert!(report.punt_ratio() < 0.05, "punt {}", report.punt_ratio());
        // Loop pipes both carry traffic.
        let (p1, p3) = report.loop_pipe_bps[0];
        assert!(p1 > 0.0 && p3 > 0.0);
    }

    #[test]
    fn residual_loss_model_shape() {
        assert!(hw_residual_loss_ratio(0.0) <= 1.001e-11);
        assert!(hw_residual_loss_ratio(1.0) >= 0.9e-10 * 0.3);
        assert!(hw_residual_loss_ratio(0.9) > hw_residual_loss_ratio(0.2));
        // Clamped outside [0,1].
        assert_eq!(hw_residual_loss_ratio(2.0), hw_residual_loss_ratio(1.0));
    }

    #[test]
    fn x86_region_balances_boxes_but_not_cores() {
        let topology = Topology::generate(TopologyConfig::default());
        let flows = generate_flows(
            &topology,
            &WorkloadConfig {
                flows: 30_000,
                total_gbps: 500.0,
                heavy_hitters: 4,
                heavy_hitter_gbps: 25.0,
                zipf_s: 1.1,
                ..WorkloadConfig::default()
            },
        );
        let region = X86Region::new(15, 16, XgwX86Config::default()).unwrap();
        let report = region.offer(&flows, 1.0);
        // Box-level balance (Fig 6): every node within 2x of the mean —
        // a 30k-flow sample is far smaller than production, so the band
        // is loose, but no box is idle and none is catastrophic.
        let means = report.node_mean_utilization();
        let avg: f64 = means.iter().sum::<f64>() / means.len() as f64;
        for m in &means {
            assert!(*m < 2.5 * avg && *m > 0.15 * avg, "node {m} vs avg {avg}");
        }
        // Core-level imbalance (Fig 4): the hottest core is *overloaded*
        // (a 25 Gbps flow exceeds one core's capacity several-fold) even
        // though the average core has ample headroom.
        let hottest = report
            .node_reports
            .iter()
            .map(|r| r.hottest_core().1)
            .fold(0.0, f64::max);
        assert!(avg < 1.0, "boxes must have headroom on average: {avg}");
        assert!(hottest > 1.5, "hottest core overloaded: {hottest}");
        assert!(hottest > 2.5 * avg, "hottest {hottest} avg {avg}");
        // ...and that is exactly what produces region-level loss (Fig 5).
        assert!(report.loss_ratio() > 0.0);
    }
}
