//! Cluster-side adapter for the plan-time world verifier
//! ([`sailfish_asic::verify::world`]).
//!
//! The asic-level verifier reasons about opaque units and an abstract
//! [`CapacityModel`]; this module maps the cluster layer's concrete
//! state onto that model:
//!
//! - **units** are VNIs (by their 24-bit value), weighted with the
//!   route/VM entries they carry;
//! - **capacity** is the real per-device first-fit layout allocator —
//!   [`DeviceLoadCapacity`] runs `sailfish_xgw_h::layout`'s production
//!   layout for a cluster's aggregate load, so a world passes exactly
//!   when every device of every cluster can legally hold its share;
//! - a [`SplitPlan`] about to be installed becomes a [`WorldModel`] via
//!   [`staged_world`] (proved by `certify` before any push);
//! - a live [`Region`] plus the moves of a [`ReshardPlan`] become a
//!   world + [`TransitionPlan`] via [`region_world`] / [`transition_of`],
//!   verified in O(delta) against a trusted certificate (the region is
//!   serving traffic, so its base loads are proven by observation).
//!
//! [`CapacityModel`]: sailfish_asic::CapacityModel
//! [`ReshardPlan`]: crate::reshard::ReshardPlan

use std::collections::{BTreeMap, BTreeSet};

use sailfish_asic::verify::world::{
    self, CapacityModel, CapacityVerdict, TransitionPlan, WorldModel, WorldMove, WorldOptions,
    WorldReport,
};
use sailfish_asic::TofinoConfig;
use sailfish_net::Vni;
use sailfish_sim::Topology;

use crate::controller::SplitPlan;
use crate::region::Region;
use crate::reshard::VniMove;

/// Unit ids above this base are synthetic per-cluster *resident* units
/// (the non-moving load of a cluster, aggregated); real VNIs are 24-bit
/// so the ranges can never collide.
const RESIDENT_BASE: u64 = 1 << 40;

/// The world id of a VNI.
fn unit_of(vni: Vni) -> u64 {
    u64::from(vni.value())
}

/// Capacity model backed by the production device layout: a cluster can
/// hold an aggregate load iff `sailfish_xgw_h::layout::verify_device_load`
/// proves the per-device program (every device of a cluster carries the
/// full cluster load) places cleanly on the folded pipeline.
#[derive(Debug, Clone, Default)]
pub struct DeviceLoadCapacity {
    config: TofinoConfig,
}

impl CapacityModel for DeviceLoadCapacity {
    fn check(&self, _cluster: usize, routes: usize, vms: usize) -> CapacityVerdict {
        match sailfish_xgw_h::layout::verify_device_load(&self.config, routes, vms) {
            Err(e) => CapacityVerdict::Rejected {
                detail: e.to_string(),
            },
            Ok(report) => {
                if report.is_clean() {
                    let utilization_pct = report
                        .pairs
                        .iter()
                        .map(|p| p.occupancy.sram_pct.max(p.occupancy.tcam_pct))
                        .fold(0.0f64, f64::max);
                    CapacityVerdict::Fits { utilization_pct }
                } else {
                    CapacityVerdict::Rejected {
                        detail: report
                            .errors()
                            .map(|d| d.to_string())
                            .collect::<Vec<_>>()
                            .join("; "),
                    }
                }
            }
        }
    }
}

/// Per-VNI `(routes, vms)` weights of a topology, sorted by VNI.
fn weights(topology: &Topology) -> BTreeMap<Vni, (usize, usize)> {
    let mut w: BTreeMap<Vni, (usize, usize)> = BTreeMap::new();
    for (key, _) in &topology.routes {
        w.entry(key.vni).or_default().0 += 1;
    }
    for vm in &topology.vms {
        w.entry(vm.vni).or_default().1 += 1;
    }
    w
}

/// Lifts a staged install — a topology about to be pushed under a
/// [`SplitPlan`] — into a [`WorldModel`]. Every entry-carrying VNI is a
/// unit; a VNI the plan does not assign stays unowned, so the world pass
/// proves ownership totality (`SF-E007`) *before* the staging code would
/// panic on the missing assignment.
pub fn staged_world(topology: &Topology, plan: &SplitPlan, label: &str) -> WorldModel {
    let mut model = WorldModel::new(label, plan.clusters_needed());
    let w = weights(topology);
    for (vni, (routes, vms)) in &w {
        let id = unit_of(*vni);
        match plan.assignments.get(vni) {
            Some(cluster) => model.add_unit(id, *routes, *vms, *cluster),
            None => {
                // Unowned unit: entries staged, no owner — recorded
                // without a directory entry so SF-E007 fires.
                model.add_unit(id, *routes, *vms, 0);
                model.primary.remove(&id);
                model.holders.remove(&id);
            }
        }
    }
    // Dangling assignments (a VNI with no entries anywhere) surface as
    // directory divergence.
    let mut dangling: Vec<(Vni, usize)> = plan
        .assignments
        .iter()
        .filter(|(vni, _)| !w.contains_key(*vni))
        .map(|(vni, c)| (*vni, *c))
        .collect();
    dangling.sort();
    for (vni, cluster) in dangling {
        model.primary.insert(unit_of(vni), cluster);
    }
    model
}

/// Lifts a live region and the groups about to move into a
/// [`WorldModel`]. The moving groups appear as real units — primaries
/// from the **live directory**, holders from the split plan plus any
/// dual owner — so a plan whose `from` disagrees with where traffic
/// actually lands is caught (`SF-E010`). Each cluster's non-moving load
/// is aggregated into one synthetic resident unit carrying the plan's
/// recorded per-cluster load minus the moving groups' share.
pub fn region_world(region: &Region, moves: &[VniMove], label: &str) -> WorldModel {
    let clusters = region.plan.clusters_needed();
    let mut model = WorldModel::new(label, clusters);
    let mut moving_weight = vec![(0usize, 0usize); clusters];
    for mv in moves {
        for vni in &mv.vnis {
            let id = unit_of(*vni);
            // The group's weight rides on its leader; the other units of
            // the peer group move with it at zero marginal weight.
            let (routes, vms) = if *vni == mv.leader {
                (mv.routes, mv.vms)
            } else {
                (0, 0)
            };
            model.add_unit(id, routes, vms, 0);
            model.primary.remove(&id);
            model.holders.remove(&id);
            if let Some(owner) = region.directory.cluster_for(*vni) {
                model.primary.insert(id, owner);
            }
            if let Some(assigned) = region.plan.assignments.get(vni) {
                model.add_holder(id, *assigned);
            }
            if let Some(dual) = region.directory.dual_of(*vni) {
                model.add_holder(id, dual);
            }
        }
        if let Some(slot) = moving_weight.get_mut(mv.from) {
            slot.0 += mv.routes;
            slot.1 += mv.vms;
        }
    }
    for (cluster, load) in region.plan.per_cluster.iter().take(clusters).enumerate() {
        let (mr, mv) = moving_weight.get(cluster).copied().unwrap_or((0, 0));
        let id = RESIDENT_BASE + cluster as u64;
        model.add_unit(
            id,
            load.routes.saturating_sub(mr),
            load.vms.saturating_sub(mv),
            cluster,
        );
    }
    model
}

/// The asic-level transition mirroring a set of [`VniMove`]s, every move
/// driven through the full make-before-break sequence (the same serial
/// order `run_plan` uses).
pub fn transition_of(moves: &[VniMove]) -> TransitionPlan {
    TransitionPlan {
        moves: moves
            .iter()
            .map(|m| WorldMove::full(m.vnis.iter().copied().map(unit_of).collect(), m.from, m.to))
            .collect(),
    }
}

/// Verifies a staged install as a whole world: ownership totality,
/// directory bijectivity and per-cluster capacity through the real
/// device-layout allocator. Clean means safe to push.
pub fn verify_staged_world(topology: &Topology, plan: &SplitPlan, label: &str) -> WorldReport {
    let model = staged_world(topology, plan, label);
    world::verify_world(
        &model,
        &DeviceLoadCapacity::default(),
        &WorldOptions::default(),
    )
}

/// Verifies a re-shard (one move or a whole plan) against the live
/// region in O(delta): the base world is covered by a trusted
/// certificate (it is serving traffic), so only the clusters the moves
/// touch cost a capacity call. The report merges structural findings on
/// the base with the transition walk.
pub fn verify_reshard(region: &Region, moves: &[VniMove], label: &str) -> WorldReport {
    let model = region_world(region, moves, label);
    let certificate = world::trusted_certificate(&model);
    let plan = transition_of(moves);
    let mut report = world::verify_plan(
        &model,
        &certificate,
        &plan,
        &DeviceLoadCapacity::default(),
        &WorldOptions::default(),
    );
    report
        .diagnostics
        .extend(world::structure_diagnostics(&model));
    report.normalized()
}

/// Every VNI a set of moves touches, for callers that need to scope a
/// refusal.
pub fn touched_vnis(moves: &[VniMove]) -> BTreeSet<Vni> {
    moves.iter().flat_map(|m| m.vnis.iter().copied()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ClusterCapacity, Controller};
    use crate::region::RegionConfig;
    use crate::reshard::ReshardPlan;
    use sailfish_asic::LintCode;
    use sailfish_sim::TopologyConfig;

    fn topology() -> Topology {
        Topology::generate(TopologyConfig::default())
    }

    fn capacity() -> ClusterCapacity {
        ClusterCapacity {
            max_routes: 600,
            max_vms: 3_000,
        }
    }

    #[test]
    fn planned_split_verifies_clean() {
        let topology = topology();
        let plan = Controller::plan_split(&topology, capacity(), 64).expect("split plans");
        let report = verify_staged_world(&topology, &plan, "staged");
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.stats.capacity_calls, plan.clusters_needed());
    }

    #[test]
    fn unassigned_vni_is_an_uncovered_unit() {
        let topology = topology();
        let mut plan = Controller::plan_split(&topology, capacity(), 64).expect("split plans");
        let victim = *plan.assignments.keys().min().expect("non-empty plan");
        plan.assignments.remove(&victim);
        let report = verify_staged_world(&topology, &plan, "staged");
        assert!(report.has(LintCode::UncoveredUnit), "{}", report.render());
        assert!(!report.is_clean());
    }

    #[test]
    fn dangling_assignment_is_directory_divergence() {
        let topology = topology();
        let mut plan = Controller::plan_split(&topology, capacity(), 64).expect("split plans");
        plan.assignments.insert(Vni::new(0xFFFFFE).expect("vni"), 0);
        let report = verify_staged_world(&topology, &plan, "staged");
        assert!(
            report.has(LintCode::DirectoryDivergence),
            "{}",
            report.render()
        );
    }

    #[test]
    fn reshard_plan_verifies_clean_in_o_delta() {
        let topology = topology();
        let tighter = ClusterCapacity {
            max_routes: 400,
            max_vms: 2_000,
        };
        // The tighter target split needs more clusters; build the region
        // with enough spares that the scale-out is legal.
        let current = Controller::plan_split(&topology, capacity(), 64).expect("split plans");
        let target = Controller::plan_split(&topology, tighter, 64).expect("split plans");
        let config = RegionConfig {
            capacity: capacity(),
            spare_clusters: target
                .clusters_needed()
                .saturating_sub(current.clusters_needed()),
            ..RegionConfig::default()
        };
        let region = Region::build(&topology, config).expect("region builds");
        let plan = ReshardPlan::plan(
            &topology,
            &region.plan,
            &target,
            ClusterCapacity::default(),
            &BTreeSet::new(),
        )
        .expect("plan between valid splits");
        assert!(!plan.moves.is_empty(), "tighter split should force moves");
        let report = verify_reshard(&region, &plan.moves, "reshard");
        assert!(report.is_clean(), "{}", report.render());
        // O(delta): one capacity call per move (the destination at
        // announce), not one per cluster per intermediate world.
        assert_eq!(report.stats.capacity_calls, plan.moves.len());
        assert!(report.stats.cache_hits > 0);
    }

    #[test]
    fn move_from_wrong_source_is_a_black_hole() {
        let topology = topology();
        let config = RegionConfig {
            capacity: capacity(),
            ..RegionConfig::default()
        };
        let region = Region::build(&topology, config).expect("region builds");
        let (vni, owner) = {
            let snapshot = region.directory.snapshot();
            *snapshot.first().expect("directory non-empty")
        };
        let wrong_from = (owner + 1) % region.plan.clusters_needed().max(1);
        let mv = VniMove {
            leader: vni,
            vnis: vec![vni],
            from: wrong_from,
            to: owner,
            routes: 1,
            vms: 1,
        };
        let report = verify_reshard(&region, core::slice::from_ref(&mv), "bad-move");
        assert!(
            report.has(LintCode::TransitionBlackHole),
            "{}",
            report.render()
        );
    }
}
