//! Probe-based cluster validation (§6.1, "Cluster construction").
//!
//! "Then, we will deploy probe generators to produce diverse probe
//! packets covering as many test scenarios as possible. Finally, we will
//! modify the routes in the upstream devices to admit user traffic."
//!
//! The generator derives one probe per installed behaviour class
//! (same-VPC, peered, Internet/SNAT, IDC, cross-region, and negative
//! probes for unknown destinations), runs them through every device of
//! the serving cluster, and reports divergences from the expected
//! decision — the go/no-go gate before admitting user traffic.

use sailfish_net::packet::GatewayPacketBuilder;
use sailfish_net::{GatewayPacket, IpProtocol};
use sailfish_sim::topology::{Topology, PEERED_SUBNETS};
use sailfish_xgw_h::{HwDecision, PuntReason};

use crate::region::Region;

/// What a probe expects the gateway to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Forward to an NC in the (possibly rewritten) VNI.
    ForwardLocal,
    /// Hand off to another region.
    CrossRegion,
    /// Hand off to an IDC.
    Idc,
    /// Punt for SNAT.
    PuntSnat,
    /// Punt as unknown (long tail on software).
    PuntUnknown,
}

/// One probe packet with its expectation.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Descriptive label.
    pub label: String,
    /// The packet to inject.
    pub packet: GatewayPacket,
    /// Expected decision class.
    pub expect: Expectation,
}

/// A probe that failed on some device.
#[derive(Debug, Clone)]
pub struct ProbeFailure {
    /// The probe's label.
    pub label: String,
    /// Cluster where it failed.
    pub cluster: usize,
    /// Device where it failed.
    pub device: usize,
    /// What the device actually did.
    pub got: String,
}

/// Builds the probe set for a topology (up to `per_class` probes per
/// behaviour class).
pub fn generate(topology: &Topology, per_class: usize) -> Vec<Probe> {
    let mut probes = Vec::new();
    let mut local = 0;
    let mut peered = 0;
    let mut snat = 0;
    let mut idc = 0;
    let mut xregion = 0;
    let mut negative = 0;

    for vpc in &topology.vpcs {
        let vms = topology.vms_of(vpc);
        let Some(src) = vms.iter().find(|m| m.ip.is_ipv4()) else {
            continue;
        };
        let mk = |dst: core::net::IpAddr| {
            GatewayPacketBuilder::new(vpc.vni, src.ip, dst)
                .transport(IpProtocol::Udp, 30000, 30001)
                .build()
        };
        if local < per_class {
            if let Some(dst) = vms.iter().find(|m| m.ip.is_ipv4() && m.ip != src.ip) {
                probes.push(Probe {
                    label: format!("local {} -> {}", vpc.vni, dst.ip),
                    packet: mk(dst.ip),
                    expect: Expectation::ForwardLocal,
                });
                local += 1;
            }
        }
        if peered < per_class {
            // A dangling peer reference (no such VPC in the topology) is
            // not probe-worthy; skip it rather than panic.
            if let Some(peer) = vpc
                .peer
                .and_then(|peer_vni| topology.vpcs.iter().find(|v| v.vni == peer_vni))
            {
                let pvms = topology.vms_of(peer);
                let reachable = pvms.len().min(PEERED_SUBNETS * 250);
                if let Some(dst) = pvms[..reachable].iter().find(|m| m.ip.is_ipv4()) {
                    probes.push(Probe {
                        label: format!("peer {} -> {} ({})", vpc.vni, dst.ip, peer.vni),
                        packet: mk(dst.ip),
                        expect: Expectation::ForwardLocal,
                    });
                    peered += 1;
                }
            }
        }
        if snat < per_class && vpc.internet {
            probes.push(Probe {
                label: format!("snat {}", vpc.vni),
                packet: mk("93.184.216.34".parse().expect("valid IPv4 literal")),
                expect: Expectation::PuntSnat,
            });
            snat += 1;
        }
        if idc < per_class && vpc.idc.is_some() {
            probes.push(Probe {
                label: format!("idc {}", vpc.vni),
                packet: mk("172.16.200.1".parse().expect("valid IPv4 literal")),
                expect: Expectation::Idc,
            });
            idc += 1;
        }
        if xregion < per_class && vpc.cross_region.is_some() {
            probes.push(Probe {
                label: format!("xregion {}", vpc.vni),
                packet: mk("100.64.200.1".parse().expect("valid IPv4 literal")),
                expect: Expectation::CrossRegion,
            });
            xregion += 1;
        }
        if negative < per_class && !vpc.internet {
            probes.push(Probe {
                label: format!("negative {}", vpc.vni),
                packet: mk("198.51.100.77".parse().expect("valid IPv4 literal")),
                expect: Expectation::PuntUnknown,
            });
            negative += 1;
        }
    }
    probes
}

/// Whether a device decision satisfies a probe's expectation.
fn matches_expectation(decision: &HwDecision, expect: Expectation) -> bool {
    matches!(
        (decision, expect),
        (HwDecision::ToNc { .. }, Expectation::ForwardLocal)
            | (HwDecision::ToRegion { .. }, Expectation::CrossRegion)
            | (HwDecision::ToIdc { .. }, Expectation::Idc)
            | (
                HwDecision::PuntToX86 {
                    reason: PuntReason::SnatRequired,
                    ..
                },
                Expectation::PuntSnat
            )
            | (
                HwDecision::PuntToX86 {
                    reason: PuntReason::NoHwRoute,
                    ..
                },
                Expectation::PuntUnknown
            )
    )
}

/// Runs every probe on every device of its serving cluster.
pub fn run(region: &mut Region, probes: &[Probe]) -> Vec<ProbeFailure> {
    let mut failures = Vec::new();
    for probe in probes {
        let Some(cluster) = region.directory.cluster_for(probe.packet.vni) else {
            failures.push(ProbeFailure {
                label: probe.label.clone(),
                cluster: usize::MAX,
                device: usize::MAX,
                got: "VNI not in directory".into(),
            });
            continue;
        };
        for device in 0..region.hw[cluster].devices.len() {
            let decision = region.hw[cluster].devices[device].classify(&probe.packet);
            if !matches_expectation(&decision, probe.expect) {
                failures.push(ProbeFailure {
                    label: probe.label.clone(),
                    cluster,
                    device,
                    got: format!("{decision:?}"),
                });
            }
        }
    }
    failures
}

/// Runs the probes relevant to one device — the §6.1 re-admission gate.
///
/// Probes are selected by the *plan* (which VNIs this cluster must serve),
/// not the live directory: a backup cluster (index ≥ primaries) is tested
/// against its primary's assignment, and a cluster whose traffic is
/// currently failed over elsewhere can still be validated before the
/// directory cuts back over.
pub fn run_device(
    region: &mut Region,
    probes: &[Probe],
    cluster: usize,
    device: usize,
) -> Vec<ProbeFailure> {
    let primaries = region.plan.clusters_needed();
    let plan_cluster = if cluster >= primaries {
        cluster - primaries
    } else {
        cluster
    };
    let mut failures = Vec::new();
    for probe in probes {
        if region.plan.assignments.get(&probe.packet.vni) != Some(&plan_cluster) {
            continue;
        }
        let decision = region.hw[cluster].devices[device].classify(&probe.packet);
        if !matches_expectation(&decision, probe.expect) {
            failures.push(ProbeFailure {
                label: probe.label.clone(),
                cluster,
                device,
                got: format!("{decision:?}"),
            });
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ClusterCapacity;
    use crate::region::RegionConfig;
    use sailfish_sim::topology::TopologyConfig;
    use sailfish_xgw_h::XgwH;

    fn build() -> (Topology, Region) {
        let topology = Topology::generate(TopologyConfig::default());
        let region = Region::build(
            &topology,
            RegionConfig {
                devices_per_cluster: 2,
                capacity: ClusterCapacity {
                    max_routes: 600,
                    max_vms: 3_000,
                },
                ..RegionConfig::default()
            },
        )
        .unwrap();
        (topology, region)
    }

    #[test]
    fn probe_set_covers_all_classes() {
        let (topology, _region) = build();
        let probes = generate(&topology, 3);
        for expect in [
            Expectation::ForwardLocal,
            Expectation::PuntSnat,
            Expectation::Idc,
            Expectation::CrossRegion,
            Expectation::PuntUnknown,
        ] {
            assert!(
                probes.iter().any(|p| p.expect == expect),
                "missing class {expect:?}"
            );
        }
    }

    #[test]
    fn healthy_region_passes_all_probes() {
        let (topology, mut region) = build();
        let probes = generate(&topology, 5);
        assert!(probes.len() >= 15);
        let failures = run(&mut region, &probes);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn run_device_gates_single_devices_including_backups() {
        let (topology, mut region) = build();
        let probes = generate(&topology, 5);
        assert!(run_device(&mut region, &probes, 0, 0).is_empty());
        // A backup cluster's devices are testable against the primary's
        // plan assignment even though the directory points elsewhere.
        let backup = region.backup_of(0).unwrap();
        assert!(run_device(&mut region, &probes, backup, 0).is_empty());
        // Corruption on one device is caught there and only there.
        region.hw[0].devices[1] = XgwH::with_defaults();
        assert!(!run_device(&mut region, &probes, 0, 1).is_empty());
        assert!(run_device(&mut region, &probes, 0, 0).is_empty());
    }

    #[test]
    fn corrupted_device_fails_probes_precisely() {
        let (topology, mut region) = build();
        let probes = generate(&topology, 5);
        // Wipe device 1 of cluster 0.
        region.hw[0].devices[1] = XgwH::with_defaults();
        let failures = run(&mut region, &probes);
        assert!(!failures.is_empty());
        assert!(
            failures.iter().all(|f| f.cluster == 0 && f.device == 1),
            "failures must localize to the corrupted device: {failures:?}"
        );
    }
}
