//! Chaos harness: replays deterministic fault schedules against a region.
//!
//! [`sailfish_sim::faults`] generates pure-data schedules; this module
//! interprets them against a live [`Region`], driving the §6.1 recovery
//! machinery — the cluster/node/port disaster-recovery ladder, two-phase
//! installs with bounded retry, consistency-check detection of silent
//! corruption, and probe-gated re-admission — while recording per-slot
//! loss, fallback share, per-fault recovery timing, and invariant checks.
//! Everything runs in virtual time with seeded randomness, so a schedule
//! replays byte-for-byte.

use std::collections::BTreeSet;

use sailfish_net::Vni;
use sailfish_sim::faults::{FaultEvent, FaultKind, FaultSchedule, VirtualClock};
use sailfish_sim::topology::Topology;
use sailfish_sim::workload::Flow;

use crate::controller::InstallPolicy;
use crate::failover::{self, RecoveryError};
use crate::probe::{self, Probe};
use crate::region::Region;

/// Harness parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Virtual nanoseconds per measurement slot.
    pub slot_ns: u64,
    /// Probes per behaviour class for the re-admission gate.
    pub probes_per_class: usize,
    /// Retry/backoff policy for repair installs.
    pub policy: InstallPolicy,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            slot_ns: 1_000_000_000,
            probes_per_class: 3,
            policy: InstallPolicy::default(),
        }
    }
}

/// One measurement slot.
#[derive(Debug, Clone, Copy)]
pub struct SlotSample {
    /// Slot index.
    pub slot: u64,
    /// Region loss ratio for the slot.
    pub loss_ratio: f64,
    /// Share of offered traffic degraded to the XGW-x86 path.
    pub fallback_share: f64,
    /// Whether any fault window covered the slot.
    pub fault_active: bool,
}

/// What happened to one scheduled fault.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// The schedule entry.
    pub event: FaultEvent,
    /// Stable label of the fault kind.
    pub label: &'static str,
    /// Slot at which the fault was *detected* (consistency check);
    /// faults injected via explicit alerts are detected at injection.
    pub detected_at: Option<u64>,
    /// Slot at which recovery completed.
    pub recovered_at: Option<u64>,
    /// Push attempts the repair install needed (0 when no install ran).
    pub install_attempts: u32,
    /// Virtual time the repair install consumed (retries + backoff).
    pub repair_virtual_ns: u64,
}

/// An invariant the region broke during the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Slot at which it was observed.
    pub slot: u64,
    /// Description.
    pub what: String,
}

/// The outcome of replaying one schedule.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Per-slot measurements.
    pub samples: Vec<SlotSample>,
    /// Per-fault outcomes, in schedule order.
    pub faults: Vec<FaultRecord>,
    /// Invariant violations (must be empty for a hardened region).
    pub violations: Vec<InvariantViolation>,
    /// Loss ratio of the clean baseline slot (slot 0).
    pub baseline_loss: f64,
    /// Whether the VNI directory ended byte-identical to its start state.
    pub directory_restored: bool,
}

impl ChaosReport {
    /// Mean time-to-repair over faults that ran a repair install, in
    /// virtual nanoseconds.
    pub fn mean_repair_ns(&self) -> f64 {
        let repairs: Vec<u64> = self
            .faults
            .iter()
            .filter(|f| f.repair_virtual_ns > 0)
            .map(|f| f.repair_virtual_ns)
            .collect();
        if repairs.is_empty() {
            0.0
        } else {
            repairs.iter().sum::<u64>() as f64 / repairs.len() as f64
        }
    }

    /// Worst slot loss while no fault window was active.
    pub fn max_loss_outside_faults(&self) -> f64 {
        self.samples
            .iter()
            .filter(|s| !s.fault_active)
            .map(|s| s.loss_ratio)
            .fold(0.0, f64::max)
    }

    /// Worst slot loss overall.
    pub fn max_loss(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.loss_ratio)
            .fold(0.0, f64::max)
    }

    /// Faults whose recovery completed.
    pub fn recovered_count(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| f.recovered_at.is_some())
            .count()
    }
}

/// Replays `schedule` against `region`, offering `flows` once per slot.
///
/// Slot order: recoveries due this slot run first, then injections, then
/// the traffic offer, then detection (consistency check) and invariant
/// checks. Fault windows are therefore exactly `[at, ends_at)`: a slot at
/// `ends_at` measures the recovered region.
pub fn run_schedule(
    region: &mut Region,
    topology: &Topology,
    flows: &[Flow],
    schedule: &FaultSchedule,
    config: &ChaosConfig,
) -> ChaosReport {
    let probes = probe::generate(topology, config.probes_per_class);
    let mut clock = VirtualClock::new();
    let baseline_snapshot = region.directory.snapshot();
    let mut samples = Vec::with_capacity(schedule.slots as usize);
    let mut violations = Vec::new();
    let mut faults: Vec<FaultRecord> = schedule
        .events
        .iter()
        .map(|e| FaultRecord {
            event: *e,
            label: e.kind.label(),
            detected_at: None,
            recovered_at: None,
            install_attempts: 0,
            repair_virtual_ns: 0,
        })
        .collect();
    let mut baseline_loss = 0.0;

    for slot in 0..schedule.slots {
        clock.advance(config.slot_ns);

        // Recoveries due this slot (window ended).
        for fault in &mut faults {
            if fault.event.ends_at() == slot && fault.recovered_at.is_none() {
                recover(
                    region,
                    topology,
                    &probes,
                    config,
                    &mut clock,
                    fault,
                    slot,
                    &mut violations,
                );
            }
        }

        // Injections.
        for fault in &mut faults {
            if fault.event.at == slot {
                inject(
                    region,
                    topology,
                    &probes,
                    config,
                    &mut clock,
                    fault,
                    slot,
                    &mut violations,
                );
            }
        }

        // Offer one interval, amplified by any active heavy-hitter storm.
        let multiplier = schedule
            .events
            .iter()
            .filter(|e| slot >= e.at && slot < e.ends_at())
            .filter_map(|e| match e.kind {
                FaultKind::HeavyHitterStorm { multiplier }
                | FaultKind::ConnectionStorm { multiplier, .. } => Some(multiplier),
                _ => None,
            })
            .fold(1.0, f64::max);
        let report = region.offer(flows, multiplier);
        if slot == 0 {
            baseline_loss = report.loss_ratio();
        }
        samples.push(SlotSample {
            slot,
            loss_ratio: report.loss_ratio(),
            fallback_share: report.fallback_share(),
            fault_active: schedule.fault_active_at(slot),
        });

        // Detection: the periodic consistency check localizes silent
        // corruption; findings not attributable to an active corruption
        // fault are violations.
        let findings = region
            .controller
            .check_consistency(&region.plan, &region.hw);
        for finding in &findings {
            let attributed = faults.iter_mut().any(|f| {
                matches!(
                    f.event.kind,
                    FaultKind::TableCorruption { cluster, device }
                        if cluster == finding.cluster && device == finding.device
                ) && f.event.at <= slot
                    && slot < f.event.ends_at()
            });
            if attributed {
                for f in faults.iter_mut() {
                    if matches!(
                        f.event.kind,
                        FaultKind::TableCorruption { cluster, device }
                            if cluster == finding.cluster && device == finding.device
                    ) && f.event.at <= slot
                        && slot < f.event.ends_at()
                        && f.detected_at.is_none()
                    {
                        f.detected_at = Some(slot);
                    }
                }
            } else {
                violations.push(InvariantViolation {
                    slot,
                    what: format!("unattributed inconsistency: {finding:?}"),
                });
            }
        }

        check_invariants(region, topology, slot, report.unrouted_pps, &mut violations);
    }

    let directory_restored = region.directory.snapshot() == baseline_snapshot;
    ChaosReport {
        samples,
        faults,
        violations,
        baseline_loss,
        directory_restored,
    }
}

/// Outcome of one probe-gated re-admission attempt, shared by every
/// recovery path that ends with `readmit_device`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadmitOutcome {
    /// Probes passed (or the action was a typed no-op); the device is
    /// back in rotation.
    Readmitted,
    /// The probe gate refused the device — it stays offline.
    Refused,
    /// The re-admission itself failed (bad target and the like).
    Failed,
}

/// Runs the probe gate for `(cluster, device)` and records a violation on
/// anything but success. The single place the four recovery paths
/// (install failure, node death, cluster failure, table corruption)
/// funnel their re-admission through.
fn readmit_and_log(
    region: &mut Region,
    probes: &[Probe],
    cluster: usize,
    device: usize,
    slot: u64,
    violations: &mut Vec<InvariantViolation>,
) -> ReadmitOutcome {
    match failover::readmit_device(region, probes, cluster, device) {
        Ok(_) => ReadmitOutcome::Readmitted,
        Err(RecoveryError::ProbeGateFailed { failures, .. }) => {
            violations.push(InvariantViolation {
                slot,
                what: format!("probe gate refused ({cluster},{device}): {failures} failures"),
            });
            ReadmitOutcome::Refused
        }
        Err(e) => {
            violations.push(InvariantViolation {
                slot,
                what: format!("readmit({cluster},{device}): {e}"),
            });
            ReadmitOutcome::Failed
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn inject(
    region: &mut Region,
    topology: &Topology,
    probes: &[Probe],
    config: &ChaosConfig,
    clock: &mut VirtualClock,
    record: &mut FaultRecord,
    slot: u64,
    violations: &mut Vec<InvariantViolation>,
) {
    let fail = |what: String, violations: &mut Vec<InvariantViolation>| {
        violations.push(InvariantViolation { slot, what })
    };
    match record.event.kind {
        FaultKind::NodeDeath { cluster, device } => {
            record.detected_at = Some(slot);
            if let Err(e) = failover::fail_device(region, cluster, device) {
                fail(format!("fail_device({cluster},{device}): {e}"), violations);
            }
        }
        FaultKind::PortDegradation {
            cluster,
            device,
            healthy_fraction,
        } => {
            record.detected_at = Some(slot);
            if let Err(e) = failover::isolate_ports(region, cluster, device, healthy_fraction) {
                fail(
                    format!("isolate_ports({cluster},{device}): {e}"),
                    violations,
                );
            }
        }
        FaultKind::ClusterFailure { cluster } => {
            record.detected_at = Some(slot);
            for device in 0..region.config.devices_per_cluster {
                if let Err(e) = failover::fail_device(region, cluster, device) {
                    fail(format!("fail_device({cluster},{device}): {e}"), violations);
                }
            }
            if let Err(e) = failover::fail_cluster(region, cluster) {
                fail(format!("fail_cluster({cluster}): {e}"), violations);
            }
        }
        FaultKind::InstallFailure {
            cluster,
            device,
            fault,
        } => {
            // A maintenance reinstall whose pushes fault for `duration`
            // consecutive attempts: the two-phase installer must retry
            // with backoff, roll back partials, and land a verified
            // install; the probe gate then re-admits the device. All of
            // it happens inside the slot — the point of the hardening is
            // that traffic never sees the faulty pushes.
            record.detected_at = Some(slot);
            let faulty_attempts = record
                .event
                .duration
                .min(u64::from(config.policy.max_attempts) - 1)
                as u32;
            if let Err(e) = failover::fail_device(region, cluster, device) {
                fail(format!("fail_device({cluster},{device}): {e}"), violations);
            }
            let plan = region.plan.clone();
            let result = region.controller.reinstall_device(
                topology,
                &plan,
                &mut region.hw,
                cluster,
                cluster,
                device,
                clock,
                &config.policy,
                &mut |_, attempt| (attempt < faulty_attempts).then_some(fault),
            );
            match result {
                Ok(report) => {
                    record.install_attempts = report.attempts;
                    record.repair_virtual_ns = report.virtual_ns;
                }
                Err(e) => fail(format!("reinstall({cluster},{device}): {e}"), violations),
            }
            if readmit_and_log(region, probes, cluster, device, slot, violations)
                == ReadmitOutcome::Readmitted
            {
                record.recovered_at = Some(slot);
            }
        }
        FaultKind::TableCorruption { cluster, device } => {
            // Silent: the device keeps serving with empty tables. Only
            // the consistency check / probe sweep can spot it.
            region.hw[cluster].devices[device].wipe_tables();
        }
        FaultKind::HeavyHitterStorm { .. } => {
            record.detected_at = Some(slot);
        }
        FaultKind::ConnectionStorm { .. } => {
            // Load-only, like a heavy-hitter storm: visible immediately
            // in the punt/SNAT counters, no table state to corrupt.
            record.detected_at = Some(slot);
        }
        FaultKind::DpuNodeDeath { .. } | FaultKind::DpuPoolSaturation { .. } => {
            // The DPU middle tier sits between the chip and the x86
            // fallback; the region model here collapses both software
            // rungs, so these faults shift load inside that aggregate
            // without changing region routing. The packet-level harness
            // (`sailfish_dataplane::chaos`) replays them against the
            // real three-tier ladder; this one records detection so the
            // schedule's MTTR accounting still covers every kind.
            record.detected_at = Some(slot);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn recover(
    region: &mut Region,
    topology: &Topology,
    probes: &[Probe],
    config: &ChaosConfig,
    clock: &mut VirtualClock,
    record: &mut FaultRecord,
    slot: u64,
    violations: &mut Vec<InvariantViolation>,
) {
    let fail = |what: String, violations: &mut Vec<InvariantViolation>| {
        violations.push(InvariantViolation { slot, what })
    };
    match record.event.kind {
        FaultKind::NodeDeath { cluster, device } => {
            // Tables survived the outage; the probe gate verifies that
            // before the device rejoins the ECMP group.
            if readmit_and_log(region, probes, cluster, device, slot, violations)
                == ReadmitOutcome::Readmitted
            {
                record.recovered_at = Some(slot);
            }
        }
        FaultKind::PortDegradation {
            cluster, device, ..
        } => match failover::restore_ports(region, cluster, device) {
            Ok(_) => record.recovered_at = Some(slot),
            Err(e) => fail(
                format!("restore_ports({cluster},{device}): {e}"),
                violations,
            ),
        },
        FaultKind::ClusterFailure { cluster } => {
            let mut ok = true;
            for device in 0..region.config.devices_per_cluster {
                if readmit_and_log(region, probes, cluster, device, slot, violations)
                    != ReadmitOutcome::Readmitted
                {
                    ok = false;
                }
            }
            match failover::restore_cluster(region, cluster) {
                Ok(_) if ok => record.recovered_at = Some(slot),
                Ok(_) => {}
                Err(e) => fail(format!("restore_cluster({cluster}): {e}"), violations),
            }
        }
        FaultKind::InstallFailure { .. } => {
            // Recovered at injection (the retry loop ran to completion).
        }
        FaultKind::TableCorruption { cluster, device } => {
            // Repair = the documented ladder: offline, rebuild through
            // the two-phase installer, probe-gate back in.
            if let Err(e) = failover::fail_device(region, cluster, device) {
                fail(format!("fail_device({cluster},{device}): {e}"), violations);
            }
            let plan = region.plan.clone();
            let result = region.controller.reinstall_device(
                topology,
                &plan,
                &mut region.hw,
                cluster,
                cluster,
                device,
                clock,
                &config.policy,
                &mut |_, _| None,
            );
            match result {
                Ok(report) => {
                    record.install_attempts = report.attempts;
                    record.repair_virtual_ns = report.virtual_ns;
                }
                Err(e) => fail(format!("reinstall({cluster},{device}): {e}"), violations),
            }
            if readmit_and_log(region, probes, cluster, device, slot, violations)
                == ReadmitOutcome::Readmitted
            {
                record.recovered_at = Some(slot);
            }
        }
        FaultKind::HeavyHitterStorm { .. } => {
            record.recovered_at = Some(slot);
        }
        FaultKind::ConnectionStorm { .. } => {
            record.recovered_at = Some(slot);
        }
        FaultKind::DpuNodeDeath { .. } | FaultKind::DpuPoolSaturation { .. } => {
            // Consistent-hash spillover re-homes the dead node's flows
            // (or the saturation shed ends); the window closing is the
            // recovery.
            record.recovered_at = Some(slot);
        }
    }
}

/// Region invariants that must hold in *every* slot, faulted or not:
/// the directory covers exactly the planned VNIs, every VNI is served by
/// its planned cluster or that cluster's backup, peered VPCs stay
/// co-located, and no traffic is black-holed.
fn check_invariants(
    region: &Region,
    topology: &Topology,
    slot: u64,
    unrouted_pps: f64,
    violations: &mut Vec<InvariantViolation>,
) {
    if unrouted_pps > 0.0 {
        violations.push(InvariantViolation {
            slot,
            what: format!("{unrouted_pps} pps black-holed (unrouted)"),
        });
    }

    let snapshot = region.directory.snapshot();
    let directory_vnis: BTreeSet<Vni> = snapshot.iter().map(|(v, _)| *v).collect();
    let planned_vnis: BTreeSet<Vni> = region.plan.assignments.keys().copied().collect();
    if directory_vnis != planned_vnis {
        violations.push(InvariantViolation {
            slot,
            what: format!(
                "directory covers {} VNIs, plan {} (bijectivity broken)",
                directory_vnis.len(),
                planned_vnis.len()
            ),
        });
    }

    for (vni, target) in &snapshot {
        let planned = region.plan.assignments[vni];
        let backup = region.backup_of(planned);
        if *target != planned && Some(*target) != backup {
            violations.push(InvariantViolation {
                slot,
                what: format!("{vni} served by cluster {target}, planned {planned}"),
            });
        }
    }

    for vpc in &topology.vpcs {
        if let Some(peer) = vpc.peer {
            let a = region.directory.cluster_for(vpc.vni);
            let b = region.directory.cluster_for(peer);
            if a.is_some() && b.is_some() && a != b {
                violations.push(InvariantViolation {
                    slot,
                    what: format!("peered {} and {} split across {a:?}/{b:?}", vpc.vni, peer),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ClusterCapacity;
    use crate::region::RegionConfig;
    use sailfish_sim::faults::{FaultScheduleConfig, InstallFault};
    use sailfish_sim::topology::TopologyConfig;
    use sailfish_sim::workload::{generate_flows, WorkloadConfig};

    fn build() -> (Topology, Vec<Flow>, Region) {
        let topology = Topology::generate(TopologyConfig::default());
        let region = Region::build(
            &topology,
            RegionConfig {
                hw_clusters: 4,
                devices_per_cluster: 3,
                with_backup: true,
                sw_nodes: 2,
                capacity: ClusterCapacity {
                    max_routes: 600,
                    max_vms: 3_000,
                },
                ..RegionConfig::default()
            },
        )
        .unwrap();
        let flows = generate_flows(
            &topology,
            &WorkloadConfig {
                flows: 2_000,
                total_gbps: 1_000.0,
                ..WorkloadConfig::default()
            },
        );
        (topology, flows, region)
    }

    #[test]
    fn generated_schedule_runs_clean_and_recovers_everything() {
        let (topology, flows, mut region) = build();
        let schedule = FaultSchedule::generate(&FaultScheduleConfig {
            slots: 24,
            clusters: region.plan.clusters_needed(),
            devices_per_cluster: 3,
            // At least nine events so the round-robin prefix covers every
            // fault kind once.
            fault_rate: 0.4,
            ..FaultScheduleConfig::default()
        });
        assert_eq!(schedule.kinds_present().len(), 9);
        let report = run_schedule(
            &mut region,
            &topology,
            &flows,
            &schedule,
            &ChaosConfig::default(),
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.recovered_count(), report.faults.len());
        assert!(report.directory_restored);
        // Loss outside fault windows stays at the clean baseline.
        assert!(
            report.max_loss_outside_faults() <= report.baseline_loss * 1.001 + 1e-12,
            "loss leaked outside fault windows: {} vs baseline {}",
            report.max_loss_outside_faults(),
            report.baseline_loss
        );
    }

    #[test]
    fn corruption_is_detected_and_repaired_with_loss_confined() {
        let (topology, flows, mut region) = build();
        let schedule = FaultSchedule::from_events(
            8,
            vec![FaultEvent {
                at: 2,
                duration: 2,
                kind: FaultKind::TableCorruption {
                    cluster: 0,
                    device: 1,
                },
            }],
        );
        let report = run_schedule(
            &mut region,
            &topology,
            &flows,
            &schedule,
            &ChaosConfig::default(),
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let fault = &report.faults[0];
        // Detected by the consistency check in the injection slot,
        // repaired when the window closed, through a real install.
        assert_eq!(fault.detected_at, Some(2));
        assert_eq!(fault.recovered_at, Some(4));
        assert!(fault.install_attempts >= 1);
        assert!(fault.repair_virtual_ns > 0);
        // Slots after recovery are as clean as before injection.
        let loss_at = |slot: u64| report.samples[slot as usize].loss_ratio;
        assert!(loss_at(6) <= loss_at(1) * 1.001 + 1e-12);
    }

    #[test]
    fn install_faults_are_retried_without_any_traffic_impact() {
        let (topology, flows, mut region) = build();
        let schedule = FaultSchedule::from_events(
            6,
            vec![FaultEvent {
                at: 2,
                duration: 3,
                kind: FaultKind::InstallFailure {
                    cluster: 1,
                    device: 0,
                    fault: InstallFault::Partial { fraction: 0.4 },
                },
            }],
        );
        let report = run_schedule(
            &mut region,
            &topology,
            &flows,
            &schedule,
            &ChaosConfig::default(),
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let fault = &report.faults[0];
        // 3 faulty pushes + 1 clean one, all inside the injection slot.
        assert_eq!(fault.install_attempts, 4);
        assert_eq!(fault.recovered_at, Some(2));
        assert!(fault.repair_virtual_ns > 0);
        // The two-phase install means traffic never saw the partials:
        // every slot matches the baseline.
        assert!(report.max_loss() <= report.baseline_loss * 1.001 + 1e-12);
    }

    #[test]
    fn cluster_failure_rolls_to_backup_and_back() {
        let (topology, flows, mut region) = build();
        let schedule = FaultSchedule::from_events(
            8,
            vec![FaultEvent {
                at: 2,
                duration: 3,
                kind: FaultKind::ClusterFailure { cluster: 0 },
            }],
        );
        let before = region.directory.snapshot();
        let report = run_schedule(
            &mut region,
            &topology,
            &flows,
            &schedule,
            &ChaosConfig::default(),
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.directory_restored);
        assert_eq!(region.directory.snapshot(), before);
        // The backup carried the traffic: no slot black-holed anything and
        // no slot needed the x86 fallback.
        for s in &report.samples {
            assert_eq!(s.fallback_share, 0.0, "slot {}: {s:?}", s.slot);
        }
    }
}
