//! The central controller.
//!
//! Responsibilities (§4.3, §6.1):
//!
//! - **Split planning** — horizontal table splitting by VNI: "each XGW-H
//!   stores all the forwarding tables but only a portion of entries from
//!   each table ... we only need to insert new table entries into one
//!   cluster or allocate a new cluster if the original cluster is out of
//!   memory",
//! - **Installation** — pushing each VNI's routes and VM mappings to its
//!   cluster (every device) and the full region state to the XGW-x86
//!   fallback cluster,
//! - **Consistency checking** — "table entry inconsistency between the
//!   controller and the gateways may occur during table population ...
//!   periodic consistency checks are needed",
//! - **Update timeline** — the Fig 23 model: slow regular growth plus
//!   sudden announced batches from top customers.

use std::collections::HashMap;

use sailfish_util::rand::rngs::StdRng;
use sailfish_util::rand::{Rng, SeedableRng};

use sailfish_net::Vni;
use sailfish_sim::faults::{InstallFault, VirtualClock};
use sailfish_sim::metrics::Series;
use sailfish_sim::topology::Topology;
use sailfish_tables::types::{NcAddr, RouteTarget, VxlanRouteKey};

use crate::cluster::{HwCluster, SwCluster};
use crate::lb::VniDirectory;

/// Per-cluster capacity limits (entries a single XGW-H can hold after the
/// §4.4 compression).
#[derive(Debug, Clone, Copy)]
pub struct ClusterCapacity {
    /// Maximum route entries.
    pub max_routes: usize,
    /// Maximum VM mappings.
    pub max_vms: usize,
}

impl Default for ClusterCapacity {
    fn default() -> Self {
        // The DESIGN.md §3 calibration: one XGW-H comfortably holds ~229k
        // routes and ~459k VMs with headroom (Table 4 shows ~69%/32%).
        ClusterCapacity {
            max_routes: 240_000,
            max_vms: 480_000,
        }
    }
}

/// Why planning failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// One VNI alone exceeds a cluster's capacity — "the VPC is the
    /// smallest split granularity, however, some VPCs (e.g., top
    /// customers) contain millions of entries that challenge the capacity
    /// of a single cluster" (§4.4).
    VniTooLarge {
        /// The offending VPC.
        vni: Vni,
    },
    /// More clusters would be needed than allowed.
    NotEnoughClusters {
        /// Clusters required by the plan.
        needed: usize,
        /// Clusters available.
        available: usize,
    },
}

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlanError::VniTooLarge { vni } => {
                write!(f, "{vni} exceeds single-cluster capacity")
            }
            PlanError::NotEnoughClusters { needed, available } => {
                write!(
                    f,
                    "plan needs {needed} clusters, only {available} available"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Load assigned to one cluster by a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterLoad {
    /// Route entries.
    pub routes: usize,
    /// VM mappings.
    pub vms: usize,
}

/// A VNI→cluster assignment.
#[derive(Debug, Clone)]
pub struct SplitPlan {
    /// Assignment of each VNI.
    pub assignments: HashMap<Vni, usize>,
    /// Load per cluster.
    pub per_cluster: Vec<ClusterLoad>,
}

impl SplitPlan {
    /// Number of clusters the plan uses.
    pub fn clusters_needed(&self) -> usize {
        self.per_cluster.len()
    }
}

/// Bounded-retry policy for two-phase installs. All timing is virtual —
/// the controller advances a [`VirtualClock`] instead of sleeping, so
/// recovery time is measurable and runs are deterministic.
#[derive(Debug, Clone, Copy)]
pub struct InstallPolicy {
    /// Attempts per cluster/device push before giving up.
    pub max_attempts: u32,
    /// Backoff after the `k`-th failed attempt is
    /// `base_backoff_ns << k` (exponential, deterministic).
    pub base_backoff_ns: u64,
    /// Virtual cost of a push that times out.
    pub timeout_ns: u64,
    /// Virtual cost of applying one table entry.
    pub push_ns_per_entry: u64,
}

impl Default for InstallPolicy {
    fn default() -> Self {
        InstallPolicy {
            max_attempts: 6,
            base_backoff_ns: 50_000_000, // 50 ms
            timeout_ns: 200_000_000,     // 200 ms
            push_ns_per_entry: 2_000,    // 2 µs per gRPC'd entry
        }
    }
}

impl InstallPolicy {
    /// Deterministic exponential backoff after failed attempt `attempt`.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        self.base_backoff_ns.saturating_mul(1u64 << attempt.min(16))
    }
}

/// Why a two-phase install failed for good.
#[derive(Debug, Clone, PartialEq)]
pub enum InstallError {
    /// A device rejected an entry (capacity, table fault). Nothing from
    /// the failing cluster is left behind.
    Table {
        /// The cluster being pushed.
        cluster: usize,
        /// The underlying table error.
        error: sailfish_tables::Error,
    },
    /// Every attempt hit an injected/observed fault; the push was rolled
    /// back and the cluster's VNIs stay unassigned (traffic degrades to
    /// the XGW-x86 fallback instead of black-holing).
    RetriesExhausted {
        /// The cluster being pushed.
        cluster: usize,
        /// Attempts made.
        attempts: u32,
        /// The fault seen on the final attempt.
        last_fault: InstallFault,
    },
    /// The static analyzer rejected the staged load before anything was
    /// pushed: the cluster's devices could not legally hold it, so the
    /// install is refused up front instead of failing half-way through
    /// a hardware push.
    LayoutRejected {
        /// The cluster whose staged load is illegal.
        cluster: usize,
        /// The analyzer's error diagnostics, one per line.
        detail: String,
    },
    /// The plan-time *world* verifier rejected the install as a whole:
    /// the staged world leaves a VNI uncovered, diverges directory from
    /// placement, or overloads a cluster (`SF-E007`+ codes). Nothing was
    /// staged or pushed.
    WorldRejected {
        /// The world verifier's error diagnostics, `; `-joined.
        detail: String,
    },
}

impl core::fmt::Display for InstallError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InstallError::Table { cluster, error } => {
                write!(f, "cluster {cluster}: table error: {error}")
            }
            InstallError::RetriesExhausted {
                cluster,
                attempts,
                last_fault,
            } => write!(
                f,
                "cluster {cluster}: install gave up after {attempts} attempts \
                 (last fault {last_fault:?})"
            ),
            InstallError::LayoutRejected { cluster, detail } => {
                write!(
                    f,
                    "cluster {cluster}: staged load rejected by verify: {detail}"
                )
            }
            InstallError::WorldRejected { detail } => {
                write!(f, "staged world rejected by verify: {detail}")
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// What a (two-phase) install did: attempts, rollbacks and virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstallReport {
    /// Clusters (or devices, for a device reinstall) committed.
    pub committed: usize,
    /// Total push attempts.
    pub attempts: u32,
    /// Attempts that failed and were retried.
    pub retries: u32,
    /// Entries applied and then removed by rollbacks.
    pub rolled_back_entries: usize,
    /// Virtual time consumed.
    pub virtual_ns: u64,
}

/// Decides whether a push attempt faults. Called once per `(target,
/// attempt)`; returning `None` lets the attempt through. Deterministic
/// injectors (the chaos harness uses schedule-driven ones) keep whole
/// runs replayable.
pub type InstallInjector<'a> = dyn FnMut(usize, u32) -> Option<InstallFault> + 'a;

/// Entries staged for one cluster: the *stage* phase of the two-phase
/// install. Pure data — nothing touches a device until the push.
#[derive(Debug, Clone, Default)]
struct StagedCluster {
    routes: Vec<(VxlanRouteKey, RouteTarget)>,
    vms: Vec<(Vni, core::net::IpAddr, NcAddr)>,
    /// Per-VNI route counts this push must produce (sorted by VNI).
    route_intent: Vec<(Vni, usize)>,
    /// Every VNI assigned to this cluster (sorted; directory commit).
    vnis: Vec<Vni>,
}

impl StagedCluster {
    fn entries(&self) -> usize {
        self.routes.len() + self.vms.len()
    }
}

/// An inconsistency found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistency {
    /// The cluster where it was found.
    pub cluster: usize,
    /// The device within the cluster.
    pub device: usize,
    /// The affected VNI.
    pub vni: Vni,
    /// Entries the controller believes are installed.
    pub expected: usize,
    /// Entries actually present.
    pub actual: usize,
}

/// The central controller.
#[derive(Debug, Default)]
pub struct Controller {
    /// Intended per-VNI route counts, recorded at install time.
    intent: HashMap<Vni, usize>,
}

impl Controller {
    /// Creates a controller with no recorded intent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans the horizontal split: first-fit decreasing over per-VNI
    /// entry weights, opening new clusters as needed (up to
    /// `max_clusters`).
    ///
    /// Peered VPCs are planned as one indivisible group: a packet for
    /// VNI A resolving to peer VNI B completes both lookups on the same
    /// device, so the controller must co-locate peers (otherwise
    /// cross-VPC traffic would fall back to software).
    pub fn plan_split(
        topology: &Topology,
        capacity: ClusterCapacity,
        max_clusters: usize,
    ) -> Result<SplitPlan, PlanError> {
        // Per-VNI weights.
        let mut routes_per_vni: HashMap<Vni, usize> = HashMap::new();
        for (key, _) in &topology.routes {
            *routes_per_vni.entry(key.vni).or_default() += 1;
        }
        let mut vms_per_vni: HashMap<Vni, usize> = HashMap::new();
        for vm in &topology.vms {
            *vms_per_vni.entry(vm.vni).or_default() += 1;
        }

        // Group peered VPCs: every VNI maps to a canonical group leader.
        let mut leader: HashMap<Vni, Vni> = HashMap::new();
        for vpc in &topology.vpcs {
            let mates = core::iter::once(vpc.vni).chain(vpc.peer);
            let min = mates.clone().min().expect("non-empty");
            for m in mates {
                let entry = leader.entry(m).or_insert(min);
                *entry = (*entry).min(min);
            }
        }
        let group_of = |vni: Vni| leader.get(&vni).copied().unwrap_or(vni);

        // leader -> (member VNIs, route weight, VM weight).
        type Group = (Vec<Vni>, usize, usize);
        let mut groups: HashMap<Vni, Group> = HashMap::new();
        let all_vnis: std::collections::BTreeSet<Vni> = routes_per_vni
            .keys()
            .chain(vms_per_vni.keys())
            .copied()
            .collect();
        for vni in all_vnis {
            let g = groups.entry(group_of(vni)).or_default();
            g.0.push(vni);
            g.1 += routes_per_vni.get(&vni).copied().unwrap_or(0);
            g.2 += vms_per_vni.get(&vni).copied().unwrap_or(0);
        }
        let mut ordered: Vec<(Vni, Group)> = groups.into_iter().collect();
        // Decreasing by dominant load dimension; ties by leader for
        // determinism.
        ordered.sort_by_key(|(lead, (_, r, v))| (core::cmp::Reverse(r + v), *lead));

        let mut per_cluster: Vec<ClusterLoad> = Vec::new();
        let mut assignments = HashMap::new();
        for (lead, (members, routes, vms)) in ordered {
            if routes > capacity.max_routes || vms > capacity.max_vms {
                return Err(PlanError::VniTooLarge { vni: lead });
            }
            let slot = per_cluster.iter().position(|load| {
                load.routes + routes <= capacity.max_routes && load.vms + vms <= capacity.max_vms
            });
            let idx = match slot {
                Some(idx) => idx,
                None => {
                    per_cluster.push(ClusterLoad::default());
                    per_cluster.len() - 1
                }
            };
            per_cluster[idx].routes += routes;
            per_cluster[idx].vms += vms;
            for vni in members {
                assignments.insert(vni, idx);
            }
        }
        if per_cluster.len() > max_clusters {
            return Err(PlanError::NotEnoughClusters {
                needed: per_cluster.len(),
                available: max_clusters,
            });
        }
        Ok(SplitPlan {
            assignments,
            per_cluster,
        })
    }

    /// The stage phase: group every planned entry by target cluster, in
    /// deterministic (topology) order. Pure planning — no device is
    /// touched.
    fn stage(topology: &Topology, plan: &SplitPlan) -> Vec<StagedCluster> {
        let mut staged = vec![StagedCluster::default(); plan.clusters_needed()];
        for (key, target) in &topology.routes {
            staged[plan.assignments[&key.vni]]
                .routes
                .push((*key, *target));
        }
        for vm in &topology.vms {
            staged[plan.assignments[&vm.vni]]
                .vms
                .push((vm.vni, vm.ip, vm.nc));
        }
        let mut vnis_per_cluster: Vec<Vec<Vni>> = vec![Vec::new(); staged.len()];
        for (vni, cluster) in &plan.assignments {
            vnis_per_cluster[*cluster].push(*vni);
        }
        for (stage, mut vnis) in staged.iter_mut().zip(vnis_per_cluster) {
            vnis.sort();
            stage.vnis = vnis;
            let mut intent: HashMap<Vni, usize> = HashMap::new();
            for (key, _) in &stage.routes {
                *intent.entry(key.vni).or_default() += 1;
            }
            let mut intent: Vec<(Vni, usize)> = intent.into_iter().collect();
            intent.sort();
            stage.route_intent = intent;
        }
        staged
    }

    /// Applies a staged prefix to every device of a cluster.
    fn apply(
        hw: &mut HwCluster,
        routes: &[(VxlanRouteKey, RouteTarget)],
        vms: &[(Vni, core::net::IpAddr, NcAddr)],
    ) -> Result<(), sailfish_tables::Error> {
        for (key, target) in routes {
            hw.install_route(*key, *target)?;
        }
        for (vni, ip, nc) in vms {
            hw.install_vm(*vni, *ip, *nc)?;
        }
        Ok(())
    }

    /// Removes an applied prefix from every device of a cluster
    /// (rollback of a partial push).
    fn rollback(
        hw: &mut HwCluster,
        routes: &[(VxlanRouteKey, RouteTarget)],
        vms: &[(Vni, core::net::IpAddr, NcAddr)],
    ) {
        for (key, _) in routes {
            hw.remove_route(key);
        }
        for (vni, ip, _) in vms {
            hw.remove_vm(*vni, *ip);
        }
    }

    /// Static pre-push verification of one staged cluster: runs the
    /// `sailfish_asic::verify` analyzer over the production layout the
    /// cluster's devices would carry at the staged entry counts. An
    /// error-level diagnostic refuses the push before any device is
    /// touched; warnings are allowed through (they describe headroom,
    /// not legality).
    fn verify_staged(cluster: usize, stage: &StagedCluster) -> Result<(), InstallError> {
        let config = sailfish_asic::TofinoConfig::tofino_64t();
        let report = sailfish_xgw_h::layout::verify_device_load(
            &config,
            stage.routes.len(),
            stage.vms.len(),
        )
        .map_err(|e| InstallError::LayoutRejected {
            cluster,
            detail: e.to_string(),
        })?;
        if report.is_clean() {
            return Ok(());
        }
        let detail = report
            .errors()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        Err(InstallError::LayoutRejected { cluster, detail })
    }

    /// The consistency-check phase of one push: every device of the
    /// cluster must hold exactly the staged per-VNI route counts and the
    /// staged number of VM mappings.
    fn verify(hw: &HwCluster, stage: &StagedCluster) -> bool {
        hw.devices.iter().enumerate().all(|(device, dev)| {
            dev.tables.vm_nc.len() == stage.vms.len()
                && stage
                    .route_intent
                    .iter()
                    .all(|(vni, expected)| hw.route_entries_for(device, *vni) == *expected)
        })
    }

    /// Installs a planned topology: per-VNI state to its hardware cluster,
    /// the full state to the software cluster, and the VNI directory for
    /// the load balancer. Records intent for later consistency checks.
    ///
    /// Fault-free convenience wrapper over [`Controller::install_with`].
    pub fn install(
        &mut self,
        topology: &Topology,
        plan: &SplitPlan,
        hw: &mut [HwCluster],
        sw: &mut SwCluster,
        directory: &mut VniDirectory,
    ) -> Result<InstallReport, InstallError> {
        let mut clock = VirtualClock::new();
        self.install_with(
            topology,
            plan,
            hw,
            sw,
            directory,
            &mut clock,
            &InstallPolicy::default(),
            &mut |_, _| None,
        )
    }

    /// Two-phase installation (§6.1 hardening): **stage** every entry by
    /// cluster, push the full state to the XGW-x86 safety net first, then
    /// per cluster push → **consistency-check** → **commit**. A push that
    /// times out or lands partially is rolled back and retried with
    /// deterministic exponential backoff in virtual time; only a push
    /// whose per-device verification passes commits (intent recorded,
    /// directory cut over). On [`InstallError::RetriesExhausted`] the
    /// failing cluster is left clean and *unassigned*, so its traffic
    /// degrades to the rate-limited fallback path instead of
    /// black-holing against half-installed tables.
    #[allow(clippy::too_many_arguments)]
    pub fn install_with(
        &mut self,
        topology: &Topology,
        plan: &SplitPlan,
        hw: &mut [HwCluster],
        sw: &mut SwCluster,
        directory: &mut VniDirectory,
        clock: &mut VirtualClock,
        policy: &InstallPolicy,
        injector: &mut InstallInjector<'_>,
    ) -> Result<InstallReport, InstallError> {
        assert!(
            hw.len() >= plan.clusters_needed(),
            "install requires {} clusters",
            plan.clusters_needed()
        );
        // Plan-time world gate: prove ownership totality, directory
        // bijectivity and per-cluster capacity over the whole staged
        // world before anything is staged — a plan that strands a VNI is
        // a typed refusal here, not a panic or a half-pushed region.
        let world = crate::worldcheck::verify_staged_world(topology, plan, "install");
        if !world.is_clean() {
            return Err(InstallError::WorldRejected {
                detail: world.error_detail(),
            });
        }
        let staged = Self::stage(topology, plan);
        let mut report = InstallReport::default();

        // Static verification of every staged load before anything moves:
        // an illegal layout is a typed, explainable refusal, not a
        // half-pushed cluster.
        for (cluster, stage) in staged.iter().enumerate() {
            Self::verify_staged(cluster, stage)?;
        }

        // The fallback cluster holds the full region state and is the
        // graceful-degradation target, so it is populated before any
        // hardware cutover.
        for stage in &staged {
            for (key, target) in &stage.routes {
                sw.install_route(*key, *target);
            }
            for (vni, ip, nc) in &stage.vms {
                sw.install_vm(*vni, *ip, *nc)
                    .map_err(|error| InstallError::Table {
                        cluster: usize::MAX,
                        error,
                    })?;
            }
        }

        for (cluster, stage) in staged.iter().enumerate() {
            let mut attempt = 0u32;
            loop {
                report.attempts += 1;
                match injector(cluster, attempt) {
                    Some(InstallFault::Timeout) => {
                        // Nothing reached the device.
                        clock.advance(policy.timeout_ns);
                    }
                    Some(InstallFault::Partial { fraction }) => {
                        // A prefix lands, then the push dies. The check
                        // phase sees the shortfall; roll back before
                        // retrying so no device serves half a push.
                        let nr = ((stage.routes.len() as f64) * fraction) as usize;
                        let nv = ((stage.vms.len() as f64) * fraction) as usize;
                        let applied_routes = &stage.routes[..nr];
                        let applied_vms = &stage.vms[..nv];
                        Self::apply(&mut hw[cluster], applied_routes, applied_vms)
                            .map_err(|error| InstallError::Table { cluster, error })?;
                        clock.advance(policy.push_ns_per_entry * (nr + nv) as u64);
                        if Self::verify(&hw[cluster], stage) {
                            // The "partial" prefix was the whole push.
                            self.commit(directory, cluster, stage);
                            report.committed += 1;
                            break;
                        }
                        Self::rollback(&mut hw[cluster], applied_routes, applied_vms);
                        report.rolled_back_entries += nr + nv;
                    }
                    None => {
                        Self::apply(&mut hw[cluster], &stage.routes, &stage.vms)
                            .map_err(|error| InstallError::Table { cluster, error })?;
                        clock.advance(policy.push_ns_per_entry * stage.entries() as u64);
                        if Self::verify(&hw[cluster], stage) {
                            self.commit(directory, cluster, stage);
                            report.committed += 1;
                            break;
                        }
                        // A clean push that still verifies short (device
                        // dropping writes): roll back and retry.
                        Self::rollback(&mut hw[cluster], &stage.routes, &stage.vms);
                        report.rolled_back_entries += stage.entries();
                    }
                }
                report.retries += 1;
                attempt += 1;
                if attempt >= policy.max_attempts {
                    return Err(InstallError::RetriesExhausted {
                        cluster,
                        attempts: attempt,
                        last_fault: injector(cluster, attempt).unwrap_or(InstallFault::Timeout),
                    });
                }
                clock.advance(policy.backoff_ns(attempt - 1));
            }
        }
        report.virtual_ns = clock.now_ns();
        Ok(report)
    }

    /// Commit phase for one cluster: record intent, cut the directory
    /// over.
    fn commit(&mut self, directory: &mut VniDirectory, cluster: usize, stage: &StagedCluster) {
        for (vni, count) in &stage.route_intent {
            *self.intent.entry(*vni).or_default() += count;
        }
        for vni in &stage.vnis {
            directory.assign(*vni, cluster);
        }
    }

    /// Rebuilds one device's tables from the controller's plan through
    /// the same two-phase push (wipe → push → verify → done), with
    /// bounded retry and rollback-by-wipe on partial pushes. This is the
    /// repair path after table corruption and the maintenance path for
    /// firmware-style reinstalls; callers take the device out of the
    /// ECMP group first and re-admit it through the probe gate.
    ///
    /// `cluster` is the physical cluster index (primaries first, then
    /// backups); `plan_cluster` names the plan entry whose state the
    /// device must hold (for a backup, its primary's index).
    #[allow(clippy::too_many_arguments)]
    pub fn reinstall_device(
        &self,
        topology: &Topology,
        plan: &SplitPlan,
        hw: &mut [HwCluster],
        cluster: usize,
        plan_cluster: usize,
        device: usize,
        clock: &mut VirtualClock,
        policy: &InstallPolicy,
        injector: &mut InstallInjector<'_>,
    ) -> Result<InstallReport, InstallError> {
        let Some(stage) = Self::stage(topology, plan).into_iter().nth(plan_cluster) else {
            return Err(InstallError::LayoutRejected {
                cluster,
                detail: format!(
                    "plan has no cluster {plan_cluster} ({} planned)",
                    plan.clusters_needed()
                ),
            });
        };
        // Same static gate as a full install: never wipe a live device
        // for a load its pipeline cannot legally hold.
        Self::verify_staged(cluster, &stage)?;
        let mut report = InstallReport::default();
        let verify_device = |hw: &[HwCluster]| {
            hw[cluster].devices[device].tables.vm_nc.len() == stage.vms.len()
                && stage
                    .route_intent
                    .iter()
                    .all(|(vni, expected)| hw[cluster].route_entries_for(device, *vni) == *expected)
        };
        let start_ns = clock.now_ns();
        hw[cluster].devices[device].wipe_tables();
        let mut attempt = 0u32;
        loop {
            report.attempts += 1;
            let fault = injector(cluster, attempt);
            let applied = match fault {
                Some(InstallFault::Timeout) => {
                    clock.advance(policy.timeout_ns);
                    0
                }
                Some(InstallFault::Partial { fraction }) => {
                    let nr = ((stage.routes.len() as f64) * fraction) as usize;
                    let nv = ((stage.vms.len() as f64) * fraction) as usize;
                    let dev = &mut hw[cluster].devices[device];
                    for (key, target) in &stage.routes[..nr] {
                        dev.tables
                            .routes
                            .insert(*key, *target)
                            .map_err(|error| InstallError::Table { cluster, error })?;
                    }
                    for (vni, ip, nc) in &stage.vms[..nv] {
                        dev.tables
                            .add_vm(*vni, *ip, *nc)
                            .map_err(|error| InstallError::Table { cluster, error })?;
                    }
                    nr + nv
                }
                None => {
                    let dev = &mut hw[cluster].devices[device];
                    for (key, target) in &stage.routes {
                        dev.tables
                            .routes
                            .insert(*key, *target)
                            .map_err(|error| InstallError::Table { cluster, error })?;
                    }
                    for (vni, ip, nc) in &stage.vms {
                        dev.tables
                            .add_vm(*vni, *ip, *nc)
                            .map_err(|error| InstallError::Table { cluster, error })?;
                    }
                    stage.entries()
                }
            };
            clock.advance(policy.push_ns_per_entry * applied as u64);
            if verify_device(hw) {
                report.committed = 1;
                break;
            }
            // Rollback for a single device is a wipe: cheaper than
            // tracking the prefix and identical in outcome.
            if applied > 0 {
                hw[cluster].devices[device].wipe_tables();
                report.rolled_back_entries += applied;
            }
            report.retries += 1;
            attempt += 1;
            if attempt >= policy.max_attempts {
                return Err(InstallError::RetriesExhausted {
                    cluster,
                    attempts: attempt,
                    last_fault: injector(cluster, attempt).unwrap_or(InstallFault::Timeout),
                });
            }
            clock.advance(policy.backoff_ns(attempt - 1));
        }
        report.virtual_ns = clock.now_ns() - start_ns;
        Ok(report)
    }

    /// Periodic consistency check: compares recorded intent against every
    /// device's actual per-VNI route counts.
    pub fn check_consistency(&self, plan: &SplitPlan, hw: &[HwCluster]) -> Vec<Inconsistency> {
        let mut findings = Vec::new();
        for (vni, expected) in &self.intent {
            let cluster = plan.assignments[vni];
            for (device, _) in hw[cluster].devices.iter().enumerate() {
                let actual = hw[cluster].route_entries_for(device, *vni);
                if actual != *expected {
                    findings.push(Inconsistency {
                        cluster,
                        device,
                        vni: *vni,
                        expected: *expected,
                        actual,
                    });
                }
            }
        }
        findings.sort_by_key(|f| (f.cluster, f.device, f.vni));
        findings
    }

    /// The Fig 23 update-timeline model: per-cluster VXLAN-table entry
    /// counts over `days`, with slow linear growth and rare, large,
    /// pre-announced batches ("sudden increases are mainly ascribed to the
    /// arrival of top customers").
    pub fn update_timeline(
        seed: u64,
        clusters: usize,
        days: usize,
        samples_per_day: usize,
        base_entries: usize,
    ) -> Vec<Series> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(clusters);
        for c in 0..clusters {
            let mut series = Series::new(format!("cluster-{c}"));
            let mut entries = base_entries as f64 * rng.gen_range(0.6..1.1);
            // Regular growth: a fraction of a percent per day.
            let daily_growth = entries * rng.gen_range(0.001..0.004);
            // 1–3 sudden batches in the window.
            let batches: Vec<(usize, f64)> = (0..rng.gen_range(1..=3))
                .map(|_| {
                    (
                        rng.gen_range(0..days * samples_per_day),
                        entries * rng.gen_range(0.05..0.25),
                    )
                })
                .collect();
            for step in 0..days * samples_per_day {
                entries += daily_growth / samples_per_day as f64;
                for (at, size) in &batches {
                    if step == *at {
                        entries += size;
                    }
                }
                series.push(step as f64 / samples_per_day as f64, entries);
            }
            out.push(series);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_sim::topology::TopologyConfig;

    fn small_topology() -> Topology {
        Topology::generate(TopologyConfig::default())
    }

    #[test]
    fn plan_respects_capacity() {
        let t = small_topology();
        let cap = ClusterCapacity {
            max_routes: 400,
            max_vms: 2_000,
        };
        let plan = Controller::plan_split(&t, cap, 64).unwrap();
        assert!(plan.clusters_needed() > 1, "should need several clusters");
        for load in &plan.per_cluster {
            assert!(load.routes <= cap.max_routes);
            assert!(load.vms <= cap.max_vms);
        }
        // Every VNI with state is assigned.
        for (key, _) in &t.routes {
            assert!(plan.assignments.contains_key(&key.vni));
        }
        // Loads add up.
        let total_routes: usize = plan.per_cluster.iter().map(|l| l.routes).sum();
        assert_eq!(total_routes, t.routes.len());
    }

    #[test]
    fn plan_rejects_oversized_vni() {
        let t = small_topology();
        let top = t.top_customer();
        let top_vms = top.vm_range.1 - top.vm_range.0;
        let cap = ClusterCapacity {
            max_routes: 10_000,
            max_vms: top_vms - 1,
        };
        match Controller::plan_split(&t, cap, 1024) {
            Err(PlanError::VniTooLarge { vni }) => assert_eq!(vni, top.vni),
            other => panic!("expected VniTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn plan_respects_cluster_budget() {
        let t = small_topology();
        let cap = ClusterCapacity {
            max_routes: 400,
            max_vms: 2_000,
        };
        let err = Controller::plan_split(&t, cap, 1).unwrap_err();
        assert!(matches!(err, PlanError::NotEnoughClusters { .. }));
    }

    #[test]
    fn single_cluster_when_capacity_allows() {
        let t = small_topology();
        let plan = Controller::plan_split(&t, ClusterCapacity::default(), 8).unwrap();
        assert_eq!(plan.clusters_needed(), 1);
    }

    #[test]
    fn timeline_has_slow_growth_and_jumps() {
        let series = Controller::update_timeline(9, 4, 30, 4, 50_000);
        assert_eq!(series.len(), 4);
        for s in &series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(last > first, "{}: entries must grow", s.label);
            // There must be at least one visible jump: a step larger than
            // 20x the median step.
            let mut steps: Vec<f64> = s.points.windows(2).map(|w| w[1].1 - w[0].1).collect();
            steps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = steps[steps.len() / 2];
            let max = *steps.last().unwrap();
            assert!(max > 20.0 * median, "{}: no sudden batch visible", s.label);
        }
    }
}
