//! The central controller.
//!
//! Responsibilities (§4.3, §6.1):
//!
//! - **Split planning** — horizontal table splitting by VNI: "each XGW-H
//!   stores all the forwarding tables but only a portion of entries from
//!   each table ... we only need to insert new table entries into one
//!   cluster or allocate a new cluster if the original cluster is out of
//!   memory",
//! - **Installation** — pushing each VNI's routes and VM mappings to its
//!   cluster (every device) and the full region state to the XGW-x86
//!   fallback cluster,
//! - **Consistency checking** — "table entry inconsistency between the
//!   controller and the gateways may occur during table population ...
//!   periodic consistency checks are needed",
//! - **Update timeline** — the Fig 23 model: slow regular growth plus
//!   sudden announced batches from top customers.

use std::collections::HashMap;

use sailfish_util::rand::rngs::StdRng;
use sailfish_util::rand::{Rng, SeedableRng};

use sailfish_net::Vni;
use sailfish_sim::metrics::Series;
use sailfish_sim::topology::Topology;

use crate::cluster::{HwCluster, SwCluster};
use crate::lb::VniDirectory;

/// Per-cluster capacity limits (entries a single XGW-H can hold after the
/// §4.4 compression).
#[derive(Debug, Clone, Copy)]
pub struct ClusterCapacity {
    /// Maximum route entries.
    pub max_routes: usize,
    /// Maximum VM mappings.
    pub max_vms: usize,
}

impl Default for ClusterCapacity {
    fn default() -> Self {
        // The DESIGN.md §3 calibration: one XGW-H comfortably holds ~229k
        // routes and ~459k VMs with headroom (Table 4 shows ~69%/32%).
        ClusterCapacity {
            max_routes: 240_000,
            max_vms: 480_000,
        }
    }
}

/// Why planning failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// One VNI alone exceeds a cluster's capacity — "the VPC is the
    /// smallest split granularity, however, some VPCs (e.g., top
    /// customers) contain millions of entries that challenge the capacity
    /// of a single cluster" (§4.4).
    VniTooLarge {
        /// The offending VPC.
        vni: Vni,
    },
    /// More clusters would be needed than allowed.
    NotEnoughClusters {
        /// Clusters required by the plan.
        needed: usize,
        /// Clusters available.
        available: usize,
    },
}

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlanError::VniTooLarge { vni } => {
                write!(f, "{vni} exceeds single-cluster capacity")
            }
            PlanError::NotEnoughClusters { needed, available } => {
                write!(
                    f,
                    "plan needs {needed} clusters, only {available} available"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Load assigned to one cluster by a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterLoad {
    /// Route entries.
    pub routes: usize,
    /// VM mappings.
    pub vms: usize,
}

/// A VNI→cluster assignment.
#[derive(Debug, Clone)]
pub struct SplitPlan {
    /// Assignment of each VNI.
    pub assignments: HashMap<Vni, usize>,
    /// Load per cluster.
    pub per_cluster: Vec<ClusterLoad>,
}

impl SplitPlan {
    /// Number of clusters the plan uses.
    pub fn clusters_needed(&self) -> usize {
        self.per_cluster.len()
    }
}

/// An inconsistency found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistency {
    /// The cluster where it was found.
    pub cluster: usize,
    /// The device within the cluster.
    pub device: usize,
    /// The affected VNI.
    pub vni: Vni,
    /// Entries the controller believes are installed.
    pub expected: usize,
    /// Entries actually present.
    pub actual: usize,
}

/// The central controller.
#[derive(Debug, Default)]
pub struct Controller {
    /// Intended per-VNI route counts, recorded at install time.
    intent: HashMap<Vni, usize>,
}

impl Controller {
    /// Creates a controller with no recorded intent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans the horizontal split: first-fit decreasing over per-VNI
    /// entry weights, opening new clusters as needed (up to
    /// `max_clusters`).
    ///
    /// Peered VPCs are planned as one indivisible group: a packet for
    /// VNI A resolving to peer VNI B completes both lookups on the same
    /// device, so the controller must co-locate peers (otherwise
    /// cross-VPC traffic would fall back to software).
    pub fn plan_split(
        topology: &Topology,
        capacity: ClusterCapacity,
        max_clusters: usize,
    ) -> Result<SplitPlan, PlanError> {
        // Per-VNI weights.
        let mut routes_per_vni: HashMap<Vni, usize> = HashMap::new();
        for (key, _) in &topology.routes {
            *routes_per_vni.entry(key.vni).or_default() += 1;
        }
        let mut vms_per_vni: HashMap<Vni, usize> = HashMap::new();
        for vm in &topology.vms {
            *vms_per_vni.entry(vm.vni).or_default() += 1;
        }

        // Group peered VPCs: every VNI maps to a canonical group leader.
        let mut leader: HashMap<Vni, Vni> = HashMap::new();
        for vpc in &topology.vpcs {
            let mates = core::iter::once(vpc.vni).chain(vpc.peer);
            let min = mates.clone().min().expect("non-empty");
            for m in mates {
                let entry = leader.entry(m).or_insert(min);
                *entry = (*entry).min(min);
            }
        }
        let group_of = |vni: Vni| leader.get(&vni).copied().unwrap_or(vni);

        // leader -> (member VNIs, route weight, VM weight).
        type Group = (Vec<Vni>, usize, usize);
        let mut groups: HashMap<Vni, Group> = HashMap::new();
        let all_vnis: std::collections::BTreeSet<Vni> = routes_per_vni
            .keys()
            .chain(vms_per_vni.keys())
            .copied()
            .collect();
        for vni in all_vnis {
            let g = groups.entry(group_of(vni)).or_default();
            g.0.push(vni);
            g.1 += routes_per_vni.get(&vni).copied().unwrap_or(0);
            g.2 += vms_per_vni.get(&vni).copied().unwrap_or(0);
        }
        let mut ordered: Vec<(Vni, Group)> = groups.into_iter().collect();
        // Decreasing by dominant load dimension; ties by leader for
        // determinism.
        ordered.sort_by_key(|(lead, (_, r, v))| (core::cmp::Reverse(r + v), *lead));

        let mut per_cluster: Vec<ClusterLoad> = Vec::new();
        let mut assignments = HashMap::new();
        for (lead, (members, routes, vms)) in ordered {
            if routes > capacity.max_routes || vms > capacity.max_vms {
                return Err(PlanError::VniTooLarge { vni: lead });
            }
            let slot = per_cluster.iter().position(|load| {
                load.routes + routes <= capacity.max_routes && load.vms + vms <= capacity.max_vms
            });
            let idx = match slot {
                Some(idx) => idx,
                None => {
                    per_cluster.push(ClusterLoad::default());
                    per_cluster.len() - 1
                }
            };
            per_cluster[idx].routes += routes;
            per_cluster[idx].vms += vms;
            for vni in members {
                assignments.insert(vni, idx);
            }
        }
        if per_cluster.len() > max_clusters {
            return Err(PlanError::NotEnoughClusters {
                needed: per_cluster.len(),
                available: max_clusters,
            });
        }
        Ok(SplitPlan {
            assignments,
            per_cluster,
        })
    }

    /// Installs a planned topology: per-VNI state to its hardware cluster,
    /// the full state to the software cluster, and the VNI directory for
    /// the load balancer. Records intent for later consistency checks.
    pub fn install(
        &mut self,
        topology: &Topology,
        plan: &SplitPlan,
        hw: &mut [HwCluster],
        sw: &mut SwCluster,
        directory: &mut VniDirectory,
    ) -> Result<(), sailfish_tables::Error> {
        assert!(
            hw.len() >= plan.clusters_needed(),
            "install requires {} clusters",
            plan.clusters_needed()
        );
        for (key, target) in &topology.routes {
            let cluster = plan.assignments[&key.vni];
            hw[cluster].install_route(*key, *target)?;
            sw.install_route(*key, *target);
            *self.intent.entry(key.vni).or_default() += 1;
        }
        for vm in &topology.vms {
            let cluster = plan.assignments[&vm.vni];
            hw[cluster].install_vm(vm.vni, vm.ip, vm.nc)?;
            sw.install_vm(vm.vni, vm.ip, vm.nc)?;
        }
        for (vni, cluster) in &plan.assignments {
            directory.assign(*vni, *cluster);
        }
        Ok(())
    }

    /// Periodic consistency check: compares recorded intent against every
    /// device's actual per-VNI route counts.
    pub fn check_consistency(&self, plan: &SplitPlan, hw: &[HwCluster]) -> Vec<Inconsistency> {
        let mut findings = Vec::new();
        for (vni, expected) in &self.intent {
            let cluster = plan.assignments[vni];
            for (device, _) in hw[cluster].devices.iter().enumerate() {
                let actual = hw[cluster].route_entries_for(device, *vni);
                if actual != *expected {
                    findings.push(Inconsistency {
                        cluster,
                        device,
                        vni: *vni,
                        expected: *expected,
                        actual,
                    });
                }
            }
        }
        findings.sort_by_key(|f| (f.cluster, f.device, f.vni));
        findings
    }

    /// The Fig 23 update-timeline model: per-cluster VXLAN-table entry
    /// counts over `days`, with slow linear growth and rare, large,
    /// pre-announced batches ("sudden increases are mainly ascribed to the
    /// arrival of top customers").
    pub fn update_timeline(
        seed: u64,
        clusters: usize,
        days: usize,
        samples_per_day: usize,
        base_entries: usize,
    ) -> Vec<Series> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(clusters);
        for c in 0..clusters {
            let mut series = Series::new(format!("cluster-{c}"));
            let mut entries = base_entries as f64 * rng.gen_range(0.6..1.1);
            // Regular growth: a fraction of a percent per day.
            let daily_growth = entries * rng.gen_range(0.001..0.004);
            // 1–3 sudden batches in the window.
            let batches: Vec<(usize, f64)> = (0..rng.gen_range(1..=3))
                .map(|_| {
                    (
                        rng.gen_range(0..days * samples_per_day),
                        entries * rng.gen_range(0.05..0.25),
                    )
                })
                .collect();
            for step in 0..days * samples_per_day {
                entries += daily_growth / samples_per_day as f64;
                for (at, size) in &batches {
                    if step == *at {
                        entries += size;
                    }
                }
                series.push(step as f64 / samples_per_day as f64, entries);
            }
            out.push(series);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_sim::topology::TopologyConfig;

    fn small_topology() -> Topology {
        Topology::generate(TopologyConfig::default())
    }

    #[test]
    fn plan_respects_capacity() {
        let t = small_topology();
        let cap = ClusterCapacity {
            max_routes: 400,
            max_vms: 2_000,
        };
        let plan = Controller::plan_split(&t, cap, 64).unwrap();
        assert!(plan.clusters_needed() > 1, "should need several clusters");
        for load in &plan.per_cluster {
            assert!(load.routes <= cap.max_routes);
            assert!(load.vms <= cap.max_vms);
        }
        // Every VNI with state is assigned.
        for (key, _) in &t.routes {
            assert!(plan.assignments.contains_key(&key.vni));
        }
        // Loads add up.
        let total_routes: usize = plan.per_cluster.iter().map(|l| l.routes).sum();
        assert_eq!(total_routes, t.routes.len());
    }

    #[test]
    fn plan_rejects_oversized_vni() {
        let t = small_topology();
        let top = t.top_customer();
        let top_vms = top.vm_range.1 - top.vm_range.0;
        let cap = ClusterCapacity {
            max_routes: 10_000,
            max_vms: top_vms - 1,
        };
        match Controller::plan_split(&t, cap, 1024) {
            Err(PlanError::VniTooLarge { vni }) => assert_eq!(vni, top.vni),
            other => panic!("expected VniTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn plan_respects_cluster_budget() {
        let t = small_topology();
        let cap = ClusterCapacity {
            max_routes: 400,
            max_vms: 2_000,
        };
        let err = Controller::plan_split(&t, cap, 1).unwrap_err();
        assert!(matches!(err, PlanError::NotEnoughClusters { .. }));
    }

    #[test]
    fn single_cluster_when_capacity_allows() {
        let t = small_topology();
        let plan = Controller::plan_split(&t, ClusterCapacity::default(), 8).unwrap();
        assert_eq!(plan.clusters_needed(), 1);
    }

    #[test]
    fn timeline_has_slow_growth_and_jumps() {
        let series = Controller::update_timeline(9, 4, 30, 4, 50_000);
        assert_eq!(series.len(), 4);
        for s in &series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(last > first, "{}: entries must grow", s.label);
            // There must be at least one visible jump: a step larger than
            // 20x the median step.
            let mut steps: Vec<f64> = s.points.windows(2).map(|w| w[1].1 - w[0].1).collect();
            steps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = steps[steps.len() / 2];
            let max = *steps.last().unwrap();
            assert!(max > 20.0 * median, "{}: no sudden batch visible", s.label);
        }
    }
}
