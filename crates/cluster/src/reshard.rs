//! Elastic re-sharding: live VNI migration between clusters.
//!
//! The split computed by [`Controller::plan_split`] is not forever —
//! festival scale-ups, device retirement and load imbalance all force the
//! VNI→cluster split to change while traffic is in flight. This module
//! plans the *minimal* set of VNI moves between two splits
//! ([`ReshardPlan`]) and drives each move through a typed
//! make-before-break state machine ([`MoveMachine`]):
//!
//! ```text
//!   Planned ──announce──▶ Announced ──enter_dual──▶ Dual ──commit──▶ Committed ──drain──▶ Drained
//!                │                          │
//!                └────────rollback──────────┴──▶ RolledBack
//! ```
//!
//! - **Announce** — the destination cluster (and its 1:1 backup) stages
//!   and verifies the moving VNIs' tables through the same two-phase
//!   push discipline as [`Controller::install_with`]: static
//!   `sailfish-verify` gate first, then push → consistency-check →
//!   bounded retry with rollback. Traffic still flows to the old owner.
//! - **Dual** — both owners hold the range; the directory hashes each
//!   flow to one of them ([`crate::lb::pick_owner`]). No packet can
//!   black-hole: whichever owner it lands on has the tables.
//! - **Commit** — one atomic directory step retargets the VNIs (and the
//!   split plan, so consistency checks follow the new owner).
//! - **Drain** — the source (and its backup) frees SRAM/TCAM.
//!
//! Rollback is possible from every pre-commit state and leaves the
//! region exactly as before the move began.

use std::collections::{BTreeSet, HashMap};

use sailfish_net::Vni;
use sailfish_sim::faults::VirtualClock;
use sailfish_sim::topology::Topology;
use sailfish_tables::types::{NcAddr, RouteTarget, VxlanRouteKey};

use crate::cluster::HwCluster;
#[allow(unused_imports)] // referenced by intra-doc links
use crate::controller::Controller;
use crate::controller::{
    ClusterCapacity, InstallError, InstallInjector, InstallPolicy, InstallReport, SplitPlan,
};
use crate::region::Region;

/// Phase of one make-before-break migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MovePhase {
    /// Planned; nothing touched yet.
    Planned,
    /// Destination (and backup) verified and holding the tables.
    Announced,
    /// Both owners serve the range.
    Dual,
    /// Directory retargeted; destination is sole owner.
    Committed,
    /// Source freed its copy; migration complete.
    Drained,
    /// Aborted from a pre-commit phase; region as before the move.
    RolledBack,
}

impl MovePhase {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            MovePhase::Planned => "planned",
            MovePhase::Announced => "announced",
            MovePhase::Dual => "dual",
            MovePhase::Committed => "committed",
            MovePhase::Drained => "drained",
            MovePhase::RolledBack => "rolled_back",
        }
    }
}

/// Why a re-shard step failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReshardError {
    /// The two splits disagree on which VNIs exist or break a peer
    /// group apart (peers must stay co-located).
    SplitInconsistent {
        /// The offending VNI.
        vni: Vni,
    },
    /// Applying the moves would overload a cluster.
    CapacityExceeded {
        /// The overloaded cluster.
        cluster: usize,
        /// Route entries it would hold.
        routes: usize,
        /// VM mappings it would hold.
        vms: usize,
    },
    /// A move names a cluster the region does not have.
    UnknownCluster {
        /// The offending index.
        cluster: usize,
        /// Clusters that exist.
        clusters: usize,
    },
    /// The state machine was asked for a step its phase does not allow.
    InvalidTransition {
        /// The phase the machine is in.
        phase: MovePhase,
        /// The step that was requested.
        action: &'static str,
    },
    /// The plan-time world verifier refused the move before any push:
    /// some intermediate world of its make-before-break sequence would
    /// strand a VNI or overload a cluster (`SF-E007`+ codes).
    StaticallyRejected {
        /// The verifier's error diagnostics, `; `-joined.
        detail: String,
    },
    /// The two-phase push to the destination failed for good; the
    /// destination was left clean.
    Install(InstallError),
    /// After draining, the source still holds entries for a moved VNI.
    DrainIncomplete {
        /// The source cluster.
        cluster: usize,
        /// Entries still present.
        remaining: usize,
    },
}

impl core::fmt::Display for ReshardError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReshardError::SplitInconsistent { vni } => {
                write!(f, "splits are inconsistent at {vni}")
            }
            ReshardError::CapacityExceeded {
                cluster,
                routes,
                vms,
            } => write!(
                f,
                "cluster {cluster} would exceed capacity ({routes} routes, {vms} vms)"
            ),
            ReshardError::UnknownCluster { cluster, clusters } => {
                write!(f, "cluster {cluster} does not exist ({clusters} clusters)")
            }
            ReshardError::InvalidTransition { phase, action } => {
                write!(f, "cannot {action} from phase {}", phase.label())
            }
            ReshardError::StaticallyRejected { detail } => {
                write!(f, "statically rejected by the world verifier: {detail}")
            }
            ReshardError::Install(e) => write!(f, "destination push: {e}"),
            ReshardError::DrainIncomplete { cluster, remaining } => {
                write!(f, "source {cluster} still holds {remaining} entries")
            }
        }
    }
}

impl std::error::Error for ReshardError {}

impl From<InstallError> for ReshardError {
    fn from(e: InstallError) -> Self {
        ReshardError::Install(e)
    }
}

/// One planned migration: a peer group of VNIs moving between clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VniMove {
    /// Canonical group leader (smallest VNI of the peer group).
    pub leader: Vni,
    /// Every VNI moving together (peers stay co-located), sorted.
    pub vnis: Vec<Vni>,
    /// Current owner.
    pub from: usize,
    /// New owner.
    pub to: usize,
    /// Route entries the group carries.
    pub routes: usize,
    /// VM mappings the group carries.
    pub vms: usize,
}

/// Maps every VNI to its peer-group leader (peered VPCs are planned and
/// moved as one indivisible group — see [`Controller::plan_split`]).
fn peer_leaders(topology: &Topology) -> HashMap<Vni, Vni> {
    let mut leader: HashMap<Vni, Vni> = HashMap::new();
    for vpc in &topology.vpcs {
        let mates = core::iter::once(vpc.vni).chain(vpc.peer);
        let min = mates.clone().min().expect("non-empty");
        for m in mates {
            let entry = leader.entry(m).or_insert(min);
            *entry = (*entry).min(min);
        }
    }
    leader
}

/// The minimal set of moves turning `current` into `target`.
#[derive(Debug, Clone, Default)]
pub struct ReshardPlan {
    /// Moves, sorted by group leader (deterministic drive order).
    pub moves: Vec<VniMove>,
}

impl ReshardPlan {
    /// Plans the migration from `current` to `target`.
    ///
    /// Only peer groups whose assignment differs move; groups with any
    /// member in `pinned` (heavy VNIs an operator refuses to migrate)
    /// stay put. The achieved per-cluster loads — target loads corrected
    /// for pinned groups — are re-checked against `capacity`, so a plan
    /// that would overload a cluster is refused before anything runs.
    pub fn plan(
        topology: &Topology,
        current: &SplitPlan,
        target: &SplitPlan,
        capacity: ClusterCapacity,
        pinned: &BTreeSet<Vni>,
    ) -> Result<ReshardPlan, ReshardError> {
        // Both splits must cover exactly the same VNIs.
        for vni in current.assignments.keys() {
            if !target.assignments.contains_key(vni) {
                return Err(ReshardError::SplitInconsistent { vni: *vni });
            }
        }
        for vni in target.assignments.keys() {
            if !current.assignments.contains_key(vni) {
                return Err(ReshardError::SplitInconsistent { vni: *vni });
            }
        }

        // Per-VNI weights (route/VM entry counts).
        let mut routes_per_vni: HashMap<Vni, usize> = HashMap::new();
        for (key, _) in &topology.routes {
            *routes_per_vni.entry(key.vni).or_default() += 1;
        }
        let mut vms_per_vni: HashMap<Vni, usize> = HashMap::new();
        for vm in &topology.vms {
            *vms_per_vni.entry(vm.vni).or_default() += 1;
        }

        // Group members by leader, checking co-location in both splits.
        let leaders = peer_leaders(topology);
        let mut groups: HashMap<Vni, Vec<Vni>> = HashMap::new();
        for vni in current.assignments.keys() {
            let lead = leaders.get(vni).copied().unwrap_or(*vni);
            groups.entry(lead).or_default().push(*vni);
        }
        let mut ordered: Vec<(Vni, Vec<Vni>)> = groups.into_iter().collect();
        ordered.sort_by_key(|(lead, _)| *lead);

        let clusters = current.clusters_needed().max(target.clusters_needed());
        let mut achieved = current.per_cluster.clone();
        achieved.resize(clusters, Default::default());
        let mut moves = Vec::new();
        for (lead, mut members) in ordered {
            members.sort();
            let cur = current.assignments[&members[0]];
            let tgt = target.assignments[&members[0]];
            for vni in &members {
                if current.assignments[vni] != cur || target.assignments[vni] != tgt {
                    // A peer group split across clusters would strand
                    // cross-VPC traffic in software.
                    return Err(ReshardError::SplitInconsistent { vni: *vni });
                }
            }
            if cur == tgt || members.iter().any(|v| pinned.contains(v)) {
                continue;
            }
            let routes: usize = members
                .iter()
                .map(|v| routes_per_vni.get(v).copied().unwrap_or(0))
                .sum();
            let vms: usize = members
                .iter()
                .map(|v| vms_per_vni.get(v).copied().unwrap_or(0))
                .sum();
            let src = achieved.get_mut(cur).ok_or(ReshardError::UnknownCluster {
                cluster: cur,
                clusters,
            })?;
            src.routes = src.routes.saturating_sub(routes);
            src.vms = src.vms.saturating_sub(vms);
            let dst = achieved.get_mut(tgt).ok_or(ReshardError::UnknownCluster {
                cluster: tgt,
                clusters,
            })?;
            dst.routes += routes;
            dst.vms += vms;
            moves.push(VniMove {
                leader: lead,
                vnis: members,
                from: cur,
                to: tgt,
                routes,
                vms,
            });
        }
        for (cluster, load) in achieved.iter().enumerate() {
            if load.routes > capacity.max_routes || load.vms > capacity.max_vms {
                return Err(ReshardError::CapacityExceeded {
                    cluster,
                    routes: load.routes,
                    vms: load.vms,
                });
            }
        }
        Ok(ReshardPlan { moves })
    }

    /// Total VNIs moving.
    pub fn vnis_moving(&self) -> usize {
        self.moves.iter().map(|m| m.vnis.len()).sum()
    }
}

/// Drives one [`VniMove`] through the make-before-break phases.
#[derive(Debug, Clone)]
pub struct MoveMachine {
    /// The move being driven.
    pub mv: VniMove,
    /// Current phase.
    pub phase: MovePhase,
    routes: Vec<(VxlanRouteKey, RouteTarget)>,
    vms: Vec<(Vni, core::net::IpAddr, NcAddr)>,
    /// Per-VNI route counts the destination must end up holding (sorted).
    route_intent: Vec<(Vni, usize)>,
}

impl MoveMachine {
    /// Stages the concrete table entries for a move (pure planning; no
    /// device is touched).
    pub fn new(topology: &Topology, mv: VniMove) -> Self {
        let members: BTreeSet<Vni> = mv.vnis.iter().copied().collect();
        let routes: Vec<(VxlanRouteKey, RouteTarget)> = topology
            .routes
            .iter()
            .filter(|(key, _)| members.contains(&key.vni))
            .map(|(key, target)| (*key, *target))
            .collect();
        let vms: Vec<(Vni, core::net::IpAddr, NcAddr)> = topology
            .vms
            .iter()
            .filter(|vm| members.contains(&vm.vni))
            .map(|vm| (vm.vni, vm.ip, vm.nc))
            .collect();
        let mut intent: HashMap<Vni, usize> = HashMap::new();
        for (key, _) in &routes {
            *intent.entry(key.vni).or_default() += 1;
        }
        let mut route_intent: Vec<(Vni, usize)> = intent.into_iter().collect();
        route_intent.sort();
        MoveMachine {
            mv,
            phase: MovePhase::Planned,
            routes,
            vms,
            route_intent,
        }
    }

    fn expect_phase(&self, want: MovePhase, action: &'static str) -> Result<(), ReshardError> {
        if self.phase == want {
            Ok(())
        } else {
            Err(ReshardError::InvalidTransition {
                phase: self.phase,
                action,
            })
        }
    }

    /// Two-phase push of the staged entries onto one physical cluster,
    /// mirroring [`Controller::install_with`]'s retry discipline: verify
    /// per device after every push, roll back anything partial, back off
    /// exponentially in virtual time, give up after `max_attempts`.
    fn push_cluster(
        &self,
        hw: &mut HwCluster,
        cluster: usize,
        clock: &mut VirtualClock,
        policy: &InstallPolicy,
        injector: &mut InstallInjector<'_>,
    ) -> Result<InstallReport, ReshardError> {
        use sailfish_sim::faults::InstallFault;
        let base_vms: Vec<usize> = hw.devices.iter().map(|d| d.tables.vm_nc.len()).collect();
        let verify = |hw: &HwCluster| {
            hw.devices.iter().enumerate().all(|(device, dev)| {
                dev.tables.vm_nc.len() == base_vms[device] + self.vms.len()
                    && self
                        .route_intent
                        .iter()
                        .all(|(vni, expected)| hw.route_entries_for(device, *vni) == *expected)
            })
        };
        let apply = |hw: &mut HwCluster,
                     routes: &[(VxlanRouteKey, RouteTarget)],
                     vms: &[(Vni, core::net::IpAddr, NcAddr)]|
         -> Result<(), ReshardError> {
            for (key, target) in routes {
                hw.install_route(*key, *target)
                    .map_err(|error| InstallError::Table { cluster, error })?;
            }
            for (vni, ip, nc) in vms {
                hw.install_vm(*vni, *ip, *nc)
                    .map_err(|error| InstallError::Table { cluster, error })?;
            }
            Ok(())
        };
        let rollback = |hw: &mut HwCluster,
                        routes: &[(VxlanRouteKey, RouteTarget)],
                        vms: &[(Vni, core::net::IpAddr, NcAddr)]| {
            for (key, _) in routes {
                hw.remove_route(key);
            }
            for (vni, ip, _) in vms {
                hw.remove_vm(*vni, *ip);
            }
        };

        let mut report = InstallReport::default();
        let start_ns = clock.now_ns();
        let mut attempt = 0u32;
        loop {
            report.attempts += 1;
            match injector(cluster, attempt) {
                Some(InstallFault::Timeout) => {
                    clock.advance(policy.timeout_ns);
                }
                Some(InstallFault::Partial { fraction }) => {
                    let nr = ((self.routes.len() as f64) * fraction) as usize;
                    let nv = ((self.vms.len() as f64) * fraction) as usize;
                    apply(hw, &self.routes[..nr], &self.vms[..nv])?;
                    clock.advance(policy.push_ns_per_entry * (nr + nv) as u64);
                    if verify(hw) {
                        report.committed += 1;
                        break;
                    }
                    rollback(hw, &self.routes[..nr], &self.vms[..nv]);
                    report.rolled_back_entries += nr + nv;
                }
                None => {
                    apply(hw, &self.routes, &self.vms)?;
                    clock.advance(
                        policy.push_ns_per_entry * (self.routes.len() + self.vms.len()) as u64,
                    );
                    if verify(hw) {
                        report.committed += 1;
                        break;
                    }
                    rollback(hw, &self.routes, &self.vms);
                    report.rolled_back_entries += self.routes.len() + self.vms.len();
                }
            }
            report.retries += 1;
            attempt += 1;
            if attempt >= policy.max_attempts {
                return Err(ReshardError::Install(InstallError::RetriesExhausted {
                    cluster,
                    attempts: attempt,
                    last_fault: injector(cluster, attempt).unwrap_or(InstallFault::Timeout),
                }));
            }
            clock.advance(policy.backoff_ns(attempt - 1));
        }
        report.virtual_ns = clock.now_ns() - start_ns;
        Ok(report)
    }

    /// Removes the staged entries from one physical cluster.
    fn remove_from(&self, hw: &mut HwCluster) {
        for (key, _) in &self.routes {
            hw.remove_route(key);
        }
        for (vni, ip, _) in &self.vms {
            hw.remove_vm(*vni, *ip);
        }
    }

    /// **Announce**: the destination cluster (and its backup) stages,
    /// statically verifies and two-phase-pushes the moving tables.
    /// Traffic is untouched — the directory still points at the source.
    pub fn announce(
        &mut self,
        region: &mut Region,
        clock: &mut VirtualClock,
        policy: &InstallPolicy,
        injector: &mut InstallInjector<'_>,
    ) -> Result<InstallReport, ReshardError> {
        self.expect_phase(MovePhase::Planned, "announce")?;
        let clusters = region.plan.clusters_needed();
        for c in [self.mv.from, self.mv.to] {
            if c >= clusters || c >= region.hw.len() {
                return Err(ReshardError::UnknownCluster {
                    cluster: c,
                    clusters: clusters.min(region.hw.len()),
                });
            }
        }
        // Plan-time world gate: every intermediate world of this move's
        // make-before-break sequence must leave its VNIs covered and
        // every touched cluster within capacity. O(delta) — the live
        // base is covered by a trusted certificate.
        let world =
            crate::worldcheck::verify_reshard(region, core::slice::from_ref(&self.mv), "announce");
        if !world.is_clean() {
            return Err(ReshardError::StaticallyRejected {
                detail: world.error_detail(),
            });
        }

        // Static gate before any push: the destination's devices must
        // legally hold current + moving load.
        let config = sailfish_asic::TofinoConfig::tofino_64t();
        let total_routes = region.hw[self.mv.to].route_entries() + self.routes.len();
        let total_vms = region.hw[self.mv.to].vm_entries() + self.vms.len();
        let verdict = sailfish_xgw_h::layout::verify_device_load(&config, total_routes, total_vms)
            .map_err(|e| {
                ReshardError::Install(InstallError::LayoutRejected {
                    cluster: self.mv.to,
                    detail: e.to_string(),
                })
            })?;
        if !verdict.is_clean() {
            let detail = verdict
                .errors()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            return Err(ReshardError::Install(InstallError::LayoutRejected {
                cluster: self.mv.to,
                detail,
            }));
        }

        let mut report = self.push_cluster(
            &mut region.hw[self.mv.to],
            self.mv.to,
            clock,
            policy,
            injector,
        )?;
        if let Some(backup) = region.backup_of(self.mv.to) {
            match self.push_cluster(&mut region.hw[backup], backup, clock, policy, injector) {
                Ok(b) => {
                    report.attempts += b.attempts;
                    report.retries += b.retries;
                    report.rolled_back_entries += b.rolled_back_entries;
                    report.virtual_ns += b.virtual_ns;
                }
                Err(e) => {
                    // Make-before-break means *make* everywhere or
                    // nothing: a failed backup push unwinds the primary.
                    self.remove_from(&mut region.hw[self.mv.to]);
                    return Err(e);
                }
            }
        }
        self.phase = MovePhase::Announced;
        Ok(report)
    }

    /// **Dual**: both owners serve the range; flows hash to either.
    pub fn enter_dual(&mut self, region: &mut Region) -> Result<(), ReshardError> {
        self.expect_phase(MovePhase::Announced, "enter_dual")?;
        for vni in &self.mv.vnis {
            region.directory.begin_dual(*vni, self.mv.to);
        }
        self.phase = MovePhase::Dual;
        Ok(())
    }

    /// **Commit**: one atomic step retargets the directory and the split
    /// plan, making the destination the sole owner.
    pub fn commit(&mut self, region: &mut Region) -> Result<(), ReshardError> {
        self.expect_phase(MovePhase::Dual, "commit")?;
        for vni in &self.mv.vnis {
            region.directory.promote(*vni);
            region.plan.assignments.insert(*vni, self.mv.to);
        }
        if let Some(src) = region.plan.per_cluster.get_mut(self.mv.from) {
            src.routes = src.routes.saturating_sub(self.mv.routes);
            src.vms = src.vms.saturating_sub(self.mv.vms);
        }
        if let Some(dst) = region.plan.per_cluster.get_mut(self.mv.to) {
            dst.routes += self.mv.routes;
            dst.vms += self.mv.vms;
        }
        self.phase = MovePhase::Committed;
        Ok(())
    }

    /// **Drain**: the source cluster (and its backup) frees the moved
    /// entries' SRAM/TCAM, then verifies nothing is left behind.
    pub fn drain(&mut self, region: &mut Region) -> Result<(), ReshardError> {
        self.expect_phase(MovePhase::Committed, "drain")?;
        self.remove_from(&mut region.hw[self.mv.from]);
        if let Some(backup) = region.backup_of(self.mv.from) {
            self.remove_from(&mut region.hw[backup]);
        }
        let devices = region.hw[self.mv.from].devices.len();
        let remaining: usize = (0..devices)
            .flat_map(|d| self.mv.vnis.iter().map(move |vni| (d, *vni)))
            .map(|(d, vni)| region.hw[self.mv.from].route_entries_for(d, vni))
            .sum();
        if remaining > 0 {
            return Err(ReshardError::DrainIncomplete {
                cluster: self.mv.from,
                remaining,
            });
        }
        self.phase = MovePhase::Drained;
        Ok(())
    }

    /// Rolls back from any pre-commit phase: dual ownership (if entered)
    /// is aborted and the destination (and its backup) drops the staged
    /// tables. The region is exactly as before `announce`.
    pub fn rollback(&mut self, region: &mut Region) -> Result<(), ReshardError> {
        match self.phase {
            MovePhase::Announced | MovePhase::Dual => {}
            _ => {
                return Err(ReshardError::InvalidTransition {
                    phase: self.phase,
                    action: "rollback",
                })
            }
        }
        if self.phase == MovePhase::Dual {
            for vni in &self.mv.vnis {
                region.directory.abort_dual(*vni);
            }
        }
        self.remove_from(&mut region.hw[self.mv.to]);
        if let Some(backup) = region.backup_of(self.mv.to) {
            self.remove_from(&mut region.hw[backup]);
        }
        self.phase = MovePhase::RolledBack;
        Ok(())
    }
}

/// Outcome of driving one move.
#[derive(Debug, Clone)]
pub struct MoveOutcome {
    /// The move's group leader.
    pub leader: Vni,
    /// Source cluster.
    pub from: usize,
    /// Destination cluster.
    pub to: usize,
    /// Final phase reached (`Drained` on success, `RolledBack` on a
    /// clean abort).
    pub phase: MovePhase,
    /// Push attempts made during `Announce`.
    pub attempts: u32,
    /// The error that forced a rollback, if any.
    pub error: Option<String>,
}

/// Report of a full re-shard run.
#[derive(Debug, Clone, Default)]
pub struct ReshardReport {
    /// Per-move outcomes, in drive order.
    pub outcomes: Vec<MoveOutcome>,
    /// Virtual time consumed by the whole run.
    pub virtual_ns: u64,
    /// When the plan-time world verifier rejected the whole plan before
    /// any move was driven: its error diagnostics. `None` on a plan that
    /// verified clean and ran.
    pub static_detail: Option<String>,
}

impl ReshardReport {
    /// Moves that completed (drained).
    pub fn committed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.phase == MovePhase::Drained)
            .count()
    }

    /// Moves that rolled back cleanly.
    pub fn rolled_back(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.phase == MovePhase::RolledBack)
            .count()
    }

    /// Directory epochs (phase transitions that retarget traffic: Dual
    /// entry + Commit per completed move, one abort per rollback) per
    /// virtual second.
    pub fn epochs_per_sec(&self) -> f64 {
        let epochs = (self.committed() * 2 + self.rolled_back()) as f64;
        if self.virtual_ns == 0 {
            0.0
        } else {
            epochs / (self.virtual_ns as f64 / 1e9)
        }
    }
}

/// Drives every move of a plan through the full make-before-break
/// sequence. A move whose `announce` push exhausts its retries is rolled
/// back (the destination is left clean) and the next move proceeds —
/// one stuck migration must not wedge the whole re-shard.
pub fn run_plan(
    region: &mut Region,
    topology: &Topology,
    plan: &ReshardPlan,
    clock: &mut VirtualClock,
    policy: &InstallPolicy,
    injector: &mut InstallInjector<'_>,
) -> ReshardReport {
    let start_ns = clock.now_ns();
    let mut report = ReshardReport::default();
    // Whole-plan static verification up front: every intermediate world
    // of the full move sequence is proved black-hole-free and within
    // capacity before the first announce. A rejected plan drives
    // nothing — the outcomes stay `Planned` with the verifier's verdict.
    let world = crate::worldcheck::verify_reshard(region, &plan.moves, "reshard-plan");
    if !world.is_clean() {
        let detail = world.error_detail();
        for mv in &plan.moves {
            report.outcomes.push(MoveOutcome {
                leader: mv.leader,
                from: mv.from,
                to: mv.to,
                phase: MovePhase::Planned,
                attempts: 0,
                error: Some(format!("statically rejected: {detail}")),
            });
        }
        report.static_detail = Some(detail);
        return report;
    }
    for mv in &plan.moves {
        let mut machine = MoveMachine::new(topology, mv.clone());
        let mut outcome = MoveOutcome {
            leader: mv.leader,
            from: mv.from,
            to: mv.to,
            phase: MovePhase::Planned,
            attempts: 0,
            error: None,
        };
        match machine.announce(region, clock, policy, injector) {
            Ok(push) => {
                outcome.attempts = push.attempts;
                machine
                    .enter_dual(region)
                    .and_then(|()| machine.commit(region))
                    .and_then(|()| machine.drain(region))
                    .unwrap_or_else(|e| outcome.error = Some(e.to_string()));
            }
            Err(e) => {
                // Announce left the destination clean; nothing to unwind.
                machine.phase = MovePhase::RolledBack;
                outcome.error = Some(e.to_string());
            }
        }
        outcome.phase = machine.phase;
        report.outcomes.push(outcome);
    }
    report.virtual_ns = clock.now_ns() - start_ns;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{FlowPath, RegionConfig};
    use sailfish_sim::faults::InstallFault;
    use sailfish_sim::topology::TopologyConfig;
    use sailfish_sim::workload::{generate_flows, WorkloadConfig};

    fn tight() -> ClusterCapacity {
        ClusterCapacity {
            max_routes: 600,
            max_vms: 3_000,
        }
    }

    fn build() -> (Topology, Region) {
        let topology = Topology::generate(TopologyConfig::default());
        let region = Region::build(
            &topology,
            RegionConfig {
                hw_clusters: 4,
                spare_clusters: 1,
                devices_per_cluster: 2,
                sw_nodes: 2,
                capacity: tight(),
                ..RegionConfig::default()
            },
        )
        .unwrap();
        (topology, region)
    }

    /// A target split that moves one group from `from` onto the spare.
    fn single_move_plan(topology: &Topology, region: &Region) -> ReshardPlan {
        let current = &region.plan;
        let spare = current.clusters_needed() - 1;
        let mut target = current.clone();
        // Move the first (sorted) group owned by cluster 0 to the spare.
        let leaders = peer_leaders(topology);
        let mut by_leader: HashMap<Vni, Vec<Vni>> = HashMap::new();
        for vni in current.assignments.keys() {
            let lead = leaders.get(vni).copied().unwrap_or(*vni);
            by_leader.entry(lead).or_default().push(*vni);
        }
        let mut on_zero: Vec<Vni> = by_leader
            .iter()
            .filter(|(_, members)| current.assignments[&members[0]] == 0)
            .map(|(lead, _)| *lead)
            .collect();
        on_zero.sort();
        let lead = on_zero[0];
        for vni in &by_leader[&lead] {
            target.assignments.insert(*vni, spare);
        }
        ReshardPlan::plan(topology, current, &target, tight(), &BTreeSet::new()).unwrap()
    }

    #[test]
    fn plan_moves_only_the_differing_groups() {
        let (topology, region) = build();
        let plan = single_move_plan(&topology, &region);
        assert_eq!(plan.moves.len(), 1);
        let spare = region.plan.clusters_needed() - 1;
        assert_eq!(plan.moves[0].from, 0);
        assert_eq!(plan.moves[0].to, spare);
        assert!(plan.moves[0].routes > 0);

        // Identical splits plan zero moves.
        let noop = ReshardPlan::plan(
            &topology,
            &region.plan,
            &region.plan,
            tight(),
            &BTreeSet::new(),
        )
        .unwrap();
        assert!(noop.moves.is_empty());

        // Pinning any member of the group suppresses its move.
        let pinned: BTreeSet<Vni> = plan.moves[0].vnis.iter().copied().take(1).collect();
        let mut target = region.plan.clone();
        for vni in &plan.moves[0].vnis {
            target.assignments.insert(*vni, spare);
        }
        let suppressed =
            ReshardPlan::plan(&topology, &region.plan, &target, tight(), &pinned).unwrap();
        assert!(suppressed.moves.is_empty());
    }

    #[test]
    fn full_sequence_commits_and_drains() {
        let (topology, mut region) = build();
        let flows = generate_flows(
            &topology,
            &WorkloadConfig {
                flows: 1_000,
                total_gbps: 500.0,
                ..WorkloadConfig::default()
            },
        );
        let plan = single_move_plan(&topology, &region);
        let mv = plan.moves[0].clone();
        let before = region.offer(&flows, 1.0);
        assert_eq!(before.unrouted_pps, 0.0);

        let mut machine = MoveMachine::new(&topology, mv.clone());
        let mut clock = VirtualClock::new();
        let policy = InstallPolicy::default();

        machine
            .announce(&mut region, &mut clock, &policy, &mut |_, _| None)
            .unwrap();
        // Announce: traffic still entirely on the old owner.
        for f in &flows {
            if mv.vnis.contains(&f.vni) {
                assert!(matches!(
                    region.classify(f),
                    FlowPath::Hw { cluster, .. } if cluster == mv.from
                ));
            }
        }

        machine.enter_dual(&mut region).unwrap();
        // Dual: no packet black-holes; flows land on either owner.
        let mut on = [0usize; 2];
        for f in &flows {
            if mv.vnis.contains(&f.vni) {
                match region.classify(f) {
                    FlowPath::Hw { cluster, .. } if cluster == mv.from => on[0] += 1,
                    FlowPath::Hw { cluster, .. } if cluster == mv.to => on[1] += 1,
                    FlowPath::Punt { cluster, .. } if cluster == mv.from || cluster == mv.to => {}
                    other => panic!("dual-phase flow took {other:?}"),
                }
            }
        }
        let dual_report = region.offer(&flows, 1.0);
        assert_eq!(dual_report.unrouted_pps, 0.0);
        assert_eq!(dual_report.fallback_pps, 0.0);

        machine.commit(&mut region).unwrap();
        assert_eq!(region.directory.dual_len(), 0);
        for vni in &mv.vnis {
            assert_eq!(region.directory.cluster_for(*vni), Some(mv.to));
            assert_eq!(region.plan.assignments[vni], mv.to);
        }

        machine.drain(&mut region).unwrap();
        assert_eq!(machine.phase, MovePhase::Drained);
        // Source freed its SRAM/TCAM; consistency check follows the plan.
        for d in 0..region.hw[mv.from].devices.len() {
            for vni in &mv.vnis {
                assert_eq!(region.hw[mv.from].route_entries_for(d, *vni), 0);
            }
        }
        let findings = region
            .controller
            .check_consistency(&region.plan, &region.hw);
        assert!(findings.is_empty(), "{findings:?}");
        let after = region.offer(&flows, 1.0);
        assert_eq!(after.unrouted_pps, 0.0);
        assert_eq!(after.fallback_pps, 0.0);
        assert!((after.offered_pps - before.offered_pps).abs() < 1.0);
    }

    #[test]
    fn rollback_from_each_precommit_phase_restores_the_region() {
        let (topology, mut region) = build();
        let plan = single_move_plan(&topology, &region);
        let mv = plan.moves[0].clone();
        let policy = InstallPolicy::default();
        let baseline_routes = region.hw[mv.to].route_entries();
        let baseline_snapshot = region.directory.snapshot();

        // Rollback from Announced.
        let mut clock = VirtualClock::new();
        let mut machine = MoveMachine::new(&topology, mv.clone());
        machine
            .announce(&mut region, &mut clock, &policy, &mut |_, _| None)
            .unwrap();
        machine.rollback(&mut region).unwrap();
        assert_eq!(machine.phase, MovePhase::RolledBack);
        assert_eq!(region.hw[mv.to].route_entries(), baseline_routes);
        assert_eq!(region.directory.snapshot(), baseline_snapshot);

        // Rollback from Dual.
        let mut machine = MoveMachine::new(&topology, mv.clone());
        machine
            .announce(&mut region, &mut clock, &policy, &mut |_, _| None)
            .unwrap();
        machine.enter_dual(&mut region).unwrap();
        assert!(region.directory.dual_len() > 0);
        machine.rollback(&mut region).unwrap();
        assert_eq!(region.directory.dual_len(), 0);
        assert_eq!(region.hw[mv.to].route_entries(), baseline_routes);
        assert_eq!(region.directory.snapshot(), baseline_snapshot);

        // Rollback from Committed is refused: make-before-break has no
        // undo once the directory is retargeted.
        let mut machine = MoveMachine::new(&topology, mv.clone());
        machine
            .announce(&mut region, &mut clock, &policy, &mut |_, _| None)
            .unwrap();
        machine.enter_dual(&mut region).unwrap();
        machine.commit(&mut region).unwrap();
        assert!(matches!(
            machine.rollback(&mut region),
            Err(ReshardError::InvalidTransition { .. })
        ));
        machine.drain(&mut region).unwrap();
    }

    #[test]
    fn exhausted_announce_leaves_destination_clean() {
        let (topology, mut region) = build();
        let plan = single_move_plan(&topology, &region);
        let mv = plan.moves[0].clone();
        let policy = InstallPolicy {
            max_attempts: 2,
            ..InstallPolicy::default()
        };
        let baseline = region.hw[mv.to].route_entries();
        let mut clock = VirtualClock::new();
        let report = run_plan(
            &mut region,
            &topology,
            &plan,
            &mut clock,
            &policy,
            &mut |_, _| Some(InstallFault::Timeout),
        );
        assert_eq!(report.committed(), 0);
        assert_eq!(report.rolled_back(), 1);
        assert!(report.outcomes[0].error.is_some());
        assert_eq!(region.hw[mv.to].route_entries(), baseline);
        // Directory untouched: traffic still flows to the old owner.
        for vni in &mv.vnis {
            assert_eq!(region.directory.cluster_for(*vni), Some(mv.from));
        }
    }

    #[test]
    fn run_plan_survives_partial_faults_and_commits() {
        let (topology, mut region) = build();
        let plan = single_move_plan(&topology, &region);
        let mut clock = VirtualClock::new();
        let mut first = true;
        let report = run_plan(
            &mut region,
            &topology,
            &plan,
            &mut clock,
            &InstallPolicy::default(),
            &mut |_, _| {
                if first {
                    first = false;
                    Some(InstallFault::Partial { fraction: 0.5 })
                } else {
                    None
                }
            },
        );
        assert_eq!(report.committed(), plan.moves.len());
        assert_eq!(report.rolled_back(), 0);
        assert!(report.outcomes[0].attempts >= 2, "partial push retried");
        assert!(report.epochs_per_sec() > 0.0);
        let findings = region
            .controller
            .check_consistency(&region.plan, &region.hw);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
