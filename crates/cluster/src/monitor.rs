//! Runtime monitoring and water levels (§6.1, "Cluster management").
//!
//! "During the runtime of gateway clusters, we periodically monitor the
//! table water level, traffic rate and packet loss rate... we will
//! reserve a safe water level for tables ... When the water level is
//! close to the safe threshold, we will temporarily close the sale of
//! the cluster's resources... If the packet loss rate is close to the
//! safe threshold, the controller will be alerted... At online shopping
//! festivals ... we will deliberately raise the safe water level to
//! further increase the gateway's allowable throughput by reducing the
//! number of alerts."

use crate::controller::ClusterCapacity;
use crate::region::{Region, RegionReport};

/// Alert thresholds, as fractions of capacity.
#[derive(Debug, Clone, Copy)]
pub struct WaterLevels {
    /// Table occupancy (routes or VMs) above which sales close.
    pub table_level: f64,
    /// Device utilization above which the controller is alerted.
    pub traffic_level: f64,
    /// Loss ratio above which the controller is alerted.
    pub loss_level: f64,
    /// Share of offered traffic on the degraded XGW-x86 fallback path
    /// above which the controller is alerted (it means hardware is not
    /// serving part of the region).
    pub fallback_level: f64,
    /// Share of offered traffic spilled to the DPU middle tier above
    /// which the controller is alerted. Higher than `fallback_level`:
    /// the DPU rung is a designed-for overflow path, so a modest spill
    /// share is business as usual, while *any* sustained x86 share means
    /// the ladder is two rungs down.
    pub dpu_share_level: f64,
    /// SNAT external port-pool occupancy above which the controller is
    /// alerted. Strictly below 1.0 so the alert always fires *before*
    /// the pool exhausts and connection opens start dropping.
    pub snat_pool_level: f64,
}

impl Default for WaterLevels {
    fn default() -> Self {
        WaterLevels {
            table_level: 0.85,
            traffic_level: 0.5, // "50% water level" in §2.3's sizing math
            loss_level: 1e-8,
            fallback_level: 0.01,
            dpu_share_level: 0.05,
            snat_pool_level: 0.9,
        }
    }
}

impl WaterLevels {
    /// The festival configuration: "deliberately raise the safe water
    /// level" so fewer alerts fire while headroom is consumed on purpose.
    pub fn festival(self) -> Self {
        WaterLevels {
            traffic_level: (self.traffic_level * 1.6).min(0.95),
            loss_level: self.loss_level * 10.0,
            ..self
        }
    }
}

/// A monitoring alert.
#[derive(Debug, Clone, PartialEq)]
pub enum Alert {
    /// A cluster's table occupancy crossed the water level: stop selling.
    TableWaterLevel {
        /// The cluster.
        cluster: usize,
        /// Occupancy fraction that triggered the alert.
        occupancy: f64,
    },
    /// A device's utilization crossed the traffic water level.
    TrafficWaterLevel {
        /// The cluster.
        cluster: usize,
        /// The device.
        device: usize,
        /// Its utilization.
        utilization: f64,
    },
    /// Region loss crossed the loss threshold.
    LossWaterLevel {
        /// Measured loss ratio.
        loss_ratio: f64,
    },
    /// Traffic is degrading to the XGW-x86 fallback path — some part of
    /// the region has no serving hardware.
    FallbackShare {
        /// Share of offered traffic on the fallback path.
        share: f64,
    },
    /// Traffic is spilling to the DPU middle tier beyond its designed
    /// overflow share — one rung down the degradation ladder. Fires at a
    /// higher threshold than [`Alert::FallbackShare`] because the DPU
    /// rung is an engineered overflow path, not an outage.
    DpuShare {
        /// Share of offered traffic spilled to the DPU tier.
        share: f64,
    },
    /// The SNAT tier's external port pool is filling up: once it
    /// exhausts, new connection opens drop. Analogous to
    /// [`Alert::FallbackShare`], but for connection capacity instead of
    /// packet capacity.
    PortPoolExhaustion {
        /// VNI of the tenant holding the most port blocks (the
        /// remediation target — quota it or widen the pool).
        tenant: u32,
        /// Leased-block fraction of the whole pool.
        occupancy: f64,
    },
}

/// Evaluates the alert set for one measurement interval.
pub fn evaluate(
    region: &Region,
    report: &RegionReport,
    capacity: ClusterCapacity,
    levels: WaterLevels,
) -> Vec<Alert> {
    let mut alerts = Vec::new();

    // Table water levels per primary cluster.
    for (cluster, load) in region.plan.per_cluster.iter().enumerate() {
        let occupancy = (load.routes as f64 / capacity.max_routes as f64)
            .max(load.vms as f64 / capacity.max_vms as f64);
        if occupancy >= levels.table_level {
            alerts.push(Alert::TableWaterLevel { cluster, occupancy });
        }
    }

    // Traffic water levels per device.
    for (cluster, devices) in report.device_util.iter().enumerate() {
        for (device, util) in devices.iter().enumerate() {
            if *util >= levels.traffic_level {
                alerts.push(Alert::TrafficWaterLevel {
                    cluster,
                    device,
                    utilization: *util,
                });
            }
        }
    }

    // Loss water level for the region.
    let loss = report.loss_ratio();
    if loss >= levels.loss_level {
        alerts.push(Alert::LossWaterLevel { loss_ratio: loss });
    }

    // Degradation share: hardware is failing to serve part of the region.
    let share = report.fallback_share();
    if share >= levels.fallback_level {
        alerts.push(Alert::FallbackShare { share });
    }

    alerts
}

/// Evaluates the per-tier share alerts for one measurement interval —
/// the hierarchical generalization of the single `FallbackShare` check.
/// Plain data in (each software rung's share of offered traffic), alerts
/// out, like [`evaluate_snat_pool`]: the three-tier ladder lives in the
/// dataplane/bench layers, which feed this without a [`Region`] in hand.
///
/// Ordering contract the chaos harness asserts: each tier's share alert
/// fires at a *lower* pressure than the point where that tier's circuit
/// breaker opens, so the operator always hears about a degradation
/// strictly before the ladder starts failing fast.
pub fn evaluate_tier_shares(dpu_share: f64, x86_share: f64, levels: WaterLevels) -> Vec<Alert> {
    let mut alerts = Vec::new();
    if dpu_share >= levels.dpu_share_level {
        alerts.push(Alert::DpuShare { share: dpu_share });
    }
    if x86_share >= levels.fallback_level {
        alerts.push(Alert::FallbackShare { share: x86_share });
    }
    alerts
}

/// Evaluates the SNAT port-pool water level for one measurement
/// interval. Plain data in (occupancy plus the heaviest tenant), alert
/// out — the SNAT tier lives in the dataplane/bench layers, which feed
/// this without a [`Region`] in hand.
pub fn evaluate_snat_pool(occupancy: f64, top_tenant: u32, levels: WaterLevels) -> Option<Alert> {
    (occupancy >= levels.snat_pool_level).then_some(Alert::PortPoolExhaustion {
        tenant: top_tenant,
        occupancy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionConfig;
    use sailfish_sim::topology::{Topology, TopologyConfig};
    use sailfish_sim::workload::{generate_flows, WorkloadConfig};

    fn setup(total_gbps: f64) -> (Region, RegionReport, ClusterCapacity) {
        let topology = Topology::generate(TopologyConfig::default());
        let capacity = ClusterCapacity {
            max_routes: 600,
            max_vms: 3_000,
        };
        let mut region = Region::build(
            &topology,
            RegionConfig {
                devices_per_cluster: 2,
                capacity,
                ..RegionConfig::default()
            },
        )
        .unwrap();
        let flows = generate_flows(
            &topology,
            &WorkloadConfig {
                flows: 4_000,
                total_gbps,
                ..WorkloadConfig::default()
            },
        );
        let report = region.offer(&flows, 1.0);
        (region, report, capacity)
    }

    #[test]
    fn quiet_region_raises_no_traffic_alerts() {
        let (region, report, capacity) = setup(500.0);
        let alerts = evaluate(&region, &report, capacity, WaterLevels::default());
        assert!(
            !alerts
                .iter()
                .any(|a| matches!(a, Alert::TrafficWaterLevel { .. })),
            "{alerts:?}"
        );
    }

    #[test]
    fn hot_devices_trigger_traffic_alerts() {
        // 20 Tbps over few devices crosses the 50% level somewhere.
        let (region, report, capacity) = setup(20_000.0);
        let alerts = evaluate(&region, &report, capacity, WaterLevels::default());
        assert!(alerts
            .iter()
            .any(|a| matches!(a, Alert::TrafficWaterLevel { .. })));
    }

    #[test]
    fn festival_levels_reduce_alerts() {
        let (region, report, capacity) = setup(20_000.0);
        let normal = evaluate(&region, &report, capacity, WaterLevels::default());
        let festival = evaluate(
            &region,
            &report,
            capacity,
            WaterLevels::default().festival(),
        );
        let count = |alerts: &[Alert]| {
            alerts
                .iter()
                .filter(|a| matches!(a, Alert::TrafficWaterLevel { .. }))
                .count()
        };
        assert!(
            count(&festival) <= count(&normal),
            "raising the water level must not add alerts"
        );
    }

    #[test]
    fn table_water_level_closes_sales() {
        let (region, report, _capacity) = setup(500.0);
        // Shrink the declared capacity so existing load sits above 85%.
        let tight = ClusterCapacity {
            max_routes: region.plan.per_cluster[0].routes + 5,
            max_vms: 1_000_000,
        };
        let alerts = evaluate(&region, &report, tight, WaterLevels::default());
        assert!(alerts
            .iter()
            .any(|a| matches!(a, Alert::TableWaterLevel { cluster: 0, .. })));
    }

    #[test]
    fn fallback_share_alerts_when_hardware_cannot_serve() {
        let topology = Topology::generate(TopologyConfig::default());
        let capacity = ClusterCapacity {
            max_routes: 600,
            max_vms: 3_000,
        };
        let mut region = Region::build(
            &topology,
            RegionConfig {
                devices_per_cluster: 2,
                capacity,
                ..RegionConfig::default()
            },
        )
        .unwrap();
        let flows = generate_flows(
            &topology,
            &WorkloadConfig {
                flows: 4_000,
                total_gbps: 500.0,
                ..WorkloadConfig::default()
            },
        );
        let healthy = region.offer(&flows, 1.0);
        let alerts = evaluate(&region, &healthy, capacity, WaterLevels::default());
        assert!(!alerts
            .iter()
            .any(|a| matches!(a, Alert::FallbackShare { .. })));
        // Kill every device of cluster 0: its traffic degrades to x86 and
        // the monitor must notice.
        for d in 0..region.config.devices_per_cluster {
            crate::failover::fail_device(&mut region, 0, d).unwrap();
        }
        let degraded = region.offer(&flows, 1.0);
        assert!(degraded.fallback_pps > 0.0);
        let alerts = evaluate(&region, &degraded, capacity, WaterLevels::default());
        assert!(alerts
            .iter()
            .any(|a| matches!(a, Alert::FallbackShare { .. })));
    }

    #[test]
    fn tier_shares_alert_per_rung() {
        let levels = WaterLevels::default();
        // The DPU rung tolerates more share than the x86 rung: a spill
        // is designed-for overflow, an x86 punt is two rungs down.
        assert!(levels.dpu_share_level > levels.fallback_level);
        assert_eq!(evaluate_tier_shares(0.0, 0.0, levels), vec![]);
        // A modest spill share stays quiet; the same share on x86 alerts.
        assert_eq!(
            evaluate_tier_shares(0.02, 0.0, levels),
            vec![],
            "designed-for DPU overflow must not page anyone"
        );
        assert_eq!(
            evaluate_tier_shares(0.0, 0.02, levels),
            vec![Alert::FallbackShare { share: 0.02 }]
        );
        // Both rungs loaded: both alerts, DPU first (ladder order).
        assert_eq!(
            evaluate_tier_shares(0.10, 0.05, levels),
            vec![
                Alert::DpuShare { share: 0.10 },
                Alert::FallbackShare { share: 0.05 }
            ]
        );
        // Festival levels leave the tier shares alone: raising packet
        // headroom must not mask a degradation ladder in motion.
        assert_eq!(evaluate_tier_shares(0.10, 0.05, levels.festival()).len(), 2);
    }

    #[test]
    fn snat_pool_alert_fires_before_exhaustion() {
        let levels = WaterLevels::default();
        assert!(
            levels.snat_pool_level < 1.0,
            "the alert must precede actual exhaustion"
        );
        assert_eq!(evaluate_snat_pool(0.5, 7, levels), None);
        let alert = evaluate_snat_pool(0.92, 7, levels);
        assert_eq!(
            alert,
            Some(Alert::PortPoolExhaustion {
                tenant: 7,
                occupancy: 0.92
            })
        );
        // Festival levels leave the connection-capacity alert alone:
        // raising packet headroom must not mask pool pressure.
        assert!(evaluate_snat_pool(0.92, 7, levels.festival()).is_some());
    }

    #[test]
    fn loss_alert_fires_only_on_real_loss() {
        let (region, report, capacity) = setup(500.0);
        // Default threshold 1e-8 sits above the residual floor at this
        // load, so no alert…
        let alerts = evaluate(&region, &report, capacity, WaterLevels::default());
        assert!(!alerts
            .iter()
            .any(|a| matches!(a, Alert::LossWaterLevel { .. })));
        // …but an aggressive threshold catches the residual floor.
        let aggressive = WaterLevels {
            loss_level: 1e-13,
            ..WaterLevels::default()
        };
        let alerts = evaluate(&region, &report, capacity, aggressive);
        assert!(alerts
            .iter()
            .any(|a| matches!(a, Alert::LossWaterLevel { .. })));
    }
}
