//! The DPU middle tier: a pool of SmartNIC-class nodes between XGW-H
//! and XGW-x86.
//!
//! Gryphon-style hierarchical co-offloading (PAPERS.md) survives past
//! the petabit era by inserting a DPU tier into the degradation ladder:
//! packets the switch cannot serve spill first to a pool of DPU nodes
//! (each a couple of orders of magnitude faster than an x86 core at
//! forwarding, but far smaller than the switch) and only degrade to the
//! XGW-x86 cluster when the pool itself is saturated or dead.
//!
//! Flow ownership inside the pool uses **consistent hashing**: each node
//! projects `vnodes` points onto a 64-bit ring and a flow is owned by
//! the first live point clockwise of its hash. Killing a node re-homes
//! *only that node's flows* onto the survivors (bounded churn — the
//! HyperNAT property that makes DPU state migration tractable), and
//! restoring it brings ownership back byte-identically. Everything is
//! deterministic: the ring depends only on the pool configuration, never
//! on insertion order or wall-clock time.

use std::collections::BTreeSet;

/// Per-node capacity/latency envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpuNode {
    /// Node index inside the pool.
    pub id: u16,
    /// Sustained forwarding capacity in packets per second.
    pub capacity_pps: u64,
    /// Per-packet processing latency in nanoseconds (between the
    /// switch's ~tens of ns and the x86 path's ~µs).
    pub process_ns: u64,
}

/// Pool shape and envelopes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpuPoolConfig {
    /// Nodes in the pool.
    pub nodes: u16,
    /// Ring points per node. More points smooth the ownership split;
    /// 64 keeps the max/min owner imbalance low at pool sizes ≤ 32.
    pub vnodes: u16,
    /// Per-node sustained capacity in packets per second.
    pub capacity_pps: u64,
    /// Base per-packet latency of node 0 in nanoseconds.
    pub process_ns: u64,
    /// Extra latency per node index (heterogeneous pool generations):
    /// node `i` processes a packet in `process_ns + i × process_step_ns`.
    pub process_step_ns: u64,
}

impl Default for DpuPoolConfig {
    fn default() -> Self {
        DpuPoolConfig {
            nodes: 4,
            vnodes: 64,
            capacity_pps: 25_000_000,
            process_ns: 400,
            process_step_ns: 25,
        }
    }
}

/// SplitMix64 — the ring's point hash. Deterministic, dependency-free,
/// and well-mixed enough that vnode points spread uniformly.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a VNI and an RSS tuple hash into the 64-bit flow key the ring
/// is probed with. Tenants reuse RFC 1918 space, so the VNI must be
/// part of the key or two tenants' flows would collide.
pub fn flow_key(vni: u32, tuple_hash: u32) -> u64 {
    splitmix64((u64::from(vni) << 32) | u64::from(tuple_hash))
}

/// The consistent-hash DPU pool.
#[derive(Debug, Clone)]
pub struct DpuPool {
    config: DpuPoolConfig,
    nodes: Vec<DpuNode>,
    /// `(point, node)` sorted by point; ties broken by node id at build
    /// time so the ring is unique and order-independent.
    ring: Vec<(u64, u16)>,
    dead: BTreeSet<u16>,
}

impl DpuPool {
    /// Builds the pool and its ring from the configuration. The ring is
    /// a pure function of the config: two pools built from equal configs
    /// are identical.
    pub fn new(config: DpuPoolConfig) -> Self {
        let nodes: Vec<DpuNode> = (0..config.nodes)
            .map(|id| DpuNode {
                id,
                capacity_pps: config.capacity_pps,
                process_ns: config.process_ns + u64::from(id) * config.process_step_ns,
            })
            .collect();
        let mut ring = Vec::with_capacity(usize::from(config.nodes) * usize::from(config.vnodes));
        for node in 0..config.nodes {
            for replica in 0..config.vnodes {
                let point = splitmix64((u64::from(node) << 32) | u64::from(replica));
                ring.push((point, node));
            }
        }
        ring.sort_unstable();
        DpuPool {
            config,
            nodes,
            ring,
            dead: BTreeSet::new(),
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> &DpuPoolConfig {
        &self.config
    }

    /// The node envelopes (dead nodes included — death is an ownership
    /// property, not a removal).
    pub fn nodes(&self) -> &[DpuNode] {
        &self.nodes
    }

    /// The envelope of one node.
    pub fn node(&self, id: u16) -> Option<&DpuNode> {
        self.nodes.get(usize::from(id))
    }

    /// Marks a node dead. Returns whether the state changed.
    pub fn fail(&mut self, id: u16) -> bool {
        id < self.config.nodes && self.dead.insert(id)
    }

    /// Re-admits a node. Returns whether the state changed.
    pub fn restore(&mut self, id: u16) -> bool {
        self.dead.remove(&id)
    }

    /// The currently dead node set.
    pub fn dead(&self) -> &BTreeSet<u16> {
        &self.dead
    }

    /// Live nodes remaining.
    pub fn live_nodes(&self) -> usize {
        usize::from(self.config.nodes) - self.dead.len()
    }

    /// Aggregate live capacity in packets per second.
    pub fn live_capacity_pps(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| !self.dead.contains(&n.id))
            .map(|n| n.capacity_pps)
            .sum()
    }

    /// The node that would own `key` with every node alive — the flow's
    /// primary home, independent of the current death set.
    pub fn primary_owner(&self, key: u64) -> Option<u16> {
        if self.ring.is_empty() {
            return None;
        }
        let start = self.ring.partition_point(|(p, _)| *p < key);
        self.ring
            .get(start)
            .or_else(|| self.ring.first())
            .map(|(_, n)| *n)
    }

    /// The live owner of `key`: the first live ring point clockwise of
    /// the key. `None` when every node is dead — the pool is out of the
    /// ladder and the flow degrades straight to x86.
    pub fn owner_of(&self, key: u64) -> Option<u16> {
        if self.dead.len() >= usize::from(self.config.nodes) || self.ring.is_empty() {
            return None;
        }
        let start = self.ring.partition_point(|(p, _)| *p < key);
        let n = self.ring.len();
        for i in 0..n {
            let (_, node) = self.ring[(start + i) % n];
            if !self.dead.contains(&node) {
                return Some(node);
            }
        }
        None
    }

    /// FNV-1a digest of the ownership map over `samples` deterministic
    /// probe keys — a byte-identical fingerprint of who owns what.
    pub fn ownership_digest(&self, samples: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..samples {
            let owner = self.owner_of(splitmix64(i)).map_or(u16::MAX, |n| n);
            for b in owner.to_be_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use sailfish_util::check;
    use sailfish_util::rand::Rng;

    fn sample_keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| splitmix64(i.wrapping_mul(31) + 7)).collect()
    }

    #[test]
    fn ring_is_deterministic_and_order_free() {
        let a = DpuPool::new(DpuPoolConfig::default());
        let b = DpuPool::new(DpuPoolConfig::default());
        assert_eq!(a.ring, b.ring);
        assert_eq!(a.ownership_digest(4_096), b.ownership_digest(4_096));
    }

    #[test]
    fn ownership_spreads_across_the_pool() {
        let pool = DpuPool::new(DpuPoolConfig::default());
        let mut counts = vec![0u64; usize::from(pool.config().nodes)];
        for key in sample_keys(8_192) {
            counts[usize::from(pool.owner_of(key).unwrap())] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(min > 0, "{counts:?}");
        assert!(max < min * 3, "vnode smoothing too weak: {counts:?}");
    }

    #[test]
    fn node_death_moves_only_the_dead_nodes_flows() {
        // Satellite property: bounded disruption across 6 seeds. Each
        // seed draws a pool shape and a victim; killing the victim may
        // move only flows the victim owned, and restoring it restores
        // ownership byte-identically.
        check::run("dpu_bounded_disruption", 6, |rng| {
            let config = DpuPoolConfig {
                nodes: rng.gen_range(2..10u16),
                vnodes: 16 + rng.gen_range(0..64u16),
                ..DpuPoolConfig::default()
            };
            let mut pool = DpuPool::new(config);
            let keys = sample_keys(2_048);
            let before: Vec<Option<u16>> = keys.iter().map(|k| pool.owner_of(*k)).collect();
            let digest_before = pool.ownership_digest(4_096);

            let victim = rng.gen_range(0..config.nodes);
            assert!(pool.fail(victim));
            assert_eq!(pool.live_nodes(), usize::from(config.nodes) - 1);
            let after: Vec<Option<u16>> = keys.iter().map(|k| pool.owner_of(*k)).collect();
            let mut moved = 0u64;
            for (i, key) in keys.iter().enumerate() {
                assert_ne!(after[i], Some(victim), "dead node still owns a flow");
                if before[i] != after[i] {
                    assert_eq!(
                        before[i],
                        Some(victim),
                        "flow {key:#x} moved but its owner {:?} is alive",
                        before[i]
                    );
                    moved += 1;
                }
            }
            let owned_by_victim = before.iter().filter(|o| **o == Some(victim)).count() as u64;
            assert_eq!(moved, owned_by_victim, "every orphaned flow re-homes");

            // Fail/restore round-trips byte-identically.
            assert!(pool.restore(victim));
            let restored: Vec<Option<u16>> = keys.iter().map(|k| pool.owner_of(*k)).collect();
            assert_eq!(before, restored);
            assert_eq!(digest_before, pool.ownership_digest(4_096));
        });
    }

    #[test]
    fn all_dead_pool_leaves_the_ladder() {
        let mut pool = DpuPool::new(DpuPoolConfig {
            nodes: 2,
            ..DpuPoolConfig::default()
        });
        assert!(pool.fail(0));
        assert!(pool.fail(1));
        assert!(!pool.fail(1), "double fail is a no-op");
        assert!(!pool.fail(9), "out-of-range node is rejected");
        assert_eq!(pool.live_nodes(), 0);
        assert_eq!(pool.live_capacity_pps(), 0);
        for key in sample_keys(64) {
            assert_eq!(pool.owner_of(key), None);
            assert!(pool.primary_owner(key).is_some());
        }
        assert!(pool.restore(0));
        assert!(pool.owner_of(1).is_some());
    }

    #[test]
    fn envelopes_follow_the_config() {
        let pool = DpuPool::new(DpuPoolConfig::default());
        assert_eq!(pool.nodes().len(), 4);
        assert_eq!(pool.node(0).unwrap().process_ns, 400);
        assert_eq!(pool.node(3).unwrap().process_ns, 400 + 3 * 25);
        assert!(pool.node(4).is_none());
        assert_eq!(pool.live_capacity_pps(), 4 * 25_000_000);
        // The DPU envelope sits strictly between the tiers it bridges.
        for n in pool.nodes() {
            assert!(n.process_ns > 60, "faster than a switch punt handoff");
            assert!(n.process_ns < 1_600, "slower than x86 would be wrong");
        }
    }

    #[test]
    fn flow_key_separates_tenants() {
        // Same tuple hash under different VNIs must not collide.
        assert_ne!(flow_key(100, 0xDEAD), flow_key(101, 0xDEAD));
        assert_eq!(flow_key(100, 0xDEAD), flow_key(100, 0xDEAD));
    }
}
