//! Seeded replay property for the plan-time world verifier: a
//! [`ReshardPlan`] the verifier proves clean must replay through
//! [`run_plan`] with **zero** dynamic findings — every move commits,
//! nothing rolls back, and the controller's consistency checker finds
//! the region coherent afterwards. This is the constructive half of the
//! soundness differential (the chaos harness covers the destructive
//! half: dynamic violations only where a static rejection was recorded).

use std::collections::BTreeSet;

use sailfish_cluster::controller::{ClusterCapacity, Controller};
use sailfish_cluster::region::RegionConfig;
use sailfish_cluster::reshard::{run_plan, MovePhase, ReshardPlan};
use sailfish_cluster::worldcheck::verify_reshard;
use sailfish_cluster::Region;
use sailfish_sim::faults::VirtualClock;
use sailfish_sim::{Topology, TopologyConfig};

const SEEDS: [u64; 6] = [1, 7, 42, 1337, 0xBEEF, 0xE1A5];

fn topology_for(seed: u64) -> Topology {
    Topology::generate(TopologyConfig {
        seed,
        vpcs: 120 + (seed as usize % 5) * 40,
        peering_fraction: 0.2 + (seed % 3) as f64 * 0.1,
        ..TopologyConfig::default()
    })
}

fn tight() -> ClusterCapacity {
    ClusterCapacity {
        max_routes: 600,
        max_vms: 3_000,
    }
}

fn tighter() -> ClusterCapacity {
    ClusterCapacity {
        max_routes: 400,
        max_vms: 2_000,
    }
}

#[test]
fn statically_clean_plans_replay_without_dynamic_findings() {
    for seed in SEEDS {
        let topology = topology_for(seed);
        let current = Controller::plan_split(&topology, tight(), 64).expect("split plans");
        let target = Controller::plan_split(&topology, tighter(), 64).expect("split plans");
        let config = RegionConfig {
            capacity: tight(),
            spare_clusters: target
                .clusters_needed()
                .saturating_sub(current.clusters_needed()),
            ..RegionConfig::default()
        };
        let mut region = Region::build(&topology, config).expect("region builds");
        let plan = ReshardPlan::plan(
            &topology,
            &region.plan,
            &target,
            ClusterCapacity::default(),
            &BTreeSet::new(),
        )
        .expect("plan between valid splits");
        assert!(
            !plan.moves.is_empty(),
            "seed {seed}: tighter split should force moves"
        );

        // Static proof first: the whole move sequence is black-hole-free
        // and within capacity in every intermediate world.
        let world = verify_reshard(&region, &plan.moves, "replay-property");
        assert!(world.is_clean(), "seed {seed}:\n{}", world.render());

        // Replay: a clean verdict must mean a clean run.
        let mut clock = VirtualClock::new();
        let report = run_plan(
            &mut region,
            &topology,
            &plan,
            &mut clock,
            &Default::default(),
            &mut |_, _| None,
        );
        assert!(
            report.static_detail.is_none(),
            "seed {seed}: gate re-rejected a clean plan: {:?}",
            report.static_detail
        );
        assert_eq!(
            report.committed(),
            plan.moves.len(),
            "seed {seed}: not every move drained"
        );
        assert_eq!(report.rolled_back(), 0, "seed {seed}");
        for outcome in &report.outcomes {
            assert_eq!(outcome.phase, MovePhase::Drained, "seed {seed}");
            assert!(
                outcome.error.is_none(),
                "seed {seed}: dynamic finding on {:?}: {:?}",
                outcome.leader,
                outcome.error
            );
        }

        // The directory lands where the plan said it would …
        for mv in &plan.moves {
            for vni in &mv.vnis {
                assert_eq!(
                    region.directory.cluster_for(*vni),
                    Some(mv.to),
                    "seed {seed}: {vni:?} not on its destination"
                );
            }
        }
        // … and the controller's own consistency sweep agrees.
        let findings = region
            .controller
            .check_consistency(&region.plan, &region.hw);
        assert!(findings.is_empty(), "seed {seed}: {findings:?}");
    }
}
