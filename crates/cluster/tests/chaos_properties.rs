//! Seeded property tests for the recovery path (in-tree harness).
//!
//! Each property drives randomized fault/recovery sequences through the
//! public failover API and asserts the §6.1 guarantees: restoration is
//! lossless state-wise (the VNI directory returns byte-identical), port
//! isolation only ever reduces capacity, and the probe gate passes after
//! every recovery sequence.

use sailfish_cluster::controller::{ClusterCapacity, InstallPolicy};
use sailfish_cluster::failover::{self, RecoveryOutcome};
use sailfish_cluster::probe;
use sailfish_cluster::region::{Region, RegionConfig};
use sailfish_sim::faults::VirtualClock;
use sailfish_sim::topology::{Topology, TopologyConfig};
use sailfish_sim::workload::{generate_flows, Flow, WorkloadConfig};
use sailfish_util::check;
use sailfish_util::rand::Rng;

const DEVICES: usize = 3;

fn build() -> (Topology, Vec<Flow>, Region) {
    let topology = Topology::generate(TopologyConfig::default());
    let region = Region::build(
        &topology,
        RegionConfig {
            hw_clusters: 4,
            devices_per_cluster: DEVICES,
            with_backup: true,
            sw_nodes: 2,
            capacity: ClusterCapacity {
                max_routes: 600,
                max_vms: 3_000,
            },
            ..RegionConfig::default()
        },
    )
    .unwrap();
    let flows = generate_flows(
        &topology,
        &WorkloadConfig {
            flows: 1_500,
            total_gbps: 800.0,
            ..WorkloadConfig::default()
        },
    );
    (topology, flows, region)
}

#[test]
fn cluster_failover_roundtrip_restores_directory_byte_identical() {
    check::run("failover_directory_roundtrip", 6, |rng| {
        let (_topology, _flows, mut region) = build();
        let before = region.directory.snapshot();
        let primaries = region.plan.clusters_needed();
        // Fail a random subset of primaries (possibly with node churn in
        // between), then restore in a different random order.
        let mut failed: Vec<usize> = (0..primaries).filter(|_| rng.gen_bool(0.6)).collect();
        if failed.is_empty() {
            failed.push(rng.gen_range(0..primaries));
        }
        for &c in &failed {
            if rng.gen_bool(0.5) {
                let d = rng.gen_range(0..DEVICES);
                failover::fail_device(&mut region, c, d).unwrap();
            }
            match failover::fail_cluster(&mut region, c).unwrap() {
                RecoveryOutcome::RolledToBackup { backup, .. } => {
                    assert_eq!(backup, region.backup_of(c).unwrap());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Directory changed while failed over.
        assert_ne!(region.directory.snapshot(), before);
        while !failed.is_empty() {
            let i = rng.gen_range(0..failed.len());
            let c = failed.swap_remove(i);
            match failover::restore_cluster(&mut region, c).unwrap() {
                RecoveryOutcome::Restored { primary, .. } => assert_eq!(primary, c),
                other => panic!("unexpected {other:?}"),
            }
        }
        for c in 0..primaries {
            for d in 0..DEVICES {
                failover::restore_device(&mut region, c, d).unwrap();
            }
        }
        assert_eq!(
            region.directory.snapshot(),
            before,
            "fail/restore must round-trip the directory byte-identically"
        );
    });
}

#[test]
fn port_isolation_monotonically_reduces_capacity() {
    check::run("port_isolation_monotone", 6, |rng| {
        let (_topology, flows, mut region) = build();
        let cluster = rng.gen_range(0..region.plan.clusters_needed());
        let device = rng.gen_range(0..DEVICES);
        // A decreasing sequence of healthy fractions: utilization of the
        // degraded device must be non-decreasing step over step (fewer
        // ports, same load), i.e. effective capacity only shrinks.
        let mut fraction = 1.0f64;
        let mut last_util = region.offer(&flows, 1.0).device_util[cluster][device];
        let baseline = last_util;
        for _ in 0..4 {
            fraction *= rng.gen_range(0.5..0.95);
            match failover::isolate_ports(&mut region, cluster, device, fraction).unwrap() {
                RecoveryOutcome::PortsIsolated { remaining_capacity } => {
                    assert!((remaining_capacity - fraction).abs() < 1e-12);
                }
                other => panic!("unexpected {other:?}"),
            }
            let util = region.offer(&flows, 1.0).device_util[cluster][device];
            assert!(
                util >= last_util - 1e-12,
                "capacity must only shrink: {util} after {last_util} at {fraction}"
            );
            last_util = util;
        }
        // Restoration brings capacity all the way back.
        failover::restore_ports(&mut region, cluster, device).unwrap();
        let restored = region.offer(&flows, 1.0).device_util[cluster][device];
        assert!((restored - baseline).abs() < 1e-9);
    });
}

#[test]
fn probes_pass_after_every_recovery_sequence() {
    check::run("probes_pass_after_recovery", 6, |rng| {
        let (topology, _flows, mut region) = build();
        let probes = probe::generate(&topology, 3);
        let primaries = region.plan.clusters_needed();
        // A random sequence of the recovery ladder's fault kinds...
        let mut failed_clusters = Vec::new();
        let mut offline = Vec::new();
        for _ in 0..rng.gen_range(2..6u32) {
            let cluster = rng.gen_range(0..primaries);
            let device = rng.gen_range(0..DEVICES);
            match rng.gen_range(0..4u32) {
                0 => {
                    failover::fail_device(&mut region, cluster, device).unwrap();
                    offline.push((cluster, device));
                }
                1 => {
                    failover::isolate_ports(
                        &mut region,
                        cluster,
                        device,
                        rng.gen_range(0.25..0.75),
                    )
                    .unwrap();
                }
                2 => {
                    if failover::fail_cluster(&mut region, cluster).unwrap()
                        != RecoveryOutcome::NotApplicable
                    {
                        failed_clusters.push(cluster);
                    }
                }
                _ => {
                    // Silent corruption, then the documented repair:
                    // offline → two-phase reinstall → probe gate.
                    region.hw[cluster].devices[device].wipe_tables();
                    failover::fail_device(&mut region, cluster, device).unwrap();
                    let plan = region.plan.clone();
                    let mut clock = VirtualClock::new();
                    region
                        .controller
                        .reinstall_device(
                            &topology,
                            &plan,
                            &mut region.hw,
                            cluster,
                            cluster,
                            device,
                            &mut clock,
                            &InstallPolicy::default(),
                            &mut |_, _| None,
                        )
                        .unwrap();
                    failover::readmit_device(&mut region, &probes, cluster, device).unwrap();
                }
            }
        }
        // ...then recover everything.
        for (cluster, device) in offline {
            failover::readmit_device(&mut region, &probes, cluster, device).unwrap();
        }
        for cluster in failed_clusters {
            failover::restore_cluster(&mut region, cluster).unwrap();
        }
        for cluster in 0..primaries {
            for device in 0..DEVICES {
                failover::restore_ports(&mut region, cluster, device).unwrap();
                failover::restore_device(&mut region, cluster, device).unwrap();
            }
        }
        let failures = probe::run(&mut region, &probes);
        assert!(
            failures.is_empty(),
            "probes must pass after recovery: {failures:?}"
        );
    });
}
