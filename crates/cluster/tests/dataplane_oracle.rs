//! Satellite: the differential oracle must still hold after a region has
//! been through fault injection and recovery.
//!
//! The §6.1 recovery ladder promises table state is *restored*, not just
//! traffic-level loss contained. This test makes that behavioral: replay
//! every flow through the recovered region's hardware tables with the
//! dataplane walk engine and compare each decision against a fresh
//! reference XGW-x86 forwarder over the full topology. A stale table
//! entry surviving recovery — a black hole the loss-ratio metrics can
//! average away — shows up here as a per-flow mismatch.

use sailfish_cluster::chaos::{self, ChaosConfig};
use sailfish_cluster::controller::ClusterCapacity;
use sailfish_cluster::region::{Region, RegionConfig};
use sailfish_dataplane::engine;
use sailfish_dataplane::executor::software_forwarder;
use sailfish_dataplane::oracle::{DropClass, PathDecision};
use sailfish_dataplane::{traffic, TableCounters};
use sailfish_sim::faults::{FaultSchedule, FaultScheduleConfig};
use sailfish_sim::topology::{Topology, TopologyConfig};
use sailfish_sim::workload::{generate_flows, Flow, WorkloadConfig};
use sailfish_xgw_h::program::HwDropReason;
use sailfish_xgw_h::tables::HardwareTables;
use sailfish_xgw_x86::SoftwareForwarder;

const DEVICES: usize = 3;

fn build() -> (Topology, Vec<Flow>, Region) {
    let topology = Topology::generate(TopologyConfig::default());
    let region = Region::build(
        &topology,
        RegionConfig {
            hw_clusters: 4,
            devices_per_cluster: DEVICES,
            with_backup: true,
            sw_nodes: 2,
            capacity: ClusterCapacity {
                max_routes: 600,
                max_vms: 3_000,
            },
            ..RegionConfig::default()
        },
    )
    .unwrap();
    let flows = generate_flows(
        &topology,
        &WorkloadConfig {
            flows: 1_500,
            total_gbps: 800.0,
            ..WorkloadConfig::default()
        },
    );
    (topology, flows, region)
}

/// What one device's table walk yields, without resolving punts (punt
/// resolution is stateful; replica comparison wants pure table state).
#[derive(Debug, PartialEq)]
enum DeviceView {
    Terminal(PathDecision),
    Punt,
}

fn device_view(tables: &HardwareTables, flow: &Flow) -> DeviceView {
    let packet = traffic::packet_for_flow(flow);
    let mut scratch = TableCounters::default();
    match engine::walk(tables, &packet, &mut scratch) {
        sailfish_xgw_h::HwDecision::ToNc { packet: out, nc } => {
            DeviceView::Terminal(PathDecision::ToNc { nc, vni: out.vni })
        }
        sailfish_xgw_h::HwDecision::ToRegion { region, vni } => {
            DeviceView::Terminal(PathDecision::ToRegion { region, vni })
        }
        sailfish_xgw_h::HwDecision::ToIdc { idc, vni } => {
            DeviceView::Terminal(PathDecision::ToIdc { idc, vni })
        }
        sailfish_xgw_h::HwDecision::PuntToX86 { .. } => DeviceView::Punt,
        sailfish_xgw_h::HwDecision::Drop(HwDropReason::AclDeny) => {
            DeviceView::Terminal(PathDecision::Drop(DropClass::Acl))
        }
        sailfish_xgw_h::HwDecision::Drop(HwDropReason::RoutingLoop) => {
            DeviceView::Terminal(PathDecision::Drop(DropClass::RoutingLoop))
        }
        sailfish_xgw_h::HwDecision::Drop(HwDropReason::PuntRateLimited) => {
            unreachable!("walk never rate-limits")
        }
    }
}

/// The region's end-to-end decision for one flow: directory → ECMP device
/// → table walk, punts and directory gaps served by `fallback`.
fn region_decision(
    region: &Region,
    flow: &Flow,
    fallback: &mut SoftwareForwarder,
    now_ns: u64,
) -> PathDecision {
    let packet = traffic::packet_for_flow(flow);
    let Some(cluster) = region.directory.cluster_for(flow.vni) else {
        return PathDecision::from_software(&fallback.process(&packet, now_ns));
    };
    let Ok(device) = region.hw[cluster].device_for(&flow.tuple) else {
        return PathDecision::from_software(&fallback.process(&packet, now_ns));
    };
    match device_view(&region.hw[cluster].devices[device].tables, flow) {
        DeviceView::Terminal(d) => d,
        DeviceView::Punt => PathDecision::from_software(&fallback.process(&packet, now_ns)),
    }
}

/// Runs the oracle over every flow; returns `(mismatches, first)`.
fn run_oracle(region: &Region, topology: &Topology, flows: &[Flow]) -> (u64, Option<String>) {
    let mut fallback = software_forwarder(topology);
    let mut reference = software_forwarder(topology);
    let mut mismatches = 0u64;
    let mut first = None;
    for (i, flow) in flows.iter().enumerate() {
        let now_ns = (i as u64 + 1) * 1_000;
        let got = region_decision(region, flow, &mut fallback, now_ns);
        let packet = traffic::packet_for_flow(flow);
        let want = PathDecision::from_software(&reference.process(&packet, now_ns));
        if got != want {
            mismatches += 1;
            if first.is_none() {
                first = Some(format!(
                    "flow {i}: region {got:?} != reference {want:?} (vni {}, dst {})",
                    flow.vni, flow.tuple.dst_ip
                ));
            }
        }
    }
    (mismatches, first)
}

/// Every device of a serving cluster must hold replica-identical state
/// for every flow ("multiple XGW-H devices maintain the same table
/// entries", §4.3).
fn assert_replicas_agree(region: &Region, flows: &[Flow]) {
    for flow in flows {
        let Some(cluster) = region.directory.cluster_for(flow.vni) else {
            continue;
        };
        let views: Vec<DeviceView> = region.hw[cluster]
            .devices
            .iter()
            .map(|d| device_view(&d.tables, flow))
            .collect();
        for (d, view) in views.iter().enumerate().skip(1) {
            assert_eq!(
                *view, views[0],
                "cluster {cluster} device {d} diverges from device 0 on vni {}",
                flow.vni
            );
        }
    }
}

#[test]
fn oracle_holds_before_and_after_fault_recovery() {
    let (topology, flows, mut region) = build();

    // Pristine region: the oracle must hold, otherwise the post-recovery
    // assertion proves nothing.
    let (mismatches, first) = run_oracle(&region, &topology, &flows);
    assert_eq!(mismatches, 0, "pristine region disagrees: {first:?}");

    let schedule = FaultSchedule::generate(&FaultScheduleConfig {
        slots: 24,
        clusters: region.plan.clusters_needed(),
        devices_per_cluster: DEVICES,
        fault_rate: 0.3,
        ..FaultScheduleConfig::default()
    });
    let report = chaos::run_schedule(
        &mut region,
        &topology,
        &flows,
        &schedule,
        &ChaosConfig::default(),
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.recovered_count(), report.faults.len());
    assert!(report.directory_restored);

    // The recovered region must be behaviorally indistinguishable from
    // the reference — per flow, not on average.
    let (mismatches, first) = run_oracle(&region, &topology, &flows);
    assert_eq!(
        mismatches, 0,
        "stale table state survived recovery: {first:?}"
    );
    assert_replicas_agree(&region, &flows);
}
