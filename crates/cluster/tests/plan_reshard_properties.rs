//! Seeded property tests for the controller's horizontal split and the
//! incremental re-shard planner.
//!
//! Each case generates a topology from a seed and checks the invariants
//! any valid split must carry — determinism, exactly-once VNI coverage,
//! peer co-location, capacity respect — and that a [`ReshardPlan`]
//! between two valid splits moves exactly the peer groups whose
//! assignment differs, nothing else.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sailfish_cluster::controller::{ClusterCapacity, Controller, SplitPlan};
use sailfish_cluster::reshard::ReshardPlan;
use sailfish_net::Vni;
use sailfish_sim::{Topology, TopologyConfig};

const SEEDS: [u64; 6] = [1, 7, 42, 1337, 0xBEEF, 0xE1A5];

fn topology_for(seed: u64) -> Topology {
    Topology::generate(TopologyConfig {
        seed,
        // Vary the tenancy scale with the seed so the cases exercise
        // different group counts and weights.
        vpcs: 120 + (seed as usize % 5) * 40,
        peering_fraction: 0.2 + (seed % 3) as f64 * 0.1,
        ..TopologyConfig::default()
    })
}

/// Every VNI carrying entries in the topology.
fn entry_vnis(topology: &Topology) -> BTreeSet<Vni> {
    topology
        .routes
        .iter()
        .map(|(k, _)| k.vni)
        .chain(topology.vms.iter().map(|vm| vm.vni))
        .collect()
}

/// Per-VNI (route, VM) weights.
fn weights(topology: &Topology) -> HashMap<Vni, (usize, usize)> {
    let mut w: HashMap<Vni, (usize, usize)> = HashMap::new();
    for (key, _) in &topology.routes {
        w.entry(key.vni).or_default().0 += 1;
    }
    for vm in &topology.vms {
        w.entry(vm.vni).or_default().1 += 1;
    }
    w
}

/// Canonical comparable form of a split.
fn canonical(plan: &SplitPlan) -> BTreeMap<Vni, usize> {
    plan.assignments.iter().map(|(v, c)| (*v, *c)).collect()
}

fn tight() -> ClusterCapacity {
    ClusterCapacity {
        max_routes: 600,
        max_vms: 3_000,
    }
}

fn tighter() -> ClusterCapacity {
    ClusterCapacity {
        max_routes: 400,
        max_vms: 2_000,
    }
}

#[test]
fn plan_split_is_deterministic_and_covers_every_vni_once() {
    for seed in SEEDS {
        let topology = topology_for(seed);
        let a = Controller::plan_split(&topology, tight(), 64).expect("split plans");
        let b = Controller::plan_split(&topology, tight(), 64).expect("split plans");
        assert_eq!(
            canonical(&a),
            canonical(&b),
            "seed {seed}: nondeterministic"
        );
        assert_eq!(a.per_cluster, b.per_cluster, "seed {seed}: load drift");

        // Exactly-once coverage: the assignment keys are precisely the
        // VNIs that carry entries (a HashMap key appears once by
        // construction, so coverage equality is the whole property).
        let assigned: BTreeSet<Vni> = a.assignments.keys().copied().collect();
        assert_eq!(assigned, entry_vnis(&topology), "seed {seed}: coverage");

        // Peered VPCs stay co-located.
        for vpc in &topology.vpcs {
            let Some(peer) = vpc.peer else { continue };
            if let (Some(c1), Some(c2)) = (a.assignments.get(&vpc.vni), a.assignments.get(&peer)) {
                assert_eq!(c1, c2, "seed {seed}: peers {:?}/{peer:?} split", vpc.vni);
            }
        }

        // Every cluster stays inside capacity, recomputed from scratch.
        let w = weights(&topology);
        let mut loads: Vec<(usize, usize)> = vec![(0, 0); a.clusters_needed()];
        for (vni, cluster) in &a.assignments {
            let (r, v) = w.get(vni).copied().unwrap_or((0, 0));
            let slot = loads.get_mut(*cluster).expect("assignment in range");
            slot.0 += r;
            slot.1 += v;
        }
        let cap = tight();
        for (c, (routes, vms)) in loads.iter().enumerate() {
            assert!(
                *routes <= cap.max_routes && *vms <= cap.max_vms,
                "seed {seed}: cluster {c} over capacity ({routes} routes, {vms} vms)"
            );
        }
        // The recomputed loads match what the plan recorded.
        for (c, load) in a.per_cluster.iter().enumerate() {
            let (routes, vms) = loads.get(c).copied().unwrap_or((0, 0));
            assert_eq!((load.routes, load.vms), (routes, vms), "seed {seed}");
        }
    }
}

#[test]
fn reshard_between_valid_splits_moves_only_differing_groups() {
    for seed in SEEDS {
        let topology = topology_for(seed);
        let current = Controller::plan_split(&topology, tight(), 64).expect("split plans");
        // A tighter capacity forces a different (wider) split.
        let target = Controller::plan_split(&topology, tighter(), 64).expect("split plans");

        let generous = ClusterCapacity::default();
        let plan = ReshardPlan::plan(&topology, &current, &target, generous, &BTreeSet::new())
            .expect("plan between valid splits");

        let differing: BTreeSet<Vni> = current
            .assignments
            .iter()
            .filter(|(vni, c)| target.assignments.get(*vni) != Some(*c))
            .map(|(vni, _)| *vni)
            .collect();
        let moving: BTreeSet<Vni> = plan
            .moves
            .iter()
            .flat_map(|m| m.vnis.iter().copied())
            .collect();
        assert_eq!(moving, differing, "seed {seed}: moves ≠ differing VNIs");
        assert_eq!(plan.vnis_moving(), moving.len(), "seed {seed}");

        for m in &plan.moves {
            assert_ne!(m.from, m.to, "seed {seed}: no-op move for {:?}", m.leader);
            for vni in &m.vnis {
                assert_eq!(current.assignments.get(vni), Some(&m.from), "seed {seed}");
                assert_eq!(target.assignments.get(vni), Some(&m.to), "seed {seed}");
            }
        }

        // The identity re-shard is empty.
        let noop = ReshardPlan::plan(&topology, &current, &current, generous, &BTreeSet::new())
            .expect("identity plan");
        assert!(noop.moves.is_empty(), "seed {seed}: identity plan moved");

        // Pinning a moving group removes exactly that group.
        if let Some(first) = plan.moves.first() {
            let pinned: BTreeSet<Vni> = first.vnis.iter().copied().collect();
            let repinned = ReshardPlan::plan(&topology, &current, &target, generous, &pinned)
                .expect("pinned plan");
            let still_moving: BTreeSet<Vni> = repinned
                .moves
                .iter()
                .flat_map(|m| m.vnis.iter().copied())
                .collect();
            assert!(still_moving.is_disjoint(&pinned), "seed {seed}");
            assert_eq!(
                still_moving.len(),
                moving.len() - pinned.len(),
                "seed {seed}: pinning removed more than the pinned group"
            );
        }
    }
}
