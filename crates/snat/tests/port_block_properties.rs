//! Seeded property tests for the port-block allocator and the tracker's
//! allocation discipline.
//!
//! Three pinned invariants:
//! 1. no two tenants ever hold overlapping port space (block-level
//!    ownership is exclusive, and ports handed out within a tenant's
//!    blocks never collide);
//! 2. allocating then releasing everything restores the pool's free set
//!    byte-identically;
//! 3. the order in which a ramp hits exhaustion is a total order —
//!    identical across reruns of the same seed, for 6 distinct seeds.

use std::collections::{BTreeMap, BTreeSet};

use sailfish_net::{FiveTuple, IpProtocol, Vni};
use sailfish_sim::conn::ConnSignal;
use sailfish_snat::{ConnTracker, PoolConfig, PortPool, SnatVerdict, TrackerConfig};
use sailfish_util::check;
use sailfish_util::rand::Rng;

fn small_pool() -> PoolConfig {
    PoolConfig {
        external_ips: 2,
        port_lo: 1_024,
        port_hi: 1_024 + 255,
        block_size: 16,
        ..PoolConfig::default()
    }
}

fn tcp_tuple(host: u16, port: u16) -> FiveTuple {
    FiveTuple::new(
        format!("10.0.{}.{}", host / 256, host % 256)
            .parse()
            .unwrap(),
        "93.184.216.34".parse().unwrap(),
        IpProtocol::Tcp,
        port,
        443,
    )
}

#[test]
fn blocks_never_overlap_across_tenants() {
    check::run("blocks_never_overlap_across_tenants", 64, |rng| {
        let config = small_pool();
        let mut pool = PortPool::new(config);
        let mut leased: BTreeMap<u32, Vni> = BTreeMap::new();
        for _ in 0..200 {
            if rng.gen_bool(0.6) {
                let tenant = Vni::from_const(rng.gen_range(1..6u32));
                if let Some(block) = pool.alloc_block(tenant) {
                    assert!(
                        leased.insert(block, tenant).is_none(),
                        "block {block} double-leased"
                    );
                }
            } else if let Some(&block) = leased.keys().next() {
                leased.remove(&block);
                assert!(pool.release_block(block));
            }
            // Port ranges of leased blocks are pairwise disjoint: block
            // geometry is a bijection (ip, base..base+size) <-> id.
            let mut spans: Vec<(u32, u16)> = leased
                .keys()
                .map(|b| {
                    (
                        u32::from(config.ip_of_block(*b)),
                        config.base_port_of_block(*b),
                    )
                })
                .collect();
            let unique: BTreeSet<(u32, u16)> = spans.iter().copied().collect();
            assert_eq!(unique.len(), spans.len(), "two blocks share (ip, base)");
            spans.sort_unstable();
            for pair in spans.windows(2) {
                if let [(ip_a, base_a), (ip_b, base_b)] = pair {
                    if ip_a == ip_b {
                        assert!(
                            u32::from(*base_a) + u32::from(config.block_size) <= u32::from(*base_b),
                            "port spans overlap on {ip_a}: {base_a}+{} > {base_b}",
                            config.block_size
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn tracker_ports_are_unique_across_all_tenants() {
    check::run("tracker_ports_are_unique_across_all_tenants", 32, |rng| {
        let config = TrackerConfig {
            pool: small_pool(),
            ..TrackerConfig::default()
        };
        let mut tracker = ConnTracker::new(config);
        let mut seen: BTreeSet<(core::net::Ipv4Addr, u16)> = BTreeSet::new();
        for i in 0..rng.gen_range(50..200u16) {
            let tenant = Vni::from_const(rng.gen_range(1..5u32));
            let tuple = tcp_tuple(rng.gen_range(0..1024), 20_000 + i);
            match tracker.outbound(tenant, tuple, ConnSignal::Syn, u64::from(i)) {
                SnatVerdict::Translated(b) => {
                    assert!(
                        seen.insert((b.ip, b.port)),
                        "binding {b} handed out twice while both owners live"
                    );
                }
                SnatVerdict::DropPortExhausted => {}
                other => panic!("unexpected verdict {other:?}"),
            }
        }
    });
}

#[test]
fn alloc_release_round_trip_restores_free_pool_byte_identically() {
    check::run("alloc_release_round_trip", 64, |rng| {
        let config = TrackerConfig {
            pool: small_pool(),
            ..TrackerConfig::default()
        };
        let mut tracker = ConnTracker::new(config);
        let pristine = tracker.pool().snapshot_free();
        // Open a random set of connections across tenants...
        let conns: Vec<(Vni, FiveTuple)> = (0..rng.gen_range(1..120u16))
            .map(|i| {
                (
                    Vni::from_const(rng.gen_range(1..7u32)),
                    tcp_tuple(rng.gen_range(0..512), 30_000 + i),
                )
            })
            .collect();
        for (i, (tenant, tuple)) in conns.iter().enumerate() {
            tracker.outbound(*tenant, *tuple, ConnSignal::Syn, i as u64);
        }
        // ...then close every one of them via the FIN pair and let
        // TIME_WAIT drain.
        let close_at = 1_000_000;
        for (tenant, tuple) in &conns {
            if tracker.binding_of(*tenant, tuple).is_none() {
                continue; // lost the race to exhaustion
            }
            tracker.outbound(*tenant, *tuple, ConnSignal::Fin, close_at);
            tracker.outbound(*tenant, *tuple, ConnSignal::Fin, close_at + 1);
        }
        tracker.expire(close_at + 1 + config.time_wait_ns);
        assert_eq!(tracker.live_connections(), 0);
        assert_eq!(
            tracker.pool().snapshot_free(),
            pristine,
            "free set must return to its pristine bytes"
        );
        assert_eq!(tracker.pool().occupancy(), 0.0);
    });
}

#[test]
fn exhaustion_total_order_is_deterministic_across_seeds() {
    // For each of 6 seeds: run the same ramp twice and demand the exact
    // same per-connection verdict sequence, including where exhaustion
    // first bites and every drop after it.
    for seed in [3u64, 11, 29, 47, 101, 977] {
        let ramp = |seed: u64| -> Vec<(u16, bool)> {
            use sailfish_util::rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let config = TrackerConfig {
                pool: PoolConfig {
                    external_ips: 1,
                    port_lo: 1_024,
                    port_hi: 1_024 + 63,
                    block_size: 8,
                    ..PoolConfig::default()
                },
                ..TrackerConfig::default()
            };
            let mut tracker = ConnTracker::new(config);
            let mut verdicts = Vec::new();
            for i in 0..120u16 {
                let tenant = Vni::from_const(rng.gen_range(1..4u32));
                let tuple = tcp_tuple(rng.gen_range(0..128), 40_000 + i);
                let ok = matches!(
                    tracker.outbound(tenant, tuple, ConnSignal::Syn, u64::from(i)),
                    SnatVerdict::Translated(_)
                );
                verdicts.push((i, ok));
            }
            // The ramp must actually exhaust — otherwise the property
            // is vacuous.
            assert!(verdicts.iter().any(|(_, ok)| !ok), "ramp never exhausted");
            verdicts
        };
        assert_eq!(ramp(seed), ramp(seed), "seed {seed} verdict order diverged");
    }
}
