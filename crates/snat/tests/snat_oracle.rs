//! Differential oracle: the hybrid tier (incremental tracker + hot-flow
//! offload with mid-stream promotion/demotion epochs) must agree with
//! the deliberately naive full-state reference on **every** packet of a
//! 100k-packet seeded Zipf connection trace — verdict for verdict,
//! binding for binding, counter for counter.
//!
//! The trace mixes TCP and UDP, symmetric and asymmetric return paths,
//! FIN closes and idle-aging, a mid-trace connection storm, synthesized
//! hairpin/reentry probes against live bindings, and periodic offload
//! rebalances. Placement (which lane serves a translation) is the only
//! thing allowed to differ — and only in the `hw_*`/rebalance counter
//! lanes.

use sailfish_net::Vni;
use sailfish_net::{FiveTuple, IpProtocol};
use sailfish_sim::conn::{
    connection_storm, generate_connection_events, ConnDirection, ConnSignal, ConnWorkloadConfig,
};
use sailfish_snat::{
    HybridConfig, HybridSnat, ReferenceSnat, SnatCounters, SnatVerdict, TrackerConfig,
};

/// Drops the placement-only lanes so hybrid counters compare against
/// the (placement-free) reference.
fn software_view(c: &SnatCounters) -> SnatCounters {
    SnatCounters {
        hw_translations: 0,
        promotions: 0,
        demotions: 0,
        ..*c
    }
}

#[test]
fn hybrid_matches_reference_over_100k_packets() {
    let workload = ConnWorkloadConfig {
        seed: 20_260_808,
        connections: 6_000,
        // The Zipf tail gives most connections a single packet; a heavy
        // head this tall pushes the trace past 100k events and gives the
        // promotion policy real elephants to chase.
        max_packets: 4_000,
        ..ConnWorkloadConfig::default()
    };
    let mut events = generate_connection_events(&workload);
    // A mid-trace connection storm on one tenant (the `ConnectionStorm`
    // fault the chaos layer injects).
    let storm = connection_storm(
        7,
        Vni::from_const(workload.base_vni),
        1_500,
        workload.duration_ns / 2,
        workload.duration_ns / 10,
    );
    events.extend(storm);
    events.sort_by_key(|e| e.at_ns); // stable: intra-source order kept

    // Idle horizons scaled to the 1-second trace window so aging (and
    // port reuse after it) is actually exercised mid-trace.
    let tracker_config = TrackerConfig {
        tcp_idle_ns: 150_000_000,
        udp_idle_ns: 30_000_000,
        time_wait_ns: 10_000_000,
        ..TrackerConfig::default()
    };
    let mut hybrid = HybridSnat::new(HybridConfig {
        tracker: tracker_config,
        offload_capacity: 512,
        promote_packets: 4,
    });
    let mut reference = ReferenceSnat::new(tracker_config);

    let mut processed: u64 = 0;
    let mut compared_inbound: u64 = 0;
    let mut hairpins_probed: u64 = 0;
    let mut epochs: u64 = 0;

    for (i, event) in events.iter().enumerate() {
        match event.direction {
            ConnDirection::Outbound => {
                let a = hybrid.outbound(event.tenant, event.tuple, event.signal, event.at_ns);
                let b = reference.outbound(event.tenant, event.tuple, event.signal, event.at_ns);
                assert_eq!(a, b, "outbound mismatch at event {i}: {event:?}");
            }
            ConnDirection::Inbound => {
                // The return path targets the forward tuple's public
                // binding; both sides must agree on whether one exists
                // and on its exact bytes.
                let a = hybrid.tracker().binding_of(event.tenant, &event.tuple);
                let b = reference.binding_of(event.tenant, &event.tuple);
                assert_eq!(a, b, "binding mismatch before inbound at event {i}");
                let Some(binding) = a else { continue };
                let va = hybrid.inbound(
                    binding,
                    event.tuple.dst_ip,
                    event.tuple.dst_port,
                    event.tuple.protocol,
                    event.signal,
                    event.at_ns,
                );
                let vb = reference.inbound(
                    binding,
                    event.tuple.dst_ip,
                    event.tuple.dst_port,
                    event.tuple.protocol,
                    event.signal,
                    event.at_ns,
                );
                assert_eq!(va, vb, "inbound mismatch at event {i}");
                assert_eq!(
                    va,
                    SnatVerdict::InboundMatched {
                        internal: event.tuple
                    }
                );
                compared_inbound += 1;
            }
        }
        processed += 1;

        // Periodic aging: both sides must reclaim identically.
        if i % 2_048 == 0 {
            assert_eq!(
                hybrid.expire(event.at_ns),
                reference.expire(event.at_ns),
                "expiry divergence at event {i}"
            );
        }

        // Mid-stream promotion/demotion epochs. The snapshot's bindings
        // must be exactly what the reference would translate to.
        if i % 10_000 == 5_000 {
            epochs += 1;
            let snapshot = hybrid.rebalance(epochs);
            assert_eq!(snapshot.epoch_tag, epochs);
            for ((tenant, tuple), binding) in snapshot.iter() {
                assert_eq!(
                    reference.binding_of(*tenant, tuple),
                    Some(*binding),
                    "offloaded binding diverges from reference at epoch {epochs}"
                );
            }
        }

        // Synthesized hairpin probes: a foreign tenant talks to a live
        // public binding; both sides must re-enter toward the same
        // private owner. Plus a scan at a never-leased port.
        if i % 5_000 == 2_500 {
            let live = hybrid.tracker().connections();
            assert_eq!(live, reference.connections(), "live set diverged at {i}");
            if let Some((_, internal, _, binding)) = live.first().copied() {
                let probe = FiveTuple::new(
                    "10.250.0.1".parse().unwrap(),
                    core::net::IpAddr::V4(binding.ip),
                    IpProtocol::Tcp,
                    50_000 + (hairpins_probed as u16 % 10_000),
                    binding.port,
                );
                let probe_tenant = Vni::from_const(4_242);
                let va = hybrid.outbound(probe_tenant, probe, ConnSignal::Syn, event.at_ns);
                let vb = reference.outbound(probe_tenant, probe, ConnSignal::Syn, event.at_ns);
                assert_eq!(va, vb, "hairpin mismatch at event {i}");
                assert!(
                    matches!(va, SnatVerdict::Hairpin { internal: got, .. } if got == internal),
                    "hairpin did not re-enter toward the bound owner: {va:?}"
                );
                hairpins_probed += 1;
                processed += 1;
                // Scan: port_lo - 1 is never leased.
                let scan = FiveTuple::new(
                    "10.250.0.2".parse().unwrap(),
                    core::net::IpAddr::V4(binding.ip),
                    IpProtocol::Tcp,
                    50_001,
                    tracker_config.pool.port_lo - 1,
                );
                let sa = hybrid.outbound(probe_tenant, scan, ConnSignal::Syn, event.at_ns);
                let sb = reference.outbound(probe_tenant, scan, ConnSignal::Syn, event.at_ns);
                assert_eq!(sa, sb);
                assert_eq!(sa, SnatVerdict::DropNoState);
                processed += 1;
            }
        }
    }

    // Final whole-state agreement.
    assert_eq!(hybrid.tracker().connections(), reference.connections());
    assert_eq!(
        software_view(hybrid.counters()),
        software_view(reference.counters()),
        "software-lane counters diverged"
    );
    assert!(
        (hybrid.tracker().pool().occupancy() - reference.pool_occupancy()).abs() < 1e-12,
        "pool occupancy diverged"
    );

    // The run actually exercised what it claims to.
    assert!(processed >= 100_000, "only {processed} packets compared");
    assert!(compared_inbound > 10_000, "too few inbound comparisons");
    assert!(hairpins_probed >= 10, "too few hairpin probes");
    assert!(epochs >= 5, "too few promotion/demotion epochs");
    assert!(
        hybrid.counters().promotions > 0 && hybrid.counters().demotions > 0,
        "epochs never promoted/demoted anything"
    );
    assert!(
        hybrid.counters().hw_translations > 0,
        "offload never served a packet"
    );
}

#[test]
fn oracle_trace_is_reproducible() {
    // Two fresh replays of the same seeded workload leave byte-identical
    // counters — the determinism the sweep's two-run `cmp` gate relies on.
    let run = || {
        let workload = ConnWorkloadConfig {
            connections: 500,
            ..ConnWorkloadConfig::default()
        };
        let events = generate_connection_events(&workload);
        let mut hybrid = HybridSnat::new(HybridConfig::default());
        for event in &events {
            match event.direction {
                ConnDirection::Outbound => {
                    hybrid.outbound(event.tenant, event.tuple, event.signal, event.at_ns);
                }
                ConnDirection::Inbound => {
                    if let Some(b) = hybrid.tracker().binding_of(event.tenant, &event.tuple) {
                        hybrid.inbound(
                            b,
                            event.tuple.dst_ip,
                            event.tuple.dst_port,
                            event.tuple.protocol,
                            event.signal,
                            event.at_ns,
                        );
                    }
                }
            }
        }
        hybrid.rebalance(1);
        hybrid.counters().fields()
    };
    assert_eq!(run(), run());
}
