//! Connection tracking with coarse TCP state and UDP idle aging.
//!
//! The tracker is the stateful half of the paper's 80/20 split: "the
//! SNAT table maps the 5-tuple to the public network IP and port"
//! (§4.2), and that mapping must survive for the lifetime of the
//! connection. State is keyed `(tenant VNI, 5-tuple)` — tenants reuse
//! RFC 1918 space, so the tuple alone is ambiguous — and every mutation
//! happens under an explicit virtual timestamp, never a wall clock.
//!
//! The TCP machine is deliberately coarse (the granularity a gateway
//! needs for port reclamation, not a full RFC 793 replica):
//!
//! ```text
//!   SYN ──▶ NEW ── payload ──▶ ESTABLISHED ── FIN ──▶ FIN
//!                                                      │ second FIN
//!                                                      ▼
//!              port freed ◀── time_wait idle ── TIME_WAIT
//! ```
//!
//! UDP has no signals: entries age out after `udp_idle_ns`. Ports
//! return to the tenant's block on expiry, and a block returns to the
//! pool the moment its last port frees — so allocator state is always
//! derivable from the live connection set, the invariant the naive
//! reference oracle ([`crate::reference`]) recomputes from scratch.

use core::net::{IpAddr, Ipv4Addr};
use std::collections::{BTreeMap, BTreeSet};

use sailfish_net::{FiveTuple, IpProtocol, Vni};
use sailfish_sim::conn::ConnSignal;

use crate::pool::{PoolConfig, PortPool, PublicBinding};

/// Coarse TCP connection phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TcpPhase {
    /// SYN seen, no payload yet.
    New,
    /// Two-way (or at least payload-bearing) traffic observed.
    Established,
    /// One FIN seen.
    Fin,
    /// Both FINs seen; the binding lingers for `time_wait_ns`.
    TimeWait,
}

/// Tracker configuration: pool shape plus aging horizons.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// External pool shape.
    pub pool: PoolConfig,
    /// Idle horizon for TCP entries outside TIME_WAIT.
    pub tcp_idle_ns: u64,
    /// Idle horizon for UDP entries.
    pub udp_idle_ns: u64,
    /// Linger after the second FIN before the port frees.
    pub time_wait_ns: u64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            pool: PoolConfig::default(),
            tcp_idle_ns: 300_000_000_000,
            udp_idle_ns: 30_000_000_000,
            time_wait_ns: 10_000_000_000,
        }
    }
}

/// SNAT-tier counters, `fields()`-projected for deterministic JSON and
/// digests, mirroring the `TableCounters` idiom.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnatCounters {
    /// Outbound packets successfully translated (software or hardware).
    pub translations: u64,
    /// Translations served by a promoted exact-match offload entry.
    pub hw_translations: u64,
    /// Fresh `(IP, port)` bindings allocated (one per connection).
    pub new_bindings: u64,
    /// Connections promoted into the offload across all rebalances.
    pub promotions: u64,
    /// Connections demoted out of the offload across all rebalances.
    pub demotions: u64,
    /// Connection opens refused because the pool had no free block.
    pub port_alloc_failures: u64,
    /// Outbound packets to the pool's own external IPs that re-entered.
    pub hairpins: u64,
    /// Inbound packets matched back to a private connection.
    pub inbound_matched: u64,
    /// Inbound (or hairpin) packets with no matching state.
    pub inbound_no_state: u64,
    /// Entries reclaimed by aging.
    pub expired: u64,
}

impl SnatCounters {
    /// Stable-ordered `(name, value)` view.
    pub fn fields(&self) -> [(&'static str, u64); 10] {
        [
            ("translations", self.translations),
            ("hw_translations", self.hw_translations),
            ("new_bindings", self.new_bindings),
            ("promotions", self.promotions),
            ("demotions", self.demotions),
            ("port_alloc_failures", self.port_alloc_failures),
            ("hairpins", self.hairpins),
            ("inbound_matched", self.inbound_matched),
            ("inbound_no_state", self.inbound_no_state),
            ("expired", self.expired),
        ]
    }
}

/// The tracker's normalized decision for one packet — what the
/// differential oracle compares, binding values included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnatVerdict {
    /// Outbound packet translated to its public binding.
    Translated(PublicBinding),
    /// Outbound packet addressed to a pool IP re-entered and was
    /// delivered to the binding's private owner.
    Hairpin {
        /// The sender's own translated binding.
        binding: PublicBinding,
        /// The private connection the packet re-enters toward.
        internal: FiveTuple,
    },
    /// Inbound packet matched back to its private connection.
    InboundMatched {
        /// The private (forward) 5-tuple.
        internal: FiveTuple,
    },
    /// No state for this packet (symmetric-NAT filter or scan).
    DropNoState,
    /// Connection open refused: no free port block.
    DropPortExhausted,
}

/// One tracked connection.
#[derive(Debug, Clone, Copy)]
struct ConnEntry {
    binding: PublicBinding,
    block: u32,
    phase: TcpPhase,
    udp: bool,
    fins: u8,
    packets: u64,
    last_seen_ns: u64,
}

/// Per-tenant allocation and connection state.
#[derive(Debug, Default)]
struct TenantState {
    /// Free (absolute) ports per leased block; a block keyed here is
    /// leased by this tenant, possibly with an empty free set.
    free_ports: BTreeMap<u32, BTreeSet<u16>>,
    /// Live connections by forward 5-tuple.
    conns: BTreeMap<FiveTuple, ConnEntry>,
}

/// The incremental (production-shaped) connection tracker.
#[derive(Debug)]
pub struct ConnTracker {
    config: TrackerConfig,
    pool: PortPool,
    tenants: BTreeMap<Vni, TenantState>,
    /// Public binding → owner, for inbound matching and hairpins. Each
    /// connection holds a unique binding, so the map is injective.
    by_binding: BTreeMap<(Ipv4Addr, u16), (Vni, FiveTuple)>,
    counters: SnatCounters,
}

impl ConnTracker {
    /// An empty tracker over a fresh pool.
    pub fn new(config: TrackerConfig) -> Self {
        ConnTracker {
            pool: PortPool::new(config.pool),
            config,
            tenants: BTreeMap::new(),
            by_binding: BTreeMap::new(),
            counters: SnatCounters::default(),
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// The underlying block pool (occupancy, free snapshots).
    pub fn pool(&self) -> &PortPool {
        &self.pool
    }

    /// Counter view.
    pub fn counters(&self) -> &SnatCounters {
        &self.counters
    }

    /// Mutable counters — the hybrid tier charges its hardware-lane and
    /// rebalance counters here so one struct tells the whole story.
    pub fn counters_mut(&mut self) -> &mut SnatCounters {
        &mut self.counters
    }

    /// Live connections across all tenants.
    pub fn live_connections(&self) -> usize {
        self.tenants.values().map(|t| t.conns.len()).sum()
    }

    /// The public binding of a live connection, if any.
    pub fn binding_of(&self, tenant: Vni, tuple: &FiveTuple) -> Option<PublicBinding> {
        self.tenants
            .get(&tenant)?
            .conns
            .get(tuple)
            .map(|e| e.binding)
    }

    /// The coarse phase of a live connection.
    pub fn phase_of(&self, tenant: Vni, tuple: &FiveTuple) -> Option<TcpPhase> {
        self.tenants.get(&tenant)?.conns.get(tuple).map(|e| e.phase)
    }

    /// Deterministic snapshot of every live connection:
    /// `(tenant, tuple, packets, binding)` in `(tenant, tuple)` order.
    pub fn connections(&self) -> Vec<(Vni, FiveTuple, u64, PublicBinding)> {
        let mut out = Vec::new();
        for (tenant, ts) in &self.tenants {
            for (tuple, e) in &ts.conns {
                out.push((*tenant, *tuple, e.packets, e.binding));
            }
        }
        out
    }

    /// Processes one outbound (private → Internet) packet.
    pub fn outbound(
        &mut self,
        tenant: Vni,
        tuple: FiveTuple,
        signal: ConnSignal,
        now_ns: u64,
    ) -> SnatVerdict {
        if self.config.pool.is_external_ip(tuple.dst_ip) {
            // Hairpin/reentry: tenant traffic addressed to the pool's own
            // address space. Resolve the target binding first; an unbound
            // destination is a scan, not a translation.
            let IpAddr::V4(dst4) = tuple.dst_ip else {
                self.counters.inbound_no_state += 1;
                return SnatVerdict::DropNoState;
            };
            let Some((_, internal)) = self.by_binding.get(&(dst4, tuple.dst_port)).copied() else {
                self.counters.inbound_no_state += 1;
                return SnatVerdict::DropNoState;
            };
            return match self.bind_and_touch(tenant, tuple, signal, now_ns) {
                Some(binding) => {
                    self.counters.hairpins += 1;
                    SnatVerdict::Hairpin { binding, internal }
                }
                None => SnatVerdict::DropPortExhausted,
            };
        }
        match self.bind_and_touch(tenant, tuple, signal, now_ns) {
            Some(binding) => SnatVerdict::Translated(binding),
            None => SnatVerdict::DropPortExhausted,
        }
    }

    /// Processes one inbound packet addressed to `public`, from
    /// `(remote_ip, remote_port)` over `protocol`.
    pub fn inbound(
        &mut self,
        public: PublicBinding,
        remote_ip: IpAddr,
        remote_port: u16,
        protocol: IpProtocol,
        signal: ConnSignal,
        now_ns: u64,
    ) -> SnatVerdict {
        let Some((tenant, tuple)) = self.by_binding.get(&(public.ip, public.port)).copied() else {
            self.counters.inbound_no_state += 1;
            return SnatVerdict::DropNoState;
        };
        // Symmetric NAT: only the connection's own remote endpoint may
        // use the binding.
        if tuple.dst_ip != remote_ip || tuple.dst_port != remote_port || tuple.protocol != protocol
        {
            self.counters.inbound_no_state += 1;
            return SnatVerdict::DropNoState;
        }
        let Some(entry) = self
            .tenants
            .get_mut(&tenant)
            .and_then(|ts| ts.conns.get_mut(&tuple))
        else {
            self.counters.inbound_no_state += 1;
            return SnatVerdict::DropNoState;
        };
        entry.packets += 1;
        entry.last_seen_ns = now_ns;
        apply_signal(entry, signal);
        self.counters.inbound_matched += 1;
        SnatVerdict::InboundMatched { internal: tuple }
    }

    /// Reclaims aged-out entries; returns how many were removed. Ports
    /// free immediately; a block whose last port frees returns to the
    /// pool in the same call.
    pub fn expire(&mut self, now_ns: u64) -> usize {
        let mut removed = 0;
        let tenants: Vec<Vni> = self.tenants.keys().copied().collect();
        for tenant in tenants {
            let Some(ts) = self.tenants.get(&tenant) else {
                continue;
            };
            let dead: Vec<FiveTuple> = ts
                .conns
                .iter()
                .filter(|(_, e)| is_expired(e, now_ns, &self.config))
                .map(|(k, _)| *k)
                .collect();
            for tuple in dead {
                self.remove_conn(tenant, &tuple);
                removed += 1;
            }
        }
        self.counters.expired += removed as u64;
        removed
    }

    /// Looks up or creates the entry for `(tenant, tuple)`, bumping its
    /// activity. `None` means the pool is exhausted (counted).
    fn bind_and_touch(
        &mut self,
        tenant: Vni,
        tuple: FiveTuple,
        signal: ConnSignal,
        now_ns: u64,
    ) -> Option<PublicBinding> {
        let ts = self.tenants.entry(tenant).or_default();
        if let Some(entry) = ts.conns.get_mut(&tuple) {
            entry.packets += 1;
            entry.last_seen_ns = now_ns;
            apply_signal(entry, signal);
            self.counters.translations += 1;
            return Some(entry.binding);
        }
        // New connection: lowest free (block, port) among leased blocks,
        // else lease the lowest free block from the pool.
        let slot = ts
            .free_ports
            .iter()
            .find_map(|(block, ports)| ports.iter().next().map(|p| (*block, *p)));
        let (block, port) = match slot {
            Some(slot) => slot,
            None => match self.pool.alloc_block(tenant) {
                Some(block) => {
                    let base = self.config.pool.base_port_of_block(block);
                    let ports: BTreeSet<u16> =
                        (0..self.config.pool.block_size).map(|i| base + i).collect();
                    ts.free_ports.insert(block, ports);
                    (block, base)
                }
                None => {
                    self.counters.port_alloc_failures += 1;
                    return None;
                }
            },
        };
        if let Some(ports) = ts.free_ports.get_mut(&block) {
            ports.remove(&port);
        }
        let binding = PublicBinding {
            ip: self.config.pool.ip_of_block(block),
            port,
        };
        let mut entry = ConnEntry {
            binding,
            block,
            phase: TcpPhase::New,
            udp: tuple.protocol == IpProtocol::Udp,
            fins: 0,
            packets: 1,
            last_seen_ns: now_ns,
        };
        apply_signal(&mut entry, signal);
        ts.conns.insert(tuple, entry);
        self.by_binding
            .insert((binding.ip, binding.port), (tenant, tuple));
        self.counters.translations += 1;
        self.counters.new_bindings += 1;
        Some(binding)
    }

    /// Removes one connection, freeing its port (and block, when it was
    /// the last port in use).
    fn remove_conn(&mut self, tenant: Vni, tuple: &FiveTuple) {
        let Some(ts) = self.tenants.get_mut(&tenant) else {
            return;
        };
        let Some(entry) = ts.conns.remove(tuple) else {
            return;
        };
        self.by_binding
            .remove(&(entry.binding.ip, entry.binding.port));
        let block_free = match ts.free_ports.get_mut(&entry.block) {
            Some(ports) => {
                ports.insert(entry.binding.port);
                ports.len() == usize::from(self.config.pool.block_size)
            }
            None => false,
        };
        if block_free {
            ts.free_ports.remove(&entry.block);
            self.pool.release_block(entry.block);
        }
        if ts.conns.is_empty() && ts.free_ports.is_empty() {
            self.tenants.remove(&tenant);
        }
    }
}

/// Applies one transport signal to an entry's coarse state machine.
fn apply_signal(entry: &mut ConnEntry, signal: ConnSignal) {
    if entry.udp {
        return;
    }
    match signal {
        ConnSignal::Syn => {}
        ConnSignal::Payload => {
            if entry.phase == TcpPhase::New {
                entry.phase = TcpPhase::Established;
            }
        }
        ConnSignal::Fin => {
            entry.fins = entry.fins.saturating_add(1);
            entry.phase = if entry.fins >= 2 {
                TcpPhase::TimeWait
            } else {
                TcpPhase::Fin
            };
        }
    }
}

/// Whether an entry has aged out at `now_ns`.
fn is_expired(entry: &ConnEntry, now_ns: u64, config: &TrackerConfig) -> bool {
    let idle = now_ns.saturating_sub(entry.last_seen_ns);
    if entry.udp {
        idle >= config.udp_idle_ns
    } else if entry.phase == TcpPhase::TimeWait {
        idle >= config.time_wait_ns
    } else {
        idle >= config.tcp_idle_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(v: u32) -> Vni {
        Vni::from_const(v)
    }

    fn tuple(host: u8, port: u16) -> FiveTuple {
        FiveTuple::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, host)),
            "93.184.216.34".parse().unwrap(),
            IpProtocol::Tcp,
            port,
            443,
        )
    }

    fn udp_tuple(host: u8, port: u16) -> FiveTuple {
        FiveTuple::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, host)),
            "9.9.9.9".parse().unwrap(),
            IpProtocol::Udp,
            port,
            53,
        )
    }

    #[test]
    fn outbound_allocates_and_reuses_binding() {
        let mut tracker = ConnTracker::new(TrackerConfig::default());
        let t = tuple(1, 10_000);
        let SnatVerdict::Translated(b1) = tracker.outbound(tenant(1), t, ConnSignal::Syn, 0) else {
            panic!("expected translation");
        };
        let SnatVerdict::Translated(b2) = tracker.outbound(tenant(1), t, ConnSignal::Payload, 10)
        else {
            panic!("expected translation");
        };
        assert_eq!(b1, b2, "binding is stable for the connection");
        assert_eq!(tracker.counters().translations, 2);
        assert_eq!(tracker.counters().new_bindings, 1);
        assert_eq!(tracker.phase_of(tenant(1), &t), Some(TcpPhase::Established));
        // A different connection gets a different port.
        let SnatVerdict::Translated(b3) =
            tracker.outbound(tenant(1), tuple(2, 10_001), ConnSignal::Syn, 20)
        else {
            panic!("expected translation");
        };
        assert_ne!(b1, b3);
    }

    #[test]
    fn tcp_state_machine_walks_to_time_wait() {
        let mut tracker = ConnTracker::new(TrackerConfig::default());
        let t = tuple(1, 10_000);
        tracker.outbound(tenant(1), t, ConnSignal::Syn, 0);
        assert_eq!(tracker.phase_of(tenant(1), &t), Some(TcpPhase::New));
        tracker.outbound(tenant(1), t, ConnSignal::Payload, 1);
        assert_eq!(tracker.phase_of(tenant(1), &t), Some(TcpPhase::Established));
        tracker.outbound(tenant(1), t, ConnSignal::Fin, 2);
        assert_eq!(tracker.phase_of(tenant(1), &t), Some(TcpPhase::Fin));
        let b = tracker.binding_of(tenant(1), &t).unwrap();
        tracker.inbound(b, t.dst_ip, t.dst_port, IpProtocol::Tcp, ConnSignal::Fin, 3);
        assert_eq!(tracker.phase_of(tenant(1), &t), Some(TcpPhase::TimeWait));
        // TIME_WAIT lingers, then frees the port.
        let wait = tracker.config().time_wait_ns;
        assert_eq!(tracker.expire(3 + wait - 1), 0);
        assert_eq!(tracker.expire(3 + wait), 1);
        assert_eq!(tracker.live_connections(), 0);
        assert_eq!(
            tracker.pool().occupancy(),
            0.0,
            "block released with last port"
        );
    }

    #[test]
    fn inbound_is_symmetric_nat_filtered() {
        let mut tracker = ConnTracker::new(TrackerConfig::default());
        let t = tuple(1, 10_000);
        tracker.outbound(tenant(1), t, ConnSignal::Syn, 0);
        let b = tracker.binding_of(tenant(1), &t).unwrap();
        // Right remote: matched.
        assert_eq!(
            tracker.inbound(
                b,
                t.dst_ip,
                t.dst_port,
                IpProtocol::Tcp,
                ConnSignal::Payload,
                1
            ),
            SnatVerdict::InboundMatched { internal: t }
        );
        // Wrong remote port: filtered.
        assert_eq!(
            tracker.inbound(b, t.dst_ip, 80, IpProtocol::Tcp, ConnSignal::Payload, 2),
            SnatVerdict::DropNoState
        );
        // Unbound public port: a scan.
        let scan = PublicBinding {
            ip: b.ip,
            port: b.port.wrapping_add(7),
        };
        assert_eq!(
            tracker.inbound(
                scan,
                t.dst_ip,
                t.dst_port,
                IpProtocol::Tcp,
                ConnSignal::Payload,
                3
            ),
            SnatVerdict::DropNoState
        );
        assert_eq!(tracker.counters().inbound_matched, 1);
        assert_eq!(tracker.counters().inbound_no_state, 2);
    }

    #[test]
    fn udp_ages_out_and_releases_blocks() {
        let mut tracker = ConnTracker::new(TrackerConfig::default());
        tracker.outbound(tenant(1), udp_tuple(1, 5_000), ConnSignal::Payload, 0);
        tracker.outbound(tenant(1), udp_tuple(2, 5_001), ConnSignal::Payload, 5);
        assert_eq!(tracker.live_connections(), 2);
        let idle = tracker.config().udp_idle_ns;
        // First entry ages out alone, then the second; the shared block
        // only frees with the last port.
        assert_eq!(tracker.expire(idle), 1);
        assert!(tracker.pool().occupancy() > 0.0);
        assert_eq!(tracker.expire(5 + idle), 1);
        assert_eq!(tracker.pool().occupancy(), 0.0);
        assert_eq!(tracker.counters().expired, 2);
    }

    #[test]
    fn hairpin_reenters_toward_the_bound_owner() {
        let mut tracker = ConnTracker::new(TrackerConfig::default());
        let server = tuple(1, 10_000);
        tracker.outbound(tenant(1), server, ConnSignal::Syn, 0);
        let b = tracker.binding_of(tenant(1), &server).unwrap();
        // Another tenant VM talks to the server's *public* binding.
        let client = FiveTuple::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 1, 9)),
            IpAddr::V4(b.ip),
            IpProtocol::Tcp,
            20_000,
            b.port,
        );
        let verdict = tracker.outbound(tenant(2), client, ConnSignal::Syn, 1);
        let SnatVerdict::Hairpin { binding, internal } = verdict else {
            panic!("expected hairpin, got {verdict:?}");
        };
        assert_eq!(internal, server);
        assert_ne!(binding, b, "the client got its own binding");
        assert_eq!(tracker.counters().hairpins, 1);
        // A pool-addressed packet with no bound target is a scan.
        let scan = FiveTuple::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 1, 9)),
            IpAddr::V4(b.ip),
            IpProtocol::Tcp,
            20_001,
            b.port.wrapping_add(9),
        );
        assert_eq!(
            tracker.outbound(tenant(2), scan, ConnSignal::Syn, 2),
            SnatVerdict::DropNoState
        );
    }

    #[test]
    fn exhaustion_is_counted_and_recovers() {
        let config = TrackerConfig {
            pool: PoolConfig {
                external_ips: 1,
                port_lo: 1_024,
                port_hi: 1_024 + 3,
                block_size: 2,
                ..PoolConfig::default()
            },
            ..TrackerConfig::default()
        };
        let mut tracker = ConnTracker::new(config);
        // 2 blocks × 2 ports = 4 connections, all one tenant.
        for i in 0..4u16 {
            let v = tracker.outbound(tenant(1), tuple(1, 30_000 + i), ConnSignal::Syn, 0);
            assert!(matches!(v, SnatVerdict::Translated(_)), "{v:?}");
        }
        assert_eq!(
            tracker.outbound(tenant(1), tuple(1, 30_004), ConnSignal::Syn, 1),
            SnatVerdict::DropPortExhausted
        );
        assert_eq!(tracker.counters().port_alloc_failures, 1);
        assert_eq!(tracker.pool().occupancy(), 1.0);
        // Aging out a connection makes room again.
        let idle = tracker.config().tcp_idle_ns;
        assert!(tracker.expire(idle) >= 1);
        assert!(matches!(
            tracker.outbound(tenant(1), tuple(1, 30_004), ConnSignal::Syn, idle + 1),
            SnatVerdict::Translated(_)
        ));
    }
}
