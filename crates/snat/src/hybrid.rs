//! Hybrid placement: promote heavy connections into an XGW-H-style
//! exact-match offload, demote cooled ones, publish each rebalance as a
//! sealed epoch snapshot.
//!
//! The paper's 80/20 observation (§4.2) applies *within* the SNAT tier
//! too: a small set of elephant connections carries most translated
//! packets. Those are worth an exact-match entry on the switch; the
//! long tail stays on XGW-x86. Two invariants keep this safe:
//!
//! 1. **Placement never changes a verdict.** The offload entry is a
//!    cached copy of the tracker's binding, so a hardware-served packet
//!    translates to exactly the bytes the software path would have
//!    produced. `tests/snat_oracle.rs` proves this differentially.
//! 2. **Epoch-consistent publication.** A rebalance yields an immutable
//!    [`SnatOffload`] stamped with the epoch tag it must ship under;
//!    `dataplane::epoch::EpochCell::publish` asserts the tag matches,
//!    so the executor, punt path, and breaker always observe one
//!    coherent promotion set — never a half-applied swap.

use std::collections::{BTreeMap, BTreeSet};

use sailfish_net::{FiveTuple, IpProtocol, Vni};
use sailfish_sim::conn::ConnSignal;

use crate::conntrack::{ConnTracker, SnatCounters, SnatVerdict, TrackerConfig};
use crate::pool::PublicBinding;

/// Hybrid tier configuration.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// The software tracker underneath.
    pub tracker: TrackerConfig,
    /// Exact-match entries the switch grants the SNAT tier (the xgw-h
    /// layout verifier checks the SRAM this implies actually fits).
    pub offload_capacity: usize,
    /// Minimum observed packets before a connection is promotable.
    pub promote_packets: u64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            tracker: TrackerConfig::default(),
            offload_capacity: 4_096,
            promote_packets: 8,
        }
    }
}

/// An immutable promotion snapshot, sealed under an epoch tag. This is
/// what `dataplane::epoch::EpochState` carries and what the executors
/// consult before punting a SNAT packet to x86.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnatOffload {
    /// The epoch this snapshot must be published under.
    pub epoch_tag: u64,
    entries: BTreeMap<(Vni, FiveTuple), PublicBinding>,
}

impl SnatOffload {
    /// An empty snapshot for `epoch_tag` (fresh epochs start with no
    /// promotions).
    pub fn empty(epoch_tag: u64) -> Self {
        SnatOffload {
            epoch_tag,
            entries: BTreeMap::new(),
        }
    }

    /// Whether `(tenant, tuple)` is promoted.
    pub fn contains(&self, tenant: Vni, tuple: &FiveTuple) -> bool {
        self.entries.contains_key(&(tenant, *tuple))
    }

    /// The promoted binding, if any.
    pub fn lookup(&self, tenant: Vni, tuple: &FiveTuple) -> Option<PublicBinding> {
        self.entries.get(&(tenant, *tuple)).copied()
    }

    /// Promoted entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Deterministic iteration over promoted entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(Vni, FiveTuple), &PublicBinding)> {
        self.entries.iter()
    }
}

/// The hybrid SNAT tier: software tracker plus current promotion set.
#[derive(Debug)]
pub struct HybridSnat {
    config: HybridConfig,
    tracker: ConnTracker,
    /// The currently-published promotion set (keys of the last sealed
    /// snapshot); used to attribute packets to the hardware lane and to
    /// count promotions/demotions across rebalances.
    offloaded: BTreeSet<(Vni, FiveTuple)>,
}

impl HybridSnat {
    /// A hybrid tier with an empty tracker and no promotions.
    pub fn new(config: HybridConfig) -> Self {
        HybridSnat {
            tracker: ConnTracker::new(config.tracker),
            config,
            offloaded: BTreeSet::new(),
        }
    }

    /// The hybrid configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// The software tracker underneath.
    pub fn tracker(&self) -> &ConnTracker {
        &self.tracker
    }

    /// Counter view (software and hardware lanes share one struct).
    pub fn counters(&self) -> &SnatCounters {
        self.tracker.counters()
    }

    /// Currently promoted connections.
    pub fn offloaded_len(&self) -> usize {
        self.offloaded.len()
    }

    /// Share of successful translations served from the offload.
    pub fn hw_share(&self) -> f64 {
        let c = self.tracker.counters();
        if c.translations == 0 {
            0.0
        } else {
            c.hw_translations as f64 / c.translations as f64
        }
    }

    /// Processes one outbound packet. The verdict is the tracker's —
    /// placement only decides which lane gets charged.
    pub fn outbound(
        &mut self,
        tenant: Vni,
        tuple: FiveTuple,
        signal: ConnSignal,
        now_ns: u64,
    ) -> SnatVerdict {
        let verdict = self.tracker.outbound(tenant, tuple, signal, now_ns);
        if matches!(verdict, SnatVerdict::Translated(_))
            && self.offloaded.contains(&(tenant, tuple))
        {
            self.tracker.counters_mut().hw_translations += 1;
        }
        verdict
    }

    /// Processes one inbound packet (always via the tracker — inbound
    /// state transitions must be observed in software).
    pub fn inbound(
        &mut self,
        public: PublicBinding,
        remote_ip: core::net::IpAddr,
        remote_port: u16,
        protocol: IpProtocol,
        signal: ConnSignal,
        now_ns: u64,
    ) -> SnatVerdict {
        self.tracker
            .inbound(public, remote_ip, remote_port, protocol, signal, now_ns)
    }

    /// Ages out idle entries. Dead connections silently leave the
    /// promotion set's *accounting* at the next rebalance; until then a
    /// stale offload entry can no longer match (its binding is gone
    /// from the tracker, and new traffic re-creates state in software
    /// first).
    pub fn expire(&mut self, now_ns: u64) -> usize {
        self.tracker.expire(now_ns)
    }

    /// Recomputes the promotion set and seals it for `epoch_tag`.
    ///
    /// Policy: every live connection with at least
    /// [`HybridConfig::promote_packets`] observed packets, hottest
    /// first (ties broken by `(tenant, tuple)` for determinism),
    /// truncated to [`HybridConfig::offload_capacity`]. Promotions and
    /// demotions versus the previous set are counted.
    pub fn rebalance(&mut self, epoch_tag: u64) -> SnatOffload {
        let mut hot: Vec<(u64, Vni, FiveTuple, PublicBinding)> = self
            .tracker
            .connections()
            .into_iter()
            .filter(|(_, _, packets, _)| *packets >= self.config.promote_packets)
            .map(|(tenant, tuple, packets, binding)| (packets, tenant, tuple, binding))
            .collect();
        hot.sort_by(|a, b| {
            (core::cmp::Reverse(a.0), a.1, a.2).cmp(&(core::cmp::Reverse(b.0), b.1, b.2))
        });
        hot.truncate(self.config.offload_capacity);

        let mut entries = BTreeMap::new();
        let mut next = BTreeSet::new();
        for (_, tenant, tuple, binding) in hot {
            entries.insert((tenant, tuple), binding);
            next.insert((tenant, tuple));
        }
        let promotions = next.difference(&self.offloaded).count() as u64;
        let demotions = self.offloaded.difference(&next).count() as u64;
        {
            let counters = self.tracker.counters_mut();
            counters.promotions += promotions;
            counters.demotions += demotions;
        }
        self.offloaded = next;
        SnatOffload { epoch_tag, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::net::{IpAddr, Ipv4Addr};

    fn tenant(v: u32) -> Vni {
        Vni::from_const(v)
    }

    fn tuple(host: u8, port: u16) -> FiveTuple {
        FiveTuple::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, host)),
            "93.184.216.34".parse().unwrap(),
            IpProtocol::Tcp,
            port,
            443,
        )
    }

    #[test]
    fn heavy_connections_promote_and_cooled_ones_demote() {
        let config = HybridConfig {
            offload_capacity: 2,
            promote_packets: 4,
            ..HybridConfig::default()
        };
        let mut hybrid = HybridSnat::new(config);
        // Connection A: hot. B: warm. C: cold.
        for i in 0..10 {
            hybrid.outbound(tenant(1), tuple(1, 10_000), ConnSignal::Payload, i);
        }
        for i in 0..5 {
            hybrid.outbound(tenant(1), tuple(2, 10_001), ConnSignal::Payload, i);
        }
        hybrid.outbound(tenant(1), tuple(3, 10_002), ConnSignal::Syn, 0);
        let snap = hybrid.rebalance(1);
        assert_eq!(snap.epoch_tag, 1);
        assert_eq!(snap.len(), 2);
        assert!(snap.contains(tenant(1), &tuple(1, 10_000)));
        assert!(snap.contains(tenant(1), &tuple(2, 10_001)));
        assert_eq!(hybrid.counters().promotions, 2);
        // The promoted binding is exactly the tracker's.
        assert_eq!(
            snap.lookup(tenant(1), &tuple(1, 10_000)),
            hybrid.tracker().binding_of(tenant(1), &tuple(1, 10_000))
        );
        // Now C heats past both and capacity forces a demotion.
        for i in 0..40 {
            hybrid.outbound(tenant(1), tuple(3, 10_002), ConnSignal::Payload, 10 + i);
        }
        let snap2 = hybrid.rebalance(2);
        assert_eq!(snap2.len(), 2);
        assert!(snap2.contains(tenant(1), &tuple(3, 10_002)));
        assert_eq!(hybrid.counters().demotions, 1);
    }

    #[test]
    fn hardware_lane_is_charged_only_for_promoted_connections() {
        let config = HybridConfig {
            offload_capacity: 8,
            promote_packets: 2,
            ..HybridConfig::default()
        };
        let mut hybrid = HybridSnat::new(config);
        for i in 0..4 {
            hybrid.outbound(tenant(1), tuple(1, 10_000), ConnSignal::Payload, i);
        }
        assert_eq!(hybrid.counters().hw_translations, 0, "nothing promoted yet");
        hybrid.rebalance(1);
        for i in 0..6 {
            hybrid.outbound(tenant(1), tuple(1, 10_000), ConnSignal::Payload, 10 + i);
        }
        // A cold newcomer stays on the software lane.
        hybrid.outbound(tenant(1), tuple(2, 10_001), ConnSignal::Syn, 20);
        assert_eq!(hybrid.counters().hw_translations, 6);
        assert_eq!(hybrid.counters().translations, 11);
        assert!(hybrid.hw_share() > 0.5);
    }

    #[test]
    fn rebalance_is_deterministic_for_equal_heat() {
        let config = HybridConfig {
            offload_capacity: 3,
            promote_packets: 1,
            ..HybridConfig::default()
        };
        let run = || {
            let mut hybrid = HybridSnat::new(config);
            for host in [5u8, 3, 9, 1, 7] {
                for i in 0..4 {
                    hybrid.outbound(tenant(1), tuple(host, 10_000), ConnSignal::Payload, i);
                }
            }
            let snap = hybrid.rebalance(1);
            snap.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "ties must break identically");
    }
}
