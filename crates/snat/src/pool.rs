//! Per-tenant port-block allocation from an external-IP pool.
//!
//! The SNAT tier maps private connections onto `(external IP, port)`
//! bindings. Allocating individual ports per connection from a shared
//! pool would make per-tenant accounting and hardware offload entries
//! expensive; production NATs instead carve the port space into
//! **contiguous blocks** and hand whole blocks to tenants (HyperNAT's
//! sharding follows the same shape). This module implements that
//! allocator with one deterministic spec:
//!
//! - the pool is `external_ips × blocks_per_ip` blocks, identified by a
//!   dense `u32` block id ordered `(ip index, block index)`;
//! - allocation always takes the **lowest free block id**;
//! - a block is released the moment its last port frees, so pool state
//!   is always a pure function of the live connection set — the
//!   property the naive reference oracle depends on.

use core::net::{IpAddr, Ipv4Addr};
use std::collections::{BTreeMap, BTreeSet};

use sailfish_net::Vni;

/// Shape of the external pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// First external IPv4 address; the pool is `external_ips`
    /// consecutive addresses starting here.
    pub base_ip: Ipv4Addr,
    /// External addresses in the pool.
    pub external_ips: u32,
    /// Lowest translated port (the well-known range is never leased).
    pub port_lo: u16,
    /// Highest translated port, inclusive.
    pub port_hi: u16,
    /// Contiguous ports per block.
    pub block_size: u16,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            // TEST-NET-2 (RFC 5737): documentation addresses, never
            // routable, so synthetic traces cannot collide with tenant
            // space.
            base_ip: Ipv4Addr::new(198, 51, 100, 1),
            external_ips: 4,
            port_lo: 1_024,
            port_hi: 65_535,
            block_size: 64,
        }
    }
}

impl PoolConfig {
    /// Whole blocks one external address yields.
    pub fn blocks_per_ip(&self) -> u32 {
        let span = u32::from(self.port_hi).saturating_sub(u32::from(self.port_lo)) + 1;
        span / u32::from(self.block_size.max(1))
    }

    /// Total blocks in the pool.
    pub fn total_blocks(&self) -> u32 {
        self.external_ips * self.blocks_per_ip()
    }

    /// The external address a block id lives on.
    pub fn ip_of_block(&self, block: u32) -> Ipv4Addr {
        let idx = block / self.blocks_per_ip().max(1);
        Ipv4Addr::from(u32::from(self.base_ip) + idx)
    }

    /// First port of a block id.
    pub fn base_port_of_block(&self, block: u32) -> u16 {
        let within = block % self.blocks_per_ip().max(1);
        self.port_lo + (within * u32::from(self.block_size)) as u16
    }

    /// Whether `ip` is one of the pool's external addresses — the
    /// hairpin/reentry classifier.
    pub fn is_external_ip(&self, ip: IpAddr) -> bool {
        match ip {
            IpAddr::V4(v4) => {
                let base = u32::from(self.base_ip);
                let v = u32::from(v4);
                v >= base && v < base + self.external_ips
            }
            IpAddr::V6(_) => false,
        }
    }
}

/// One public `(external IP, port)` binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PublicBinding {
    /// External address.
    pub ip: Ipv4Addr,
    /// Translated source port.
    pub port: u16,
}

impl core::fmt::Display for PublicBinding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// The block allocator.
#[derive(Debug, Clone)]
pub struct PortPool {
    config: PoolConfig,
    /// Free block ids; allocation pops the minimum.
    free: BTreeSet<u32>,
    /// Live ownership, for the no-overlap invariant and per-tenant
    /// occupancy accounting.
    owners: BTreeMap<u32, Vni>,
}

impl PortPool {
    /// A pool with every block free.
    pub fn new(config: PoolConfig) -> Self {
        PortPool {
            free: (0..config.total_blocks()).collect(),
            owners: BTreeMap::new(),
            config,
        }
    }

    /// The pool's shape.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Leases the lowest free block to `tenant`; `None` when exhausted.
    pub fn alloc_block(&mut self, tenant: Vni) -> Option<u32> {
        let block = self.free.iter().next().copied()?;
        self.free.remove(&block);
        self.owners.insert(block, tenant);
        Some(block)
    }

    /// Returns a block to the free set. Returns `false` when the block
    /// was not leased (double release — a caller bug the tests assert
    /// never happens).
    pub fn release_block(&mut self, block: u32) -> bool {
        if self.owners.remove(&block).is_none() {
            return false;
        }
        self.free.insert(block)
    }

    /// The tenant currently holding `block`.
    pub fn owner(&self, block: u32) -> Option<Vni> {
        self.owners.get(&block).copied()
    }

    /// Leased-block fraction of the whole pool.
    pub fn occupancy(&self) -> f64 {
        let total = self.config.total_blocks().max(1);
        self.owners.len() as f64 / f64::from(total)
    }

    /// Blocks currently leased, per tenant, in VNI order.
    pub fn blocks_by_tenant(&self) -> BTreeMap<Vni, usize> {
        let mut by_tenant: BTreeMap<Vni, usize> = BTreeMap::new();
        for tenant in self.owners.values() {
            *by_tenant.entry(*tenant).or_insert(0) += 1;
        }
        by_tenant
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Total blocks in the pool.
    pub fn total_blocks(&self) -> usize {
        self.config.total_blocks() as usize
    }

    /// Ordered snapshot of the free set — the alloc/release round-trip
    /// property compares these byte for byte.
    pub fn snapshot_free(&self) -> Vec<u32> {
        self.free.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(v: u32) -> Vni {
        Vni::from_const(v)
    }

    #[test]
    fn geometry_is_consistent() {
        let config = PoolConfig::default();
        assert_eq!(config.blocks_per_ip(), (65_535 - 1_024 + 1) / 64);
        assert_eq!(config.total_blocks(), 4 * config.blocks_per_ip());
        // Block 0 sits on the base ip at port_lo.
        assert_eq!(config.ip_of_block(0), Ipv4Addr::new(198, 51, 100, 1));
        assert_eq!(config.base_port_of_block(0), 1_024);
        // The next ip's first block restarts the port cycle.
        let b = config.blocks_per_ip();
        assert_eq!(config.ip_of_block(b), Ipv4Addr::new(198, 51, 100, 2));
        assert_eq!(config.base_port_of_block(b), 1_024);
    }

    #[test]
    fn external_ip_classification() {
        let config = PoolConfig::default();
        assert!(config.is_external_ip("198.51.100.1".parse().unwrap()));
        assert!(config.is_external_ip("198.51.100.4".parse().unwrap()));
        assert!(!config.is_external_ip("198.51.100.5".parse().unwrap()));
        assert!(!config.is_external_ip("198.51.100.0".parse().unwrap()));
        assert!(!config.is_external_ip("10.0.0.1".parse().unwrap()));
        assert!(!config.is_external_ip("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn alloc_takes_lowest_free_and_release_restores() {
        let mut pool = PortPool::new(PoolConfig::default());
        let initial = pool.snapshot_free();
        let a = pool.alloc_block(tenant(1)).unwrap();
        let b = pool.alloc_block(tenant(2)).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(pool.owner(0), Some(tenant(1)));
        pool.release_block(0);
        // The freed block is the lowest again.
        assert_eq!(pool.alloc_block(tenant(3)), Some(0));
        pool.release_block(0);
        pool.release_block(1);
        assert_eq!(pool.snapshot_free(), initial);
        assert_eq!(pool.occupancy(), 0.0);
    }

    #[test]
    fn exhaustion_and_double_release() {
        let config = PoolConfig {
            external_ips: 1,
            port_lo: 1_024,
            port_hi: 1_024 + 127,
            block_size: 64,
            ..PoolConfig::default()
        };
        let mut pool = PortPool::new(config);
        assert_eq!(pool.total_blocks(), 2);
        assert!(pool.alloc_block(tenant(1)).is_some());
        assert!(pool.alloc_block(tenant(1)).is_some());
        assert_eq!(pool.alloc_block(tenant(2)), None);
        assert_eq!(pool.occupancy(), 1.0);
        assert!(pool.release_block(1));
        assert!(!pool.release_block(1), "double release must be flagged");
    }
}
