//! # sailfish-snat
//!
//! The stateful SNAT / connection-tracking tier — the paper's canonical
//! "remaining 20%" service that stays on XGW-x86 while XGW-H serves the
//! stateless 80% (§2.3, §4.2). This crate closes ROADMAP open item 3:
//! without a stateful service, the 80/20 co-design the whole gateway
//! rests on is untestable end-to-end.
//!
//! Layers, bottom up:
//!
//! - [`pool`] — per-tenant **port-block allocation**: contiguous port
//!   blocks carved from a configurable external-IP pool, allocated
//!   lowest-free-first and released the moment their last connection
//!   dies. Deterministic by construction; the property tests pin
//!   no-overlap, byte-identical alloc/release round-trips and a total
//!   exhaustion order.
//! - [`conntrack`] — **connection tracking** keyed by `(tenant VNI,
//!   5-tuple)`: coarse TCP state (NEW → ESTABLISHED → FIN → TIME_WAIT),
//!   UDP idle aging, symmetric-NAT inbound matching, and
//!   hairpin/reentry handling for tenant traffic addressed to the pool's
//!   own external IPs. All under virtual time.
//! - [`mod@reference`] — a deliberately **naive full-state reference**
//!   implementing the same allocation/translation spec by whole-state
//!   recomputation (linear scans, no incremental maps). It is the
//!   differential oracle: the hybrid tier must match it verdict for
//!   verdict, binding for binding.
//! - [`hybrid`] — the **hybrid placement policy** (HyperNAT/Gryphon-
//!   style): heavy connections are promoted into an XGW-H exact-match
//!   offload snapshot ([`SnatOffload`]), cooled flows demoted, each
//!   rebalance sealed with an epoch tag and published through
//!   `dataplane::epoch` so the live executor, punt path and breaker
//!   stay consistent. Placement never changes a verdict — only *where*
//!   the translation is served — which is exactly what the oracle test
//!   proves under mid-stream promotion/demotion epochs.
//!
//! Everything is seeded and deterministic: same inputs, same verdicts,
//! same counters, byte for byte.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::disallowed_methods))]

// The translation hot path (pool, conntrack, hybrid) must never index
// unchecked — same gate as the dataplane wire/rewrite paths.
#[deny(clippy::indexing_slicing)]
pub mod conntrack;
#[deny(clippy::indexing_slicing)]
pub mod hybrid;
#[deny(clippy::indexing_slicing)]
pub mod pool;
pub mod reference;

pub use conntrack::{ConnTracker, SnatCounters, SnatVerdict, TcpPhase, TrackerConfig};
pub use hybrid::{HybridConfig, HybridSnat, SnatOffload};
pub use pool::{PoolConfig, PortPool, PublicBinding};
pub use reference::ReferenceSnat;
