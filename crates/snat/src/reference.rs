//! Deliberately naive full-state SNAT reference — the differential
//! oracle.
//!
//! Same observable spec as [`crate::conntrack::ConnTracker`], opposite
//! implementation strategy: no incremental free sets, no reverse maps,
//! no per-tenant caches. Every decision is recomputed from the flat
//! live-connection list by linear scan. That works because the spec
//! makes allocator state a *pure function of the live connection set*:
//!
//! - a tenant's leased blocks are exactly the blocks its live
//!   connections sit on;
//! - the pool's free blocks are exactly the blocks no live connection
//!   (of any tenant) sits on;
//! - a new connection takes the lowest free `(block, port)` among the
//!   tenant's leased blocks, else the lowest pool-free block's first
//!   port.
//!
//! If the incremental tracker ever disagrees with this oracle — on a
//! verdict, a binding value, or exhaustion order — one of them has a
//! bug, and the slow one is simple enough to trust.

use core::net::IpAddr;
use std::collections::BTreeSet;

use sailfish_net::{FiveTuple, IpProtocol, Vni};
use sailfish_sim::conn::ConnSignal;

use crate::conntrack::{SnatCounters, SnatVerdict, TcpPhase, TrackerConfig};
use crate::pool::PublicBinding;

/// One live connection in the flat reference store.
#[derive(Debug, Clone, Copy)]
struct RefConn {
    tenant: Vni,
    tuple: FiveTuple,
    block: u32,
    binding: PublicBinding,
    phase: TcpPhase,
    udp: bool,
    fins: u8,
    packets: u64,
    last_seen_ns: u64,
}

/// The naive whole-state reference implementation.
#[derive(Debug)]
pub struct ReferenceSnat {
    config: TrackerConfig,
    conns: Vec<RefConn>,
    counters: SnatCounters,
}

impl ReferenceSnat {
    /// An empty reference tracker.
    pub fn new(config: TrackerConfig) -> Self {
        ReferenceSnat {
            config,
            conns: Vec::new(),
            counters: SnatCounters::default(),
        }
    }

    /// Counter view (same lanes as the incremental tracker).
    pub fn counters(&self) -> &SnatCounters {
        &self.counters
    }

    /// Live connections.
    pub fn live_connections(&self) -> usize {
        self.conns.len()
    }

    /// The binding of a live connection, by linear scan.
    pub fn binding_of(&self, tenant: Vni, tuple: &FiveTuple) -> Option<PublicBinding> {
        self.conns
            .iter()
            .find(|c| c.tenant == tenant && c.tuple == *tuple)
            .map(|c| c.binding)
    }

    /// Leased-block fraction, recomputed from the live set.
    pub fn pool_occupancy(&self) -> f64 {
        let held: BTreeSet<u32> = self.conns.iter().map(|c| c.block).collect();
        let total = self.config.pool.total_blocks().max(1);
        held.len() as f64 / f64::from(total)
    }

    /// Processes one outbound packet. Mirrors
    /// [`crate::conntrack::ConnTracker::outbound`] decision for
    /// decision.
    pub fn outbound(
        &mut self,
        tenant: Vni,
        tuple: FiveTuple,
        signal: ConnSignal,
        now_ns: u64,
    ) -> SnatVerdict {
        if self.config.pool.is_external_ip(tuple.dst_ip) {
            let IpAddr::V4(dst4) = tuple.dst_ip else {
                self.counters.inbound_no_state += 1;
                return SnatVerdict::DropNoState;
            };
            let target = PublicBinding {
                ip: dst4,
                port: tuple.dst_port,
            };
            let Some(internal) = self
                .conns
                .iter()
                .find(|c| c.binding == target)
                .map(|c| c.tuple)
            else {
                self.counters.inbound_no_state += 1;
                return SnatVerdict::DropNoState;
            };
            return match self.bind_and_touch(tenant, tuple, signal, now_ns) {
                Some(binding) => {
                    self.counters.hairpins += 1;
                    SnatVerdict::Hairpin { binding, internal }
                }
                None => SnatVerdict::DropPortExhausted,
            };
        }
        match self.bind_and_touch(tenant, tuple, signal, now_ns) {
            Some(binding) => SnatVerdict::Translated(binding),
            None => SnatVerdict::DropPortExhausted,
        }
    }

    /// Processes one inbound packet.
    pub fn inbound(
        &mut self,
        public: PublicBinding,
        remote_ip: IpAddr,
        remote_port: u16,
        protocol: IpProtocol,
        signal: ConnSignal,
        now_ns: u64,
    ) -> SnatVerdict {
        let Some(idx) = self.conns.iter().position(|c| c.binding == public) else {
            self.counters.inbound_no_state += 1;
            return SnatVerdict::DropNoState;
        };
        let Some(conn) = self.conns.get_mut(idx) else {
            self.counters.inbound_no_state += 1;
            return SnatVerdict::DropNoState;
        };
        if conn.tuple.dst_ip != remote_ip
            || conn.tuple.dst_port != remote_port
            || conn.tuple.protocol != protocol
        {
            self.counters.inbound_no_state += 1;
            return SnatVerdict::DropNoState;
        }
        conn.packets += 1;
        conn.last_seen_ns = now_ns;
        apply_signal_ref(conn, signal);
        self.counters.inbound_matched += 1;
        SnatVerdict::InboundMatched {
            internal: conn.tuple,
        }
    }

    /// Reclaims aged-out entries.
    pub fn expire(&mut self, now_ns: u64) -> usize {
        let before = self.conns.len();
        let config = self.config;
        self.conns.retain(|c| {
            let idle = now_ns.saturating_sub(c.last_seen_ns);
            let horizon = if c.udp {
                config.udp_idle_ns
            } else if c.phase == TcpPhase::TimeWait {
                config.time_wait_ns
            } else {
                config.tcp_idle_ns
            };
            idle < horizon
        });
        let removed = before - self.conns.len();
        self.counters.expired += removed as u64;
        removed
    }

    /// Deterministic snapshot of the live set, in `(tenant, tuple)`
    /// order — comparable entry-for-entry with the incremental
    /// tracker's.
    pub fn connections(&self) -> Vec<(Vni, FiveTuple, u64, PublicBinding)> {
        let mut out: Vec<(Vni, FiveTuple, u64, PublicBinding)> = self
            .conns
            .iter()
            .map(|c| (c.tenant, c.tuple, c.packets, c.binding))
            .collect();
        out.sort_by_key(|a| (a.0, a.1));
        out
    }

    /// Finds or creates the entry, recomputing the allocation decision
    /// from scratch.
    fn bind_and_touch(
        &mut self,
        tenant: Vni,
        tuple: FiveTuple,
        signal: ConnSignal,
        now_ns: u64,
    ) -> Option<PublicBinding> {
        if let Some(conn) = self
            .conns
            .iter_mut()
            .find(|c| c.tenant == tenant && c.tuple == tuple)
        {
            conn.packets += 1;
            conn.last_seen_ns = now_ns;
            apply_signal_ref(conn, signal);
            self.counters.translations += 1;
            return Some(conn.binding);
        }
        let (block, port) = self.alloc_slot(tenant)?;
        let binding = PublicBinding {
            ip: self.config.pool.ip_of_block(block),
            port,
        };
        let mut conn = RefConn {
            tenant,
            tuple,
            block,
            binding,
            phase: TcpPhase::New,
            udp: tuple.protocol == IpProtocol::Udp,
            fins: 0,
            packets: 1,
            last_seen_ns: now_ns,
        };
        apply_signal_ref(&mut conn, signal);
        self.conns.push(conn);
        self.counters.translations += 1;
        self.counters.new_bindings += 1;
        Some(binding)
    }

    /// Recomputes the lowest free `(block, port)` for `tenant` from the
    /// flat live list. Counts the failure on exhaustion.
    fn alloc_slot(&mut self, tenant: Vni) -> Option<(u32, u16)> {
        let pool = self.config.pool;
        // Lowest free port inside a block the tenant already holds.
        let owned: BTreeSet<u32> = self
            .conns
            .iter()
            .filter(|c| c.tenant == tenant)
            .map(|c| c.block)
            .collect();
        for &block in &owned {
            let used: BTreeSet<u16> = self
                .conns
                .iter()
                .filter(|c| c.block == block)
                .map(|c| c.binding.port)
                .collect();
            let base = pool.base_port_of_block(block);
            for i in 0..pool.block_size {
                let port = base + i;
                if !used.contains(&port) {
                    return Some((block, port));
                }
            }
        }
        // Lowest block no live connection (of any tenant) holds.
        let held: BTreeSet<u32> = self.conns.iter().map(|c| c.block).collect();
        match (0..pool.total_blocks()).find(|b| !held.contains(b)) {
            Some(block) => Some((block, pool.base_port_of_block(block))),
            None => {
                self.counters.port_alloc_failures += 1;
                None
            }
        }
    }
}

/// Same coarse state machine as the incremental tracker.
fn apply_signal_ref(conn: &mut RefConn, signal: ConnSignal) {
    if conn.udp {
        return;
    }
    match signal {
        ConnSignal::Syn => {}
        ConnSignal::Payload => {
            if conn.phase == TcpPhase::New {
                conn.phase = TcpPhase::Established;
            }
        }
        ConnSignal::Fin => {
            conn.fins = conn.fins.saturating_add(1);
            conn.phase = if conn.fins >= 2 {
                TcpPhase::TimeWait
            } else {
                TcpPhase::Fin
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conntrack::ConnTracker;
    use crate::pool::PoolConfig;
    use core::net::Ipv4Addr;

    fn tenant(v: u32) -> Vni {
        Vni::from_const(v)
    }

    fn tuple(host: u8, port: u16) -> FiveTuple {
        FiveTuple::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, host)),
            "93.184.216.34".parse().unwrap(),
            IpProtocol::Tcp,
            port,
            443,
        )
    }

    #[test]
    fn reference_matches_tracker_on_a_small_trace() {
        let config = TrackerConfig::default();
        let mut tracker = ConnTracker::new(config);
        let mut reference = ReferenceSnat::new(config);
        for i in 0..20u16 {
            let t = tuple((i % 5) as u8, 40_000 + i);
            let vni = tenant(1 + u32::from(i % 3));
            let a = tracker.outbound(vni, t, ConnSignal::Syn, u64::from(i));
            let b = reference.outbound(vni, t, ConnSignal::Syn, u64::from(i));
            assert_eq!(a, b, "packet {i}");
        }
        assert_eq!(tracker.connections(), reference.connections());
        assert_eq!(tracker.counters(), reference.counters());
    }

    #[test]
    fn exhaustion_order_matches_tracker() {
        let config = TrackerConfig {
            pool: PoolConfig {
                external_ips: 1,
                port_lo: 1_024,
                port_hi: 1_024 + 3,
                block_size: 2,
                ..PoolConfig::default()
            },
            ..TrackerConfig::default()
        };
        let mut tracker = ConnTracker::new(config);
        let mut reference = ReferenceSnat::new(config);
        for i in 0..8u16 {
            let t = tuple(1, 30_000 + i);
            let a = tracker.outbound(tenant(1), t, ConnSignal::Syn, 0);
            let b = reference.outbound(tenant(1), t, ConnSignal::Syn, 0);
            assert_eq!(a, b, "conn {i}");
            if i >= 4 {
                assert_eq!(a, SnatVerdict::DropPortExhausted);
            }
        }
        assert_eq!(tracker.counters(), reference.counters());
    }

    #[test]
    fn expiry_rebuilds_identical_allocator_state() {
        let config = TrackerConfig::default();
        let mut tracker = ConnTracker::new(config);
        let mut reference = ReferenceSnat::new(config);
        for i in 0..10u16 {
            let t = tuple(1, 50_000 + i);
            tracker.outbound(tenant(7), t, ConnSignal::Syn, u64::from(i) * 1_000);
            reference.outbound(tenant(7), t, ConnSignal::Syn, u64::from(i) * 1_000);
        }
        // Age out the first half only.
        let cut = config.tcp_idle_ns + 4_000;
        assert_eq!(tracker.expire(cut), reference.expire(cut));
        assert_eq!(tracker.connections(), reference.connections());
        // New allocations reuse the freed low ports identically.
        let t = tuple(2, 60_000);
        assert_eq!(
            tracker.outbound(tenant(7), t, ConnSignal::Syn, cut),
            reference.outbound(tenant(7), t, ConnSignal::Syn, cut)
        );
    }
}
