//! Round-trip tests of the in-tree JSON reader/writer against every
//! real experiment record in `experiments/*.json` — the files the bench
//! binaries write and `repro_all` summarizes.

use std::path::PathBuf;

use sailfish_util::json::Json;

fn experiments_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/util; the workspace root is two up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("experiments");
    p
}

fn experiment_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(experiments_dir())
        .expect("experiments/ exists at the workspace root")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

/// Every record parses, and survives pretty- and compact-serialization
/// round trips unchanged.
#[test]
fn all_experiment_records_round_trip() {
    let files = experiment_files();
    assert!(
        files.len() >= 21,
        "expected the full experiment corpus, found {}",
        files.len()
    );
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed =
            Json::parse(&text).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        for (rendering, label) in [
            (parsed.to_pretty(), "pretty"),
            (parsed.to_compact(), "compact"),
        ] {
            let back = Json::parse(&rendering).unwrap_or_else(|e| {
                panic!(
                    "{} {label} rendering does not re-parse: {e}",
                    path.display()
                )
            });
            assert_eq!(
                back,
                parsed,
                "{} {label} round trip changed",
                path.display()
            );
        }
    }
}

/// Every record has the ExperimentRecord shape the tooling relies on:
/// string id/title and an array of {metric, paper, measured, holds}.
#[test]
fn all_experiment_records_have_expected_shape() {
    for path in experiment_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let v = Json::parse(&text).unwrap();
        let id = v.get("id").and_then(Json::as_str);
        assert!(id.is_some(), "{} missing id", path.display());
        assert_eq!(
            Some(format!("{}.json", id.unwrap())),
            path.file_name().map(|n| n.to_string_lossy().into_owned()),
            "file name and record id disagree"
        );
        assert!(v.get("title").and_then(Json::as_str).is_some());
        let comparisons = v.get("comparisons").and_then(Json::as_array).unwrap();
        assert!(
            !comparisons.is_empty(),
            "{} has no comparisons",
            path.display()
        );
        for c in comparisons {
            assert!(c.get("metric").and_then(Json::as_str).is_some());
            assert!(c.get("paper").and_then(Json::as_str).is_some());
            assert!(c.get("measured").and_then(Json::as_str).is_some());
            assert!(c.get("holds").and_then(Json::as_bool).is_some());
        }
    }
}

/// Re-serializing a parsed record in pretty form reproduces the on-disk
/// bytes (modulo a single trailing newline) — so records rewritten by a
/// rerun produce no spurious diffs.
#[test]
fn pretty_form_matches_on_disk_layout() {
    for path in experiment_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.to_pretty(),
            text.trim_end_matches('\n'),
            "{} would churn on rewrite",
            path.display()
        );
    }
}
