//! Determinism guarantees of the in-tree PRNG: identical seeds must
//! produce identical sequences across independent runs — the property
//! every experiment record and seed test in this workspace leans on.

use sailfish_util::rand::rngs::{SplitMix64, StdRng};
use sailfish_util::rand::{Rng, RngCore, SeedableRng};

/// Draws a mixed-type sequence exercising the whole generator surface.
fn mixed_sequence(seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..200 {
        out.push(format!("u64:{}", rng.gen::<u64>()));
        out.push(format!("u128:{}", rng.gen::<u128>()));
        out.push(format!("range:{}", rng.gen_range(0..1_000_000usize)));
        out.push(format!("incl:{}", rng.gen_range(0..=24u8)));
        out.push(format!("f64:{:.17}", rng.gen::<f64>()));
        out.push(format!("frange:{:.17}", rng.gen_range(0.6..1.1)));
        out.push(format!("bool:{}", rng.gen_bool(0.3)));
        let mut v: Vec<u32> = (0..16).collect();
        rng.shuffle(&mut v);
        out.push(format!("shuffle:{v:?}"));
        out.push(format!("sample:{:?}", rng.sample_indices(10, 3)));
    }
    out
}

/// Two generators with the same seed produce identical sequences across
/// two independent runs, for several seeds.
#[test]
fn identical_seeds_give_identical_sequences() {
    for seed in [0u64, 1, 42, 0x5a11_f154, u64::MAX] {
        assert_eq!(
            mixed_sequence(seed),
            mixed_sequence(seed),
            "seed {seed} diverged between runs"
        );
    }
}

/// Different seeds give different streams (no seed aliasing across the
/// values the workspace actually uses).
#[test]
fn distinct_seeds_give_distinct_sequences() {
    let seeds = [0u64, 1, 2, 7, 42, 77, 1234, 0xa1b2, 0xc3d4, 0x5a11_f154];
    let streams: Vec<Vec<String>> = seeds.iter().map(|s| mixed_sequence(*s)).collect();
    for i in 0..streams.len() {
        for j in i + 1..streams.len() {
            assert_ne!(
                streams[i], streams[j],
                "seeds {} and {} alias",
                seeds[i], seeds[j]
            );
        }
    }
}

/// The raw u64 streams are pinned to golden values: any change to the
/// generator algorithm or seeding path is a breaking change for every
/// recorded experiment, and must show up here first.
#[test]
fn stream_is_pinned_to_golden_values() {
    let mut sm = SplitMix64::seed_from_u64(0);
    let sm_first: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
    assert_eq!(
        sm_first,
        vec![0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f],
        "SplitMix64 stream changed"
    );

    // xoshiro256++ seeded through SplitMix64, matching the widely used
    // rand_xoshiro `seed_from_u64` construction, so sequences recorded
    // in experiments are reproducible by third parties too.
    let mut xo = StdRng::seed_from_u64(0);
    let xo_first: Vec<u64> = (0..4).map(|_| xo.next_u64()).collect();
    assert_eq!(
        xo_first,
        vec![
            0x53175d61490b23df,
            0x61da6f3dc380d507,
            0x5c0fdf91ec9a7bfc,
            0x02eebf8c3bbe5e1a,
        ],
        "xoshiro256++ stream for seed 0 changed"
    );

    let mut xo = StdRng::seed_from_u64(42);
    let xo42: Vec<u64> = (0..4).map(|_| xo.next_u64()).collect();
    assert_eq!(
        xo42,
        vec![
            0xd0764d4f4476689f,
            0x519e4174576f3791,
            0xfbe07cfb0c24ed8c,
            0xb37d9f600cd835b8,
        ],
        "xoshiro256++ stream for seed 42 changed"
    );
}
