//! A lightweight benchmark harness: warmup, timed samples, median/p99
//! ns-per-op, and a JSON report written with the in-tree writer.
//!
//! The API is shaped like the slice of criterion this workspace used —
//! groups, `bench_function`, `iter`/`iter_batched`, element/byte
//! throughput — so benches read the same, but everything runs in-tree
//! with zero dependencies and is tunable for CI smoke runs:
//!
//! * `SAILFISH_BENCH_SAMPLES` — timed samples per benchmark (default 20)
//! * `SAILFISH_BENCH_TARGET_MS` — target wall time per sample (default 5)
//! * `SAILFISH_BENCH_JSON` — if set, write the report to this path
//!
//! ```no_run
//! use sailfish_util::bench::Harness;
//!
//! let mut h = Harness::from_env("tables");
//! let mut g = h.group("lpm_lookup");
//! g.throughput_elements(1024);
//! g.bench_function("trie", |b| b.iter(|| 2 + 2));
//! g.finish();
//! h.finish();
//! ```

use std::time::{Duration, Instant};

use crate::json::Json;

/// What one iteration of a benchmark processes, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// `n` logical elements per iteration.
    Elements(u64),
    /// `n` bytes per iteration.
    Bytes(u64),
}

/// Summary statistics for one benchmark, in nanoseconds per operation.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Group name (empty for ungrouped benchmarks).
    pub group: String,
    /// Benchmark name.
    pub name: String,
    /// Samples actually timed.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Median ns/op across samples.
    pub median_ns: f64,
    /// 99th-percentile ns/op across samples (nearest-rank).
    pub p99_ns: f64,
    /// Fastest sample's ns/op.
    pub min_ns: f64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

impl Stats {
    fn full_name(&self) -> String {
        if self.group.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.group, self.name)
        }
    }

    /// Element- or byte-rate derived from the median, if declared.
    pub fn rate_per_sec(&self) -> Option<f64> {
        let per_iter = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
        };
        (self.median_ns > 0.0).then(|| per_iter * 1e9 / self.median_ns)
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::from(self.full_name())),
            ("samples".to_string(), Json::from(self.samples)),
            (
                "iters_per_sample".to_string(),
                Json::from(self.iters_per_sample),
            ),
            ("median_ns".to_string(), Json::Num(self.median_ns)),
            ("p99_ns".to_string(), Json::Num(self.p99_ns)),
            ("min_ns".to_string(), Json::Num(self.min_ns)),
        ];
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                fields.push(("elements_per_iter".to_string(), Json::from(n)));
            }
            Some(Throughput::Bytes(n)) => {
                fields.push(("bytes_per_iter".to_string(), Json::from(n)));
            }
            None => {}
        }
        if let Some(rate) = self.rate_per_sec() {
            fields.push(("rate_per_sec".to_string(), Json::Num(rate)));
        }
        Json::Object(fields)
    }
}

/// Tuning knobs, normally read from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Timed samples per benchmark.
    pub samples: usize,
    /// Target wall time per sample; iteration count is calibrated to it.
    pub target_sample_time: Duration,
    /// Warmup time before calibration.
    pub warmup: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            samples: 20,
            target_sample_time: Duration::from_millis(5),
            warmup: Duration::from_millis(20),
        }
    }
}

impl Config {
    /// Reads `SAILFISH_BENCH_SAMPLES` / `SAILFISH_BENCH_TARGET_MS`,
    /// falling back to defaults.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Some(s) = env_u64("SAILFISH_BENCH_SAMPLES") {
            cfg.samples = (s as usize).max(1);
        }
        if let Some(ms) = env_u64("SAILFISH_BENCH_TARGET_MS") {
            cfg.target_sample_time = Duration::from_millis(ms.max(1));
            cfg.warmup = Duration::from_millis(ms.max(1));
        }
        cfg
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Collects benchmarks, prints a summary table, optionally writes JSON.
pub struct Harness {
    suite: String,
    config: Config,
    results: Vec<Stats>,
}

impl Harness {
    /// Creates a harness for the named suite, tuned from the environment.
    pub fn from_env(suite: &str) -> Self {
        Harness {
            suite: suite.to_string(),
            config: Config::from_env(),
            results: Vec::new(),
        }
    }

    /// Creates a harness with explicit configuration.
    pub fn with_config(suite: &str, config: Config) -> Self {
        Harness {
            suite: suite.to_string(),
            config,
            results: Vec::new(),
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(String::new(), name.to_string(), None, f);
    }

    fn run_one<F>(&mut self, group: String, name: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            config: self.config.clone(),
            stats: None,
        };
        f(&mut b);
        let Some((samples_ns, iters)) = b.stats else {
            eprintln!("warning: benchmark {name} never called iter(); skipped");
            return;
        };
        let mut per_op: Vec<f64> = samples_ns
            .iter()
            .map(|ns| *ns as f64 / iters as f64)
            .collect();
        per_op.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let stats = Stats {
            group,
            name,
            samples: per_op.len(),
            iters_per_sample: iters,
            median_ns: percentile(&per_op, 50.0),
            p99_ns: percentile(&per_op, 99.0),
            min_ns: per_op[0],
            throughput,
        };
        let rate = stats
            .rate_per_sec()
            .map(|r| format!("  ({})", human_rate(r, stats.throughput)))
            .unwrap_or_default();
        println!(
            "{:<48} median {:>12}  p99 {:>12}{rate}",
            stats.full_name(),
            human_ns(stats.median_ns),
            human_ns(stats.p99_ns),
        );
        self.results.push(stats);
    }

    /// All collected results so far.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }

    /// Prints the closing line and honours `SAILFISH_BENCH_JSON`.
    pub fn finish(self) {
        println!(
            "\n{}: {} benchmarks, {} samples each",
            self.suite,
            self.results.len(),
            self.config.samples
        );
        if let Ok(path) = std::env::var("SAILFISH_BENCH_JSON") {
            let report = Json::Object(vec![
                ("suite".to_string(), Json::from(self.suite.clone())),
                (
                    "benchmarks".to_string(),
                    Json::Array(self.results.iter().map(Stats::to_json).collect()),
                ),
            ]);
            match std::fs::write(&path, report.to_pretty() + "\n") {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("warning: could not write {path}: {e}"),
            }
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    throughput: Option<Throughput>,
}

impl Group<'_> {
    /// Declares how many elements one iteration processes.
    pub fn throughput_elements(&mut self, n: u64) {
        self.throughput = Some(Throughput::Elements(n));
    }

    /// Declares how many bytes one iteration processes.
    pub fn throughput_bytes(&mut self, n: u64) {
        self.throughput = Some(Throughput::Bytes(n));
    }

    /// Benchmarks one routine within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.name.clone();
        let throughput = self.throughput;
        self.harness.run_one(group, name.to_string(), throughput, f);
    }

    /// Closes the group (drop also suffices; this mirrors criterion).
    pub fn finish(self) {}
}

/// Passed to the measured closure; times the routine it is given.
pub struct Bencher {
    config: Config,
    stats: Option<(Vec<u64>, u64)>,
}

impl Bencher {
    /// Measures `routine`, called in calibrated batches.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        // Warmup: run until the warmup budget elapses (at least once).
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= self.config.warmup {
                break;
            }
        }
        // Calibrate iterations per sample from the observed warmup rate.
        let per_iter = warmup_start.elapsed().as_nanos() / u128::from(warmup_iters);
        let target = self.config.target_sample_time.as_nanos();
        let iters = (target / per_iter.max(1)).clamp(1, u128::from(u32::MAX)) as u64;

        let mut samples = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        self.stats = Some((samples, iters));
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded by timing each call individually.
    pub fn iter_batched<S, R, Fs, Fr>(&mut self, mut setup: Fs, mut routine: Fr)
    where
        Fs: FnMut() -> S,
        Fr: FnMut(S) -> R,
    {
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        let mut measured_ns: u128 = 0;
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured_ns += start.elapsed().as_nanos();
            warmup_iters += 1;
            if warmup_start.elapsed() >= self.config.warmup {
                break;
            }
        }
        let per_iter = (measured_ns / u128::from(warmup_iters)).max(1);
        let target = self.config.target_sample_time.as_nanos();
        let iters = (target / per_iter).clamp(1, u128::from(u32::MAX)) as u64;

        let mut samples = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            let mut sample_ns: u128 = 0;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                sample_ns += start.elapsed().as_nanos();
            }
            samples.push(sample_ns.min(u128::from(u64::MAX)) as u64);
        }
        self.stats = Some((samples, iters));
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], pct: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human_rate(rate: f64, throughput: Option<Throughput>) -> String {
    let unit = match throughput {
        Some(Throughput::Bytes(_)) => "B/s",
        _ => "elem/s",
    };
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.0} {unit}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Config {
        Config {
            samples: 3,
            target_sample_time: Duration::from_micros(200),
            warmup: Duration::from_micros(100),
        }
    }

    #[test]
    fn measures_a_trivial_routine() {
        let mut h = Harness::with_config("selftest", quick_config());
        let mut g = h.group("g");
        g.throughput_elements(1);
        g.bench_function("add", |b| b.iter(|| std::hint::black_box(1u64) + 1));
        g.finish();
        assert_eq!(h.results().len(), 1);
        let s = &h.results()[0];
        assert_eq!(s.full_name(), "g/add");
        assert!(s.median_ns > 0.0);
        assert!(s.p99_ns >= s.median_ns);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.rate_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut h = Harness::with_config("selftest", quick_config());
        h.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 16],
                |v| v.iter().map(|x| *x as u64).sum::<u64>(),
            )
        });
        assert_eq!(h.results().len(), 1);
        assert!(h.results()[0].median_ns > 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 50.0), 2.0);
        assert_eq!(percentile(&data, 99.0), 4.0);
        assert_eq!(percentile(&data, 100.0), 4.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn stats_serialize_to_json() {
        let s = Stats {
            group: "g".into(),
            name: "n".into(),
            samples: 3,
            iters_per_sample: 10,
            median_ns: 5.0,
            p99_ns: 9.0,
            min_ns: 4.0,
            throughput: Some(Throughput::Elements(100)),
        };
        let j = s.to_json();
        assert_eq!(j.get("name").and_then(Json::as_str), Some("g/n"));
        assert_eq!(j.get("median_ns").and_then(Json::as_f64), Some(5.0));
        assert!(j.get("rate_per_sec").is_some());
    }
}
