//! A minimal JSON value type with a recursive-descent parser and a
//! writer whose pretty form matches the layout of the existing
//! `experiments/*.json` records (two-space indent, `"key": value`).
//!
//! This intentionally covers only what the workspace needs — experiment
//! records and bench reports — not the full spec's dark corners
//! (numbers are `f64`; no BOM handling; no duplicate-key policy beyond
//! last-write-wins on accessors).

use std::collections::BTreeMap;
use std::fmt;

/// One JSON value. Object keys keep insertion order so records
/// round-trip without churn.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

/// A parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where the problem was noticed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Compact serialization (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization: two-space indent, newline-terminated
    /// containers — the same shape `experiments/*.json` already uses.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Object field lookup (last occurrence wins on duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The fields as a key-sorted map (for order-insensitive comparison).
    pub fn as_map(&self) -> Option<BTreeMap<&str, &Json>> {
        match self {
            Json::Object(fields) => Some(fields.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Integral values print without a fractional part (`5`, not `5.0`) so
/// counters and ids stay readable; everything else uses the shortest
/// round-trippable form Rust's formatter produces.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the least-wrong spelling.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Json::Object(fields));
            }
            return Err(self.err("expected ',' or '}' in object"));
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Json::Array(items));
            }
            return Err(self.err("expected ',' or ']' in array"));
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar. The input came from a
                    // `&str` and we only advance past whole scalars, so
                    // `pos` is always on a character boundary.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).expect("input is valid UTF-8");
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            v = v << 4 | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        if self.eat(b'0') {
            // Leading zero admits no more integer digits.
        } else if matches!(self.peek(), Some(b'1'..=b'9')) {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        } else {
            return Err(self.err("expected digit"));
        }
        if self.eat(b'.') {
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("unparseable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_containers() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0], Json::Num(1.0));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("line\n\ttab \"quote\" back\\slash \u{1f41f}".into());
        let text = original.to_compact();
        assert_eq!(Json::parse(&text).unwrap(), original);
        // And explicit \u escapes parse, including surrogate pairs.
        assert_eq!(
            Json::parse(r#""\u0041\ud83d\udc1f""#).unwrap(),
            Json::Str("A\u{1f41f}".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\\ud800\"",
            "tru",
            "[1] x",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn pretty_matches_record_layout() {
        let v = Json::Object(vec![
            ("id".into(), Json::Str("x".into())),
            (
                "rows".into(),
                Json::Array(vec![Json::Object(vec![("ok".into(), Json::Bool(true))])]),
            ),
        ]);
        let expect = "{\n  \"id\": \"x\",\n  \"rows\": [\n    {\n      \"ok\": true\n    }\n  ]\n}";
        assert_eq!(v.to_pretty(), expect);
        assert_eq!(Json::parse(expect).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(5.0).to_compact(), "5");
        assert_eq!(Json::Num(-2.0).to_compact(), "-2");
        assert_eq!(Json::Num(0.25).to_compact(), "0.25");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }
}
