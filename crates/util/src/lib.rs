//! # sailfish-util
//!
//! The zero-dependency toolkit backing the Sailfish workspace's hermetic
//! offline build. Everything the workspace used to pull from crates.io
//! for experiments lives here instead, in-tree and deterministic:
//!
//! * [`rng`] — SplitMix64 and xoshiro256++ behind a `rand`-shaped
//!   facade ([`rand`]): `seed_from_u64`, `gen`, `gen_range`, `gen_bool`,
//!   `shuffle`, `choose`. Identical seeds give identical sequences on
//!   every platform and toolchain.
//! * [`json`] — a small JSON value type, parser and writer covering the
//!   `experiments/*.json` record format and bench reports.
//! * [`check`] — a seeded property-testing harness with replayable
//!   failure reporting (no shrinking; seeds are the repro).
//! * [`fuzz`] — a structure-aware byte-buffer mutator (field-offset
//!   maps, truncation/bit-flip/length-corruption/extension) for
//!   hostile-input testing of the wire parsers.
//! * [`mod@bench`] — warmup + calibrated samples + median/p99 ns/op, with
//!   JSON output, replacing the external bench framework.
//!
//! Policy: this workspace builds with `--offline` from an empty cargo
//! registry, so nothing here (or anywhere in the workspace) may depend
//! on external crates. See README "Building offline".

#![forbid(unsafe_code)]

pub mod bench;
pub mod check;
pub mod fuzz;
pub mod json;
pub mod rng;

/// Drop-in facade mirroring the slice of the `rand` crate API the
/// workspace uses, so call sites read identically:
///
/// ```
/// use sailfish_util::rand::rngs::StdRng;
/// use sailfish_util::rand::{Rng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let lane: usize = rng.gen_range(0..4);
/// assert!(lane < 4);
/// ```
pub mod rand {
    pub use crate::rng::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng, Standard};

    /// Named generators (the facade's `StdRng` is xoshiro256++).
    pub mod rngs {
        pub use crate::rng::{SplitMix64, Xoshiro256pp, Xoshiro256pp as StdRng};
    }
}
