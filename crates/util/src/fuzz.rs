//! Structure-aware frame mutation for parser hardening tests.
//!
//! Random byte soup almost never exercises the interesting failure modes
//! of a protocol parser: the length-field lies, the off-by-one header
//! cuts, the version nibbles that select the wrong parse path. This
//! module mutates *valid* frames using a map of where the interesting
//! fields live ([`FieldSpec`]), so every mutation lands on a decision
//! point the parser actually takes:
//!
//! - **truncate** at a uniformly chosen cut (every header boundary and
//!   every mid-field cut gets hit across a seeded run),
//! - **bit-flip** inside a declared field (versions, flags, protocols),
//! - **overwrite** a declared field with an adversarial byte pattern
//!   (`0x00`, `0xFF`, or random),
//! - **corrupt a length field** specifically — the classic
//!   lying-total-length / lying-IHL / lying-UDP-length attacks, and
//! - **extend** the frame with trailing garbage (parsers must delimit by
//!   declared lengths, not buffer size).
//!
//! The mutator is deterministic: the same seed over the same base frame
//! yields the same mutants, so a corpus run is replayable with the seed
//! alone (the [`crate::check`] convention).

use crate::rng::{Rng, RngCore};

/// One mutation-worthy region of a frame, by offset.
#[derive(Debug, Clone, Copy)]
pub struct FieldSpec {
    /// Byte offset of the field in the frame.
    pub offset: usize,
    /// Field width in bytes.
    pub len: usize,
    /// Whether the field encodes a length/size the parser trusts to
    /// delimit a region (these get targeted corruption).
    pub is_length: bool,
}

impl FieldSpec {
    /// A non-length field at `offset` of `len` bytes.
    pub fn new(offset: usize, len: usize) -> Self {
        FieldSpec {
            offset,
            len,
            is_length: false,
        }
    }

    /// A length-carrying field at `offset` of `len` bytes.
    pub fn length(offset: usize, len: usize) -> Self {
        FieldSpec {
            offset,
            len,
            is_length: true,
        }
    }
}

/// What one mutation did — recorded so failures can be described.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Frame cut to `len` bytes.
    Truncate {
        /// Post-truncation length.
        len: usize,
    },
    /// One bit flipped at `offset`.
    BitFlip {
        /// Target byte offset.
        offset: usize,
    },
    /// Byte at `offset` overwritten with `value`.
    SetByte {
        /// Target byte offset.
        offset: usize,
        /// The written value.
        value: u8,
    },
    /// A declared length field rewritten to a hostile value.
    CorruptLength {
        /// Field offset.
        offset: usize,
    },
    /// `extra` garbage bytes appended.
    Extend {
        /// Appended byte count.
        extra: usize,
    },
}

/// A seeded, structure-aware mutator over one base frame layout.
#[derive(Debug, Clone)]
pub struct FrameMutator {
    fields: Vec<FieldSpec>,
}

impl FrameMutator {
    /// Builds a mutator that aims at `fields` (offsets into the base
    /// frame). An empty field map still yields truncations/extensions.
    pub fn new(fields: Vec<FieldSpec>) -> Self {
        FrameMutator { fields }
    }

    /// Produces one mutant of `base`, applying 1–3 stacked mutations.
    /// Returns the mutant and the list of mutations applied, in order.
    pub fn mutate<R: RngCore>(&self, rng: &mut R, base: &[u8]) -> (Vec<u8>, Vec<Mutation>) {
        let mut frame = base.to_vec();
        let rounds = rng.gen_range(1..=3usize);
        let mut applied = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let m = self.mutate_once(rng, &mut frame);
            applied.push(m);
        }
        (frame, applied)
    }

    fn mutate_once<R: RngCore>(&self, rng: &mut R, frame: &mut Vec<u8>) -> Mutation {
        // Weight the strategies so length attacks and truncations — the
        // historically panic-prone classes — dominate.
        let pick = rng.gen_range(0..10u32);
        match pick {
            0..=2 => {
                let len = if frame.is_empty() {
                    0
                } else {
                    rng.gen_range(0..frame.len())
                };
                frame.truncate(len);
                Mutation::Truncate { len }
            }
            3..=5 => {
                if let Some(field) = self.pick_length_field(rng) {
                    self.corrupt_length(rng, frame, field)
                } else {
                    self.flip_somewhere(rng, frame)
                }
            }
            6..=7 => self.flip_somewhere(rng, frame),
            8 => {
                let (offset, value) = match self.pick_field(rng) {
                    Some(f) if f.len > 0 && f.offset < frame.len() => {
                        let o = f.offset + rng.gen_range(0..f.len).min(f.len - 1);
                        (o.min(frame.len().saturating_sub(1)), hostile_byte(rng))
                    }
                    _ if !frame.is_empty() => (rng.gen_range(0..frame.len()), hostile_byte(rng)),
                    _ => (0, 0),
                };
                if let Some(b) = frame.get_mut(offset) {
                    *b = value;
                }
                Mutation::SetByte { offset, value }
            }
            _ => {
                let extra = rng.gen_range(1..=64usize);
                for _ in 0..extra {
                    frame.push(rng.gen::<u8>());
                }
                Mutation::Extend { extra }
            }
        }
    }

    fn pick_field<R: RngCore>(&self, rng: &mut R) -> Option<FieldSpec> {
        rng.choose(&self.fields).copied()
    }

    fn pick_length_field<R: RngCore>(&self, rng: &mut R) -> Option<FieldSpec> {
        let lengths: Vec<FieldSpec> = self
            .fields
            .iter()
            .filter(|f| f.is_length)
            .copied()
            .collect();
        rng.choose(&lengths).copied()
    }

    fn corrupt_length<R: RngCore>(
        &self,
        rng: &mut R,
        frame: &mut [u8],
        field: FieldSpec,
    ) -> Mutation {
        // Length lies come in three flavors: zero (degenerate), maximal
        // (overrun), and off-by-a-little (the subtle overlap case).
        for (i, byte) in (field.offset..field.offset + field.len).enumerate() {
            let Some(b) = frame.get_mut(byte) else { break };
            *b = match rng.gen_range(0..3u32) {
                0 => 0x00,
                1 => 0xFF,
                _ => {
                    if i + 1 == field.len {
                        b.wrapping_add(rng.gen_range(1..=8u8))
                    } else {
                        *b
                    }
                }
            };
        }
        Mutation::CorruptLength {
            offset: field.offset,
        }
    }

    fn flip_somewhere<R: RngCore>(&self, rng: &mut R, frame: &mut [u8]) -> Mutation {
        let offset = match self.pick_field(rng) {
            Some(f) if f.len > 0 && f.offset < frame.len() => {
                (f.offset + rng.gen_range(0..f.len)).min(frame.len() - 1)
            }
            _ if !frame.is_empty() => rng.gen_range(0..frame.len()),
            _ => return Mutation::BitFlip { offset: 0 },
        };
        if let Some(b) = frame.get_mut(offset) {
            *b ^= 1 << rng.gen_range(0..8u32);
        }
        Mutation::BitFlip { offset }
    }
}

fn hostile_byte<R: RngCore>(rng: &mut R) -> u8 {
    match rng.gen_range(0..3u32) {
        0 => 0x00,
        1 => 0xFF,
        _ => rng.gen::<u8>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, Xoshiro256pp};

    fn fields() -> Vec<FieldSpec> {
        vec![
            FieldSpec::new(12, 2),
            FieldSpec::length(14, 1),
            FieldSpec::length(16, 2),
            FieldSpec::new(23, 1),
        ]
    }

    #[test]
    fn same_seed_same_mutants() {
        let base: Vec<u8> = (0..64u8).collect();
        let mutator = FrameMutator::new(fields());
        let mut a = Xoshiro256pp::seed_from_u64(9);
        let mut b = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..200 {
            assert_eq!(mutator.mutate(&mut a, &base), mutator.mutate(&mut b, &base));
        }
    }

    #[test]
    fn mutants_differ_from_base_almost_always() {
        let base: Vec<u8> = (0..64u8).collect();
        let mutator = FrameMutator::new(fields());
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let changed = (0..500)
            .filter(|_| mutator.mutate(&mut rng, &base).0 != base)
            .count();
        // A rare no-op can slip through stacked mutations (e.g. two flips
        // of the same bit); the overwhelming majority must differ.
        assert!(changed > 480, "only {changed}/500 mutants differed");
    }

    #[test]
    fn covers_every_mutation_class() {
        let base: Vec<u8> = (0..64u8).collect();
        let mutator = FrameMutator::new(fields());
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut saw = [false; 5];
        for _ in 0..500 {
            let (_, applied) = mutator.mutate(&mut rng, &base);
            for m in applied {
                let idx = match m {
                    Mutation::Truncate { .. } => 0,
                    Mutation::BitFlip { .. } => 1,
                    Mutation::SetByte { .. } => 2,
                    Mutation::CorruptLength { .. } => 3,
                    Mutation::Extend { .. } => 4,
                };
                saw[idx] = true;
            }
        }
        assert_eq!(saw, [true; 5], "mutation classes missing: {saw:?}");
    }

    #[test]
    fn empty_field_map_still_mutates() {
        let base: Vec<u8> = (0..32u8).collect();
        let mutator = FrameMutator::new(Vec::new());
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..200 {
            let (frame, applied) = mutator.mutate(&mut rng, &base);
            assert!(!applied.is_empty());
            // Extensions are bounded, truncations shrink.
            assert!(frame.len() <= base.len() + 3 * 64);
        }
    }
}
