//! Deterministic, dependency-free pseudo-random number generation.
//!
//! Two classic generators — SplitMix64 (seed expansion, stateless jumps)
//! and xoshiro256++ (the workhorse stream) — behind a facade that mirrors
//! the tiny slice of the `rand` crate API this workspace uses:
//! `seed_from_u64`, `gen`, `gen_range`, `gen_bool`, `shuffle`, `choose`.
//! Sequences are stable across runs, platforms and Rust versions: the
//! whole point is that every experiment in `experiments/` is replayable
//! from its seed alone.

use core::ops::{Range, RangeInclusive};

/// Minimal generator core: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (upper half of a
    /// 64-bit draw, which are the strongest bits of xoshiro256++).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 128 uniformly distributed bits.
    fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }
}

/// SplitMix64: a tiny, fast, well-distributed 64-bit generator. Used for
/// seed expansion (as Blackman & Vigna recommend) and wherever a single
/// cheap stateless stream is enough.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019): 256 bits of state, period
/// 2^256 − 1, passes BigCrush. The default stream for all workloads.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl RngCore for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Construction from a 64-bit seed (the only seeding form the workspace
/// uses). Matches `rand::SeedableRng::seed_from_u64` in spirit.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl SeedableRng for Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through SplitMix64 so similar seeds yield
        // uncorrelated states, and the all-zero state is unreachable.
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

/// Types that `Rng::gen` can produce from raw bits.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn generate<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<G: RngCore + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn generate<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u128()
    }
}

impl Standard for i128 {
    fn generate<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u128() as i128
    }
}

impl Standard for bool {
    fn generate<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn generate<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn generate<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types `gen_range` can sample uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[low, high)` — or `[low, high]` when `inclusive`.
    fn sample_between<G: RngCore + ?Sized>(
        rng: &mut G,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Uniform draw in `[0, span)` without modulo bias for spans that fit in
/// 64 bits (fixed-point multiply); 128-bit spans fall back to modulo,
/// whose bias is immeasurable at the span sizes this workspace uses.
fn draw_below<G: RngCore + ?Sized>(rng: &mut G, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u128::from(u64::MAX) {
        (u128::from(rng.next_u64()) * span) >> 64
    } else {
        rng.next_u128() % span
    }
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore + ?Sized>(
                rng: &mut G,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range: empty range");
                } else {
                    assert!(low < high, "gen_range: empty range");
                }
                // Width of the range as an unsigned offset; signed types
                // map through wrapping arithmetic (two's complement).
                let width = (high as $u).wrapping_sub(low as $u);
                let span = (width as u128).wrapping_add(u128::from(inclusive));
                if span == 0 || span > <$u>::MAX as u128 {
                    // Full-width inclusive range: every bit pattern is fair.
                    return <$t>::generate(rng);
                }
                let draw = draw_below(rng, span) as $u;
                (low as $u).wrapping_add(draw) as $t
            }
        }
    )*}
}
uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, u128 => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128
);

impl SampleUniform for f64 {
    fn sample_between<G: RngCore + ?Sized>(
        rng: &mut G,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = f64::generate(rng);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_between<G: RngCore + ?Sized>(
        rng: &mut G,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = f32::generate(rng);
        low + unit * (high - low)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (low, high) = self.into_inner();
        T::sample_between(rng, low, high, true)
    }
}

/// The user-facing generator surface, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of the inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// Draws uniformly from `low..high` or `low..=high`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Picks one element uniformly, or `None` from an empty slice.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// Samples `k` indices from `0..n` without replacement (partial
    /// Fisher–Yates over an index vector; `k` is clamped to `n`).
    fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize>
    where
        Self: Sized,
    {
        let mut idx: Vec<usize> = (0..n).collect();
        let k = k.min(n);
        for i in 0..k {
            let j = self.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // First three outputs for seed 0, from the public-domain
        // reference implementation (Vigna, splitmix64.c).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(sm.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(sm.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn xoshiro_streams_differ_by_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(0..=24);
            assert!(w <= 24);
            let f = rng.gen_range(0.6..1.1);
            assert!((0.6..1.1).contains(&f));
            let x = rng.gen_range(0..1u128 << 90);
            assert!(x < 1u128 << 90);
        }
    }

    #[test]
    fn gen_range_covers_small_span() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_and_sample_indices() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        assert!(rng.choose::<u8>(&[]).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));
        let s = rng.sample_indices(10, 4);
        assert_eq!(s.len(), 4);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 4, "no repeats: {s:?}");
    }

    #[test]
    fn full_width_inclusive_range_does_not_panic() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: u8 = rng.gen_range(0..=u8::MAX);
    }
}
