//! A tiny seeded property-testing harness.
//!
//! Each property runs many generated cases from a deterministic PRNG
//! stream. On failure the harness reports the case number and the exact
//! seed so the failure replays with zero search: re-run with
//! `SAILFISH_CHECK_SEED=<seed>` (and `SAILFISH_CHECK_CASES=1`). There is
//! deliberately no shrinking — cases are cheap and seeds are stable, so
//! replaying the reported seed under a debugger is the workflow.
//!
//! ```
//! use sailfish_util::check;
//! use sailfish_util::rand::Rng;
//!
//! check::run("addition_commutes", 64, |rng| {
//!     let (a, b) = (rng.gen_range(0..1000u32), rng.gen_range(0..1000u32));
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{self, AssertUnwindSafe};

use crate::rng::{Rng, RngCore, SeedableRng, Xoshiro256pp};

/// Environment variable overriding the number of cases for every
/// property (e.g. `SAILFISH_CHECK_CASES=10000` for a soak run, `=1` with
/// a pinned seed for replay).
pub const CASES_ENV: &str = "SAILFISH_CHECK_CASES";

/// Environment variable pinning the base seed of case 0. Set it to the
/// seed a failure report printed to replay that exact case.
pub const SEED_ENV: &str = "SAILFISH_CHECK_SEED";

/// Stable 64-bit FNV-1a, used to give every property its own stream.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// The seed for `case` of the property named `name`, honouring
/// [`SEED_ENV`]. Exposed so replay tooling can precompute streams.
pub fn case_seed(name: &str, case: u64) -> u64 {
    let base = env_u64(SEED_ENV).unwrap_or_else(|| fnv1a(name));
    // Seeds of consecutive cases go through SplitMix64 inside
    // `seed_from_u64`, so a simple add yields uncorrelated streams.
    base.wrapping_add(case)
}

/// Runs `property` against `default_cases` generated cases (overridable
/// via [`CASES_ENV`]). Panics — preserving the original assertion
/// message — after reporting the failing case number and seed.
pub fn run<F>(name: &str, default_cases: u64, mut property: F)
where
    F: FnMut(&mut Xoshiro256pp),
{
    let cases = env_u64(CASES_ENV).unwrap_or(default_cases).max(1);
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} (seed {seed:#018x}).\n\
                 Replay with: {SEED_ENV}={seed} {CASES_ENV}=1 cargo test {name}"
            );
            panic::resume_unwind(payload);
        }
    }
}

/// Generates a `Vec` whose length is drawn from `len_range` and whose
/// elements come from `element` — the workhorse for "arbitrary sequence
/// of operations" properties.
pub fn vec_of<T, R, F>(rng: &mut R, len_range: core::ops::Range<usize>, mut element: F) -> Vec<T>
where
    R: RngCore,
    F: FnMut(&mut R) -> T,
{
    let len = rng.gen_range(len_range);
    (0..len).map(|_| element(rng)).collect()
}

/// Picks one of `n` alternatives (uniformly) — the analogue of a
/// `prop_oneof!` over equally weighted variants.
pub fn one_of<R: RngCore>(rng: &mut R, n: usize) -> usize {
    rng.gen_range(0..n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case() {
        let mut count = 0u64;
        run("counts_cases", 37, |_| count += 1);
        // An env override may raise the count, never lower it below 1.
        assert!(count == 37 || std::env::var(CASES_ENV).is_ok());
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = Vec::new();
        run("stream_probe", 3, |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        run("stream_probe", 3, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
        let mut c = Vec::new();
        run("stream_probe_other", 3, |rng| c.push(rng.next_u64()));
        assert_ne!(a, c);
    }

    #[test]
    fn failure_reports_and_repanics() {
        let result = panic::catch_unwind(|| {
            run("always_fails", 5, |_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..100 {
            let v = vec_of(&mut rng, 1..120, |r| r.next_u64());
            assert!((1..120).contains(&v.len()));
        }
    }
}
