//! # sailfish-asic
//!
//! A resource-exact model of a Tofino-class programmable switching ASIC.
//!
//! The paper's headline results are about fitting multi-tenant forwarding
//! state into on-chip memory; this crate models exactly the constraints
//! that make that hard (§3.2–§3.3):
//!
//! - four independent pipelines, each with its own parser → 12 match-action
//!   stages → deparser, in both ingress and egress directions
//!   ([`config::TofinoConfig`]),
//! - per-stage SRAM/TCAM block inventories that no other stage or pipeline
//!   can access ([`mem`]),
//! - metadata (PHV) that is shared within a gress but cannot cross from
//!   ingress to egress without *bridging* bytes onto the packet
//!   ([`phv`]),
//! - loopback ports enabling **pipeline folding** — trading half the
//!   throughput and double the latency for twice the memory
//!   ([`placement::FoldStep`]),
//! - a calibrated cost model translating logical table shapes into SRAM
//!   words and TCAM slice-rows ([`cost`]), reproducing Table 2 / Table 3 /
//!   Fig 17 of the paper from first principles,
//! - the forwarding-performance envelope (throughput, packet rate,
//!   latency) of [`perf`], reproducing Fig 18.

#![forbid(unsafe_code)]
// Non-test code must not `unwrap()` (see clippy.toml `disallowed-methods`);
// CI's `-D warnings` escalates this to deny. Test builds carry `cfg(test)`
// and keep their unwraps.
#![cfg_attr(not(test), warn(clippy::disallowed_methods))]

pub mod config;
pub mod cost;
pub mod error;
pub mod mem;
pub mod perf;
pub mod phv;
pub mod placement;
pub mod verify;

pub use config::TofinoConfig;
pub use cost::{MatchKind, MemCost, Storage, TableSpec};
pub use error::{Error, Result};
pub use placement::{FoldStep, Layout, PlacedTable};
pub use verify::world::{
    certify, structure_diagnostics, trusted_certificate, verify_plan, verify_world, CapacityModel,
    CapacityVerdict, DeltaStats, EntryBudget, MoveStage, TransitionPlan, WorldCertificate,
    WorldDiagnostic, WorldModel, WorldMove, WorldOptions, WorldReport, WorldUnit,
};
pub use verify::{Diagnostic, LintCode, Report, Severity, VerifyOptions};
