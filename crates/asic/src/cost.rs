//! The table cost model: logical table shape → on-chip memory.
//!
//! Cost rules (calibrated once against Table 2, then reused everywhere —
//! Fig 17, Table 3 and Table 4 are all *derived* through these rules):
//!
//! - **Ternary/LPM in TCAM**: an entry of `key_bits` occupies
//!   `ceil(key_bits / 44)` chained slice-rows.
//! - **Exact match in SRAM**: an entry stores key + action + overhead
//!   bits in `ceil(bits / 128)` words; keys wider than one word pay the
//!   Tofino wide-word packing penalty (×2); the whole table is divided by
//!   the hash utilization (0.8) because cuckoo ways cannot be filled
//!   completely.
//! - **ALPM**: the first level pays TCAM for one covering prefix per
//!   partition; the second level pays SRAM for *allocated* bucket slots
//!   (entries-per-slot words each), so partial fills cost real memory —
//!   exactly the paper's "slightly ... more SRAM usage" trade.

use crate::config::TofinoConfig;
use crate::error::{Error, Result};
use crate::mem::MemAmount;

/// How a table matches its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Exact match (hash table in SRAM).
    Exact,
    /// Longest-prefix match.
    Lpm,
    /// General ternary match.
    Ternary,
}

/// Where and how the table is stored on chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Storage {
    /// Directly in TCAM (native LPM/ternary).
    Tcam,
    /// Hash table in SRAM (exact match only).
    SramHash,
    /// Two-level ALPM: TCAM index + SRAM buckets.
    Alpm {
        /// Covering prefixes installed in the first-level TCAM.
        tcam_index_entries: usize,
        /// Total second-level bucket slots allocated (≥ entries).
        allocated_slots: usize,
    },
    /// Direct-indexed SRAM (counters, meters, registers): one cell per
    /// entry, no hash overhead.
    SramDirect,
}

/// The shape of one logical table instance.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name for diagnostics.
    pub name: String,
    /// Match kind (consistency-checked against storage).
    pub match_kind: MatchKind,
    /// Match key width in bits.
    pub key_bits: u32,
    /// Action/result data width in bits.
    pub action_bits: u32,
    /// Number of entries.
    pub entries: usize,
    /// Chosen storage.
    pub storage: Storage,
}

/// Memory cost of a table (alias of [`MemAmount`] for readability).
pub type MemCost = MemAmount;

impl TableSpec {
    /// Builds a spec, validating internal consistency.
    pub fn new(
        name: impl Into<String>,
        match_kind: MatchKind,
        key_bits: u32,
        action_bits: u32,
        entries: usize,
        storage: Storage,
    ) -> Result<Self> {
        if key_bits == 0 {
            return Err(Error::InvalidSpec("zero-width key"));
        }
        match (match_kind, storage) {
            (MatchKind::Exact, Storage::SramHash | Storage::SramDirect) => {}
            (MatchKind::Lpm | MatchKind::Ternary, Storage::Tcam) => {}
            (MatchKind::Lpm, Storage::Alpm { .. }) => {}
            _ => return Err(Error::InvalidSpec("storage incompatible with match kind")),
        }
        if let Storage::Alpm {
            tcam_index_entries,
            allocated_slots,
        } = storage
        {
            if allocated_slots < entries || tcam_index_entries > entries.max(1) {
                return Err(Error::InvalidSpec("inconsistent ALPM layout numbers"));
            }
        }
        Ok(TableSpec {
            name: name.into(),
            match_kind,
            key_bits,
            action_bits,
            entries,
            storage,
        })
    }

    /// SRAM words one stored record occupies (key+action+overhead, wide-key
    /// penalty applied) — before hash-utilization division.
    pub fn words_per_record(&self, config: &TofinoConfig) -> u32 {
        let bits = self.key_bits + self.action_bits + config.entry_overhead_bits;
        let words = bits.div_ceil(config.sram_word_bits);
        if self.key_bits > config.sram_word_bits {
            words * config.wide_key_word_multiplier
        } else {
            words
        }
    }

    /// Memory this table occupies in one physical copy.
    pub fn cost(&self, config: &TofinoConfig) -> MemCost {
        match self.storage {
            Storage::Tcam => MemAmount {
                sram_words: 0,
                tcam_rows: self.entries * config.tcam_slices_for(self.key_bits) as usize,
            },
            Storage::SramHash => {
                let raw = self.entries as u64 * u64::from(self.words_per_record(config));
                let adjusted = (raw as f64 / config.exact_hash_utilization).ceil() as usize;
                MemAmount {
                    sram_words: adjusted,
                    tcam_rows: 0,
                }
            }
            Storage::SramDirect => {
                let bits = self.key_bits + self.action_bits;
                let words = bits.div_ceil(config.sram_word_bits) as usize;
                MemAmount {
                    sram_words: self.entries * words,
                    tcam_rows: 0,
                }
            }
            Storage::Alpm {
                tcam_index_entries,
                allocated_slots,
            } => {
                // Each bucket slot stores prefix (key_bits) + prefix length
                // (8) + action + valid overhead.
                let slot_bits = self.key_bits + 8 + self.action_bits + config.entry_overhead_bits;
                let words = slot_bits.div_ceil(config.sram_word_bits) as usize;
                MemAmount {
                    sram_words: allocated_slots * words,
                    tcam_rows: tcam_index_entries * config.tcam_slices_for(self.key_bits) as usize,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Occupancy;

    fn cfg() -> TofinoConfig {
        TofinoConfig::tofino_64t()
    }

    /// Table 2, row 1: the VXLAN routing table (IPv4) at the calibrated
    /// region scale occupies ~311% of one pipeline's TCAM.
    #[test]
    fn table2_vxlan_ipv4() {
        let spec = TableSpec::new(
            "vxlan-v4",
            MatchKind::Lpm,
            24 + 32,
            32,
            229_300,
            Storage::Tcam,
        )
        .unwrap();
        let occ = Occupancy::of(spec.cost(&cfg()), &cfg());
        assert_eq!(occ.tcam_pct.round() as i64, 311);
        assert_eq!(occ.sram_pct, 0.0);
    }

    /// Table 2, row 1 (IPv6): ~622% TCAM.
    #[test]
    fn table2_vxlan_ipv6() {
        let spec = TableSpec::new(
            "vxlan-v6",
            MatchKind::Lpm,
            24 + 128,
            32,
            229_300,
            Storage::Tcam,
        )
        .unwrap();
        let occ = Occupancy::of(spec.cost(&cfg()), &cfg());
        assert_eq!(occ.tcam_pct.round() as i64, 622);
    }

    /// Table 2, row 2: VM-NC mapping, IPv4 ~58% SRAM, IPv6 ~233%.
    #[test]
    fn table2_vm_nc() {
        let v4 = TableSpec::new(
            "vmnc-v4",
            MatchKind::Exact,
            24 + 32,
            32,
            459_000,
            Storage::SramHash,
        )
        .unwrap();
        let occ = Occupancy::of(v4.cost(&cfg()), &cfg());
        assert_eq!(occ.sram_pct.round() as i64, 58);

        let v6 = TableSpec::new(
            "vmnc-v6",
            MatchKind::Exact,
            24 + 128,
            32,
            459_000,
            Storage::SramHash,
        )
        .unwrap();
        let occ = Occupancy::of(v6.cost(&cfg()), &cfg());
        assert_eq!(occ.sram_pct.round() as i64, 233);
    }

    #[test]
    fn wide_key_penalty_applies_above_one_word() {
        let c = cfg();
        let narrow = TableSpec::new("n", MatchKind::Exact, 56, 32, 1, Storage::SramHash).unwrap();
        assert_eq!(narrow.words_per_record(&c), 1);
        let wide = TableSpec::new("w", MatchKind::Exact, 152, 32, 1, Storage::SramHash).unwrap();
        // ceil(188/128)=2 words, ×2 wide-key penalty = 4.
        assert_eq!(wide.words_per_record(&c), 4);
    }

    #[test]
    fn alpm_cost_shape() {
        let c = cfg();
        let spec = TableSpec::new(
            "alpm",
            MatchKind::Lpm,
            152,
            32,
            1_000,
            Storage::Alpm {
                tcam_index_entries: 100,
                allocated_slots: 1_600,
            },
        )
        .unwrap();
        let cost = spec.cost(&c);
        // 100 index entries × 4 slices.
        assert_eq!(cost.tcam_rows, 400);
        // slot bits = 152+8+32+4 = 196 -> 2 words × 1600 slots.
        assert_eq!(cost.sram_words, 3_200);
    }

    #[test]
    fn spec_validation() {
        assert!(TableSpec::new("x", MatchKind::Exact, 0, 0, 1, Storage::SramHash).is_err());
        assert!(TableSpec::new("x", MatchKind::Exact, 8, 0, 1, Storage::Tcam).is_err());
        assert!(TableSpec::new("x", MatchKind::Ternary, 8, 0, 1, Storage::SramHash).is_err());
        assert!(TableSpec::new(
            "x",
            MatchKind::Lpm,
            8,
            0,
            100,
            Storage::Alpm {
                tcam_index_entries: 10,
                allocated_slots: 50 // fewer slots than entries
            }
        )
        .is_err());
    }

    #[test]
    fn direct_storage_has_no_hash_overhead() {
        let c = cfg();
        let spec =
            TableSpec::new("ctr", MatchKind::Exact, 32, 64, 1024, Storage::SramDirect).unwrap();
        assert_eq!(spec.cost(&c).sram_words, 1024);
    }
}
