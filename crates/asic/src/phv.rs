//! Packet-header-vector (metadata) budgeting.
//!
//! "We notice that the on-chip PHV resources where metadata is stored are
//! also scarce, although they have not been exhausted yet" (§6.2). The
//! gateway program declares its metadata fields against a fixed budget;
//! exceeding it is a compile-time error on real hardware and an `Err`
//! here.

use crate::config::TofinoConfig;
use crate::error::{Error, Result};

/// One declared metadata field.
#[derive(Debug, Clone)]
pub struct PhvField {
    /// Field name (diagnostics only).
    pub name: String,
    /// Width in bits.
    pub bits: u32,
}

/// A per-gress PHV allocation ledger.
#[derive(Debug, Clone)]
pub struct PhvBudget {
    capacity_bits: u32,
    fields: Vec<PhvField>,
    used_bits: u32,
}

impl PhvBudget {
    /// Creates a budget from the chip config.
    pub fn new(config: &TofinoConfig) -> Self {
        PhvBudget {
            capacity_bits: config.phv_bits,
            fields: Vec::new(),
            used_bits: 0,
        }
    }

    /// Declares a metadata field, failing when the budget is exhausted.
    pub fn declare(&mut self, name: impl Into<String>, bits: u32) -> Result<()> {
        if self.used_bits + bits > self.capacity_bits {
            return Err(Error::PhvExhausted);
        }
        self.used_bits += bits;
        self.fields.push(PhvField {
            name: name.into(),
            bits,
        });
        Ok(())
    }

    /// Bits currently allocated.
    pub fn used_bits(&self) -> u32 {
        self.used_bits
    }

    /// Fraction of the budget in use.
    pub fn utilization(&self) -> f64 {
        f64::from(self.used_bits) / f64::from(self.capacity_bits)
    }

    /// The declared fields.
    pub fn fields(&self) -> &[PhvField] {
        &self.fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_until_exhausted() {
        let cfg = TofinoConfig::tofino_64t();
        let mut b = PhvBudget::new(&cfg);
        b.declare("vni", 24).unwrap();
        b.declare("scope", 8).unwrap();
        assert_eq!(b.used_bits(), 32);
        assert!(b.utilization() > 0.0);
        assert_eq!(b.fields().len(), 2);
        // Exhaust it.
        assert!(matches!(
            b.declare("huge", cfg.phv_bits),
            Err(Error::PhvExhausted)
        ));
        // The failed declaration must not leak into the ledger.
        assert_eq!(b.used_bits(), 32);
    }

    #[test]
    fn exact_fit_is_allowed() {
        let cfg = TofinoConfig::tofino_64t();
        let mut b = PhvBudget::new(&cfg);
        b.declare("all", cfg.phv_bits).unwrap();
        assert!((b.utilization() - 1.0).abs() < 1e-12);
    }
}
