//! Error type for placement and resource accounting.

use core::fmt;

/// Errors produced by the ASIC model.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A placement does not fit the per-pipe memory inventory.
    DoesNotFit {
        /// Human-readable description of the violated resource.
        detail: String,
    },
    /// A placement violates the folded lookup order (a table would be
    /// visited before one of its predecessors).
    OrderViolation {
        /// The offending table's name.
        table: String,
    },
    /// The PHV budget is exhausted.
    PhvExhausted,
    /// A table spec is internally inconsistent (zero-width key, etc.).
    InvalidSpec(&'static str),
    /// The same table name is placed more than once with fractions that
    /// over-commit its entry set (a double install, not cross-pipe
    /// mapping).
    DuplicateTable {
        /// The offending table's name.
        table: String,
    },
    /// A table is placed in a gress that does not exist in the layout's
    /// fold configuration (e.g. a loop step without folding).
    GressViolation {
        /// The offending table's name.
        table: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DoesNotFit { detail } => write!(f, "placement does not fit: {detail}"),
            Error::OrderViolation { table } => {
                write!(
                    f,
                    "table '{table}' placed before its predecessor in the fold path"
                )
            }
            Error::PhvExhausted => write!(f, "PHV container budget exhausted"),
            Error::InvalidSpec(what) => write!(f, "invalid table spec: {what}"),
            Error::DuplicateTable { table } => {
                write!(f, "table '{table}' is placed more than once")
            }
            Error::GressViolation { table } => {
                write!(
                    f,
                    "table '{table}' sits in a gress the fold configuration never visits"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used across `sailfish-asic`.
pub type Result<T> = core::result::Result<T, Error>;
