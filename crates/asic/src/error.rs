//! Error type for placement and resource accounting.

use core::fmt;

/// Errors produced by the ASIC model.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A placement does not fit the per-pipe memory inventory.
    DoesNotFit {
        /// Human-readable description of the violated resource.
        detail: String,
    },
    /// A placement violates the folded lookup order (a table would be
    /// visited before one of its predecessors).
    OrderViolation {
        /// The offending table's name.
        table: String,
    },
    /// The PHV budget is exhausted.
    PhvExhausted,
    /// A table spec is internally inconsistent (zero-width key, etc.).
    InvalidSpec(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DoesNotFit { detail } => write!(f, "placement does not fit: {detail}"),
            Error::OrderViolation { table } => {
                write!(
                    f,
                    "table '{table}' placed before its predecessor in the fold path"
                )
            }
            Error::PhvExhausted => write!(f, "PHV container budget exhausted"),
            Error::InvalidSpec(what) => write!(f, "invalid table spec: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used across `sailfish-asic`.
pub type Result<T> = core::result::Result<T, Error>;
