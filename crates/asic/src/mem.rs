//! Memory budgets and occupancy arithmetic.

use core::fmt;
use core::ops::{Add, AddAssign};

use crate::config::TofinoConfig;

/// An amount of on-chip memory: SRAM words plus TCAM slice-rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemAmount {
    /// 128-bit SRAM words.
    pub sram_words: usize,
    /// 44-bit TCAM slice-rows.
    pub tcam_rows: usize,
}

impl MemAmount {
    /// Zero memory.
    pub const ZERO: MemAmount = MemAmount {
        sram_words: 0,
        tcam_rows: 0,
    };

    /// Component-wise scaling by a rational `num/den` (used for sharing an
    /// entry set across `den` pipes), rounding up.
    pub fn scale(&self, num: usize, den: usize) -> MemAmount {
        MemAmount {
            sram_words: (self.sram_words * num).div_ceil(den),
            tcam_rows: (self.tcam_rows * num).div_ceil(den),
        }
    }
}

impl Add for MemAmount {
    type Output = MemAmount;

    fn add(self, rhs: MemAmount) -> MemAmount {
        MemAmount {
            sram_words: self.sram_words + rhs.sram_words,
            tcam_rows: self.tcam_rows + rhs.tcam_rows,
        }
    }
}

impl AddAssign for MemAmount {
    fn add_assign(&mut self, rhs: MemAmount) {
        *self = *self + rhs;
    }
}

/// Occupancy of one pipeline, as percentages of its inventory.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Occupancy {
    /// SRAM occupancy in percent (may exceed 100 when a placement is
    /// infeasible, as in Table 2).
    pub sram_pct: f64,
    /// TCAM occupancy in percent.
    pub tcam_pct: f64,
}

impl Occupancy {
    /// Computes the occupancy of `amount` against one pipeline of `config`.
    pub fn of(amount: MemAmount, config: &TofinoConfig) -> Occupancy {
        Occupancy {
            sram_pct: 100.0 * amount.sram_words as f64 / config.sram_words_per_pipe() as f64,
            tcam_pct: 100.0 * amount.tcam_rows as f64 / config.tcam_rows_per_pipe() as f64,
        }
    }

    /// Whether the pipeline physically fits (both components under 100%).
    pub fn fits(&self) -> bool {
        self.sram_pct <= 100.0 && self.tcam_pct <= 100.0
    }
}

impl fmt::Display for Occupancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SRAM {:.0}% / TCAM {:.0}%",
            self.sram_pct.round(),
            self.tcam_pct.round()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_math() {
        let c = TofinoConfig::tofino_64t();
        let amount = MemAmount {
            sram_words: c.sram_words_per_pipe() / 2,
            tcam_rows: c.tcam_rows_per_pipe(),
        };
        let occ = Occupancy::of(amount, &c);
        assert!((occ.sram_pct - 50.0).abs() < 1e-9);
        assert!((occ.tcam_pct - 100.0).abs() < 1e-9);
        assert!(occ.fits());
        let over = Occupancy::of(
            MemAmount {
                sram_words: c.sram_words_per_pipe() + 1,
                tcam_rows: 0,
            },
            &c,
        );
        assert!(!over.fits());
    }

    #[test]
    fn scaling_rounds_up() {
        let a = MemAmount {
            sram_words: 3,
            tcam_rows: 1,
        };
        let half = a.scale(1, 2);
        assert_eq!(half.sram_words, 2);
        assert_eq!(half.tcam_rows, 1);
    }

    #[test]
    fn addition() {
        let a = MemAmount {
            sram_words: 1,
            tcam_rows: 2,
        };
        let mut b = MemAmount::ZERO;
        b += a;
        assert_eq!(a + MemAmount::ZERO, b);
    }
}
