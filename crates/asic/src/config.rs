//! Chip configuration.
//!
//! The default numbers describe a Tofino 6.4T the way public documentation
//! and the paper's own figures constrain it; where the paper leaves a free
//! parameter, the value is calibrated so that the *initial* memory
//! occupancy reproduces Table 2 (see DESIGN.md §3), and every optimized
//! number is then derived, not hard-coded.

/// Static description of a programmable switching ASIC.
#[derive(Debug, Clone)]
pub struct TofinoConfig {
    /// Number of independent pipelines.
    pub pipelines: usize,
    /// Match-action stages per pipeline (per gress).
    pub stages_per_pipe: usize,
    /// SRAM blocks per stage.
    pub sram_blocks_per_stage: usize,
    /// Words per SRAM block.
    pub sram_block_words: usize,
    /// Width of an SRAM word in bits.
    pub sram_word_bits: u32,
    /// TCAM blocks per stage.
    pub tcam_blocks_per_stage: usize,
    /// Rows per TCAM block.
    pub tcam_block_rows: usize,
    /// Width of a TCAM slice in bits; wider keys chain slices.
    pub tcam_slice_bits: u32,
    /// Exact-match hash-table utilization (cuckoo/ways occupancy limit).
    pub exact_hash_utilization: f64,
    /// Extra per-entry SRAM word multiplier for keys wider than one word
    /// (wide-word ways halve packing efficiency on Tofino).
    pub wide_key_word_multiplier: u32,
    /// Fixed per-entry overhead bits (valid bit, version, padding).
    pub entry_overhead_bits: u32,
    /// PHV capacity in bits available to user metadata per gress.
    pub phv_bits: u32,
    /// Bits appended to the packet per ingress→egress metadata bridge.
    pub bridge_bits_per_crossing: u32,
}

impl TofinoConfig {
    /// The Tofino 6.4T model used throughout the reproduction.
    pub fn tofino_64t() -> Self {
        TofinoConfig {
            pipelines: 4,
            stages_per_pipe: 12,
            sram_blocks_per_stage: 80,
            sram_block_words: 1024,
            sram_word_bits: 128,
            tcam_blocks_per_stage: 24,
            tcam_block_rows: 512,
            tcam_slice_bits: 44,
            exact_hash_utilization: 0.8,
            wide_key_word_multiplier: 2,
            entry_overhead_bits: 4,
            phv_bits: 4096,
            bridge_bits_per_crossing: 32,
        }
    }

    /// SRAM words available in one pipeline (one gress direction shares the
    /// same stage memory as the other; the inventory is per pipeline).
    pub fn sram_words_per_pipe(&self) -> usize {
        self.stages_per_pipe * self.sram_blocks_per_stage * self.sram_block_words
    }

    /// TCAM slice-rows available in one pipeline.
    pub fn tcam_rows_per_pipe(&self) -> usize {
        self.stages_per_pipe * self.tcam_blocks_per_stage * self.tcam_block_rows
    }

    /// Total on-chip SRAM in bytes (the paper's "O(10MB) on-chip
    /// memories").
    pub fn total_sram_bytes(&self) -> usize {
        self.pipelines * self.sram_words_per_pipe() * self.sram_word_bits as usize / 8
    }

    /// Number of chained TCAM slices an entry of `key_bits` occupies.
    pub fn tcam_slices_for(&self, key_bits: u32) -> u32 {
        key_bits.div_ceil(self.tcam_slice_bits)
    }
}

impl Default for TofinoConfig {
    fn default() -> Self {
        Self::tofino_64t()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_pipe_inventories() {
        let c = TofinoConfig::tofino_64t();
        assert_eq!(c.sram_words_per_pipe(), 983_040);
        assert_eq!(c.tcam_rows_per_pipe(), 147_456);
    }

    #[test]
    fn total_sram_is_order_10mb() {
        let c = TofinoConfig::tofino_64t();
        let mb = c.total_sram_bytes() / (1024 * 1024);
        assert!((10..=100).contains(&mb), "total SRAM {mb} MB");
    }

    #[test]
    fn tcam_slice_chaining() {
        let c = TofinoConfig::tofino_64t();
        // VNI(24)+IPv4(32) = 56 bits -> 2 slices; VNI+IPv6 = 152 -> 4.
        assert_eq!(c.tcam_slices_for(56), 2);
        assert_eq!(c.tcam_slices_for(152), 4);
        assert_eq!(c.tcam_slices_for(44), 1);
        assert_eq!(c.tcam_slices_for(45), 2);
    }
}
