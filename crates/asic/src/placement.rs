//! Table placement over the folded pipeline.
//!
//! Pipeline folding (§4.4, Fig 13): packets enter Ingress Pipe 0/2, loop
//! through Egress Pipe 1/3 → Ingress Pipe 1/3 (loopback ports), and leave
//! via Egress Pipe 0/2. Tables must be placed along this path "following
//! the table lookup order", each physical pipe has its own memory, and
//! metadata cannot cross a gress boundary without bridging.
//!
//! [`Layout`] captures a placement and checks all three constraints:
//! lookup order, per-pipe memory capacity, and bridge counting.

use crate::config::TofinoConfig;
use crate::cost::TableSpec;
use crate::error::{Error, Result};
use crate::mem::{MemAmount, Occupancy};

/// The four positions a table can occupy along the folded packet path, in
/// traversal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FoldStep {
    /// Ingress of Pipe 0/2 — the packet entry point.
    IngressOuter,
    /// Egress of Pipe 1/3 — before the loopback ports.
    EgressLoop,
    /// Ingress of Pipe 1/3 — after looping back.
    IngressLoop,
    /// Egress of Pipe 0/2 — the exit point.
    EgressOuter,
}

impl FoldStep {
    /// All steps in traversal order.
    pub const ALL: [FoldStep; 4] = [
        FoldStep::IngressOuter,
        FoldStep::EgressLoop,
        FoldStep::IngressLoop,
        FoldStep::EgressOuter,
    ];

    /// Which physical pipe pair hosts this step.
    pub fn pipe_pair(&self) -> PipePair {
        match self {
            FoldStep::IngressOuter | FoldStep::EgressOuter => PipePair::Outer,
            FoldStep::EgressLoop | FoldStep::IngressLoop => PipePair::Loop,
        }
    }

    /// Whether the step is an ingress gress.
    pub fn is_ingress(&self) -> bool {
        matches!(self, FoldStep::IngressOuter | FoldStep::IngressLoop)
    }

    /// Number of gress boundaries between `self` and a later step (each
    /// boundary a metadata dependency must bridge across).
    pub fn boundaries_to(&self, later: FoldStep) -> usize {
        (later as usize).saturating_sub(*self as usize)
    }
}

/// The two pipe pairs of the folded configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipePair {
    /// Pipes 0 and 2 (entry/exit).
    Outer,
    /// Pipes 1 and 3 (loopback).
    Loop,
}

/// One placed table (or a fraction of one, for cross-pipe mapping).
#[derive(Debug, Clone)]
pub struct PlacedTable {
    /// The table's shape.
    pub spec: TableSpec,
    /// Where along the fold path it sits.
    pub step: FoldStep,
    /// Fraction of the entries placed here, as `(numerator, denominator)`.
    /// Cross-pipe mapping (Fig 15) places e.g. (3,4) of Table D in
    /// `IngressLoop` and (1,4) in `EgressOuter`.
    pub fraction: (usize, usize),
    /// Whether the entries are split by hash/parity between the two pipes
    /// of the pair ("table splitting between pipelines", Fig 14) instead of
    /// replicated into both.
    pub split_across_pair: bool,
    /// Whether this table consumes metadata produced by the previous table
    /// in lookup order (bridging required if they sit in different
    /// gresses).
    pub depends_on_previous: bool,
}

impl PlacedTable {
    /// A full, replicated, dependent placement — the common case.
    pub fn new(spec: TableSpec, step: FoldStep) -> Self {
        PlacedTable {
            spec,
            step,
            fraction: (1, 1),
            split_across_pair: false,
            depends_on_previous: true,
        }
    }

    /// Memory this placement consumes in EACH pipe of its pair.
    pub fn cost_per_pipe(&self, config: &TofinoConfig) -> MemAmount {
        let full = self.spec.cost(config);
        let (num, den) = self.fraction;
        let share = full.scale(num, den);
        if self.split_across_pair {
            share.scale(1, 2)
        } else {
            share
        }
    }
}

/// A complete placement of the gateway's tables on the chip.
#[derive(Debug, Clone)]
pub struct Layout {
    config: TofinoConfig,
    /// Whether pipeline folding is active. When `false`, all four pipes
    /// run the same program and every pipe carries every table.
    pub folded: bool,
    /// Tables in lookup order.
    pub tables: Vec<PlacedTable>,
}

impl Layout {
    /// Creates an empty layout.
    pub fn new(config: TofinoConfig, folded: bool) -> Self {
        Layout {
            config,
            folded,
            tables: Vec::new(),
        }
    }

    /// The chip configuration.
    pub fn config(&self) -> &TofinoConfig {
        &self.config
    }

    /// Appends a table in lookup order.
    pub fn push(&mut self, table: PlacedTable) {
        self.tables.push(table);
    }

    /// Memory consumed in each pipe of a pair.
    pub fn pair_usage(&self, pair: PipePair) -> MemAmount {
        let mut total = MemAmount::ZERO;
        for t in &self.tables {
            if self.folded {
                if t.step.pipe_pair() == pair {
                    total += t.cost_per_pipe(&self.config);
                }
            } else {
                // Unfolded: every pipe carries every table in full.
                total += t.spec.cost(&self.config).scale(t.fraction.0, t.fraction.1);
            }
        }
        total
    }

    /// Occupancy of one pipe in each pair: `(outer, loop)`.
    pub fn occupancy(&self) -> (Occupancy, Occupancy) {
        (
            Occupancy::of(self.pair_usage(PipePair::Outer), &self.config),
            Occupancy::of(self.pair_usage(PipePair::Loop), &self.config),
        )
    }

    /// Chip-wide occupancy (total used / total available across pipes).
    pub fn total_occupancy(&self) -> Occupancy {
        let outer = self.pair_usage(PipePair::Outer);
        let looped = self.pair_usage(PipePair::Loop);
        let total = MemAmount {
            sram_words: 2 * (outer.sram_words + looped.sram_words),
            tcam_rows: 2 * (outer.tcam_rows + looped.tcam_rows),
        };
        Occupancy {
            sram_pct: 100.0 * total.sram_words as f64
                / (self.config.pipelines * self.config.sram_words_per_pipe()) as f64,
            tcam_pct: 100.0 * total.tcam_rows as f64
                / (self.config.pipelines * self.config.tcam_rows_per_pipe()) as f64,
        }
    }

    /// Number of metadata bridges the placement requires (gress boundaries
    /// crossed by dependent consecutive tables). "With pipeline folding,
    /// the number of possible bridges increases from 1 to 3."
    pub fn bridge_count(&self) -> usize {
        if !self.folded {
            // Unfolded: one possible ingress→egress boundary.
            return self
                .tables
                .windows(2)
                .filter(|w| {
                    w[1].depends_on_previous && w[0].step.is_ingress() && !w[1].step.is_ingress()
                })
                .count()
                .min(1);
        }
        let mut crossed = std::collections::BTreeSet::new();
        for w in self.tables.windows(2) {
            if !w[1].depends_on_previous {
                continue;
            }
            let (a, b) = (w[0].step as usize, w[1].step as usize);
            for boundary in a..b {
                crossed.insert(boundary);
            }
        }
        crossed.len()
    }

    /// Extra bytes bridged onto the packet between pipes.
    pub fn bridge_bytes(&self) -> usize {
        self.bridge_count() * self.config.bridge_bits_per_crossing as usize / 8
    }

    /// Runs the static analyzer over this layout and returns the full
    /// diagnostics report (see [`crate::verify`]).
    pub fn verify(&self, label: &str) -> crate::verify::Report {
        crate::verify::verify(self, label)
    }

    /// Like [`Layout::verify`] with caller-supplied analyzer options.
    pub fn verify_with(
        &self,
        label: &str,
        options: &crate::verify::VerifyOptions,
    ) -> crate::verify::Report {
        crate::verify::verify_with(self, label, options)
    }

    /// Validates ordering and capacity.
    ///
    /// This is the legacy pass/fail view, now routed through the static
    /// analyzer: the first (most severe) error diagnostic is mapped back
    /// to the matching typed [`Error`]. Callers that want the full
    /// picture should use [`Layout::verify`] instead.
    pub fn validate(&self) -> Result<()> {
        use crate::verify::LintCode;
        let report = self.verify("validate");
        // Map in legacy priority order so existing callers see the same
        // error classes the old hand-rolled checks produced.
        for code in [
            LintCode::FoldOrderViolation,
            LintCode::DuplicateTable,
            LintCode::GressViolation,
            LintCode::OverCapacity,
            LintCode::StageOverflow,
            LintCode::PhvOverflow,
        ] {
            let Some(d) = report.diagnostics.iter().find(|d| d.code == code) else {
                continue;
            };
            let table = d.table.clone().unwrap_or_default();
            return Err(match code {
                LintCode::FoldOrderViolation => Error::OrderViolation { table },
                LintCode::DuplicateTable => Error::DuplicateTable { table },
                LintCode::GressViolation => Error::GressViolation { table },
                LintCode::PhvOverflow => Error::PhvExhausted,
                _ => Error::DoesNotFit {
                    detail: d.message.clone(),
                },
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{MatchKind, Storage};

    fn spec(name: &str, entries: usize) -> TableSpec {
        TableSpec::new(name, MatchKind::Exact, 56, 32, entries, Storage::SramHash).unwrap()
    }

    fn tcam_spec(name: &str, entries: usize) -> TableSpec {
        TableSpec::new(name, MatchKind::Lpm, 56, 32, entries, Storage::Tcam).unwrap()
    }

    #[test]
    fn unfolded_replicates_everywhere() {
        let mut l = Layout::new(TofinoConfig::tofino_64t(), false);
        l.push(PlacedTable::new(spec("a", 100_000), FoldStep::IngressOuter));
        let outer = l.pair_usage(PipePair::Outer);
        let looped = l.pair_usage(PipePair::Loop);
        assert_eq!(outer, looped);
        assert!(outer.sram_words > 0);
    }

    #[test]
    fn folding_doubles_capacity() {
        // A table that exactly fills one pipe fits when folded tables are
        // spread over both pairs.
        let cfg = TofinoConfig::tofino_64t();
        // Two distinct tables, each 700k/0.8 = 875k words.
        let big_a = spec("big-a", 700_000);
        let big_b = spec("big-b", 700_000);
        let mut unfolded = Layout::new(cfg.clone(), false);
        unfolded.push(PlacedTable::new(big_a.clone(), FoldStep::IngressOuter));
        unfolded.push(PlacedTable::new(big_b.clone(), FoldStep::IngressOuter));
        assert!(
            matches!(unfolded.validate(), Err(Error::DoesNotFit { .. })),
            "two such tables cannot fit one pipe"
        );

        let mut folded = Layout::new(cfg, true);
        folded.push(PlacedTable::new(big_a, FoldStep::IngressOuter));
        folded.push(PlacedTable::new(big_b, FoldStep::IngressLoop));
        folded.validate().unwrap();
    }

    #[test]
    fn split_across_pair_halves_per_pipe_cost() {
        let cfg = TofinoConfig::tofino_64t();
        let mut l = Layout::new(cfg.clone(), true);
        let mut t = PlacedTable::new(spec("s", 100_000), FoldStep::EgressLoop);
        let full = t.cost_per_pipe(&cfg).sram_words;
        t.split_across_pair = true;
        let half = t.cost_per_pipe(&cfg).sram_words;
        assert_eq!(half, full.div_ceil(2));
        l.push(t);
        l.validate().unwrap();
    }

    #[test]
    fn cross_pipe_mapping_fractions() {
        let cfg = TofinoConfig::tofino_64t();
        let base = spec("d", 400_000);
        let mut part_a = PlacedTable::new(base.clone(), FoldStep::IngressLoop);
        part_a.fraction = (3, 4);
        let mut part_b = PlacedTable::new(base, FoldStep::EgressOuter);
        part_b.fraction = (1, 4);
        let total = part_a.cost_per_pipe(&cfg).sram_words + part_b.cost_per_pipe(&cfg).sram_words;
        let full = spec("d", 400_000).cost(&cfg).sram_words;
        // Fraction rounding may add a word or two but never loses entries.
        assert!(total >= full, "{total} >= {full}");
        assert!(total <= full + 2);
    }

    #[test]
    fn order_violation_detected() {
        let mut l = Layout::new(TofinoConfig::tofino_64t(), true);
        l.push(PlacedTable::new(spec("late", 10), FoldStep::EgressOuter));
        l.push(PlacedTable::new(spec("early", 10), FoldStep::IngressOuter));
        match l.validate() {
            Err(Error::OrderViolation { table }) => assert_eq!(table, "early"),
            other => panic!("expected order violation, got {other:?}"),
        }
    }

    #[test]
    fn capacity_violation_detected() {
        let mut l = Layout::new(TofinoConfig::tofino_64t(), true);
        l.push(PlacedTable::new(
            tcam_spec("huge", 200_000),
            FoldStep::IngressOuter,
        ));
        assert!(matches!(l.validate(), Err(Error::DoesNotFit { .. })));
    }

    #[test]
    fn bridge_counting() {
        let cfg = TofinoConfig::tofino_64t();
        let mut l = Layout::new(cfg, true);
        l.push(PlacedTable::new(spec("a", 10), FoldStep::IngressOuter));
        l.push(PlacedTable::new(spec("b", 10), FoldStep::EgressLoop));
        l.push(PlacedTable::new(spec("c", 10), FoldStep::IngressLoop));
        l.push(PlacedTable::new(spec("d", 10), FoldStep::EgressOuter));
        // Dependent chain across all three boundaries.
        assert_eq!(l.bridge_count(), 3);
        assert_eq!(l.bridge_bytes(), 12);
        // Making b..d independent removes the bridges.
        let mut l2 = Layout::new(TofinoConfig::tofino_64t(), true);
        for (name, step) in [
            ("a", FoldStep::IngressOuter),
            ("b", FoldStep::EgressLoop),
            ("c", FoldStep::IngressLoop),
        ] {
            let mut t = PlacedTable::new(spec(name, 10), step);
            t.depends_on_previous = name == "a";
            l2.push(t);
        }
        assert_eq!(l2.bridge_count(), 0);
    }

    #[test]
    fn same_pair_dependency_needs_no_bridge() {
        let mut l = Layout::new(TofinoConfig::tofino_64t(), true);
        l.push(PlacedTable::new(spec("a", 10), FoldStep::IngressOuter));
        l.push(PlacedTable::new(spec("b", 10), FoldStep::IngressOuter));
        assert_eq!(l.bridge_count(), 0);
    }

    #[test]
    fn total_occupancy_averages_pairs() {
        let cfg = TofinoConfig::tofino_64t();
        let mut l = Layout::new(cfg.clone(), true);
        l.push(PlacedTable::new(spec("a", 400_000), FoldStep::IngressOuter));
        let (outer, looped) = l.occupancy();
        assert!(outer.sram_pct > 0.0);
        assert_eq!(looped.sram_pct, 0.0);
        let total = l.total_occupancy();
        assert!((total.sram_pct - outer.sram_pct / 2.0).abs() < 1e-9);
    }
}
