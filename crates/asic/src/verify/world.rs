//! Plan-time *world* verification: static no-black-hole and capacity
//! proofs for whole staged worlds and the transitions between them.
//!
//! [`super::verify_with`] proves one device layout legal; production
//! safety needs more — the paper's gateway only survives churn because
//! every pushed program is known-good *and* every intermediate step of a
//! migration leaves every tenant served. This module lifts the analysis
//! two levels:
//!
//! 1. **World pass** — a [`WorldModel`] (the unit→cluster directory plus
//!    which clusters hold each unit's tables) is proved total (every
//!    unit has a live owner, `SF-E007`), bijective (the owner actually
//!    holds the tables and every index is inside the cluster set,
//!    `SF-E008`), and within per-cluster capacity (`SF-E009`/`SF-W007`)
//!    via a pluggable [`CapacityModel`] — the cluster layer supplies the
//!    real first-fit device allocator, tests use [`EntryBudget`].
//! 2. **Transition pass** — a [`TransitionPlan`] of make-before-break
//!    moves is walked phase by phase (Announce → Dual → Commit → Drain);
//!    every intermediate world must keep each moving unit covered
//!    (`SF-E010`), respect the phase order (`SF-E011`), and stay within
//!    capacity. Wide dual windows (`SF-W008`) and no-op moves
//!    (`SF-W009`) are linted.
//! 3. **O(delta) re-verification** — [`certify`] returns a
//!    [`WorldCertificate`] caching per-cluster loads and verdicts under
//!    a structural fingerprint; [`verify_plan`] re-checks only the
//!    clusters a move touches and reuses the cached verdicts for the
//!    rest, refusing stale certificates (`SF-E012`). [`DeltaStats`]
//!    counts capacity calls so the O(delta) claim is measurable.
//!
//! The model is deliberately abstract — units are opaque `u64`s (the
//! cluster layer maps VNIs onto them) — so the analysis lives beside the
//! ASIC resource model it reuses without inverting the crate dependency
//! direction.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use super::{LintCode, Severity};

/// One unit of ownership: a peer group of tenant state that always moves
/// together, with the table entries it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldUnit {
    /// Opaque unit id (the cluster layer uses the anchor VNI value).
    pub unit: u64,
    /// Route entries the unit carries.
    pub routes: usize,
    /// VM mappings the unit carries.
    pub vms: usize,
}

/// A whole staged world: every unit, who the directory says owns it, and
/// which clusters actually hold its tables.
#[derive(Debug, Clone)]
pub struct WorldModel {
    /// Caller-supplied label naming the world.
    pub label: String,
    /// Size of the cluster set; every owner index must be below it.
    pub clusters: usize,
    /// Every unit carrying entries, sorted by id.
    pub units: Vec<WorldUnit>,
    /// Directory: unit → live owner the balancer steers traffic to.
    pub primary: BTreeMap<u64, usize>,
    /// Table placement: unit → clusters holding its tables.
    pub holders: BTreeMap<u64, BTreeSet<usize>>,
}

impl WorldModel {
    /// An empty world over `clusters` clusters.
    pub fn new(label: &str, clusters: usize) -> Self {
        WorldModel {
            label: label.to_string(),
            clusters,
            units: Vec::new(),
            primary: BTreeMap::new(),
            holders: BTreeMap::new(),
        }
    }

    /// Adds a unit owned (and held) by `cluster` — the steady-state
    /// shape. Units are kept sorted by id.
    pub fn add_unit(&mut self, unit: u64, routes: usize, vms: usize, cluster: usize) {
        let entry = WorldUnit { unit, routes, vms };
        match self.units.binary_search_by_key(&unit, |u| u.unit) {
            Ok(i) => self.units[i] = entry,
            Err(i) => self.units.insert(i, entry),
        }
        self.primary.insert(unit, cluster);
        self.holders.entry(unit).or_default().insert(cluster);
    }

    /// Adds a second table holder for a unit (dual-ownership windows,
    /// backups that count against capacity).
    pub fn add_holder(&mut self, unit: u64, cluster: usize) {
        self.holders.entry(unit).or_default().insert(cluster);
    }

    /// The unit's weight, if it exists.
    fn weight_of(&self, unit: u64) -> Option<(usize, usize)> {
        self.units
            .binary_search_by_key(&unit, |u| u.unit)
            .ok()
            .and_then(|i| self.units.get(i))
            .map(|u| (u.routes, u.vms))
    }

    /// Per-cluster `(routes, vms)` load summed over every holder.
    pub fn cluster_loads(&self) -> Vec<(usize, usize)> {
        let mut loads = vec![(0usize, 0usize); self.clusters];
        for u in &self.units {
            if let Some(holders) = self.holders.get(&u.unit) {
                for c in holders {
                    if let Some(slot) = loads.get_mut(*c) {
                        slot.0 += u.routes;
                        slot.1 += u.vms;
                    }
                }
            }
        }
        loads
    }

    /// Structural FNV-1a fingerprint of the world (label excluded): two
    /// worlds with the same units, directory and placement hash equal.
    /// [`verify_plan`] refuses certificates minted for a different
    /// fingerprint (`SF-E012`).
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.clusters as u64);
        for u in &self.units {
            mix(u.unit);
            mix(u.routes as u64);
            mix(u.vms as u64);
        }
        for (unit, cluster) in &self.primary {
            mix(*unit);
            mix(*cluster as u64);
        }
        for (unit, holders) in &self.holders {
            mix(*unit);
            for c in holders {
                mix(*c as u64);
            }
        }
        h
    }
}

/// Verdict of a capacity model for one cluster's aggregate load.
#[derive(Debug, Clone, PartialEq)]
pub enum CapacityVerdict {
    /// The load fits; `utilization_pct` is the binding resource's
    /// occupancy (drives the `SF-W007` headroom lint).
    Fits {
        /// Occupancy of the most-utilized resource, in percent.
        utilization_pct: f64,
    },
    /// The load cannot legally be held; `detail` carries the proof.
    Rejected {
        /// Why, with the numbers.
        detail: String,
    },
}

/// Pluggable per-cluster capacity oracle. The world verifier asks it
/// whether one cluster can hold an aggregate `(routes, vms)` load; the
/// cluster layer backs it with the real per-device first-fit layout
/// allocator, tests and the corpus use the entry-count [`EntryBudget`].
pub trait CapacityModel {
    /// Statically checks one cluster holding `routes`/`vms` entries.
    fn check(&self, cluster: usize, routes: usize, vms: usize) -> CapacityVerdict;
}

/// The simplest capacity model: flat per-cluster entry budgets.
#[derive(Debug, Clone, Copy)]
pub struct EntryBudget {
    /// Maximum route entries per cluster.
    pub max_routes: usize,
    /// Maximum VM mappings per cluster.
    pub max_vms: usize,
}

impl CapacityModel for EntryBudget {
    fn check(&self, _cluster: usize, routes: usize, vms: usize) -> CapacityVerdict {
        if routes > self.max_routes || vms > self.max_vms {
            return CapacityVerdict::Rejected {
                detail: format!(
                    "{routes}/{} routes, {vms}/{} vms",
                    self.max_routes, self.max_vms
                ),
            };
        }
        let r = 100.0 * routes as f64 / self.max_routes.max(1) as f64;
        let v = 100.0 * vms as f64 / self.max_vms.max(1) as f64;
        CapacityVerdict::Fits {
            utilization_pct: r.max(v),
        }
    }
}

/// One make-before-break phase of a move. The canonical order is
/// [`MoveStage::SEQUENCE`]; any plan whose stages are not a non-empty
/// prefix of it is a break-before-make bug (`SF-E011`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MoveStage {
    /// Destination stages and verifies the tables; traffic unmoved.
    Announce,
    /// Both owners hold the tables; flows hash to either.
    Dual,
    /// Directory retargeted; destination is the live owner.
    Commit,
    /// Source frees its copy.
    Drain,
}

impl MoveStage {
    /// The canonical make-before-break order.
    pub const SEQUENCE: [MoveStage; 4] = [
        MoveStage::Announce,
        MoveStage::Dual,
        MoveStage::Commit,
        MoveStage::Drain,
    ];

    /// Stable lowercase label for diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            MoveStage::Announce => "announce",
            MoveStage::Dual => "dual",
            MoveStage::Commit => "commit",
            MoveStage::Drain => "drain",
        }
    }
}

/// One planned migration of a unit group between clusters.
#[derive(Debug, Clone)]
pub struct WorldMove {
    /// The units moving together.
    pub units: Vec<u64>,
    /// Current owner the plan expects.
    pub from: usize,
    /// Destination.
    pub to: usize,
    /// Phases the move will drive, in order. A proper prefix of
    /// [`MoveStage::SEQUENCE`] models a scripted rollback.
    pub stages: Vec<MoveStage>,
}

impl WorldMove {
    /// A full Announce→Dual→Commit→Drain move.
    pub fn full(units: Vec<u64>, from: usize, to: usize) -> Self {
        WorldMove {
            units,
            from,
            to,
            stages: MoveStage::SEQUENCE.to_vec(),
        }
    }
}

/// A sequence of moves, driven one after another (the same serial order
/// `run_plan` uses, so the verified intermediate worlds are exactly the
/// worlds traffic will see).
#[derive(Debug, Clone, Default)]
pub struct TransitionPlan {
    /// Moves in drive order.
    pub moves: Vec<WorldMove>,
}

/// One finding of the world verifier.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldDiagnostic {
    /// The stable lint code (`SF-E007`..`SF-E012`, `SF-W007`..).
    pub code: LintCode,
    /// What the finding is about: `unit <id>` or `cluster <idx>`.
    pub scope: Option<String>,
    /// The world it was found in: `base` or a move phase label.
    pub phase: Option<&'static str>,
    /// What is wrong, with the numbers that prove it.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl WorldDiagnostic {
    /// The diagnostic's severity (derived from its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for WorldDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity(), self.code)?;
        if let Some(scope) = &self.scope {
            write!(f, " {scope}")?;
        }
        if let Some(phase) = self.phase {
            write!(f, " @ {phase}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// How much work a verification actually did — the measurable half of
/// the O(delta) claim. A full [`certify`] costs one capacity call per
/// cluster; a one-unit [`verify_plan`] must cost O(1) calls however many
/// clusters the world has.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Clusters in the world.
    pub clusters_total: usize,
    /// Intermediate worlds walked (1 for a plain world pass).
    pub worlds_checked: usize,
    /// Capacity-model invocations actually made.
    pub capacity_calls: usize,
    /// Per-cluster verdicts reused from the certificate instead of
    /// recomputed: `worlds_checked * clusters_total - capacity_calls`.
    pub cache_hits: usize,
}

/// Analyzer knobs for the world passes.
#[derive(Debug, Clone, Copy)]
pub struct WorldOptions {
    /// Utilization percentage at which `SF-W007` fires.
    pub headroom_warn_pct: f64,
    /// Share of all units one move's dual window may co-own before
    /// `SF-W008` fires.
    pub blast_radius_warn_pct: f64,
}

impl Default for WorldOptions {
    fn default() -> Self {
        WorldOptions {
            headroom_warn_pct: 85.0,
            blast_radius_warn_pct: 25.0,
        }
    }
}

/// The structured outcome of verifying a world or a transition.
#[derive(Debug, Clone)]
pub struct WorldReport {
    /// Caller-supplied label naming the world.
    pub label: String,
    /// Clusters in the world.
    pub clusters: usize,
    /// Units in the world.
    pub units: usize,
    /// All findings, sorted by (severity, code, scope, phase).
    pub diagnostics: Vec<WorldDiagnostic>,
    /// What the verification cost.
    pub stats: DeltaStats,
}

impl WorldReport {
    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &WorldDiagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Findings with [`Severity::Warning`].
    pub fn warnings(&self) -> impl Iterator<Item = &WorldDiagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// Whether the world (or plan) is safe to push (no errors).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Whether a diagnostic with `code` was emitted.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The error diagnostics joined one per `; ` — the detail string the
    /// install/reshard gates attach to their typed refusals.
    pub fn error_detail(&self) -> String {
        self.errors()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Renders the report as stable text; byte-identical across runs for
    /// the same world and plan.
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== sailfish-verify world: {} ==", self.label);
        let _ = writeln!(
            out,
            "world: {} cluster(s), {} unit(s); worlds checked: {}",
            self.clusters, self.units, self.stats.worlds_checked,
        );
        let _ = writeln!(
            out,
            "cost: {} capacity call(s), {} cached verdict(s) reused",
            self.stats.capacity_calls, self.stats.cache_hits,
        );
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        let _ = writeln!(out, "diagnostics: {errors} error(s), {warnings} warning(s)");
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
            let _ = writeln!(out, "    hint: {}", d.hint);
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if errors == 0 { "CLEAN" } else { "REJECTED" }
        );
        out
    }

    /// Re-sorts the diagnostics into the canonical stable order. Call
    /// after merging findings from several passes into one report.
    pub fn normalized(self) -> Self {
        self.finish()
    }

    fn finish(mut self) -> Self {
        self.diagnostics.sort_by(|a, b| {
            (a.severity(), a.code, &a.scope, a.phase).cmp(&(
                b.severity(),
                b.code,
                &b.scope,
                b.phase,
            ))
        });
        self
    }
}

/// A cached base-world verdict enabling O(delta) re-verification:
/// per-cluster loads and capacity verdicts under a structural
/// fingerprint. Mint one with [`certify`]; spend it in [`verify_plan`].
#[derive(Debug, Clone)]
pub struct WorldCertificate {
    /// Fingerprint of the world the certificate was minted for.
    pub fingerprint: u64,
    /// Per-cluster `(routes, vms)` at certification time.
    pub loads: Vec<(usize, usize)>,
    /// Per-cluster capacity verdict (true = fits) at certification time.
    pub verdicts: Vec<bool>,
}

/// The world pass: totality, bijectivity and capacity over one world.
fn check_structure(model: &WorldModel, diagnostics: &mut Vec<WorldDiagnostic>) {
    for u in &model.units {
        match model.primary.get(&u.unit) {
            None => diagnostics.push(WorldDiagnostic {
                code: LintCode::UncoveredUnit,
                scope: Some(format!("unit {}", u.unit)),
                phase: Some("base"),
                message: format!(
                    "carries {} route(s) and {} vm(s) but no cluster owns it — its traffic \
                     has nowhere to go",
                    u.routes, u.vms,
                ),
                hint: "assign the unit in the directory before staging its tables",
            }),
            Some(owner) => {
                if *owner >= model.clusters {
                    diagnostics.push(WorldDiagnostic {
                        code: LintCode::DirectoryDivergence,
                        scope: Some(format!("unit {}", u.unit)),
                        phase: Some("base"),
                        message: format!(
                            "directory points at cluster {owner}, outside the {}-cluster world",
                            model.clusters,
                        ),
                        hint: "retarget the unit to a cluster that exists",
                    });
                } else if !model
                    .holders
                    .get(&u.unit)
                    .is_some_and(|h| h.contains(owner))
                {
                    diagnostics.push(WorldDiagnostic {
                        code: LintCode::DirectoryDivergence,
                        scope: Some(format!("unit {}", u.unit)),
                        phase: Some("base"),
                        message: format!(
                            "directory points at cluster {owner} but that cluster holds no \
                             tables for the unit",
                        ),
                        hint: "stage the tables on the owner (or fix the directory) before \
                               traffic is steered there",
                    });
                }
            }
        }
        if let Some(holders) = model.holders.get(&u.unit) {
            for c in holders {
                if *c >= model.clusters {
                    diagnostics.push(WorldDiagnostic {
                        code: LintCode::DirectoryDivergence,
                        scope: Some(format!("unit {}", u.unit)),
                        phase: Some("base"),
                        message: format!(
                            "tables staged on cluster {c}, outside the {}-cluster world",
                            model.clusters,
                        ),
                        hint: "drop the phantom placement or grow the cluster set",
                    });
                }
            }
        }
    }
    // Orphan directory entries: the directory names a unit that stages
    // no entries anywhere — a dangling assignment the next re-shard
    // would trip over.
    let unit_ids: BTreeSet<u64> = model.units.iter().map(|u| u.unit).collect();
    for unit in model.primary.keys() {
        if !unit_ids.contains(unit) {
            diagnostics.push(WorldDiagnostic {
                code: LintCode::DirectoryDivergence,
                scope: Some(format!("unit {unit}")),
                phase: Some("base"),
                message: "directory entry for a unit that stages no entries in this world"
                    .to_string(),
                hint: "remove the dangling assignment or stage the unit's tables",
            });
        }
    }
}

/// Capacity-checks one cluster, pushing `SF-E009`/`SF-W007` findings.
/// Returns whether the load fits.
fn check_cluster(
    cluster: usize,
    load: (usize, usize),
    cap: &dyn CapacityModel,
    options: &WorldOptions,
    phase: &'static str,
    diagnostics: &mut Vec<WorldDiagnostic>,
    stats: &mut DeltaStats,
) -> bool {
    stats.capacity_calls += 1;
    match cap.check(cluster, load.0, load.1) {
        CapacityVerdict::Fits { utilization_pct } => {
            if utilization_pct >= options.headroom_warn_pct {
                diagnostics.push(WorldDiagnostic {
                    code: LintCode::WorldHeadroom,
                    scope: Some(format!("cluster {cluster}")),
                    phase: Some(phase),
                    message: format!(
                        "load of {} route(s) / {} vm(s) sits at {utilization_pct:.1}% of the \
                         cluster's budget",
                        load.0, load.1,
                    ),
                    hint: "plan a rebalance before the next tenant batch or move lands",
                });
            }
            true
        }
        CapacityVerdict::Rejected { detail } => {
            diagnostics.push(WorldDiagnostic {
                code: LintCode::WorldOverCapacity,
                scope: Some(format!("cluster {cluster}")),
                phase: Some(phase),
                message: format!("aggregate load exceeds the cluster's budget: {detail}"),
                hint: "split the load across more clusters or shrink the moving group",
            });
            false
        }
    }
}

/// Structure-only findings for a world — ownership totality and
/// directory bijectivity — with no capacity calls. Gates on a *live*
/// world pair this with [`trusted_certificate`] so a delta verifies in
/// O(delta) capacity work.
pub fn structure_diagnostics(model: &WorldModel) -> Vec<WorldDiagnostic> {
    let mut diagnostics = Vec::new();
    check_structure(model, &mut diagnostics);
    diagnostics
}

/// A certificate for a world that is **already live**: per-cluster loads
/// are computed, capacity is taken as proven by observation (the world
/// is serving traffic, so its loads demonstrably fit). This keeps
/// transition gates on a running region at O(delta) capacity calls —
/// only the clusters a move touches are re-proved.
pub fn trusted_certificate(model: &WorldModel) -> WorldCertificate {
    let loads = model.cluster_loads();
    let verdicts = vec![true; loads.len()];
    WorldCertificate {
        fingerprint: model.fingerprint(),
        loads,
        verdicts,
    }
}

/// Full world verification: the world pass plus one capacity call per
/// cluster. Returns the report and a [`WorldCertificate`] that later
/// [`verify_plan`] calls can re-verify deltas against in O(delta).
pub fn certify(
    model: &WorldModel,
    cap: &dyn CapacityModel,
    options: &WorldOptions,
) -> (WorldReport, WorldCertificate) {
    let mut diagnostics = Vec::new();
    let mut stats = DeltaStats {
        clusters_total: model.clusters,
        worlds_checked: 1,
        ..DeltaStats::default()
    };
    check_structure(model, &mut diagnostics);
    let loads = model.cluster_loads();
    let verdicts: Vec<bool> = loads
        .iter()
        .enumerate()
        .map(|(c, load)| {
            check_cluster(c, *load, cap, options, "base", &mut diagnostics, &mut stats)
        })
        .collect();
    let certificate = WorldCertificate {
        fingerprint: model.fingerprint(),
        loads,
        verdicts,
    };
    let report = WorldReport {
        label: model.label.clone(),
        clusters: model.clusters,
        units: model.units.len(),
        diagnostics,
        stats,
    }
    .finish();
    (report, certificate)
}

/// Full world verification without keeping the certificate.
pub fn verify_world(
    model: &WorldModel,
    cap: &dyn CapacityModel,
    options: &WorldOptions,
) -> WorldReport {
    certify(model, cap, options).0
}

/// Transition verification in O(delta): walks every intermediate world
/// of `plan` against `model`, re-checking capacity only for the clusters
/// a move actually touches and reusing `certificate`'s cached verdicts
/// for everything else. A certificate minted for a different world is
/// refused (`SF-E012`) — verifying a delta against the wrong base would
/// prove nothing.
pub fn verify_plan(
    model: &WorldModel,
    certificate: &WorldCertificate,
    plan: &TransitionPlan,
    cap: &dyn CapacityModel,
    options: &WorldOptions,
) -> WorldReport {
    let mut diagnostics = Vec::new();
    let mut stats = DeltaStats {
        clusters_total: model.clusters,
        ..DeltaStats::default()
    };
    let report = |diagnostics: Vec<WorldDiagnostic>, stats: DeltaStats| {
        WorldReport {
            label: model.label.clone(),
            clusters: model.clusters,
            units: model.units.len(),
            diagnostics,
            stats,
        }
        .finish()
    };

    if certificate.fingerprint != model.fingerprint() {
        diagnostics.push(WorldDiagnostic {
            code: LintCode::DeltaBaseMismatch,
            scope: None,
            phase: Some("base"),
            message: format!(
                "certificate fingerprint {:016x} does not match the world's {:016x} — the \
                 cached verdicts describe a different base",
                certificate.fingerprint,
                model.fingerprint(),
            ),
            hint: "re-certify the base world after any out-of-band change, then re-verify \
                   the delta",
        });
        return report(diagnostics, stats);
    }

    // Base-world verdicts carry over: a cluster the certificate already
    // proved over budget is re-reported without a capacity call.
    for (c, fits) in certificate.verdicts.iter().enumerate() {
        if !fits {
            let load = certificate.loads.get(c).copied().unwrap_or((0, 0));
            diagnostics.push(WorldDiagnostic {
                code: LintCode::WorldOverCapacity,
                scope: Some(format!("cluster {c}")),
                phase: Some("base"),
                message: format!(
                    "certificate records the base load ({} route(s), {} vm(s)) as already \
                     over budget",
                    load.0, load.1,
                ),
                hint: "resolve the base-world overload before planning moves on top of it",
            });
        }
    }

    let total_units = model.units.len().max(1);
    let mut moved: BTreeSet<u64> = BTreeSet::new();
    let mut loads = certificate.loads.clone();

    for (i, mv) in plan.moves.iter().enumerate() {
        let scope = format!("move {i}");
        let mut broken = false;

        // Phase order: stages must be a non-empty prefix of the
        // canonical make-before-break sequence. Anything else either
        // skips a make step (Announce→Drain frees the source while the
        // directory still points at it) or replays out of order.
        let prefix_ok = !mv.stages.is_empty()
            && mv.stages.len() <= MoveStage::SEQUENCE.len()
            && mv
                .stages
                .iter()
                .zip(MoveStage::SEQUENCE.iter())
                .all(|(a, b)| a == b);
        if !prefix_ok {
            let listed = mv
                .stages
                .iter()
                .map(|s| s.label())
                .collect::<Vec<_>>()
                .join("→");
            diagnostics.push(WorldDiagnostic {
                code: LintCode::InvalidPhaseOrder,
                scope: Some(scope.clone()),
                phase: mv.stages.first().map(|s| s.label()),
                message: format!(
                    "phase sequence [{listed}] is not a prefix of \
                     announce→dual→commit→drain — a skipped make step frees tables the \
                     directory still routes to",
                ),
                hint: "drive every move through the canonical order; model a rollback as a \
                       pre-commit prefix",
            });
            broken = true;
        }

        if mv.from == mv.to {
            diagnostics.push(WorldDiagnostic {
                code: LintCode::RedundantMove,
                scope: Some(scope.clone()),
                phase: Some("announce"),
                message: format!(
                    "source and destination are both cluster {} — the move publishes \
                     epochs without changing ownership",
                    mv.from,
                ),
                hint: "drop the no-op move from the plan",
            });
        }
        if mv.to >= model.clusters {
            diagnostics.push(WorldDiagnostic {
                code: LintCode::DirectoryDivergence,
                scope: Some(scope.clone()),
                phase: Some("announce"),
                message: format!(
                    "destination cluster {} is outside the {}-cluster world — the commit \
                     phase would retarget the directory into the void",
                    mv.to, model.clusters,
                ),
                hint: "target a cluster that exists (grow the set first if scaling out)",
            });
            broken = true;
        }

        for unit in &mv.units {
            if moved.contains(unit) {
                diagnostics.push(WorldDiagnostic {
                    code: LintCode::TransitionBlackHole,
                    scope: Some(format!("unit {unit}")),
                    phase: Some("announce"),
                    message: format!(
                        "unit moves twice in one plan (again in move {i}) — the second \
                         move's source no longer matches the world after the first",
                    ),
                    hint: "coalesce the moves or re-plan from the post-move world",
                });
                broken = true;
            }
            moved.insert(*unit);
            match model.weight_of(*unit) {
                None => {
                    diagnostics.push(WorldDiagnostic {
                        code: LintCode::DeltaBaseMismatch,
                        scope: Some(format!("unit {unit}")),
                        phase: Some("announce"),
                        message: "the delta names a unit absent from the base world".to_string(),
                        hint: "re-plan against the current base; the unit was removed or \
                               renamed since",
                    });
                    broken = true;
                }
                Some(_) => match model.primary.get(unit) {
                    None => {
                        diagnostics.push(WorldDiagnostic {
                            code: LintCode::TransitionBlackHole,
                            scope: Some(format!("unit {unit}")),
                            phase: Some("announce"),
                            message: "unit has no live owner to move from — every phase of \
                                      the move leaves it uncovered"
                                .to_string(),
                            hint: "assign the unit before migrating it",
                        });
                        broken = true;
                    }
                    Some(owner) if *owner != mv.from => {
                        diagnostics.push(WorldDiagnostic {
                            code: LintCode::TransitionBlackHole,
                            scope: Some(format!("unit {unit}")),
                            phase: Some("drain"),
                            message: format!(
                                "move expects source cluster {} but the directory points at \
                                 cluster {owner} — the drain phase would free the live \
                                 owner's tables while traffic still lands there",
                                mv.from,
                            ),
                            hint: "re-plan from the directory's actual assignment",
                        });
                        broken = true;
                    }
                    Some(_) => {}
                },
            }
        }

        // Blast radius: the whole group co-owns two clusters for the
        // dual window; a rollback mid-window republishes all of it.
        if mv.stages.contains(&MoveStage::Dual) {
            let pct = 100.0 * mv.units.len() as f64 / total_units as f64;
            if pct >= options.blast_radius_warn_pct {
                diagnostics.push(WorldDiagnostic {
                    code: LintCode::BlastRadius,
                    scope: Some(scope.clone()),
                    phase: Some("dual"),
                    message: format!(
                        "dual window co-owns {} of {} unit(s) ({pct:.1}% of the world) — a \
                         mid-window rollback republishes all of it at once",
                        mv.units.len(),
                        total_units,
                    ),
                    hint: "split the migration into smaller groups",
                });
            }
        }

        if broken {
            // The move cannot be simulated faithfully; skip its capacity
            // walk so one broken move doesn't cascade phantom findings.
            continue;
        }

        let group: (usize, usize) = mv.units.iter().fold((0, 0), |acc, u| {
            let (r, v) = model.weight_of(*u).unwrap_or((0, 0));
            (acc.0 + r, acc.1 + v)
        });

        // Walk the intermediate worlds. Only Announce changes a load
        // upward (destination gains the group); Dual/Commit re-use the
        // post-announce loads; Drain releases the source. Every other
        // cluster's verdict is structurally shared with the certificate.
        for stage in &mv.stages {
            stats.worlds_checked += 1;
            let checked = match stage {
                MoveStage::Announce => {
                    if let Some(slot) = loads.get_mut(mv.to) {
                        slot.0 += group.0;
                        slot.1 += group.1;
                        let load = *slot;
                        check_cluster(
                            mv.to,
                            load,
                            cap,
                            options,
                            "announce",
                            &mut diagnostics,
                            &mut stats,
                        );
                        1
                    } else {
                        0
                    }
                }
                MoveStage::Dual | MoveStage::Commit => 0,
                MoveStage::Drain => {
                    if let Some(slot) = loads.get_mut(mv.from) {
                        slot.0 = slot.0.saturating_sub(group.0);
                        slot.1 = slot.1.saturating_sub(group.1);
                    }
                    0
                }
            };
            stats.cache_hits += model.clusters - checked;
        }
        // A pre-commit prefix rolls back: the destination drops the
        // staged copy and the world returns to base.
        if !mv.stages.contains(&MoveStage::Commit) {
            if let Some(slot) = loads.get_mut(mv.to) {
                slot.0 = slot.0.saturating_sub(group.0);
                slot.1 = slot.1.saturating_sub(group.1);
            }
        }
    }

    report(diagnostics, stats)
}

/// A known-bad world/plan with the diagnostics it must provoke. Doubles
/// as golden-test fixtures and as the `verify_world_sweep` demo corpus.
#[derive(Debug, Clone)]
pub struct WorldCorpusCase {
    /// Stable case name.
    pub name: &'static str,
    /// The base world.
    pub base: WorldModel,
    /// The capacity budget to verify against.
    pub budget: EntryBudget,
    /// The transition to verify, when the case is about a plan.
    pub plan: Option<TransitionPlan>,
    /// Whether to verify the plan against a deliberately stale
    /// certificate (the `SF-E012` case).
    pub stale_certificate: bool,
    /// Codes the report must contain.
    pub expect: Vec<LintCode>,
}

/// Runs one corpus case the way the gates do: certify the base, then —
/// when the case carries a plan — verify it against the (possibly
/// staled) certificate. Base findings and plan findings are merged so a
/// case's expectation reads against one report.
pub fn run_world_case(case: &WorldCorpusCase) -> WorldReport {
    let options = WorldOptions::default();
    let (mut base_report, mut certificate) = certify(&case.base, &case.budget, &options);
    let Some(plan) = &case.plan else {
        return base_report;
    };
    if case.stale_certificate {
        certificate.fingerprint ^= 0xDEAD_BEEF;
    }
    let plan_report = verify_plan(&case.base, &certificate, plan, &case.budget, &options);
    base_report.diagnostics.extend(plan_report.diagnostics);
    base_report.stats = plan_report.stats;
    base_report.finish()
}

/// A healthy 4-cluster base world: 8 units of 100 routes / 200 vms,
/// round-robin owned.
fn healthy_base(label: &str) -> WorldModel {
    let mut model = WorldModel::new(label, 4);
    for unit in 0..8u64 {
        model.add_unit(unit + 1, 100, 200, (unit as usize) % 4);
    }
    model
}

fn generous() -> EntryBudget {
    EntryBudget {
        max_routes: 1_000,
        max_vms: 2_000,
    }
}

/// The known-bad world corpus: one minimal world or plan per world-level
/// error class, plus the headline warnings.
pub fn known_bad_world_corpus() -> Vec<WorldCorpusCase> {
    let mut cases = Vec::new();

    // 1. Uncovered unit: entries staged, no owner anywhere.
    let mut uncovered = healthy_base("uncovered-unit");
    uncovered.primary.remove(&3);
    uncovered.holders.remove(&3);
    cases.push(WorldCorpusCase {
        name: "uncovered-unit",
        base: uncovered,
        budget: generous(),
        plan: None,
        stale_certificate: false,
        expect: vec![LintCode::UncoveredUnit],
    });

    // 2. Directory divergence: the owner holds no tables.
    let mut diverged = healthy_base("directory-divergence");
    diverged.primary.insert(5, 3);
    cases.push(WorldCorpusCase {
        name: "directory-divergence",
        base: diverged,
        budget: generous(),
        plan: None,
        stale_certificate: false,
        expect: vec![LintCode::DirectoryDivergence],
    });

    // 3. Orphan directory entry: an assignment for a unit with no state.
    let mut orphan = healthy_base("orphan-directory-entry");
    orphan.primary.insert(99, 0);
    cases.push(WorldCorpusCase {
        name: "orphan-directory-entry",
        base: orphan,
        budget: generous(),
        plan: None,
        stale_certificate: false,
        expect: vec![LintCode::DirectoryDivergence],
    });

    // 4. World over capacity: one cluster's aggregate past its budget.
    cases.push(WorldCorpusCase {
        name: "world-over-capacity",
        base: healthy_base("world-over-capacity"),
        budget: EntryBudget {
            max_routes: 150,
            max_vms: 2_000,
        },
        plan: None,
        stale_certificate: false,
        expect: vec![LintCode::WorldOverCapacity],
    });

    // 5. Headroom: legal but ≥85% of the budget.
    cases.push(WorldCorpusCase {
        name: "world-headroom",
        base: healthy_base("world-headroom"),
        budget: EntryBudget {
            max_routes: 230,
            max_vms: 2_000,
        },
        plan: None,
        stale_certificate: false,
        expect: vec![LintCode::WorldHeadroom],
    });

    // 6. Transition black hole: the plan's source is not the owner, so
    // Drain would free the live owner's tables.
    cases.push(WorldCorpusCase {
        name: "transition-black-hole",
        base: healthy_base("transition-black-hole"),
        budget: generous(),
        plan: Some(TransitionPlan {
            moves: vec![WorldMove::full(vec![1], 2, 3)],
        }),
        stale_certificate: false,
        expect: vec![LintCode::TransitionBlackHole],
    });

    // 7. Break-before-make: Announce→Drain skips the Dual/Commit steps.
    cases.push(WorldCorpusCase {
        name: "break-before-make",
        base: healthy_base("break-before-make"),
        budget: generous(),
        plan: Some(TransitionPlan {
            moves: vec![WorldMove {
                units: vec![1],
                from: 0,
                to: 1,
                stages: vec![MoveStage::Announce, MoveStage::Drain],
            }],
        }),
        stale_certificate: false,
        expect: vec![LintCode::InvalidPhaseOrder],
    });

    // 8. Stale certificate: a valid plan verified against the wrong base.
    cases.push(WorldCorpusCase {
        name: "delta-base-mismatch",
        base: healthy_base("delta-base-mismatch"),
        budget: generous(),
        plan: Some(TransitionPlan {
            moves: vec![WorldMove::full(vec![1], 0, 1)],
        }),
        stale_certificate: true,
        expect: vec![LintCode::DeltaBaseMismatch],
    });

    // 9. Destination outside the world.
    cases.push(WorldCorpusCase {
        name: "destination-outside-world",
        base: healthy_base("destination-outside-world"),
        budget: generous(),
        plan: Some(TransitionPlan {
            moves: vec![WorldMove::full(vec![1], 0, 9)],
        }),
        stale_certificate: false,
        expect: vec![LintCode::DirectoryDivergence],
    });

    // 10. Move that overloads its destination during the dual window.
    cases.push(WorldCorpusCase {
        name: "move-overloads-destination",
        base: healthy_base("move-overloads-destination"),
        budget: EntryBudget {
            max_routes: 250,
            max_vms: 2_000,
        },
        plan: Some(TransitionPlan {
            moves: vec![WorldMove::full(vec![1], 0, 1)],
        }),
        stale_certificate: false,
        expect: vec![LintCode::WorldOverCapacity],
    });

    // 11. Blast radius: one move dual-owning half the world.
    cases.push(WorldCorpusCase {
        name: "blast-radius",
        base: healthy_base("blast-radius"),
        budget: generous(),
        plan: Some(TransitionPlan {
            moves: vec![WorldMove::full(vec![1, 5], 0, 2)],
        }),
        stale_certificate: false,
        expect: vec![LintCode::BlastRadius],
    });

    // 12. Redundant move: source equals destination.
    cases.push(WorldCorpusCase {
        name: "redundant-move",
        base: healthy_base("redundant-move"),
        budget: generous(),
        plan: Some(TransitionPlan {
            moves: vec![WorldMove::full(vec![1], 0, 0)],
        }),
        stale_certificate: false,
        expect: vec![LintCode::RedundantMove],
    });

    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_world_certifies_clean() {
        let model = healthy_base("clean");
        let (report, certificate) = certify(&model, &generous(), &WorldOptions::default());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.stats.capacity_calls, 4);
        assert_eq!(certificate.fingerprint, model.fingerprint());
        assert!(certificate.verdicts.iter().all(|v| *v));
    }

    #[test]
    fn clean_plan_verifies_clean_in_o_delta() {
        let model = healthy_base("delta");
        let options = WorldOptions::default();
        let (_, certificate) = certify(&model, &generous(), &options);
        let plan = TransitionPlan {
            moves: vec![WorldMove::full(vec![1], 0, 1)],
        };
        let report = verify_plan(&model, &certificate, &plan, &generous(), &options);
        assert!(report.is_clean(), "{}", report.render());
        // One capacity call (the destination at Announce) regardless of
        // how many clusters exist — the O(delta) contract.
        assert_eq!(report.stats.capacity_calls, 1);
        assert!(report.stats.cache_hits > 0);
    }

    #[test]
    fn rollback_prefix_releases_the_destination() {
        let model = healthy_base("rollback");
        let options = WorldOptions::default();
        // Budget fits base + one announced group, but not two at once on
        // the same destination.
        let budget = EntryBudget {
            max_routes: 310,
            max_vms: 2_000,
        };
        let (_, certificate) = certify(&model, &budget, &options);
        // Move 1 rolls back pre-commit; move 2 then announces onto the
        // same destination. Legal only if the rollback released its load.
        let plan = TransitionPlan {
            moves: vec![
                WorldMove {
                    units: vec![1],
                    from: 0,
                    to: 2,
                    stages: vec![MoveStage::Announce, MoveStage::Dual],
                },
                WorldMove::full(vec![6], 1, 2),
            ],
        };
        let report = verify_plan(&model, &certificate, &plan, &budget, &options);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn drain_releases_the_source_for_later_moves() {
        // Five clusters, the fifth empty: units 1/5 leave cluster 0 for
        // it, then units 2/6 land on cluster 0. Legal only if the first
        // move's drain is modeled (otherwise cluster 0 holds 400 routes
        // against a 310 budget).
        let mut model = WorldModel::new("drain-release", 5);
        for unit in 0..8u64 {
            model.add_unit(unit + 1, 100, 200, (unit as usize) % 4);
        }
        let options = WorldOptions::default();
        let budget = EntryBudget {
            max_routes: 310,
            max_vms: 2_000,
        };
        let (_, certificate) = certify(&model, &budget, &options);
        let plan = TransitionPlan {
            moves: vec![
                WorldMove::full(vec![1, 5], 0, 4),
                WorldMove::full(vec![2, 6], 1, 0),
            ],
        };
        let report = verify_plan(&model, &certificate, &plan, &budget, &options);
        // The two-unit groups trip the blast-radius warning; no error is
        // the property under test.
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn corpus_cases_all_fire() {
        for case in known_bad_world_corpus() {
            let report = run_world_case(&case);
            for code in &case.expect {
                assert!(
                    report.has(*code),
                    "case '{}' should emit {code}; got:\n{}",
                    case.name,
                    report.render(),
                );
            }
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        for case in known_bad_world_corpus() {
            let a = run_world_case(&case).render();
            let b = run_world_case(&case).render();
            assert_eq!(a, b, "case '{}' rendering unstable", case.name);
        }
    }

    #[test]
    fn fingerprint_tracks_structure_not_label() {
        let a = healthy_base("a");
        let mut b = healthy_base("b");
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.add_holder(1, 2);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn moving_a_unit_twice_is_flagged() {
        let model = healthy_base("twice");
        let options = WorldOptions::default();
        let (_, certificate) = certify(&model, &generous(), &options);
        let plan = TransitionPlan {
            moves: vec![
                WorldMove::full(vec![1], 0, 1),
                WorldMove::full(vec![1], 1, 2),
            ],
        };
        let report = verify_plan(&model, &certificate, &plan, &generous(), &options);
        assert!(
            report.has(LintCode::TransitionBlackHole),
            "{}",
            report.render()
        );
    }
}
