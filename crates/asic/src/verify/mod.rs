//! `sailfish-verify`: a diagnostics-grade static analyzer for pipeline
//! layouts.
//!
//! [`Layout::validate`](crate::placement::Layout::validate) historically
//! rejected an illegal placement with a single opaque error. Every result
//! the reproduction claims — Table 4 occupancy, the §4.4
//! folding/splitting/pooling legality, the digest-conflict bound —
//! depends on a placement being *legal* on the Tofino model, so this
//! module takes the compiler's route instead: a multi-pass analyzer that
//! lowers a [`Layout`] to per-stage resource demands and emits a
//! structured [`Report`] of stable-coded [`Diagnostic`]s, each carrying a
//! severity, the offending table, the fold step, and a remediation hint.
//!
//! Passes, in order:
//!
//! 1. **fold-order dependency graph** — builds the match-action
//!    dependency DAG over [`FoldStep`]s (edges follow
//!    `depends_on_previous`) and rejects lookups that read metadata
//!    produced later on the fold path (`SF-E001`) or placed in a gress
//!    that does not exist in the layout's fold configuration (`SF-E003`);
//! 2. **stage/block allocator** — lowers each [`PlacedTable`] to
//!    per-stage SRAM/TCAM block demands against the
//!    [`TofinoConfig`] inventories, walking the twelve stages of each
//!    pipe with a first-fit allocator that honours dependency chaining
//!    (a dependent match must start after its producer's last stage), and
//!    reports per-pipe/per-stage occupancy water-levels — warnings at
//!    ≥85% (`SF-W001`/`SF-W002`), errors over 100% (`SF-E002`) or when a
//!    chain spills past the last stage (`SF-E006`);
//! 3. **PHV/bridge budget** — counts metadata bits per gress (action
//!    results live in the PHV, bridged bits land in the destination
//!    gress) and diagnoses overflow (`SF-E004`) and pressure
//!    (`SF-W003`/`SF-W006`);
//! 4. **lint rules** — duplicate table placements whose fractions
//!    over-commit the entry set (`SF-E005`), under-placed fractions
//!    (`SF-W005`), and an undersized digest-conflict table against the
//!    reservation the caller requires (`SF-W004`).
//!
//! The rendered report is byte-stable for a given layout: diagnostics
//! are sorted by (severity, code, table, step) and every number is
//! formatted with a fixed precision, so two runs of the analyzer over
//! the same layout `cmp` equal — the CI determinism gate relies on this.
//!
//! Beyond single layouts, [`world`] lifts the analysis to whole staged
//! *worlds* (every cluster's load plus the unit→cluster directory) and
//! to *transitions* between worlds (make-before-break move plans),
//! proving no-black-hole and capacity invariants before any push — see
//! the `SF-E007`+/`SF-W007`+ codes.

use core::fmt;

pub mod world;

use crate::config::TofinoConfig;
use crate::mem::Occupancy;
use crate::placement::{FoldStep, Layout, PipePair, PlacedTable};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The layout is illegal on the modeled hardware.
    Error,
    /// The layout is legal but fragile (low headroom, suspect shape).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// Stable lint codes. The numeric part never changes meaning across
/// versions; tools may match on [`LintCode::code`] strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// `SF-E001` — a lookup reads metadata produced later on the fold
    /// path.
    FoldOrderViolation,
    /// `SF-E002` — a pipe's aggregate SRAM or TCAM demand exceeds its
    /// inventory.
    OverCapacity,
    /// `SF-E003` — a table sits in a gress that does not exist in this
    /// fold configuration (loop steps without folding).
    GressViolation,
    /// `SF-E004` — a gress's metadata does not fit the PHV budget.
    PhvOverflow,
    /// `SF-E005` — duplicate placements of one table over-commit its
    /// entry set (fractions sum past 1).
    DuplicateTable,
    /// `SF-E006` — a dependency chain spills past the last match stage.
    StageOverflow,
    /// `SF-W001` — TCAM occupancy at or above the headroom water-level.
    TcamHeadroom,
    /// `SF-W002` — SRAM occupancy at or above the headroom water-level.
    SramHeadroom,
    /// `SF-W003` — PHV usage at or above the headroom water-level.
    PhvPressure,
    /// `SF-W004` — a conflict table smaller than the required
    /// reservation.
    ConflictTableUndersized,
    /// `SF-W005` — fractional placements leave part of a table's entry
    /// set unplaced.
    UnderPlaced,
    /// `SF-W006` — every fold boundary is already bridged; the next
    /// dependency rides the packet.
    BridgePressure,
    /// `SF-E007` — a unit (VNI group) carries entries but no world owns
    /// it: traffic for it would black-hole at the directory.
    UncoveredUnit,
    /// `SF-E008` — the directory and the table holders diverge: the
    /// primary owner is not among the clusters holding the unit's
    /// tables, or an owner index is outside the cluster set.
    DirectoryDivergence,
    /// `SF-E009` — a cluster's aggregate load in some world of the plan
    /// exceeds what its devices can legally hold.
    WorldOverCapacity,
    /// `SF-E010` — an intermediate world of a move sequence leaves a
    /// unit's live owner without tables (break-before-make).
    TransitionBlackHole,
    /// `SF-E011` — a move's phase sequence violates the make-before-break
    /// order (Announce → Dual → Commit → Drain, prefixes only).
    InvalidPhaseOrder,
    /// `SF-E012` — a delta was verified against a certificate whose
    /// fingerprint does not match the base world (stale cache).
    DeltaBaseMismatch,
    /// `SF-W007` — a cluster's post-plan utilization is at or above the
    /// headroom water-level in some world of the plan.
    WorldHeadroom,
    /// `SF-W008` — one move's dual window co-owns a large share of all
    /// units: its blast radius on rollback is outsized.
    BlastRadius,
    /// `SF-W009` — a move's source equals its destination: it churns
    /// epochs without changing ownership.
    RedundantMove,
}

impl LintCode {
    /// The stable code string, e.g. `SF-E003`.
    pub fn code(&self) -> &'static str {
        match self {
            LintCode::FoldOrderViolation => "SF-E001",
            LintCode::OverCapacity => "SF-E002",
            LintCode::GressViolation => "SF-E003",
            LintCode::PhvOverflow => "SF-E004",
            LintCode::DuplicateTable => "SF-E005",
            LintCode::StageOverflow => "SF-E006",
            LintCode::TcamHeadroom => "SF-W001",
            LintCode::SramHeadroom => "SF-W002",
            LintCode::PhvPressure => "SF-W003",
            LintCode::ConflictTableUndersized => "SF-W004",
            LintCode::UnderPlaced => "SF-W005",
            LintCode::BridgePressure => "SF-W006",
            LintCode::UncoveredUnit => "SF-E007",
            LintCode::DirectoryDivergence => "SF-E008",
            LintCode::WorldOverCapacity => "SF-E009",
            LintCode::TransitionBlackHole => "SF-E010",
            LintCode::InvalidPhaseOrder => "SF-E011",
            LintCode::DeltaBaseMismatch => "SF-E012",
            LintCode::WorldHeadroom => "SF-W007",
            LintCode::BlastRadius => "SF-W008",
            LintCode::RedundantMove => "SF-W009",
        }
    }

    /// The human slug, e.g. `gress-violation`.
    pub fn slug(&self) -> &'static str {
        match self {
            LintCode::FoldOrderViolation => "fold-order-violation",
            LintCode::OverCapacity => "over-capacity",
            LintCode::GressViolation => "gress-violation",
            LintCode::PhvOverflow => "phv-overflow",
            LintCode::DuplicateTable => "duplicate-table",
            LintCode::StageOverflow => "stage-overflow",
            LintCode::TcamHeadroom => "tcam-headroom",
            LintCode::SramHeadroom => "sram-headroom",
            LintCode::PhvPressure => "phv-pressure",
            LintCode::ConflictTableUndersized => "conflict-table-undersized",
            LintCode::UnderPlaced => "under-placed",
            LintCode::BridgePressure => "bridge-pressure",
            LintCode::UncoveredUnit => "uncovered-unit",
            LintCode::DirectoryDivergence => "directory-divergence",
            LintCode::WorldOverCapacity => "world-over-capacity",
            LintCode::TransitionBlackHole => "transition-black-hole",
            LintCode::InvalidPhaseOrder => "invalid-phase-order",
            LintCode::DeltaBaseMismatch => "delta-base-mismatch",
            LintCode::WorldHeadroom => "world-headroom",
            LintCode::BlastRadius => "blast-radius",
            LintCode::RedundantMove => "redundant-move",
        }
    }

    /// The severity implied by the code class (`E` vs `W`).
    pub fn severity(&self) -> Severity {
        match self {
            LintCode::FoldOrderViolation
            | LintCode::OverCapacity
            | LintCode::GressViolation
            | LintCode::PhvOverflow
            | LintCode::DuplicateTable
            | LintCode::StageOverflow
            | LintCode::UncoveredUnit
            | LintCode::DirectoryDivergence
            | LintCode::WorldOverCapacity
            | LintCode::TransitionBlackHole
            | LintCode::InvalidPhaseOrder
            | LintCode::DeltaBaseMismatch => Severity::Error,
            _ => Severity::Warning,
        }
    }

    /// Every stable code, in code order — the golden tests pin this list
    /// so a code can never silently change or disappear.
    pub const ALL: [LintCode; 21] = [
        LintCode::FoldOrderViolation,
        LintCode::OverCapacity,
        LintCode::GressViolation,
        LintCode::PhvOverflow,
        LintCode::DuplicateTable,
        LintCode::StageOverflow,
        LintCode::UncoveredUnit,
        LintCode::DirectoryDivergence,
        LintCode::WorldOverCapacity,
        LintCode::TransitionBlackHole,
        LintCode::InvalidPhaseOrder,
        LintCode::DeltaBaseMismatch,
        LintCode::TcamHeadroom,
        LintCode::SramHeadroom,
        LintCode::PhvPressure,
        LintCode::ConflictTableUndersized,
        LintCode::UnderPlaced,
        LintCode::BridgePressure,
        LintCode::WorldHeadroom,
        LintCode::BlastRadius,
        LintCode::RedundantMove,
    ];
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.slug())
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// The offending table, when the finding is table-scoped.
    pub table: Option<String>,
    /// The fold step it sits at, when table-scoped.
    pub step: Option<FoldStep>,
    /// What is wrong, with the numbers that prove it.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl Diagnostic {
    /// The diagnostic's severity (derived from its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity(), self.code)?;
        if let Some(table) = &self.table {
            write!(f, " table '{table}'")?;
            if let Some(step) = self.step {
                write!(f, " @ {step:?}")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// Block usage of one match stage of a pipe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageWater {
    /// Stage index (0-based).
    pub stage: usize,
    /// SRAM blocks allocated in the stage.
    pub sram_blocks: usize,
    /// TCAM blocks allocated in the stage.
    pub tcam_blocks: usize,
}

/// The lowered resource picture of one pipe pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairReport {
    /// Which pair.
    pub pair: PipePair,
    /// Aggregate occupancy of one pipe of the pair.
    pub occupancy: Occupancy,
    /// Per-stage block water-levels (only stages with any allocation).
    pub stages: Vec<StageWater>,
}

/// PHV metadata accounting per gress.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhvReport {
    /// Metadata bits live in the ingress gress.
    pub ingress_bits: u32,
    /// Metadata bits live in the egress gress.
    pub egress_bits: u32,
    /// Per-gress budget.
    pub capacity_bits: u32,
}

/// Analyzer knobs. [`VerifyOptions::default`] matches the hardware
/// model; callers with program-level knowledge (e.g. the XGW-H conflict
/// reservation) tighten it.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Occupancy percentage at which headroom warnings fire.
    pub headroom_warn_pct: f64,
    /// Minimum entries any table whose name contains
    /// [`VerifyOptions::conflict_name_marker`] must reserve
    /// (`SF-W004`). `None` disables the lint.
    pub conflict_table_min_entries: Option<usize>,
    /// Substring identifying digest-conflict tables.
    pub conflict_name_marker: &'static str,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            headroom_warn_pct: 85.0,
            conflict_table_min_entries: None,
            conflict_name_marker: "conflict",
        }
    }
}

/// The structured outcome of verifying one layout.
#[derive(Debug, Clone)]
pub struct Report {
    /// Caller-supplied label naming the layout.
    pub label: String,
    /// Whether the layout runs folded.
    pub folded: bool,
    /// Number of placed tables.
    pub table_count: usize,
    /// All findings, sorted by (severity, code, table, step).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-pair lowered resource picture, `[Outer, Loop]`.
    pub pairs: Vec<PairReport>,
    /// Per-gress PHV accounting.
    pub phv: PhvReport,
    /// Gress boundaries the placement bridges.
    pub bridge_count: usize,
    /// Bytes those bridges append to every looped packet.
    pub bridge_bytes: usize,
}

impl Report {
    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Findings with [`Severity::Warning`].
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// Whether the layout is legal (no errors; warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Whether a diagnostic with `code` was emitted.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders the report as stable text. Byte-identical across runs
    /// for the same layout.
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== sailfish-verify: {} ==", self.label);
        let _ = writeln!(
            out,
            "layout: {}, {} table placement(s); bridges: {} ({} bytes on the wire)",
            if self.folded { "folded" } else { "unfolded" },
            self.table_count,
            self.bridge_count,
            self.bridge_bytes,
        );
        let _ = writeln!(
            out,
            "phv: ingress {}/{} bits, egress {}/{} bits",
            self.phv.ingress_bits,
            self.phv.capacity_bits,
            self.phv.egress_bits,
            self.phv.capacity_bits,
        );
        for pair in &self.pairs {
            let _ = writeln!(
                out,
                "pair {:?}: SRAM {:.1}% | TCAM {:.1}%",
                pair.pair, pair.occupancy.sram_pct, pair.occupancy.tcam_pct,
            );
            for s in &pair.stages {
                let _ = writeln!(
                    out,
                    "  stage {:>2}: sram {:>3} blk, tcam {:>3} blk",
                    s.stage, s.sram_blocks, s.tcam_blocks,
                );
            }
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        let _ = writeln!(out, "diagnostics: {errors} error(s), {warnings} warning(s)");
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
            let _ = writeln!(out, "    hint: {}", d.hint);
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if errors == 0 { "CLEAN" } else { "REJECTED" }
        );
        out
    }
}

/// A dependency edge in the match-action DAG: `consumer` reads metadata
/// `producer` writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DepEdge {
    producer: usize,
    consumer: usize,
}

/// Verifies `layout` with default options. See [`verify_with`].
pub fn verify(layout: &Layout, label: &str) -> Report {
    verify_with(layout, label, &VerifyOptions::default())
}

/// Runs all four analyzer passes over `layout` and returns the
/// structured report. Never panics; an illegal layout is a report full
/// of errors, not a crash.
pub fn verify_with(layout: &Layout, label: &str, options: &VerifyOptions) -> Report {
    let mut diagnostics = Vec::new();
    let edges = dependency_edges(layout);

    pass_fold_order(layout, &edges, &mut diagnostics);
    let pairs = pass_stage_alloc(layout, options, &mut diagnostics);
    let phv = pass_phv_bridge(layout, options, &mut diagnostics);
    pass_lints(layout, options, &mut diagnostics);

    // Stable order: errors first, then by code, table, step.
    diagnostics.sort_by(|a, b| {
        (a.severity(), a.code, &a.table, a.step.map(|s| s as usize)).cmp(&(
            b.severity(),
            b.code,
            &b.table,
            b.step.map(|s| s as usize),
        ))
    });

    Report {
        label: label.to_string(),
        folded: layout.folded,
        table_count: layout.tables.len(),
        diagnostics,
        pairs,
        phv,
        bridge_count: layout.bridge_count(),
        bridge_bytes: layout.bridge_bytes(),
    }
}

/// Builds the match-action dependency DAG: edge `i-1 -> i` whenever
/// table `i` consumes its predecessor's metadata.
fn dependency_edges(layout: &Layout) -> Vec<DepEdge> {
    layout
        .tables
        .windows(2)
        .enumerate()
        .filter(|(_, w)| w[1].depends_on_previous)
        .map(|(i, _)| DepEdge {
            producer: i,
            consumer: i + 1,
        })
        .collect()
}

/// Pass 1: fold-order dependency checks over the DAG.
fn pass_fold_order(layout: &Layout, edges: &[DepEdge], diagnostics: &mut Vec<Diagnostic>) {
    if layout.folded {
        // Tables are listed in lookup order; a later lookup at an
        // earlier fold step cannot be reached by the packet in order,
        // whether or not it consumes metadata.
        for (i, w) in layout.tables.windows(2).enumerate() {
            let (producer, consumer) = (&w[0], &w[1]);
            if consumer.step < producer.step {
                let message = if edges.iter().any(|e| e.consumer == i + 1) {
                    format!(
                        "reads metadata produced by '{}' at {:?}, which the packet visits later",
                        producer.spec.name, producer.step,
                    )
                } else {
                    format!(
                        "placed at {:?}, earlier on the fold path than '{}' which precedes it \
                         in lookup order",
                        consumer.step, producer.spec.name,
                    )
                };
                diagnostics.push(Diagnostic {
                    code: LintCode::FoldOrderViolation,
                    table: Some(consumer.spec.name.clone()),
                    step: Some(consumer.step),
                    message,
                    hint: "move the consumer to the producer's step or later on the fold path, \
                           or break the dependency",
                });
            }
        }
    } else {
        // Without folding there is no loop visit: tables placed in the
        // loop gresses are unreachable and their metadata cannot be
        // bridged anywhere.
        for t in &layout.tables {
            if matches!(t.step, FoldStep::EgressLoop | FoldStep::IngressLoop) {
                diagnostics.push(Diagnostic {
                    code: LintCode::GressViolation,
                    table: Some(t.spec.name.clone()),
                    step: Some(t.step),
                    message: "placed in a loop gress, but the layout is unfolded — the packet \
                              never visits Pipe 1/3 and no bridge exists across that boundary"
                        .to_string(),
                    hint: "enable pipeline folding, or move the table to IngressOuter/EgressOuter",
                });
            }
        }
        // The one legal unfolded boundary is ingress -> egress. A
        // dependency flowing egress -> ingress reads next-packet state.
        for e in edges {
            let producer = &layout.tables[e.producer];
            let consumer = &layout.tables[e.consumer];
            if !producer.step.is_ingress() && consumer.step.is_ingress() {
                diagnostics.push(Diagnostic {
                    code: LintCode::FoldOrderViolation,
                    table: Some(consumer.spec.name.clone()),
                    step: Some(consumer.step),
                    message: format!(
                        "ingress lookup reads metadata produced by '{}' in the egress gress",
                        producer.spec.name,
                    ),
                    hint: "only ingress -> egress metadata flow exists without folding; reorder \
                           the tables or break the dependency",
                });
            }
        }
    }
}

/// Pass 2: lower tables to per-stage block demands and first-fit them
/// into the stage inventories of each pipe.
fn pass_stage_alloc(
    layout: &Layout,
    options: &VerifyOptions,
    diagnostics: &mut Vec<Diagnostic>,
) -> Vec<PairReport> {
    let config = layout.config();
    let stages = config.stages_per_pipe;

    // Aggregate water-levels first: they are exact (no block rounding)
    // and directly comparable to Table 4.
    let mut reports = Vec::new();
    for pair in [PipePair::Outer, PipePair::Loop] {
        let occ = Occupancy::of(layout.pair_usage(pair), config);
        for (pct, code_err, code_warn, what) in [
            (
                occ.sram_pct,
                LintCode::OverCapacity,
                LintCode::SramHeadroom,
                "SRAM",
            ),
            (
                occ.tcam_pct,
                LintCode::OverCapacity,
                LintCode::TcamHeadroom,
                "TCAM",
            ),
        ] {
            if pct > 100.0 {
                diagnostics.push(Diagnostic {
                    code: code_err,
                    table: None,
                    step: None,
                    message: format!(
                        "{what} demand in the {pair:?} pipes is {pct:.1}% of one pipe's inventory"
                    ),
                    hint: "split entries across the pipe pair (Fig 14), map a fraction to the \
                           other pair (Fig 15), or shrink the table",
                });
            } else if pct >= options.headroom_warn_pct {
                diagnostics.push(Diagnostic {
                    code: code_warn,
                    table: None,
                    step: None,
                    message: format!(
                        "{what} in the {pair:?} pipes at {pct:.1}% leaves little headroom \
                         for future entries"
                    ),
                    hint: "plan a rebalance before the next tenant batch lands",
                });
            }
        }
        reports.push(PairReport {
            pair,
            occupancy: occ,
            stages: Vec::new(),
        });
    }

    // Stage-granular allocation. Both gresses of a pipe share the same
    // stage memories, so each pair has one inventory; each gress visit
    // restarts the stage walk at 0, and a dependent match must start
    // after the stage where its producer finished.
    let mut sram_left = [
        vec![config.sram_blocks_per_stage; stages],
        vec![config.sram_blocks_per_stage; stages],
    ];
    let mut tcam_left = [
        vec![config.tcam_blocks_per_stage; stages],
        vec![config.tcam_blocks_per_stage; stages],
    ];
    let mut water = [
        vec![StageWater::default(); stages],
        vec![StageWater::default(); stages],
    ];
    let mut end_stage: Vec<Option<usize>> = vec![None; layout.tables.len()];

    for (i, t) in layout.tables.iter().enumerate() {
        let pair_idx = if layout.folded {
            match t.step.pipe_pair() {
                PipePair::Outer => 0,
                PipePair::Loop => 1,
            }
        } else {
            // Unfolded: every pipe runs the whole program; model one
            // representative pipe's stages (index 0) and mirror later.
            0
        };
        let demand = if layout.folded {
            t.cost_per_pipe(config)
        } else {
            t.spec.cost(config).scale(t.fraction.0, t.fraction.1)
        };
        let sram_blocks = demand.sram_words.div_ceil(config.sram_block_words);
        let tcam_blocks = demand.tcam_rows.div_ceil(config.tcam_block_rows);

        let min_start = if t.depends_on_previous && i > 0 && layout.tables[i - 1].step == t.step {
            end_stage[i - 1].map_or(0, |s| s + 1)
        } else {
            0
        };

        let mut need_sram = sram_blocks;
        let mut need_tcam = tcam_blocks;
        let mut last_touched = min_start.saturating_sub(1);
        for stage in min_start..stages {
            if need_sram == 0 && need_tcam == 0 {
                break;
            }
            let take_s = need_sram.min(sram_left[pair_idx][stage]);
            let take_t = need_tcam.min(tcam_left[pair_idx][stage]);
            if take_s > 0 || take_t > 0 {
                sram_left[pair_idx][stage] -= take_s;
                tcam_left[pair_idx][stage] -= take_t;
                water[pair_idx][stage].sram_blocks += take_s;
                water[pair_idx][stage].tcam_blocks += take_t;
                need_sram -= take_s;
                need_tcam -= take_t;
                last_touched = stage;
            }
        }
        end_stage[i] = Some(last_touched.min(stages - 1));
        if need_sram > 0 || need_tcam > 0 {
            diagnostics.push(Diagnostic {
                code: LintCode::StageOverflow,
                table: Some(t.spec.name.clone()),
                step: Some(t.step),
                message: format!(
                    "needs {sram_blocks} SRAM / {tcam_blocks} TCAM block(s) starting at stage \
                     {min_start}, but {need_sram} SRAM / {need_tcam} TCAM block(s) spill past \
                     stage {last}",
                    last = stages - 1,
                ),
                hint: "shorten the dependency chain, split the table across the pair, or free \
                       blocks in earlier stages",
            });
        }
    }

    for (pair_idx, report) in reports.iter_mut().enumerate() {
        // Unfolded pipes are identical; mirror the representative walk.
        let src = if layout.folded { pair_idx } else { 0 };
        report.stages = water[src]
            .iter()
            .enumerate()
            .filter(|(_, w)| w.sram_blocks > 0 || w.tcam_blocks > 0)
            .map(|(stage, w)| StageWater {
                stage,
                sram_blocks: w.sram_blocks,
                tcam_blocks: w.tcam_blocks,
            })
            .collect();
    }
    reports
}

/// Pass 3: PHV and bridge budgets. Each table's action result lives in
/// its gress's PHV; bridged metadata lands in the destination gress.
fn pass_phv_bridge(
    layout: &Layout,
    options: &VerifyOptions,
    diagnostics: &mut Vec<Diagnostic>,
) -> PhvReport {
    let config = layout.config();
    let mut ingress: u32 = 0;
    let mut egress: u32 = 0;
    for t in &layout.tables {
        if t.step.is_ingress() {
            ingress = ingress.saturating_add(t.spec.action_bits);
        } else {
            egress = egress.saturating_add(t.spec.action_bits);
        }
    }
    // Which boundaries the dependent chain crosses (same rule as
    // Layout::bridge_count, but we need the destination gress of each).
    let mut crossed = std::collections::BTreeSet::new();
    if layout.folded {
        for w in layout.tables.windows(2) {
            if !w[1].depends_on_previous {
                continue;
            }
            let (a, b) = (w[0].step as usize, w[1].step as usize);
            for boundary in a..b {
                crossed.insert(boundary);
            }
        }
    } else if layout.bridge_count() > 0 {
        crossed.insert(0);
    }
    for boundary in &crossed {
        // Boundary k lands the bridged bits in FoldStep::ALL[k + 1].
        let dest = FoldStep::ALL[boundary + 1];
        if dest.is_ingress() {
            ingress = ingress.saturating_add(config.bridge_bits_per_crossing);
        } else {
            egress = egress.saturating_add(config.bridge_bits_per_crossing);
        }
    }

    for (bits, gress) in [(ingress, "ingress"), (egress, "egress")] {
        let pct = 100.0 * f64::from(bits) / f64::from(config.phv_bits);
        if bits > config.phv_bits {
            diagnostics.push(Diagnostic {
                code: LintCode::PhvOverflow,
                table: None,
                step: None,
                message: format!(
                    "{gress} metadata needs {bits} bits but the PHV holds {} per gress",
                    config.phv_bits,
                ),
                hint: "shrink action data, drop unused metadata fields, or move tables to the \
                       other gress",
            });
        } else if pct >= options.headroom_warn_pct {
            diagnostics.push(Diagnostic {
                code: LintCode::PhvPressure,
                table: None,
                step: None,
                message: format!(
                    "{gress} metadata at {bits}/{} bits ({pct:.1}%) of the PHV budget",
                    config.phv_bits,
                ),
                hint: "PHV is scarce (§6.2); audit field widths before adding services",
            });
        }
    }

    let max_bridges = if layout.folded { 3 } else { 1 };
    if layout.bridge_count() >= max_bridges && max_bridges > 0 && !layout.tables.is_empty() {
        diagnostics.push(Diagnostic {
            code: LintCode::BridgePressure,
            table: None,
            step: None,
            message: format!(
                "all {max_bridges} gress boundary(ies) are bridged ({} bytes ride every packet)",
                layout.bridge_bytes(),
            ),
            hint: "group dependent tables within one gress to reclaim wire bytes",
        });
    }

    PhvReport {
        ingress_bits: ingress,
        egress_bits: egress,
        capacity_bits: config.phv_bits,
    }
}

/// Pass 4: lint rules over table shapes and name-grouped fractions.
fn pass_lints(layout: &Layout, options: &VerifyOptions, diagnostics: &mut Vec<Diagnostic>) {
    // Group fractional placements by table name. Fractions of one
    // logical table must sum to exactly one entry set: more is a
    // double-install (the old Layout silently accepted it and
    // double-counted memory — last-write-wins by another name), less
    // strands entries off-chip.
    let mut by_name: Vec<(&str, Vec<&PlacedTable>)> = Vec::new();
    for t in &layout.tables {
        match by_name.iter_mut().find(|(n, _)| *n == t.spec.name) {
            Some((_, list)) => list.push(t),
            None => by_name.push((&t.spec.name, vec![t])),
        }
    }
    for (name, placements) in &by_name {
        let total: f64 = placements
            .iter()
            .map(|t| t.fraction.0 as f64 / t.fraction.1 as f64)
            .sum();
        let first_step = placements[0].step;
        if total > 1.0 + 1e-9 {
            diagnostics.push(Diagnostic {
                code: LintCode::DuplicateTable,
                table: Some((*name).to_string()),
                step: Some(first_step),
                message: format!(
                    "{} placement(s) commit {:.2}x of the table's entry set — duplicate \
                     placements would shadow each other on hardware",
                    placements.len(),
                    total,
                ),
                hint: "remove the duplicate, or give each placement a fraction so they sum to 1",
            });
        } else if total < 1.0 - 1e-9 {
            diagnostics.push(Diagnostic {
                code: LintCode::UnderPlaced,
                table: Some((*name).to_string()),
                step: Some(first_step),
                message: format!(
                    "placed fraction(s) sum to {total:.2}; the remaining entries have no home \
                     on chip"
                ),
                hint: "add the complementary fraction on another step (Fig 15) or accept the \
                       punt-to-x86 cost for the remainder",
            });
        }
    }

    if let Some(min_entries) = options.conflict_table_min_entries {
        for t in &layout.tables {
            if t.spec.name.contains(options.conflict_name_marker) && t.spec.entries < min_entries {
                diagnostics.push(Diagnostic {
                    code: LintCode::ConflictTableUndersized,
                    table: Some(t.spec.name.clone()),
                    step: Some(t.step),
                    message: format!(
                        "reserves {} entries, below the required digest-conflict reservation \
                         of {min_entries}",
                        t.spec.entries,
                    ),
                    hint: "size the conflict table to the reservation so digest collisions \
                           never evict live mappings",
                });
            }
        }
    }
}

/// A known-bad layout with the diagnostics it must provoke. The corpus
/// doubles as golden-test fixtures and as the `sailfish-verify` demo
/// input.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Stable case name.
    pub name: &'static str,
    /// The layout under test.
    pub layout: Layout,
    /// Options to verify it with.
    pub options: VerifyOptions,
    /// Codes the report must contain.
    pub expect: Vec<LintCode>,
}

/// The known-bad corpus: every error class and the headline warnings,
/// one minimal layout each.
pub fn known_bad_corpus(config: &TofinoConfig) -> Vec<CorpusCase> {
    use crate::cost::{MatchKind, Storage, TableSpec};

    let exact = |name: &str, entries: usize, action_bits: u32| {
        TableSpec::new(
            name,
            MatchKind::Exact,
            56,
            action_bits,
            entries,
            Storage::SramHash,
        )
        .expect("corpus spec is statically valid")
    };
    let tcam = |name: &str, entries: usize| {
        TableSpec::new(name, MatchKind::Lpm, 56, 32, entries, Storage::Tcam)
            .expect("corpus spec is statically valid")
    };

    let mut cases = Vec::new();

    // 1. Gress violation: loop-gress tables without folding.
    let mut gress = Layout::new(config.clone(), false);
    gress.push(PlacedTable::new(
        exact("classify", 1_000, 32),
        FoldStep::IngressOuter,
    ));
    gress.push(PlacedTable::new(
        exact("routing", 1_000, 32),
        FoldStep::EgressLoop,
    ));
    cases.push(CorpusCase {
        name: "gress-violation",
        layout: gress,
        options: VerifyOptions::default(),
        expect: vec![LintCode::GressViolation],
    });

    // 2. Over-capacity: one pipe's TCAM demand past 100%.
    let mut over = Layout::new(config.clone(), true);
    over.push(PlacedTable::new(
        tcam("giant-acl", 200_000),
        FoldStep::IngressOuter,
    ));
    cases.push(CorpusCase {
        name: "over-capacity-pipe",
        layout: over,
        options: VerifyOptions::default(),
        expect: vec![LintCode::OverCapacity],
    });

    // 3. Undersized conflict table against the caller's reservation.
    let mut conflict = Layout::new(config.clone(), true);
    conflict.push(PlacedTable::new(
        exact("vm-nc-compressed", 10_000, 32),
        FoldStep::IngressLoop,
    ));
    conflict.push(PlacedTable::new(
        exact("vm-nc-conflict", 1_000, 32),
        FoldStep::IngressLoop,
    ));
    cases.push(CorpusCase {
        name: "undersized-conflict-table",
        layout: conflict,
        options: VerifyOptions {
            conflict_table_min_entries: Some(24_576),
            ..VerifyOptions::default()
        },
        expect: vec![LintCode::ConflictTableUndersized],
    });

    // 4. Duplicate table: two full placements of one name.
    let mut dup = Layout::new(config.clone(), true);
    dup.push(PlacedTable::new(
        exact("vm-nc", 10_000, 32),
        FoldStep::IngressLoop,
    ));
    dup.push(PlacedTable::new(
        exact("vm-nc", 10_000, 32),
        FoldStep::IngressLoop,
    ));
    cases.push(CorpusCase {
        name: "duplicate-table",
        layout: dup,
        options: VerifyOptions::default(),
        expect: vec![LintCode::DuplicateTable],
    });

    // 5. Fold-order violation: a consumer before its producer.
    let mut order = Layout::new(config.clone(), true);
    order.push(PlacedTable::new(
        exact("rewrite", 1_000, 32),
        FoldStep::EgressOuter,
    ));
    order.push(PlacedTable::new(
        exact("routing", 1_000, 32),
        FoldStep::IngressOuter,
    ));
    cases.push(CorpusCase {
        name: "fold-order-violation",
        layout: order,
        options: VerifyOptions::default(),
        expect: vec![LintCode::FoldOrderViolation],
    });

    // 6. PHV overflow: one action result wider than the whole budget.
    let mut phv = Layout::new(config.clone(), true);
    phv.push(PlacedTable::new(
        exact("wide-metadata", 64, config.phv_bits + 8),
        FoldStep::IngressOuter,
    ));
    cases.push(CorpusCase {
        name: "phv-overflow",
        layout: phv,
        options: VerifyOptions::default(),
        expect: vec![LintCode::PhvOverflow],
    });

    // 7. Stage overflow without aggregate overflow: a dependent chain
    // longer than the stage count. Memory fits easily; stages do not.
    let mut chain = Layout::new(config.clone(), true);
    for i in 0..config.stages_per_pipe + 1 {
        chain.push(PlacedTable::new(
            exact(&format!("hop-{i:02}"), 100, 32),
            FoldStep::IngressOuter,
        ));
    }
    cases.push(CorpusCase {
        name: "stage-overflow-chain",
        layout: chain,
        options: VerifyOptions::default(),
        expect: vec![LintCode::StageOverflow],
    });

    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{MatchKind, Storage, TableSpec};

    fn cfg() -> TofinoConfig {
        TofinoConfig::tofino_64t()
    }

    fn spec(name: &str, entries: usize) -> TableSpec {
        TableSpec::new(name, MatchKind::Exact, 56, 32, entries, Storage::SramHash)
            .expect("valid test spec")
    }

    #[test]
    fn clean_layout_reports_clean() {
        let mut l = Layout::new(cfg(), true);
        l.push(PlacedTable::new(spec("a", 10_000), FoldStep::IngressOuter));
        l.push(PlacedTable::new(spec("b", 10_000), FoldStep::EgressOuter));
        let report = verify(&l, "clean");
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.table_count, 2);
    }

    #[test]
    fn corpus_cases_all_fire() {
        for case in known_bad_corpus(&cfg()) {
            let report = verify_with(&case.layout, case.name, &case.options);
            for code in &case.expect {
                assert!(
                    report.has(*code),
                    "case '{}' should emit {code}; got:\n{}",
                    case.name,
                    report.render(),
                );
            }
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        for case in known_bad_corpus(&cfg()) {
            let a = verify_with(&case.layout, case.name, &case.options).render();
            let b = verify_with(&case.layout, case.name, &case.options).render();
            assert_eq!(a, b, "case '{}' rendering unstable", case.name);
        }
    }

    #[test]
    fn headroom_warning_fires_between_85_and_100() {
        // One pipe at ~89% SRAM: warning, not error.
        let mut l = Layout::new(cfg(), true);
        l.push(PlacedTable::new(
            spec("big", 700_000),
            FoldStep::IngressOuter,
        ));
        let report = verify(&l, "headroom");
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.has(LintCode::SramHeadroom), "{}", report.render());
    }

    #[test]
    fn fractions_summing_to_one_are_legal() {
        let mut l = Layout::new(cfg(), true);
        let mut a = PlacedTable::new(spec("d", 100_000), FoldStep::IngressLoop);
        a.fraction = (3, 10);
        let mut b = PlacedTable::new(spec("d", 100_000), FoldStep::EgressOuter);
        b.fraction = (7, 10);
        l.push(a);
        l.push(b);
        let report = verify(&l, "fractions");
        assert!(!report.has(LintCode::DuplicateTable), "{}", report.render());
        assert!(!report.has(LintCode::UnderPlaced), "{}", report.render());
    }

    #[test]
    fn under_placed_fraction_warns() {
        let mut l = Layout::new(cfg(), true);
        let mut a = PlacedTable::new(spec("d", 100_000), FoldStep::IngressLoop);
        a.fraction = (1, 2);
        l.push(a);
        let report = verify(&l, "under");
        assert!(report.has(LintCode::UnderPlaced), "{}", report.render());
        assert!(report.is_clean());
    }

    #[test]
    fn bridge_pressure_on_fully_bridged_path() {
        let mut l = Layout::new(cfg(), true);
        for (name, step) in [
            ("a", FoldStep::IngressOuter),
            ("b", FoldStep::EgressLoop),
            ("c", FoldStep::IngressLoop),
            ("d", FoldStep::EgressOuter),
        ] {
            l.push(PlacedTable::new(spec(name, 100), step));
        }
        let report = verify(&l, "chatty");
        assert!(report.has(LintCode::BridgePressure), "{}", report.render());
        assert!(report.is_clean());
        assert_eq!(report.bridge_count, 3);
    }

    #[test]
    fn stage_walk_records_water_levels() {
        let mut l = Layout::new(cfg(), true);
        l.push(PlacedTable::new(spec("a", 400_000), FoldStep::IngressOuter));
        let report = verify(&l, "water");
        let outer = &report.pairs[0];
        assert!(!outer.stages.is_empty());
        let total: usize = outer.stages.iter().map(|s| s.sram_blocks).sum();
        // 400k entries / 0.8 = 500k words = 489 blocks.
        assert_eq!(total, 489);
    }
}
