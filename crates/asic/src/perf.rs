//! The forwarding-performance envelope of XGW-H (Fig 18).
//!
//! The model is calibrated to the public Tofino 6.4T envelope and to the
//! latencies the paper reports: with pipeline folding "the average latency
//! is still only 2µs"; "the latency varies from 2.173µs to 2.303µs for
//! 128B-1024B IPv4 traffic" (§5.1). The 130ns spread across packet sizes
//! corresponds to two extra 100GbE serializations (the loopback pass), and
//! that is exactly how the model derives it.

/// Per-packet Ethernet overhead on the wire: preamble (8B) + IFG (12B).
pub const WIRE_OVERHEAD_BYTES: usize = 20;

/// The hardware performance envelope.
#[derive(Debug, Clone)]
pub struct PerfEnvelope {
    /// Aggregate line rate of all pipes, unfolded, in bits/s.
    pub line_rate_bps: f64,
    /// Aggregate packet-rate cap of all pipes, unfolded, in packets/s.
    pub pps_cap: f64,
    /// Time for one parser → MAU stages → deparser traversal, ns.
    pub pipe_traversal_ns: f64,
    /// Port speed used for (re)serialization delays, bits/s.
    pub port_bps: f64,
}

impl PerfEnvelope {
    /// The Tofino 6.4T envelope: 6.4 Tbps, 3.6 Gpps aggregate (so that the
    /// folded configuration delivers the paper's 3.2 Tbps / 1.8 Gpps),
    /// ~537ns per pipe traversal (so the folded 4-traversal path lands at
    /// the measured 2.17–2.31µs), 100GbE ports.
    pub fn tofino_64t() -> Self {
        PerfEnvelope {
            line_rate_bps: 6.4e12,
            pps_cap: 3.6e9,
            pipe_traversal_ns: 537.0,
            port_bps: 100e9,
        }
    }

    /// One-way gateway latency for a packet of `wire_bytes`, in ns.
    ///
    /// Unfolded: 2 traversals (ingress + egress pipe) and one
    /// serialization onto the output port. Folded: 4 traversals and two
    /// extra serializations through the loopback ports.
    pub fn latency_ns(&self, wire_bytes: usize, folded: bool) -> f64 {
        let ser = wire_bytes as f64 * 8.0 / self.port_bps * 1e9;
        if folded {
            4.0 * self.pipe_traversal_ns + 2.0 * ser
        } else {
            2.0 * self.pipe_traversal_ns + ser
        }
    }

    /// Aggregate achievable packet rate for `wire_bytes` packets
    /// (+`bridge_bytes` of bridged metadata while looping), in packets/s.
    pub fn max_pps(&self, wire_bytes: usize, folded: bool, bridge_bytes: usize) -> f64 {
        let factor = if folded { 0.5 } else { 1.0 };
        let effective = (wire_bytes + bridge_bytes + WIRE_OVERHEAD_BYTES) as f64 * 8.0;
        (self.line_rate_bps * factor / effective).min(self.pps_cap * factor)
    }

    /// Aggregate achievable goodput in bits/s for `wire_bytes` packets.
    pub fn max_bps(&self, wire_bytes: usize, folded: bool, bridge_bytes: usize) -> f64 {
        self.max_pps(wire_bytes, folded, bridge_bytes) * wire_bytes as f64 * 8.0
    }

    /// The smallest packet size (in wire bytes) that still achieves full
    /// line rate, i.e. where the pps cap stops binding. Folding halves
    /// both the line rate and the pps cap, so the crossover is the same in
    /// both configurations.
    pub fn line_rate_crossover_bytes(&self) -> usize {
        // line_rate / (8*(b+20)) <= pps_cap  =>  b >= line/(8*cap) - 20.
        let b = self.line_rate_bps / (8.0 * self.pps_cap) - WIRE_OVERHEAD_BYTES as f64;
        b.ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> PerfEnvelope {
        PerfEnvelope::tofino_64t()
    }

    /// Fig 18(c): folded latency ≈ 2µs, and the measured 128B→1024B spread.
    #[test]
    fn folded_latency_matches_paper() {
        let e = env();
        let at_128 = e.latency_ns(128, true);
        let at_1024 = e.latency_ns(1024, true);
        assert!((2100.0..2250.0).contains(&at_128), "{at_128}");
        assert!((2250.0..2400.0).contains(&at_1024), "{at_1024}");
        // The spread is ~130ns in the paper (2.173 → 2.303).
        let spread = at_1024 - at_128;
        assert!((100.0..180.0).contains(&spread), "{spread}");
    }

    #[test]
    fn folding_doubles_latency_roughly() {
        let e = env();
        let folded = e.latency_ns(256, true);
        let unfolded = e.latency_ns(256, false);
        assert!(folded / unfolded > 1.8 && folded / unfolded < 2.2);
    }

    /// Fig 18(a)/(b): folded envelope is 3.2 Tbps and 1.8 Gpps.
    #[test]
    fn folded_envelope() {
        let e = env();
        // Large packets: line-rate bound.
        let bps = e.max_bps(1500, true, 0);
        assert!(bps > 3.0e12 && bps <= 3.2e12, "{bps}");
        // Tiny packets: pps bound.
        let pps = e.max_pps(64, true, 0);
        assert!((pps - 1.8e9).abs() < 1e6, "{pps}");
    }

    /// "XGW-H can still reach line rate with packets smaller than 256B":
    /// the crossover must sit below 256B.
    #[test]
    fn line_rate_crossover_below_256b() {
        let e = env();
        let crossover = e.line_rate_crossover_bytes();
        assert!(crossover < 256, "crossover {crossover}");
        // And a 256B packet achieves the full folded line rate.
        let pps = e.max_pps(256, true, 0);
        let line = 3.2e12 / (8.0 * 276.0);
        assert!((pps - line).abs() / line < 1e-9);
    }

    #[test]
    fn bridging_reduces_throughput() {
        let e = env();
        // In the line-rate-bound regime, bridged bytes cost goodput.
        let without = e.max_pps(512, true, 0);
        let with = e.max_pps(512, true, 12);
        assert!(with < without);
        // In the pps-bound regime (tiny packets), bridging is absorbed.
        assert_eq!(e.max_pps(64, true, 0), e.max_pps(64, true, 12));
    }

    #[test]
    fn monotonicity_in_packet_size() {
        let e = env();
        let mut prev_bps = 0.0;
        for bytes in [64, 128, 256, 512, 1024, 1500] {
            let bps = e.max_bps(bytes, true, 0);
            assert!(bps >= prev_bps, "bps not monotone at {bytes}");
            prev_bps = bps;
        }
    }
}
