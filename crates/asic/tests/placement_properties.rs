//! Property-based tests for the placement and cost model, on the
//! in-tree seeded harness (`sailfish_util::check`).

use sailfish_util::check;
use sailfish_util::rand::rngs::StdRng;
use sailfish_util::rand::Rng;

use sailfish_asic::config::TofinoConfig;
use sailfish_asic::cost::{MatchKind, Storage, TableSpec};
use sailfish_asic::mem::Occupancy;
use sailfish_asic::placement::{FoldStep, Layout, PipePair, PlacedTable};

fn arb_spec(rng: &mut StdRng) -> TableSpec {
    let key_bits = rng.gen_range(1u32..=152);
    let action_bits = rng.gen_range(0u32..=64);
    let entries = rng.gen_range(1usize..200_000);
    match check::one_of(rng, 3) {
        0 => TableSpec::new(
            "t",
            MatchKind::Exact,
            key_bits,
            action_bits,
            entries,
            Storage::SramHash,
        )
        .expect("valid"),
        1 => TableSpec::new(
            "t",
            MatchKind::Lpm,
            key_bits,
            action_bits,
            entries,
            Storage::Tcam,
        )
        .expect("valid"),
        _ => TableSpec::new(
            "t",
            MatchKind::Lpm,
            key_bits,
            action_bits,
            entries,
            Storage::Alpm {
                tcam_index_entries: entries.div_ceil(16).min(entries),
                allocated_slots: entries.next_multiple_of(16),
            },
        )
        .expect("valid"),
    }
}

fn arb_step(rng: &mut StdRng) -> FoldStep {
    match check::one_of(rng, 4) {
        0 => FoldStep::IngressOuter,
        1 => FoldStep::EgressLoop,
        2 => FoldStep::IngressLoop,
        _ => FoldStep::EgressOuter,
    }
}

/// Cost is monotone in entries and key width, and never zero for a
/// non-empty table.
#[test]
fn cost_monotone() {
    check::run("cost_monotone", 256, |rng| {
        let spec = arb_spec(rng);
        let cfg = TofinoConfig::tofino_64t();
        let cost = spec.cost(&cfg);
        assert!(cost.sram_words + cost.tcam_rows > 0);

        let mut bigger = spec.clone();
        bigger.entries += 1;
        if let Storage::Alpm {
            allocated_slots, ..
        } = &mut bigger.storage
        {
            *allocated_slots = bigger.entries.next_multiple_of(16);
        }
        let bigger_cost = bigger.cost(&cfg);
        assert!(bigger_cost.sram_words >= cost.sram_words);
        assert!(bigger_cost.tcam_rows >= cost.tcam_rows);
    });
}

/// Splitting a table across the pipe pair never increases, and at most
/// halves (+rounding), the per-pipe footprint.
#[test]
fn split_halves_per_pipe() {
    check::run("split_halves_per_pipe", 256, |rng| {
        let spec = arb_spec(rng);
        let step = arb_step(rng);
        let cfg = TofinoConfig::tofino_64t();
        let whole = PlacedTable::new(spec.clone(), step);
        let mut split = PlacedTable::new(spec, step);
        split.split_across_pair = true;
        let w = whole.cost_per_pipe(&cfg);
        let s = split.cost_per_pipe(&cfg);
        assert!(s.sram_words <= w.sram_words);
        assert!(s.tcam_rows <= w.tcam_rows);
        assert!(s.sram_words >= w.sram_words / 2);
        assert!(s.tcam_rows >= w.tcam_rows / 2);
    });
}

/// A layout in lookup order always validates its ordering; memory
/// accounting equals the sum over pairs; occupancy is linear.
#[test]
fn layout_accounting_consistent() {
    check::run("layout_accounting_consistent", 256, |rng| {
        let specs = check::vec_of(rng, 1..8, |r| (arb_spec(r), arb_step(r)));
        let cfg = TofinoConfig::tofino_64t();
        let mut ordered = specs.clone();
        ordered.sort_by_key(|(_, step)| *step);
        let mut layout = Layout::new(cfg.clone(), true);
        let mut expect_outer = 0usize;
        let mut expect_loop = 0usize;
        for (i, (mut spec, step)) in ordered.into_iter().enumerate() {
            // Unique names: identical names with full fractions are a
            // duplicate-placement diagnostic, not a bigger table.
            spec.name = format!("t{i}");
            let t = PlacedTable::new(spec, step);
            let per_pipe = t.cost_per_pipe(&cfg).sram_words;
            match step.pipe_pair() {
                PipePair::Outer => expect_outer += per_pipe,
                PipePair::Loop => expect_loop += per_pipe,
            }
            layout.push(t);
        }
        // Ordering is legal by construction.
        match layout.validate() {
            Ok(()) => {}
            Err(sailfish_asic::Error::DoesNotFit { .. }) => {} // capacity may overflow
            Err(e) => panic!("unexpected: {e}"),
        }
        assert_eq!(layout.pair_usage(PipePair::Outer).sram_words, expect_outer);
        assert_eq!(layout.pair_usage(PipePair::Loop).sram_words, expect_loop);

        // Chip-wide occupancy is the average of pair occupancies.
        let (outer, looped) = layout.occupancy();
        let total = layout.total_occupancy();
        assert!((total.sram_pct - (outer.sram_pct + looped.sram_pct) / 2.0).abs() < 1e-6);
    });
}

/// The unfolded layout costs exactly the sum of full table costs per
/// pipe, regardless of assigned steps.
#[test]
fn unfolded_ignores_steps() {
    check::run("unfolded_ignores_steps", 256, |rng| {
        let specs = check::vec_of(rng, 1..6, |r| (arb_spec(r), arb_step(r)));
        let cfg = TofinoConfig::tofino_64t();
        let mut layout = Layout::new(cfg.clone(), false);
        let mut expect = 0usize;
        for (spec, step) in specs {
            expect += spec.cost(&cfg).sram_words;
            layout.push(PlacedTable::new(spec, step));
        }
        assert_eq!(layout.pair_usage(PipePair::Outer).sram_words, expect);
        assert_eq!(layout.pair_usage(PipePair::Loop).sram_words, expect);
    });
}

/// Occupancy::fits is exactly the <=100% predicate.
#[test]
fn fits_predicate() {
    check::run("fits_predicate", 256, |rng| {
        let sram = rng.gen_range(0usize..2_000_000);
        let tcam = rng.gen_range(0usize..300_000);
        let cfg = TofinoConfig::tofino_64t();
        let occ = Occupancy::of(
            sailfish_asic::mem::MemAmount {
                sram_words: sram,
                tcam_rows: tcam,
            },
            &cfg,
        );
        assert_eq!(
            occ.fits(),
            sram <= cfg.sram_words_per_pipe() && tcam <= cfg.tcam_rows_per_pipe()
        );
    });
}
