//! Golden-diagnostics tests for the static analyzer.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Byte stability** — the rendered report of every known-bad corpus
//!    case is identical across two independent runs (the CI determinism
//!    gate `cmp`s real reports, this is the in-process version), and the
//!    diagnostic codes each case emits are pinned exactly.
//! 2. **Soundness vs the legacy checker** — a seeded property test that
//!    any layout the analyzer reports clean also satisfies the legacy
//!    `Layout::validate` invariants (lookup-order monotonicity and
//!    per-pair capacity), so routing `validate()` through the analyzer
//!    never loosened it.

use sailfish_asic::config::TofinoConfig;
use sailfish_asic::cost::{MatchKind, Storage, TableSpec};
use sailfish_asic::mem::Occupancy;
use sailfish_asic::placement::{FoldStep, Layout, PipePair, PlacedTable};
use sailfish_asic::verify::{known_bad_corpus, verify_with, Severity};
use sailfish_util::check;
use sailfish_util::rand::rngs::StdRng;
use sailfish_util::rand::Rng;

#[test]
fn corpus_reports_are_byte_stable() {
    let cfg = TofinoConfig::tofino_64t();
    let first: Vec<String> = known_bad_corpus(&cfg)
        .into_iter()
        .map(|c| verify_with(&c.layout, c.name, &c.options).render())
        .collect();
    let second: Vec<String> = known_bad_corpus(&cfg)
        .into_iter()
        .map(|c| verify_with(&c.layout, c.name, &c.options).render())
        .collect();
    assert_eq!(first, second, "rendered reports differ across runs");
}

#[test]
fn corpus_emits_exactly_the_pinned_codes() {
    let cfg = TofinoConfig::tofino_64t();
    for case in known_bad_corpus(&cfg) {
        let report = verify_with(&case.layout, case.name, &case.options);
        for code in &case.expect {
            assert!(
                report.has(*code),
                "case '{}' must emit {code}; rendered:\n{}",
                case.name,
                report.render(),
            );
        }
    }
}

/// The error-class cases must actually be rejected, and the
/// warning-only case (undersized conflict table) must stay legal.
#[test]
fn corpus_severity_matches_code_class() {
    let cfg = TofinoConfig::tofino_64t();
    for case in known_bad_corpus(&cfg) {
        let report = verify_with(&case.layout, case.name, &case.options);
        let expects_error = case.expect.iter().any(|c| c.severity() == Severity::Error);
        assert_eq!(
            !report.is_clean(),
            expects_error,
            "case '{}' clean-ness disagrees with its expected codes:\n{}",
            case.name,
            report.render(),
        );
    }
}

/// Every stable code renders with its `SF-…` prefix in the report so
/// downstream grep/tooling can match on it.
#[test]
fn rendered_reports_carry_stable_codes() {
    let cfg = TofinoConfig::tofino_64t();
    for case in known_bad_corpus(&cfg) {
        let report = verify_with(&case.layout, case.name, &case.options);
        let rendered = report.render();
        for code in &case.expect {
            assert!(
                rendered.contains(code.code()),
                "case '{}' report must carry literal {}:\n{rendered}",
                case.name,
                code.code(),
            );
        }
    }
}

fn arb_spec(rng: &mut StdRng, name: String) -> TableSpec {
    let key_bits = rng.gen_range(1u32..=152);
    let action_bits = rng.gen_range(0u32..=64);
    let entries = rng.gen_range(1usize..150_000);
    if check::one_of(rng, 2) == 0 {
        TableSpec::new(
            name,
            MatchKind::Exact,
            key_bits,
            action_bits,
            entries,
            Storage::SramHash,
        )
        .expect("valid")
    } else {
        TableSpec::new(
            name,
            MatchKind::Lpm,
            key_bits,
            action_bits,
            entries,
            Storage::Tcam,
        )
        .expect("valid")
    }
}

fn arb_step(rng: &mut StdRng) -> FoldStep {
    FoldStep::ALL[check::one_of(rng, 4) as usize]
}

/// Analyzer-clean implies legacy-legal: lookup order is monotone and
/// both pairs fit their inventories, i.e. `validate()` returns Ok.
#[test]
fn verify_clean_implies_legacy_invariants() {
    check::run("verify_clean_implies_legacy_invariants", 192, |rng| {
        let cfg = TofinoConfig::tofino_64t();
        let folded = check::one_of(rng, 4) != 0; // bias towards folded
        let n = rng.gen_range(1usize..7);
        let mut steps: Vec<FoldStep> = (0..n).map(|_| arb_step(rng)).collect();
        steps.sort();
        let mut layout = Layout::new(cfg.clone(), folded);
        for (i, step) in steps.into_iter().enumerate() {
            let mut t = PlacedTable::new(arb_spec(rng, format!("t{i}")), step);
            t.split_across_pair = check::one_of(rng, 2) == 0;
            t.depends_on_previous = check::one_of(rng, 2) == 0;
            layout.push(t);
        }
        let report = layout.verify("property");
        if !report.is_clean() {
            return; // only clean layouts are claimed legal
        }
        // Legacy invariant 1: lookup order is monotone over fold steps.
        if folded {
            for w in layout.tables.windows(2) {
                assert!(
                    w[0].step <= w[1].step,
                    "clean layout with non-monotone steps"
                );
            }
        }
        // Legacy invariant 2: both pairs fit their memory inventories.
        for pair in [PipePair::Outer, PipePair::Loop] {
            let occ = Occupancy::of(layout.pair_usage(pair), &cfg);
            assert!(occ.fits(), "clean layout over capacity: {occ}");
        }
        // And the legacy entry point agrees end-to-end.
        layout
            .validate()
            .expect("verify-clean layout must pass legacy validate()");
    });
}
