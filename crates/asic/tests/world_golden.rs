//! Golden-diagnostics tests for the plan-time **world** verifier.
//!
//! Mirrors `verify_golden.rs` for the world-level codes: the full stable
//! code list is pinned (codes, slugs, severity classes), every known-bad
//! world corpus case must emit exactly its pinned codes with a
//! byte-stable render, and the rendered report must carry the literal
//! `SF-…` strings downstream tooling greps for.

use sailfish_asic::verify::world::{known_bad_world_corpus, run_world_case};
use sailfish_asic::verify::{LintCode, Severity};

/// The full stable code list, pinned literally. Adding a code extends
/// this table; changing or removing one is a contract break this test
/// makes loud.
#[test]
fn stable_code_list_is_pinned() {
    let expected: [(&str, &str); 21] = [
        ("SF-E001", "fold-order-violation"),
        ("SF-E002", "over-capacity"),
        ("SF-E003", "gress-violation"),
        ("SF-E004", "phv-overflow"),
        ("SF-E005", "duplicate-table"),
        ("SF-E006", "stage-overflow"),
        ("SF-E007", "uncovered-unit"),
        ("SF-E008", "directory-divergence"),
        ("SF-E009", "world-over-capacity"),
        ("SF-E010", "transition-black-hole"),
        ("SF-E011", "invalid-phase-order"),
        ("SF-E012", "delta-base-mismatch"),
        ("SF-W001", "tcam-headroom"),
        ("SF-W002", "sram-headroom"),
        ("SF-W003", "phv-pressure"),
        ("SF-W004", "conflict-table-undersized"),
        ("SF-W005", "under-placed"),
        ("SF-W006", "bridge-pressure"),
        ("SF-W007", "world-headroom"),
        ("SF-W008", "blast-radius"),
        ("SF-W009", "redundant-move"),
    ];
    assert_eq!(LintCode::ALL.len(), expected.len());
    for (code, (want_code, want_slug)) in LintCode::ALL.iter().zip(expected) {
        assert_eq!(code.code(), want_code);
        assert_eq!(code.slug(), want_slug);
        let class = if want_code.starts_with("SF-E") {
            Severity::Error
        } else {
            Severity::Warning
        };
        assert_eq!(code.severity(), class, "{want_code} severity class");
    }
}

#[test]
fn world_corpus_reports_are_byte_stable() {
    let first: Vec<String> = known_bad_world_corpus()
        .iter()
        .map(|c| run_world_case(c).render())
        .collect();
    let second: Vec<String> = known_bad_world_corpus()
        .iter()
        .map(|c| run_world_case(c).render())
        .collect();
    assert_eq!(first, second, "rendered world reports differ across runs");
}

#[test]
fn world_corpus_emits_exactly_the_pinned_codes() {
    for case in known_bad_world_corpus() {
        let report = run_world_case(&case);
        for code in &case.expect {
            assert!(
                report.has(*code),
                "case '{}' must emit {code}; rendered:\n{}",
                case.name,
                report.render(),
            );
        }
    }
}

/// Error-class cases reject; warning-only cases stay clean-but-noted.
#[test]
fn world_corpus_severity_matches_code_class() {
    for case in known_bad_world_corpus() {
        let report = run_world_case(&case);
        let expects_error = case.expect.iter().any(|c| c.severity() == Severity::Error);
        assert_eq!(
            !report.is_clean(),
            expects_error,
            "case '{}' clean-ness disagrees with its expected codes:\n{}",
            case.name,
            report.render(),
        );
    }
}

/// Every world-level code appears in at least one corpus case, so the
/// corpus stays a complete demo of the world verifier's vocabulary.
#[test]
fn world_corpus_covers_every_world_code() {
    let world_codes = [
        LintCode::UncoveredUnit,
        LintCode::DirectoryDivergence,
        LintCode::WorldOverCapacity,
        LintCode::TransitionBlackHole,
        LintCode::InvalidPhaseOrder,
        LintCode::DeltaBaseMismatch,
        LintCode::WorldHeadroom,
        LintCode::BlastRadius,
        LintCode::RedundantMove,
    ];
    let corpus = known_bad_world_corpus();
    for code in world_codes {
        assert!(
            corpus.iter().any(|c| c.expect.contains(&code)),
            "no corpus case expects {code}",
        );
    }
}

/// Rendered reports carry the literal `SF-…` code strings and the
/// verdict line, byte-for-byte greppable.
#[test]
fn rendered_world_reports_carry_stable_codes() {
    for case in known_bad_world_corpus() {
        let report = run_world_case(&case);
        let rendered = report.render();
        for code in &case.expect {
            assert!(
                rendered.contains(code.code()),
                "case '{}' report must carry literal {}:\n{rendered}",
                case.name,
                code.code(),
            );
        }
        let expects_error = case.expect.iter().any(|c| c.severity() == Severity::Error);
        let verdict = if expects_error {
            "verdict: REJECTED"
        } else {
            "verdict: CLEAN"
        };
        assert!(
            rendered.contains(verdict),
            "case '{}' report must end with '{verdict}':\n{rendered}",
            case.name,
        );
    }
}
