//! The VXLAN routing table.
//!
//! "The VXLAN routing table finds the right region/IDC/VPC scope according
//! to the inner DIP of the VXLAN-encapsulated packet" (§2.1, Fig 2). The
//! key is `(VNI, inner destination prefix)`; the result is a
//! [`RouteTarget`]. A `Peer` result restarts the lookup with the peer VPC's
//! VNI "until the scope becomes Local".

use std::collections::HashMap;

use core::net::IpAddr;

use sailfish_net::Vni;

use crate::error::{Error, Result};
use crate::pooled::PooledPrefixMap;
use crate::types::{RouteTarget, VxlanRouteKey};

/// Maximum peer-VPC indirection depth before declaring a routing loop.
/// The paper's example (Fig 2) uses one hop; production route chains stay
/// short because peerings are installed pairwise.
pub const MAX_PEER_HOPS: usize = 8;

/// Result of fully resolving a destination through peer chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// The VNI in whose context the final (non-Peer) match happened; for
    /// `Local` targets this is the VPC hosting the destination VM.
    pub final_vni: Vni,
    /// The terminal route target (never `Peer`).
    pub target: RouteTarget,
    /// How many peer indirections were followed.
    pub hops: usize,
}

/// The logical VXLAN routing table: per-VNI dual-stack LPM.
#[derive(Debug, Default)]
pub struct VxlanRoutingTable {
    per_vni: HashMap<Vni, PooledPrefixMap<RouteTarget>>,
}

impl VxlanRoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of route entries across all VNIs.
    pub fn len(&self) -> usize {
        self.per_vni.values().map(|m| m.len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.per_vni.values().all(|m| m.is_empty())
    }

    /// Entry counts per family `(v4, v6)`.
    pub fn family_counts(&self) -> (usize, usize) {
        self.per_vni
            .values()
            .map(|m| m.family_counts())
            .fold((0, 0), |(a4, a6), (b4, b6)| (a4 + b4, a6 + b6))
    }

    /// Installs a route; replacing an existing identical key returns the
    /// old target.
    pub fn insert(&mut self, key: VxlanRouteKey, target: RouteTarget) -> Option<RouteTarget> {
        self.per_vni
            .entry(key.vni)
            .or_default()
            .insert(key.prefix, target)
    }

    /// Removes a route.
    pub fn remove(&mut self, key: &VxlanRouteKey) -> Option<RouteTarget> {
        let map = self.per_vni.get_mut(&key.vni)?;
        let old = map.remove(&key.prefix);
        if map.is_empty() {
            self.per_vni.remove(&key.vni);
        }
        old
    }

    /// Single-step lookup: the longest-prefix match within `vni`.
    pub fn lookup(&self, vni: Vni, dst: IpAddr) -> Option<RouteTarget> {
        self.per_vni.get(&vni)?.lookup(dst).map(|(_, t)| *t)
    }

    /// Fully resolves a destination, following `Peer` targets.
    ///
    /// Errors with [`Error::NotFound`] if any step misses and
    /// [`Error::RoutingLoop`] if the peer chain exceeds
    /// [`MAX_PEER_HOPS`].
    pub fn resolve(&self, vni: Vni, dst: IpAddr) -> Result<Resolution> {
        let mut current = vni;
        for hops in 0..=MAX_PEER_HOPS {
            match self.lookup(current, dst) {
                None => return Err(Error::NotFound),
                Some(RouteTarget::Peer(next)) => {
                    current = next;
                }
                Some(target) => {
                    return Ok(Resolution {
                        final_vni: current,
                        target,
                        hops,
                    })
                }
            }
        }
        Err(Error::RoutingLoop)
    }

    /// The VNIs that currently have routes, in ascending order (the
    /// controller splits tables by VNI, §4.3).
    pub fn vnis(&self) -> Vec<Vni> {
        let mut v: Vec<Vni> = self.per_vni.keys().copied().collect();
        v.sort();
        v
    }

    /// Number of entries belonging to one VNI.
    pub fn len_for_vni(&self, vni: Vni) -> usize {
        self.per_vni.get(&vni).map_or(0, |m| m.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailfish_net::IpPrefix;

    fn key(vni: u32, prefix: &str) -> VxlanRouteKey {
        VxlanRouteKey::new(Vni::from_const(vni), prefix.parse::<IpPrefix>().unwrap())
    }

    /// The exact scenario of Fig 2.
    fn fig2_table() -> VxlanRoutingTable {
        let mut t = VxlanRoutingTable::new();
        let vpc_a = Vni::from_const(100);
        let vpc_b = Vni::from_const(200);
        t.insert(key(100, "192.168.10.0/24"), RouteTarget::Local);
        t.insert(key(100, "192.168.30.0/24"), RouteTarget::Peer(vpc_b));
        t.insert(key(200, "192.168.30.0/24"), RouteTarget::Local);
        t.insert(key(200, "192.168.10.0/24"), RouteTarget::Peer(vpc_a));
        t
    }

    #[test]
    fn fig2_same_vpc() {
        let t = fig2_table();
        let r = t
            .resolve(Vni::from_const(100), "192.168.10.3".parse().unwrap())
            .unwrap();
        assert_eq!(r.target, RouteTarget::Local);
        assert_eq!(r.final_vni, Vni::from_const(100));
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn fig2_cross_vpc() {
        let t = fig2_table();
        let r = t
            .resolve(Vni::from_const(100), "192.168.30.5".parse().unwrap())
            .unwrap();
        assert_eq!(r.target, RouteTarget::Local);
        assert_eq!(r.final_vni, Vni::from_const(200));
        assert_eq!(r.hops, 1);
    }

    #[test]
    fn miss_and_isolation() {
        let t = fig2_table();
        // Unknown destination in a known VPC.
        assert_eq!(
            t.resolve(Vni::from_const(100), "10.9.9.9".parse().unwrap()),
            Err(Error::NotFound)
        );
        // Unknown VPC entirely.
        assert_eq!(
            t.resolve(Vni::from_const(999), "192.168.10.3".parse().unwrap()),
            Err(Error::NotFound)
        );
    }

    #[test]
    fn routing_loop_detected() {
        let mut t = VxlanRoutingTable::new();
        t.insert(key(1, "10.0.0.0/8"), RouteTarget::Peer(Vni::from_const(2)));
        t.insert(key(2, "10.0.0.0/8"), RouteTarget::Peer(Vni::from_const(1)));
        assert_eq!(
            t.resolve(Vni::from_const(1), "10.1.1.1".parse().unwrap()),
            Err(Error::RoutingLoop)
        );
    }

    #[test]
    fn longest_prefix_wins_within_vni() {
        let mut t = VxlanRoutingTable::new();
        t.insert(key(1, "10.0.0.0/8"), RouteTarget::InternetSnat);
        t.insert(key(1, "10.1.0.0/16"), RouteTarget::Local);
        assert_eq!(
            t.lookup(Vni::from_const(1), "10.1.2.3".parse().unwrap()),
            Some(RouteTarget::Local)
        );
        assert_eq!(
            t.lookup(Vni::from_const(1), "10.2.2.3".parse().unwrap()),
            Some(RouteTarget::InternetSnat)
        );
    }

    #[test]
    fn dual_stack_routes_coexist() {
        let mut t = VxlanRoutingTable::new();
        t.insert(key(1, "192.168.0.0/16"), RouteTarget::Local);
        t.insert(key(1, "2001:db8::/32"), RouteTarget::Local);
        assert!(t
            .lookup(Vni::from_const(1), "2001:db8::9".parse().unwrap())
            .is_some());
        assert!(t
            .lookup(Vni::from_const(1), "192.168.9.9".parse().unwrap())
            .is_some());
        assert_eq!(t.family_counts(), (1, 1));
    }

    #[test]
    fn remove_cleans_up_empty_vnis() {
        let mut t = fig2_table();
        assert_eq!(t.vnis().len(), 2);
        assert!(t.remove(&key(200, "192.168.30.0/24")).is_some());
        assert!(t.remove(&key(200, "192.168.10.0/24")).is_some());
        assert_eq!(t.vnis().len(), 1);
        assert_eq!(t.len_for_vni(Vni::from_const(200)), 0);
        assert_eq!(t.len(), 2);
    }
}
