//! Binary-trie longest-prefix-match table.
//!
//! [`Lpm128`] is the authoritative *software* LPM over a 128-bit,
//! MSB-aligned key space. It serves three roles:
//!
//! 1. the reference semantics that the hardware structures
//!    ([`crate::tcam::Tcam`], [`crate::alpm::AlpmTable`]) are
//!    property-tested against,
//! 2. the backing store of the logical
//!    [`crate::vxlan_route::VxlanRoutingTable`],
//! 3. the XGW-x86 routing table (x86 has "huge memory space", §4.1, so the
//!    software gateway uses this directly).
//!
//! IPv4 keys are mapped into the 128-bit space by the caller (either
//! MSB-aligned per-family or via the pooled `::ffff:0:0/96` plane, see
//! `sailfish_net::prefix::IpPrefix::pooled_bits`).

use crate::error::{Error, Result};

/// A prefix in the 128-bit MSB-aligned key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key128 {
    /// Address bits; bit 127 (MSB) is the first bit of the prefix.
    pub value: u128,
    /// Prefix length, `0..=128`.
    pub len: u8,
}

impl Key128 {
    /// Builds a key, canonicalizing (zeroing) host bits.
    pub fn new(value: u128, len: u8) -> Result<Self> {
        if len > 128 {
            return Err(Error::InvalidKey);
        }
        Ok(Key128 {
            value: value & Self::mask(len),
            len,
        })
    }

    /// The bit mask selecting the first `len` bits.
    pub fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len as u32)
        }
    }

    /// Whether `addr` falls under this prefix.
    pub fn contains(&self, addr: u128) -> bool {
        addr & Self::mask(self.len) == self.value
    }

    /// Whether `other` is equal to or more specific than this prefix.
    pub fn covers(&self, other: &Key128) -> bool {
        other.len >= self.len && self.contains(other.value)
    }

    /// The bit of `addr` at position `pos` (0 = MSB).
    pub fn bit(addr: u128, pos: u8) -> usize {
        (addr >> (127 - pos as u32) & 1) as usize
    }
}

#[derive(Debug)]
struct Node<T> {
    children: [Option<Box<Node<T>>>; 2],
    data: Option<T>,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            children: [None, None],
            data: None,
        }
    }

    fn is_empty(&self) -> bool {
        self.data.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A binary trie mapping 128-bit prefixes to values.
#[derive(Debug)]
pub struct Lpm128<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for Lpm128<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Lpm128<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Lpm128 {
            root: Node::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a prefix, returning the previous value if the prefix was
    /// already present.
    pub fn insert(&mut self, key: Key128, data: T) -> Option<T> {
        let mut node = &mut self.root;
        for pos in 0..key.len {
            let bit = Key128::bit(key.value, pos);
            node = node.children[bit].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.data.replace(data);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes a prefix, returning its value.
    pub fn remove(&mut self, key: Key128) -> Option<T> {
        fn rec<T>(node: &mut Node<T>, key: &Key128, pos: u8) -> Option<T> {
            if pos == key.len {
                return node.data.take();
            }
            let bit = Key128::bit(key.value, pos);
            let child = node.children[bit].as_mut()?;
            let removed = rec(child, key, pos + 1);
            if removed.is_some() && child.is_empty() {
                node.children[bit] = None;
            }
            removed
        }
        let removed = rec(&mut self.root, &key, 0);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Returns the value stored exactly at `key`.
    pub fn get_exact(&self, key: Key128) -> Option<&T> {
        let mut node = &self.root;
        for pos in 0..key.len {
            let bit = Key128::bit(key.value, pos);
            node = node.children[bit].as_deref()?;
        }
        node.data.as_ref()
    }

    /// Longest-prefix lookup of a full 128-bit address.
    pub fn lookup(&self, addr: u128) -> Option<(Key128, &T)> {
        self.lookup_max_len(addr, 128)
    }

    /// Longest-prefix lookup considering only prefixes with
    /// `len <= max_len`. Used by ALPM to compute partition defaults (the
    /// best route *outside* a partition rooted at `max_len + 1` or deeper).
    pub fn lookup_max_len(&self, addr: u128, max_len: u8) -> Option<(Key128, &T)> {
        let mut node = &self.root;
        let mut best: Option<(u8, &T)> = None;
        if let Some(data) = node.data.as_ref() {
            best = Some((0, data));
        }
        for pos in 0..max_len.min(128) {
            let bit = Key128::bit(addr, pos);
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(data) = node.data.as_ref() {
                        best = Some((pos + 1, data));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, data)| (Key128::new(addr, len).expect("len bounded by 128"), data))
    }

    /// Iterates over all `(key, value)` pairs in lexicographic order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            stack: vec![(&self.root, 0u128, 0u8)],
        }
    }

    /// Collects all prefixes covered by `cover` (including an entry equal
    /// to it). Used when splitting ALPM partitions.
    pub fn entries_under(&self, cover: Key128) -> Vec<(Key128, &T)> {
        // Walk down to the covering node first.
        let mut node = &self.root;
        for pos in 0..cover.len {
            let bit = Key128::bit(cover.value, pos);
            match node.children[bit].as_deref() {
                Some(child) => node = child,
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        let mut stack = vec![(node, cover.value, cover.len)];
        while let Some((n, value, len)) = stack.pop() {
            if let Some(data) = n.data.as_ref() {
                out.push((Key128 { value, len }, data));
            }
            for (bit, child) in n.children.iter().enumerate() {
                if let Some(child) = child.as_deref() {
                    debug_assert!(len < 128);
                    let value = value | (bit as u128) << (127 - len as u32);
                    stack.push((child, value, len + 1));
                }
            }
        }
        out
    }
}

/// Iterator over `(Key128, &T)` pairs.
pub struct Iter<'a, T> {
    stack: Vec<(&'a Node<T>, u128, u8)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (Key128, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, value, len)) = self.stack.pop() {
            // Push children right-then-left so pops are in order.
            for bit in [1usize, 0] {
                if let Some(child) = node.children[bit].as_deref() {
                    let value = value | (bit as u128) << (127 - len as u32);
                    self.stack.push((child, value, len + 1));
                }
            }
            if let Some(data) = node.data.as_ref() {
                return Some((Key128 { value, len }, data));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(value: u128, len: u8) -> Key128 {
        Key128::new(value << (128 - len.max(1) as u32).min(127), len).unwrap()
    }

    /// Key where `value` is already MSB-aligned.
    fn ka(value: u128, len: u8) -> Key128 {
        Key128::new(value, len).unwrap()
    }

    #[test]
    fn key_canonicalizes() {
        let key = Key128::new(u128::MAX, 8).unwrap();
        assert_eq!(key.value, 0xff << 120);
        assert!(Key128::new(0, 129).is_err());
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t = Lpm128::new();
        let a = ka(0xab << 120, 8);
        let b = ka(0xabcd << 112, 16);
        assert_eq!(t.insert(a, "a"), None);
        assert_eq!(t.insert(b, "b"), None);
        assert_eq!(t.len(), 2);

        // A /16 address under both picks the longer prefix.
        let addr = 0xabcd_1234u128 << 96;
        assert_eq!(t.lookup(addr).unwrap().1, &"b");
        // An address only under the /8 picks it.
        let addr = 0xab00_0000u128 << 96 | 1 << 95;
        assert_eq!(t.lookup(addr).unwrap().1, &"a");
        // An unrelated address misses.
        assert!(t.lookup(0x11u128 << 120).is_none());

        assert_eq!(t.remove(b), Some("b"));
        assert_eq!(t.lookup(0xabcd_0000u128 << 96).unwrap().1, &"a");
        assert_eq!(t.remove(b), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn default_route() {
        let mut t = Lpm128::new();
        t.insert(ka(0, 0), "default");
        assert_eq!(t.lookup(u128::MAX).unwrap().1, &"default");
        assert_eq!(t.lookup(0).unwrap().1, &"default");
    }

    #[test]
    fn replace_returns_old() {
        let mut t = Lpm128::new();
        let key = ka(5 << 100, 28);
        assert_eq!(t.insert(key, 1), None);
        assert_eq!(t.insert(key, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_exact(key), Some(&2));
    }

    #[test]
    fn lookup_max_len_excludes_longer() {
        let mut t = Lpm128::new();
        t.insert(ka(0xab << 120, 8), "short");
        t.insert(ka(0xabcd << 112, 16), "long");
        let addr = 0xabcdu128 << 112;
        assert_eq!(t.lookup_max_len(addr, 15).unwrap().1, &"short");
        assert_eq!(t.lookup_max_len(addr, 16).unwrap().1, &"long");
        assert_eq!(t.lookup_max_len(addr, 7), None);
    }

    #[test]
    fn host_route_at_128_bits() {
        let mut t = Lpm128::new();
        let host = ka(42, 128);
        t.insert(host, "host");
        assert_eq!(t.lookup(42).unwrap(), (host, &"host"));
        assert!(t.lookup(43).is_none());
    }

    #[test]
    fn iter_yields_everything_in_order() {
        let mut t = Lpm128::new();
        let keys = [ka(0, 0), ka(0xab << 120, 8), ka(0xab << 120, 9), ka(1, 128)];
        for (i, key) in keys.iter().enumerate() {
            t.insert(*key, i);
        }
        let collected: Vec<_> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(collected.len(), keys.len());
        for key in keys {
            assert!(collected.contains(&key));
        }
    }

    #[test]
    fn entries_under_selects_subtree() {
        let mut t = Lpm128::new();
        t.insert(ka(0xab << 120, 8), "a");
        t.insert(ka(0xabcd << 112, 16), "b");
        t.insert(ka(0xac << 120, 8), "c");
        let under = t.entries_under(ka(0xab << 120, 8));
        assert_eq!(under.len(), 2);
        let under = t.entries_under(ka(0xac << 120, 8));
        assert_eq!(under.len(), 1);
        let under = t.entries_under(ka(0, 0));
        assert_eq!(under.len(), 3);
        // No node at all under a foreign prefix.
        assert!(t.entries_under(ka(0xff << 120, 8)).is_empty());
    }

    #[test]
    fn remove_prunes_empty_branches() {
        let mut t = Lpm128::new();
        let deep = ka(7, 128);
        t.insert(deep, "x");
        t.remove(deep);
        assert!(t.is_empty());
        // The root must have been pruned back to a leaf: inserting and
        // looking up still works.
        t.insert(ka(0, 0), "d");
        assert_eq!(t.lookup(7).unwrap().1, &"d");
    }

    // Differential test against a naive scan.
    #[test]
    fn matches_naive_scan_on_random_input() {
        use sailfish_util::rand::rngs::StdRng;
        use sailfish_util::rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5a11_f154);
        let mut t = Lpm128::new();
        let mut entries: Vec<(Key128, u32)> = Vec::new();
        for i in 0..500u32 {
            // Cluster prefixes in a small space to force overlaps.
            let len = rng.gen_range(0..=16) + 112;
            let value = (rng.gen_range(0..64u128)) << 112 | rng.gen_range(0..1u128 << 64);
            let key = Key128::new(value, len as u8).unwrap();
            if t.insert(key, i).is_none() {
                entries.push((key, i));
            } else {
                entries.retain(|(k, _)| *k != key);
                entries.push((key, i));
            }
        }
        for _ in 0..2000 {
            let addr = (rng.gen_range(0..64u128)) << 112 | rng.gen_range(0..1u128 << 64);
            let got = t.lookup(addr).map(|(k, v)| (k.len, *v));
            let want = entries
                .iter()
                .filter(|(k, _)| k.contains(addr))
                .max_by_key(|(k, _)| k.len)
                .map(|(k, v)| (k.len, *v));
            assert_eq!(got, want, "addr {addr:#034x}");
        }
    }

    #[test]
    fn helper_k_is_sane() {
        // Guard the test helper itself.
        assert_eq!(k(0xab, 8).len, 8);
    }
}
