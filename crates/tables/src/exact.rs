//! Exact-match table with capacity semantics.
//!
//! A thin wrapper over a hash map that adds the control-plane behaviours
//! the gateway needs: bounded capacity (hardware tables overflow, §3.3),
//! explicit duplicate handling, and occupancy statistics for the memory
//! model.

use std::collections::HashMap;
use std::hash::Hash;

use crate::error::{Error, Result};

/// A bounded exact-match table.
#[derive(Debug, Clone)]
pub struct ExactTable<K, V> {
    map: HashMap<K, V>,
    capacity: Option<usize>,
}

impl<K: Eq + Hash, V> Default for ExactTable<K, V> {
    fn default() -> Self {
        Self::new(None)
    }
}

impl<K: Eq + Hash, V> ExactTable<K, V> {
    /// Creates a table, optionally bounded to `capacity` entries.
    pub fn new(capacity: Option<usize>) -> Self {
        ExactTable {
            map: HashMap::new(),
            capacity,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Occupancy in `[0, 1]`; `None` when unbounded.
    pub fn utilization(&self) -> Option<f64> {
        self.capacity.map(|c| self.map.len() as f64 / c as f64)
    }

    /// Inserts a new entry; duplicates are an error so the control plane
    /// notices conflicting installs.
    pub fn insert(&mut self, key: K, value: V) -> Result<()> {
        if self.map.contains_key(&key) {
            return Err(Error::Duplicate);
        }
        if let Some(cap) = self.capacity {
            if self.map.len() >= cap {
                return Err(Error::CapacityExceeded);
            }
        }
        self.map.insert(key, value);
        Ok(())
    }

    /// Inserts or replaces, returning the previous value. Still enforces
    /// capacity for genuinely new keys.
    pub fn upsert(&mut self, key: K, value: V) -> Result<Option<V>> {
        if !self.map.contains_key(&key) {
            if let Some(cap) = self.capacity {
                if self.map.len() >= cap {
                    return Err(Error::CapacityExceeded);
                }
            }
        }
        Ok(self.map.insert(key, value))
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key)
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Iterates over entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter()
    }

    /// Removes all entries matching a predicate, returning how many were
    /// removed.
    pub fn retain<F: FnMut(&K, &V) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.map.len();
        self.map.retain(|k, v| keep(k, v));
        before - self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t = ExactTable::new(None);
        t.insert("a", 1).unwrap();
        assert_eq!(t.get(&"a"), Some(&1));
        assert_eq!(t.insert("a", 2), Err(Error::Duplicate));
        assert_eq!(t.upsert("a", 2).unwrap(), Some(1));
        assert_eq!(t.remove(&"a"), Some(2));
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_enforced_for_new_keys_only() {
        let mut t = ExactTable::new(Some(1));
        t.insert(1, "x").unwrap();
        assert_eq!(t.insert(2, "y"), Err(Error::CapacityExceeded));
        // Upserting an existing key is fine at capacity.
        assert_eq!(t.upsert(1, "z").unwrap(), Some("x"));
        assert_eq!(t.upsert(2, "y"), Err(Error::CapacityExceeded));
        assert_eq!(t.utilization(), Some(1.0));
    }

    #[test]
    fn retain_counts_removals() {
        let mut t = ExactTable::new(None);
        for i in 0..10 {
            t.insert(i, i * 2).unwrap();
        }
        let removed = t.retain(|k, _| k % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(t.len(), 5);
    }
}
