//! Error type shared by the table implementations.

use core::fmt;

/// Errors produced by table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The table is full (capacity or port-pool exhaustion).
    CapacityExceeded,
    /// The entry already exists (insertions are not silent upserts where
    /// the control plane must know).
    Duplicate,
    /// The entry was not found.
    NotFound,
    /// The key is invalid for this table (e.g. mixed-family 5-tuple, or a
    /// prefix length beyond the address width).
    InvalidKey,
    /// Resolution exceeded the maximum peer-VPC indirection depth (a
    /// routing loop between VPCs).
    RoutingLoop,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::CapacityExceeded => write!(f, "table capacity exceeded"),
            Error::Duplicate => write!(f, "entry already exists"),
            Error::NotFound => write!(f, "entry not found"),
            Error::InvalidKey => write!(f, "invalid key for this table"),
            Error::RoutingLoop => write!(f, "peer-VPC routing loop detected"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used across `sailfish-tables`.
pub type Result<T> = core::result::Result<T, Error>;
